//! Baselines the paper compares against.
//!
//! * [`serial`] — geth's model: one thread, block order. This is both the
//!   correctness oracle (every parallel execution must reproduce its state
//!   root) and the denominator of every speedup the paper reports.
//! * [`occ`] — the two-phase speculative scheduler of Saraph & Herlihy
//!   \[27\]: phase 1 runs every transaction against the pre-block snapshot
//!   and keeps the conflict-free ones; phase 2 re-executes the rest
//!   serially. The comparator line of Figure 7(a).

#![warn(missing_docs)]

pub mod occ;
pub mod serial;

pub use occ::{occ_two_phase, OccOutcome};
pub use serial::{execute_block_serially, SerialOutcome};
