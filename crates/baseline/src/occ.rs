//! The Saraph-Herlihy two-phase OCC scheduler \[27\].
//!
//! Phase 1 speculatively executes **every** transaction of the block against
//! the *pre-block* snapshot (conceptually in parallel). Any transaction whose
//! footprint overlaps another transaction's write set is marked conflicting.
//! Phase 2 re-executes the conflicting transactions **serially in block
//! order** on top of the phase-1 survivors.
//!
//! Because each surviving transaction conflicts with *nobody*, its effects
//! commute with every other transaction in the block, so
//! survivors-then-conflicts reproduces the serial block execution exactly —
//! which is asserted by the tests and by the Figure 7(a) harness.

use std::collections::HashMap;

use bp_evm::{execute_transaction, BlockEnv, Transaction, TxError, WorldView};
use bp_state::WorldState;
use bp_types::{AccessKey, Gas, U256};

/// Result of a two-phase OCC run.
#[derive(Debug)]
pub struct OccOutcome {
    /// Post-state (equal to serial execution of the block).
    pub post_state: WorldState,
    /// Indices of transactions that survived phase 1 (ran "in parallel").
    pub parallel: Vec<usize>,
    /// Indices re-executed serially in phase 2, in block order.
    pub serial: Vec<usize>,
    /// Gas of each transaction's final (committed) execution.
    pub gas: Vec<Gas>,
    /// Total gas.
    pub gas_used: Gas,
}

impl OccOutcome {
    /// Virtual-time makespan on `threads` workers: phase 1 packs the
    /// parallel transactions LPT-style onto the workers; phase 2 is the
    /// serial tail.
    pub fn makespan_gas(&self, threads: usize) -> Gas {
        let mut loads = vec![0u64; threads.max(1)];
        let mut parallel_gas: Vec<Gas> = self.parallel.iter().map(|&i| self.gas[i]).collect();
        parallel_gas.sort_unstable_by(|a, b| b.cmp(a));
        for g in parallel_gas {
            let min = (0..loads.len())
                .min_by_key(|&t| loads[t])
                .expect("non-empty");
            loads[min] += g;
        }
        let phase1 = loads.into_iter().max().unwrap_or(0);
        let phase2: Gas = self.serial.iter().map(|&i| self.gas[i]).sum();
        phase1 + phase2
    }
}

/// Runs the two-phase OCC baseline over `txs` on `base`.
///
/// Transactions invalid even under serial execution are an error, as in the
/// serial baseline.
pub fn occ_two_phase(
    base: &WorldState,
    env: &BlockEnv,
    txs: &[Transaction],
) -> Result<OccOutcome, (usize, TxError)> {
    let n = txs.len();

    // Phase 1: speculate everyone against the pre-block snapshot.
    let view = WorldView::new(base);
    let mut speculative = Vec::with_capacity(n);
    for tx in txs.iter() {
        // A speculation failure (e.g. nonce chain within the block) just
        // marks the transaction conflicting; phase 2 will handle it.
        speculative.push(execute_transaction(&view, env, tx).ok());
    }

    // Conflict detection: a transaction survives iff no key it touches is
    // written by any *other* transaction, and no key it writes is touched by
    // any other transaction.
    // Count, per key, how many *distinct transactions* write it and how
    // many touch it at all (a transaction that both reads and writes a key —
    // e.g. its own balance — counts once).
    let mut writers: HashMap<AccessKey, u32> = HashMap::new();
    let mut touchers: HashMap<AccessKey, u32> = HashMap::new();
    for spec in speculative.iter().flatten() {
        for key in spec.rw.writes.keys() {
            *writers.entry(*key).or_default() += 1;
            *touchers.entry(*key).or_default() += 1;
        }
        for key in spec.rw.reads.keys() {
            if !spec.rw.writes.contains_key(key) {
                *touchers.entry(*key).or_default() += 1;
            }
        }
    }
    let survives = |i: usize| -> bool {
        let Some(spec) = &speculative[i] else {
            return false;
        };
        // A read key written by any *other* transaction conflicts; a written
        // key touched by any other transaction conflicts.
        let read_ok = spec.rw.reads.keys().all(|k| {
            let others =
                writers.get(k).copied().unwrap_or(0) - u32::from(spec.rw.writes.contains_key(k));
            others == 0
        });
        let write_ok = spec
            .rw
            .writes
            .keys()
            .all(|k| touchers.get(k).copied().unwrap_or(0) == 1);
        read_ok && write_ok
    };

    // A failed speculation has an *unknown* footprint, so no later
    // transaction may be hoisted past it: survivors must precede the first
    // failure in block order.
    let first_failure = speculative.iter().position(Option::is_none).unwrap_or(n);
    let mut parallel = Vec::new();
    let mut serial = Vec::new();
    for i in 0..n {
        if i < first_failure && survives(i) {
            parallel.push(i);
        } else {
            serial.push(i);
        }
    }

    // Commit phase-1 survivors (their effects commute), then phase 2:
    // re-execute the conflicting transactions serially in block order.
    let mut world = base.snapshot();
    let mut gas = vec![0u64; n];
    let mut fees = U256::ZERO;
    for &i in &parallel {
        let spec = speculative[i].as_ref().expect("survivor was executed");
        world.apply_writes(&spec.rw.writes);
        for (addr, code) in &spec.deployed {
            world.set_code(*addr, (**code).clone());
        }
        gas[i] = spec.receipt.gas_used;
        fees += spec.receipt.fee;
    }
    for &i in &serial {
        let result = {
            let view = WorldView::new(&world);
            execute_transaction(&view, env, &txs[i]).map_err(|e| (i, e))?
        };
        world.apply_writes(&result.rw.writes);
        for (addr, code) in &result.deployed {
            world.set_code(*addr, (**code).clone());
        }
        gas[i] = result.receipt.gas_used;
        fees += result.receipt.fee;
    }
    if !fees.is_zero() {
        let cb = world.balance(&env.coinbase);
        world.set_balance(env.coinbase, cb + fees);
    }

    let gas_used = gas.iter().sum();
    Ok(OccOutcome {
        post_state: world,
        parallel,
        serial,
        gas,
        gas_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::execute_block_serially;
    use bp_evm::contracts;
    use bp_types::Address;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn world() -> WorldState {
        let mut w = WorldState::new();
        for i in 1..=20 {
            w.set_balance(addr(i), U256::from(1_000_000_000u64));
        }
        w
    }

    #[test]
    fn disjoint_transfers_all_parallel() {
        let base = world();
        let env = BlockEnv::default();
        let txs: Vec<_> = (1..=8u64)
            .map(|i| Transaction::transfer(addr(i), addr(i + 10), U256::ONE, 0, 1))
            .collect();
        let out = occ_two_phase(&base, &env, &txs).unwrap();
        assert_eq!(out.parallel.len(), 8);
        assert!(out.serial.is_empty());
        let serial = execute_block_serially(&base, &env, &txs).unwrap();
        assert_eq!(out.post_state.state_root(), serial.post_state.state_root());
        // Makespan with 8 threads = one transfer's gas.
        assert_eq!(out.makespan_gas(8), 21_000);
    }

    #[test]
    fn counter_contention_goes_serial() {
        let mut base = world();
        let c = addr(100);
        base.set_code(c, contracts::counter());
        let env = BlockEnv::default();
        let txs: Vec<_> = (1..=6u64)
            .map(|i| Transaction {
                sender: addr(i),
                to: Some(c),
                value: U256::ZERO,
                nonce: 0,
                gas_limit: 200_000,
                gas_price: 1,
                data: vec![],
            })
            .collect();
        let out = occ_two_phase(&base, &env, &txs).unwrap();
        // Every call writes the same slot: all conflict.
        assert!(out.parallel.is_empty());
        assert_eq!(out.serial, vec![0, 1, 2, 3, 4, 5]);
        let serial = execute_block_serially(&base, &env, &txs).unwrap();
        assert_eq!(out.post_state.state_root(), serial.post_state.state_root());
    }

    #[test]
    fn mixed_block_matches_serial_root() {
        let mut base = world();
        let c = addr(100);
        base.set_code(c, contracts::counter());
        let env = BlockEnv::default();
        let mut txs = Vec::new();
        for i in 1..=4u64 {
            txs.push(Transaction {
                sender: addr(i),
                to: Some(c),
                value: U256::ZERO,
                nonce: 0,
                gas_limit: 200_000,
                gas_price: 1,
                data: vec![],
            });
            txs.push(Transaction::transfer(
                addr(i + 10),
                addr(i + 14),
                U256::ONE,
                0,
                1,
            ));
        }
        let out = occ_two_phase(&base, &env, &txs).unwrap();
        assert_eq!(out.parallel.len(), 4); // wait: transfers 15..18 overlap? senders 11..14 -> recipients 15..18, all distinct
        assert_eq!(out.serial.len(), 4);
        let serial = execute_block_serially(&base, &env, &txs).unwrap();
        assert_eq!(out.post_state.state_root(), serial.post_state.state_root());
        assert_eq!(out.gas_used, serial.gas_used);
    }

    #[test]
    fn same_sender_chain_is_conflicting() {
        let base = world();
        let env = BlockEnv::default();
        let txs = vec![
            Transaction::transfer(addr(1), addr(5), U256::ONE, 0, 1),
            Transaction::transfer(addr(1), addr(6), U256::ONE, 1, 1),
        ];
        let out = occ_two_phase(&base, &env, &txs).unwrap();
        // The second tx fails speculation (nonce 1 against the nonce-0
        // snapshot) and re-runs serially; the first precedes the failure and
        // conflicts with nothing *known*, so it may commit in phase 1 —
        // phase 2 runs after phase 1, preserving block order between them.
        assert_eq!(out.parallel, vec![0]);
        assert_eq!(out.serial, vec![1]);
        let serial = execute_block_serially(&base, &env, &txs).unwrap();
        assert_eq!(out.post_state.state_root(), serial.post_state.state_root());
    }

    #[test]
    fn makespan_reflects_serial_tail() {
        let base = world();
        let env = BlockEnv::default();
        let txs: Vec<_> = (1..=4u64)
            .map(|i| Transaction::transfer(addr(i), addr(i + 10), U256::ONE, 0, 1))
            .collect();
        let out = occ_two_phase(&base, &env, &txs).unwrap();
        // 4 parallel transfers on 2 threads: 2 each.
        assert_eq!(out.makespan_gas(2), 42_000);
        assert_eq!(out.makespan_gas(1), 84_000);
    }
}
