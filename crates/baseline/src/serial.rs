//! Serial block execution — the geth baseline and correctness oracle.

use bp_block::{BlockProfile, TxProfile};
use bp_evm::{execute_transaction, BlockEnv, Receipt, Transaction, TxError, WorldView};
use bp_state::WorldState;
use bp_types::{Gas, U256};

/// Result of executing a block serially.
#[derive(Debug)]
pub struct SerialOutcome {
    /// Post-state after all transactions plus aggregated coinbase fees.
    pub post_state: WorldState,
    /// Receipts in block order.
    pub receipts: Vec<Receipt>,
    /// The footprints observed (identical in content to what a BlockPilot
    /// proposer would profile).
    pub profile: BlockProfile,
    /// Total gas consumed.
    pub gas_used: Gas,
}

/// Executes `txs` in order on a copy of `base`, exactly as a serial
/// Ethereum client would. Transactions that are invalid against the current
/// state (bad nonce, insufficient funds) are an error: blocks are expected
/// to contain only includable transactions.
pub fn execute_block_serially(
    base: &WorldState,
    env: &BlockEnv,
    txs: &[Transaction],
) -> Result<SerialOutcome, (usize, TxError)> {
    let mut world = base.snapshot();
    let mut receipts = Vec::with_capacity(txs.len());
    let mut profile = BlockProfile::new();
    let mut gas_used: Gas = 0;
    let mut fees = U256::ZERO;
    for (i, tx) in txs.iter().enumerate() {
        let result = {
            let view = WorldView::new(&world);
            execute_transaction(&view, env, tx).map_err(|e| (i, e))?
        };
        world.apply_writes(&result.rw.writes);
        for (addr, code) in &result.deployed {
            world.set_code(*addr, (**code).clone());
        }
        gas_used += result.receipt.gas_used;
        fees += result.receipt.fee;
        profile.push(TxProfile::from_rw(&result.rw, result.receipt.gas_used));
        receipts.push(result.receipt);
    }
    if !fees.is_zero() {
        let cb = world.balance(&env.coinbase);
        world.set_balance(env.coinbase, cb + fees);
    }
    Ok(SerialOutcome {
        post_state: world,
        receipts,
        profile,
        gas_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_types::Address;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn world() -> WorldState {
        let mut w = WorldState::new();
        for i in 1..=5 {
            w.set_balance(addr(i), U256::from(1_000_000u64));
        }
        w
    }

    #[test]
    fn executes_in_order() {
        let base = world();
        let env = BlockEnv::default();
        // Two chained transfers from the same sender.
        let txs = vec![
            Transaction::transfer(addr(1), addr(2), U256::from(10u64), 0, 1),
            Transaction::transfer(addr(1), addr(3), U256::from(20u64), 1, 1),
        ];
        let out = execute_block_serially(&base, &env, &txs).unwrap();
        assert_eq!(out.post_state.nonce(&addr(1)), 2);
        assert_eq!(out.post_state.balance(&addr(2)), U256::from(1_000_010u64));
        assert_eq!(out.post_state.balance(&addr(3)), U256::from(1_000_020u64));
        assert_eq!(out.gas_used, 42_000);
        assert_eq!(out.profile.len(), 2);
    }

    #[test]
    fn coinbase_collects_fees() {
        let base = world();
        let env = BlockEnv::default();
        let txs = vec![Transaction::transfer(addr(1), addr(2), U256::ONE, 0, 3)];
        let out = execute_block_serially(&base, &env, &txs).unwrap();
        assert_eq!(out.post_state.balance(&env.coinbase), U256::from(63_000u64));
    }

    #[test]
    fn invalid_tx_is_an_error() {
        let base = world();
        let env = BlockEnv::default();
        let txs = vec![
            Transaction::transfer(addr(1), addr(2), U256::ONE, 0, 1),
            Transaction::transfer(addr(1), addr(2), U256::ONE, 5, 1), // nonce gap
        ];
        let err = execute_block_serially(&base, &env, &txs).unwrap_err();
        assert_eq!(err.0, 1);
    }
}
