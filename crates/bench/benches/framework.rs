//! Criterion benchmarks for the framework itself: the validator scheduler,
//! the OCC-WSI proposer (real threads), the validator pipeline (real
//! threads), and the serial baseline, all over one seeded mainnet-like
//! block.
//!
//! On a single-core runner these measure the *absolute cost* of each path —
//! the speedup figures come from the virtual-time harness binaries, where
//! the schedule (not the wall clock) is what is measured.
//!
//! Run with `cargo bench -p bp-bench --bench framework`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use blockpilot_core::{
    ConflictGranularity, OccWsiConfig, OccWsiProposer, PipelineConfig, Scheduler, ValidatorPipeline,
};
use bp_baseline::{execute_block_serially, occ_two_phase};
use bp_bench::generate_fixtures;
use bp_txpool::TxPool;
use bp_types::BlockHash;
use bp_workload::WorkloadConfig;

fn fixture() -> bp_bench::BlockFixture {
    let config = WorkloadConfig {
        txs_per_block: 60,
        tx_jitter: 0,
        accounts: 300,
        ..WorkloadConfig::default()
    };
    generate_fixtures(config, 1).remove(0)
}

fn bench_scheduler(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(30);
    for granularity in [ConflictGranularity::Account, ConflictGranularity::Slot] {
        let s = Scheduler::new(granularity);
        g.bench_function(format!("{granularity:?}_60tx_16lanes"), |b| {
            b.iter(|| s.schedule(&f.profile, 16))
        });
    }
    g.finish();
}

fn bench_serial_baseline(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("baseline");
    g.sample_size(15);
    g.bench_function("serial_60tx", |b| {
        b.iter(|| execute_block_serially(&f.pre_state, &f.env, &f.txs).unwrap())
    });
    g.bench_function("occ_two_phase_60tx", |b| {
        b.iter(|| occ_two_phase(&f.pre_state, &f.env, &f.txs).unwrap())
    });
    g.finish();
}

fn bench_proposer(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("proposer");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_function(format!("occ_wsi_60tx_{threads}t"), |b| {
            b.iter(|| {
                let pool = TxPool::new();
                for tx in &f.txs {
                    pool.add(tx.clone());
                }
                let proposer = OccWsiProposer::new(OccWsiConfig {
                    threads,
                    env: f.env,
                    ..OccWsiConfig::default()
                });
                proposer.propose(&pool, Arc::clone(&f.pre_state), BlockHash::ZERO, 1)
            })
        });
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let f = fixture();
    let parent = BlockHash::from_low_u64(1);
    let block = f.seal(parent, 1);
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    for workers in [1usize, 4] {
        g.bench_function(format!("validate_60tx_{workers}w"), |b| {
            let pipeline = ValidatorPipeline::new(PipelineConfig {
                workers,
                granularity: ConflictGranularity::Account,
                ..Default::default()
            });
            pipeline.register_state(parent, Arc::clone(&f.pre_state));
            b.iter(|| {
                let outcome = pipeline.validate_block(block.clone());
                assert!(outcome.is_valid());
                outcome
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_serial_baseline,
    bench_proposer,
    bench_pipeline
);
criterion_main!(benches);
