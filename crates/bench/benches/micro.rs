//! Criterion micro-benchmarks for the substrates: Keccak-256, RLP, the
//! Merkle Patricia Trie, U256 arithmetic and single-transaction EVM
//! execution.
//!
//! Run with `cargo bench -p bp-bench --bench micro`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use bp_crypto::keccak256;
use bp_crypto::rlp::{decode, encode_item, Item};
use bp_evm::{contracts, execute_transaction, BlockEnv, Transaction, WorldView};
use bp_state::{Trie, WorldState};
use bp_types::{Address, H256, U256};

fn bench_keccak(c: &mut Criterion) {
    let mut g = c.benchmark_group("keccak256");
    g.sample_size(30);
    for size in [32usize, 136, 1024, 8192] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| b.iter(|| keccak256(&data)));
    }
    g.finish();
}

fn bench_rlp(c: &mut Criterion) {
    let mut g = c.benchmark_group("rlp");
    g.sample_size(30);
    let item = Item::List(
        (0..64)
            .map(|i| Item::Bytes(vec![i as u8; 40]))
            .collect::<Vec<_>>(),
    );
    let encoded = encode_item(&item);
    g.bench_function("encode_64x40B_list", |b| b.iter(|| encode_item(&item)));
    g.bench_function("decode_64x40B_list", |b| {
        b.iter(|| decode(&encoded).unwrap())
    });
    g.finish();
}

fn bench_trie(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpt");
    g.sample_size(20);
    let pairs: Vec<(H256, Vec<u8>)> = (0..500u64)
        .map(|i| (keccak256(&i.to_be_bytes()), i.to_be_bytes().to_vec()))
        .collect();
    g.bench_function("insert_500", |b| {
        b.iter_batched(
            Trie::new,
            |mut t| {
                for (k, v) in &pairs {
                    t.insert(k.as_bytes(), v.clone());
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    let mut full = Trie::new();
    for (k, v) in &pairs {
        full.insert(k.as_bytes(), v.clone());
    }
    g.bench_function("root_hash_500", |b| b.iter(|| full.root_hash()));
    g.bench_function("get_hit", |b| b.iter(|| full.get(pairs[250].0.as_bytes())));
    g.bench_function("prove_500", |b| {
        b.iter(|| full.prove(pairs[250].0.as_bytes()))
    });
    g.finish();
}

fn bench_u256(c: &mut Criterion) {
    let mut g = c.benchmark_group("u256");
    g.sample_size(50);
    let a = U256([0x0123_4567_89AB_CDEF; 4]);
    let b = U256([0xFEDC_BA98_7654_3210, 1, 2, 3]);
    g.bench_function("mul", |bch| bch.iter(|| a * b));
    g.bench_function("div_mod", |bch| bch.iter(|| a.div_mod(b)));
    g.bench_function("add", |bch| bch.iter(|| a + b));
    g.finish();
}

fn bench_evm(c: &mut Criterion) {
    let mut g = c.benchmark_group("evm");
    g.sample_size(30);
    let mut world = WorldState::new();
    let sender = Address::from_index(1);
    world.set_balance(sender, U256::from(1_000_000_000u64));
    let token = Address::from_index(100);
    world.set_code(token, contracts::token());
    world.set_storage(
        token,
        contracts::token_balance_slot(&sender),
        U256::from(1_000_000u64),
    );
    let env = BlockEnv::default();

    let transfer = Transaction::transfer(sender, Address::from_index(2), U256::ONE, 0, 1);
    g.bench_function("plain_transfer", |b| {
        let view = WorldView::new(&world);
        b.iter(|| execute_transaction(&view, &env, &transfer).unwrap())
    });

    let token_tx = Transaction {
        sender,
        to: Some(token),
        value: U256::ZERO,
        nonce: 0,
        gas_limit: 300_000,
        gas_price: 1,
        data: contracts::token_transfer_calldata(&Address::from_index(2), U256::ONE),
    };
    g.bench_function("token_transfer", |b| {
        let view = WorldView::new(&world);
        b.iter(|| execute_transaction(&view, &env, &token_tx).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_keccak,
    bench_rlp,
    bench_trie,
    bench_u256,
    bench_evm
);
criterion_main!(benches);
