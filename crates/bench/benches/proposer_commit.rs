//! Criterion micro-bench of the proposer commit path: a full
//! [`OccWsiProposer::propose`] of one standard 132-tx block, two-phase vs
//! coarse-lock, at 1/2/4/8 worker threads.
//!
//! `cargo bench -p bp-bench --bench proposer_commit`

use std::sync::Arc;

use blockpilot_core::{CommitPath, OccWsiConfig, OccWsiProposer};
use bp_bench::generate_fixtures;
use bp_txpool::TxPool;
use bp_types::BlockHash;
use bp_workload::WorkloadConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_propose(c: &mut Criterion) {
    let fixtures = generate_fixtures(WorkloadConfig::default(), 1);
    let fixture = &fixtures[0];

    let mut group = c.benchmark_group("proposer_commit");
    group.sample_size(20);
    for (path, name) in [
        (CommitPath::TwoPhase, "two_phase"),
        (CommitPath::CoarseLock, "coarse_lock"),
    ] {
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
                let proposer = OccWsiProposer::new(OccWsiConfig {
                    threads,
                    env: fixture.env,
                    commit_path: path,
                    ..OccWsiConfig::default()
                });
                b.iter(|| {
                    let pool = TxPool::new();
                    for tx in &fixture.txs {
                        pool.add(tx.clone());
                    }
                    let proposal =
                        proposer.propose(&pool, Arc::clone(&fixture.pre_state), BlockHash::ZERO, 1);
                    assert_eq!(proposal.stats.committed, fixture.txs.len() as u64);
                    proposal
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_propose);
criterion_main!(benches);
