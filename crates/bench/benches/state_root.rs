//! Criterion benchmark for state commitment: cold (from-scratch) vs
//! incremental (dirty-tracked) root computation across world sizes and dirty
//! fractions, plus the paper-shaped scenario of one 132-transaction block's
//! dirty set over a 10k-account world.
//!
//! Run with `cargo bench -p bp-bench --bench state_root`.
//! A JSON baseline captured from the same workloads lives in
//! `BENCH_state_root.json` (produced by the `state_root_baseline` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bp_state::WorldState;
use bp_types::{Address, H256, U256};

/// A populated world: every account has a balance, a nonce, and
/// `slots_per_account` storage slots.
fn build_world(accounts: u64, slots_per_account: u64) -> WorldState {
    let mut world = WorldState::new();
    for i in 0..accounts {
        let addr = Address::from_index(i);
        world.set_balance(addr, U256::from(1_000_000 + i));
        world.set_nonce(addr, i % 7);
        for s in 0..slots_per_account {
            world.set_storage(addr, H256::from_low_u64(s), U256::from(i * 10 + s + 1));
        }
    }
    world
}

/// Dirties `count` spread-out accounts (balance + one storage slot each),
/// varying values by `salt` so every commit really changes the root.
fn dirty_accounts(world: &mut WorldState, total: u64, count: usize, salt: u64) {
    for i in 0..count {
        let addr = Address::from_index((i as u64 * 97 + salt) % total);
        world.set_balance(addr, U256::from(salt * 1000 + i as u64 + 1));
        world.set_storage(addr, H256::from_low_u64(1), U256::from(salt + i as u64 + 1));
    }
}

fn bench_state_root(c: &mut Criterion) {
    let mut g = c.benchmark_group("state_root");
    g.sample_size(10);

    for &accounts in &[1_000u64, 10_000, 100_000] {
        let mut world = build_world(accounts, 2);
        let _ = world.state_root(); // prime the incremental memo

        // From-scratch rebuild: what every commit cost before incremental
        // commitment (and still the debug-mode oracle).
        g.bench_with_input(BenchmarkId::new("cold", accounts), &accounts, |b, _| {
            b.iter(|| world.rebuild_root())
        });

        for &fraction in &[0.001f64, 0.01, 0.1] {
            let dirty = ((accounts as f64 * fraction) as usize).max(1);
            let mut salt = 1u64;
            g.bench_with_input(
                BenchmarkId::new(format!("incremental_f{fraction}"), accounts),
                &accounts,
                |b, _| {
                    b.iter(|| {
                        salt += 1;
                        dirty_accounts(&mut world, accounts, dirty, salt);
                        world.state_root()
                    })
                },
            );
        }
    }

    // The acceptance scenario: one 132-transaction block of transfers over a
    // 10k-account world — each transfer dirties the sender's balance+nonce
    // and the recipient's balance.
    let accounts = 10_000u64;
    let mut world = build_world(accounts, 2);
    let _ = world.state_root();
    let mut salt = 1u64;
    g.bench_function("block_132tx_10k_accounts", |b| {
        b.iter(|| {
            salt += 1;
            for t in 0..132u64 {
                let sender = Address::from_index((t * 37 + salt) % accounts);
                let recipient = Address::from_index((t * 61 + salt * 13) % accounts);
                world.set_balance(sender, U256::from(salt * 7 + t));
                world.set_nonce(sender, salt + t);
                world.set_balance(recipient, U256::from(salt * 11 + t));
            }
            world.state_root()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_state_root);
criterion_main!(benches);
