//! Criterion benchmark for the persistent store's commit path: how fast a
//! node can durably persist canonical blocks (block append + trie-node
//! retention + fsync'd manifest swap), and how fast a cold `Store::open`
//! recovers an existing directory.
//!
//! Run with `cargo bench -p bp-bench --bench store_commit`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bp_bench::generate_fixtures;
use bp_block::{genesis_header, Block, BlockProfile};
use bp_state::WorldState;
use bp_store::{store::test_dir, Store};
use bp_workload::{WorkloadConfig, WorkloadGen};

struct Fixture {
    genesis_world: WorldState,
    genesis_block: Block,
    // Sealed canonical blocks with their post-states, chained on genesis.
    chain: Vec<(Block, Arc<WorldState>)>,
}

fn fixture(blocks: usize) -> Fixture {
    let config = WorkloadConfig {
        accounts: 200,
        txs_per_block: 30,
        tx_jitter: 0,
        ..WorkloadConfig::default()
    };
    let genesis_world = WorkloadGen::new(config.clone()).genesis_state();
    let genesis_block = Block {
        header: genesis_header(genesis_world.state_root()),
        transactions: vec![],
        profile: BlockProfile::new(),
    };
    let mut parent = genesis_block.hash();
    let chain = generate_fixtures(config, blocks)
        .into_iter()
        .enumerate()
        .map(|(i, f)| {
            let block = f.seal(parent, i as u64 + 1);
            parent = block.hash();
            (block, f.post_state)
        })
        .collect();
    Fixture {
        genesis_world,
        genesis_block,
        chain,
    }
}

fn persist_chain(f: &Fixture, dir: &std::path::Path) {
    let mut store = Store::open(dir).expect("open");
    store
        .initialize(&f.genesis_world, &f.genesis_block)
        .expect("initialize");
    for (block, post) in &f.chain {
        store.put_block(block).expect("put");
        let (root, nodes) = post.commit_tries();
        store.commit_root(root, &nodes).expect("retain root");
        store.commit(block.hash()).expect("commit");
    }
}

fn bench_store_commit(c: &mut Criterion) {
    let f = fixture(4);
    let mut g = c.benchmark_group("store");
    g.sample_size(10);
    g.throughput(Throughput::Elements(f.chain.len() as u64));

    // Full durable path: every block ends in an fsync'd manifest swap.
    g.bench_function("commit_30tx_blocks_fsync", |b| {
        b.iter(|| {
            let dir = test_dir("bench-commit");
            persist_chain(&f, &dir);
            std::fs::remove_dir_all(&dir).ok();
        })
    });

    // Cold-start: reopen a populated directory (manifest pick, log scan,
    // refcount rebuild by walking every retained root).
    let dir = test_dir("bench-reopen");
    persist_chain(&f, &dir);
    g.bench_function("reopen_populated_store", |b| {
        b.iter(|| {
            let store = Store::open(&dir).expect("reopen");
            assert!(store.is_initialized());
            store
        })
    });
    std::fs::remove_dir_all(&dir).ok();
    g.finish();
}

criterion_group!(benches, bench_store_commit);
criterion_main!(benches);
