//! Criterion benchmarks for the restructured validator pipeline: dispatch
//! granularity (subgraph jobs vs static lanes), the applier pool on a
//! same-height window, and the lock-free result slots.
//!
//! On a single-core runner these measure the *absolute cost* of each path —
//! the speedup figures come from the `validator_baseline` virtual-time
//! harness, where the schedule (not the wall clock) is what is measured.
//!
//! Run with `cargo bench -p bp-bench --bench validator_pipeline`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use blockpilot_core::{ConflictGranularity, DispatchPolicy, PipelineConfig, ValidatorPipeline};
use bp_bench::generate_fixtures;
use bp_concurrent::ResultSlots;
use bp_types::BlockHash;
use bp_workload::WorkloadConfig;

fn fixture(seed_salt: u64) -> bp_bench::BlockFixture {
    let base = WorkloadConfig::default();
    let config = WorkloadConfig {
        seed: base.seed ^ seed_salt,
        txs_per_block: 60,
        tx_jitter: 0,
        accounts: 300,
        ..WorkloadConfig::default()
    };
    generate_fixtures(config, 1).remove(0)
}

fn bench_dispatch(c: &mut Criterion) {
    let f = fixture(0);
    let parent = BlockHash::from_low_u64(1);
    let block = f.seal(parent, 1);
    let mut g = c.benchmark_group("validator_dispatch");
    g.sample_size(10);
    for dispatch in [DispatchPolicy::Subgraph, DispatchPolicy::StaticLanes] {
        for workers in [1usize, 4] {
            g.bench_function(format!("{dispatch:?}_60tx_{workers}w"), |b| {
                let pipeline = ValidatorPipeline::new(PipelineConfig {
                    workers,
                    granularity: ConflictGranularity::Account,
                    dispatch,
                    appliers: 2,
                    deferred_root: false,
                });
                pipeline.register_state(parent, Arc::clone(&f.pre_state));
                b.iter(|| {
                    let outcome = pipeline.validate_block(block.clone());
                    assert!(outcome.is_valid());
                    outcome
                })
            });
        }
    }
    g.finish();
}

fn bench_applier_pool(c: &mut Criterion) {
    // Two same-height siblings on one genesis: with one applier their
    // block-validation stages queue, with a pool they overlap.
    let parent = BlockHash::from_low_u64(1);
    let a = fixture(0x9E37_79B9);
    let b_fixture = fixture(0x7F4A_7C15);
    let blocks = [a.seal(parent, 1), b_fixture.seal(parent, 1)];
    let mut g = c.benchmark_group("applier_pool");
    g.sample_size(10);
    for appliers in [1usize, 2] {
        g.bench_function(format!("same_height_2blocks_{appliers}appliers"), |b| {
            let pipeline = ValidatorPipeline::new(PipelineConfig {
                workers: 4,
                granularity: ConflictGranularity::Account,
                dispatch: DispatchPolicy::Subgraph,
                appliers,
                deferred_root: false,
            });
            pipeline.register_state(parent, Arc::clone(&a.pre_state));
            b.iter(|| {
                let handles: Vec<_> = blocks
                    .iter()
                    .map(|bl| pipeline.submit(bl.clone()))
                    .collect();
                for handle in handles {
                    assert!(handle.wait().is_valid());
                }
            })
        });
    }
    g.finish();
}

fn bench_result_slots(c: &mut Criterion) {
    let mut g = c.benchmark_group("result_slots");
    g.sample_size(30);
    g.bench_function("publish_take_1024", |b| {
        b.iter(|| {
            let slots: ResultSlots<u64> = ResultSlots::new(1024);
            for i in 0..1024 {
                slots.publish(i, i as u64);
            }
            let mut sum = 0u64;
            for i in 0..1024 {
                sum += slots.take(i).unwrap();
            }
            sum
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dispatch,
    bench_applier_pool,
    bench_result_slots
);
criterion_main!(benches);
