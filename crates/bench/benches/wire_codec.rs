//! Criterion micro-benchmark for the block wire codec: fresh-allocation
//! encode vs scratch-buffer reuse vs decode on a realistic fixture block.
//!
//! Run with `cargo bench -p bp-bench --bench wire_codec`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bp_bench::generate_fixtures;
use bp_block::wire::{decode_block, encode_block, encode_block_into, encoded_size_hint};
use bp_block::Block;
use bp_workload::WorkloadConfig;

fn fixture_block() -> Block {
    let fixture = generate_fixtures(&WorkloadConfig::default(), 1).remove(0);
    fixture.seal(Default::default(), 1)
}

fn bench_wire(c: &mut Criterion) {
    let block = fixture_block();
    let encoded = encode_block(&block);
    let mut g = c.benchmark_group("wire_codec");
    g.sample_size(40);
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_block", |b| b.iter(|| encode_block(&block)));
    g.bench_function("encode_block_into_reused", |b| {
        let mut buf = Vec::with_capacity(encoded_size_hint(&block));
        b.iter(|| {
            let scratch = std::mem::take(&mut buf);
            buf = encode_block_into(&block, scratch);
            buf.len()
        })
    });
    g.bench_function("decode_block", |b| {
        b.iter(|| decode_block(&encoded).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
