//! Ablation: account-level vs slot-level conflict detection in the
//! validator scheduler (DESIGN.md §5, decision 2).
//!
//! The paper detects conflicts at account granularity. Slot granularity
//! produces smaller subgraphs (more parallelism) at a higher analysis cost;
//! this ablation reports both sides of the trade.
//!
//! Usage: `cargo run -p bp-bench --release --bin ablation_conflict_granularity`

use std::time::Instant;

use blockpilot_core::scheduler::{ConflictGranularity, Scheduler};
use bp_bench::{block_count, generate_fixtures, mean};
use bp_sim::{simulate_validator, CostModel};
use bp_workload::WorkloadConfig;

fn main() {
    let blocks = block_count(60);
    println!("=== Ablation: conflict-detection granularity (validator, 16 threads) ===");
    println!("workload: {blocks} mainnet-like blocks\n");

    let fixtures = generate_fixtures(WorkloadConfig::default(), blocks);
    let model = CostModel::default();

    println!(
        "{:>10} {:>14} {:>18} {:>16} {:>16}",
        "mode", "mean speedup", "largest subgraph", "subgraphs/blk", "sched time/blk"
    );
    for granularity in [ConflictGranularity::Account, ConflictGranularity::Slot] {
        let scheduler = Scheduler::new(granularity);
        let mut speedups = Vec::new();
        let mut ratios = Vec::new();
        let mut counts = Vec::new();
        let t0 = Instant::now();
        for f in &fixtures {
            let schedule = scheduler.schedule(&f.profile, 16);
            let r = simulate_validator(&schedule, &f.profile, &model);
            speedups.push(r.speedup);
            ratios.push(r.largest_subgraph_ratio);
            counts.push(schedule.subgraphs.len() as f64);
        }
        let elapsed = t0.elapsed();
        println!(
            "{:>10} {:>13.2}x {:>17.1}% {:>16.1} {:>13.0}us",
            format!("{granularity:?}"),
            mean(&speedups),
            100.0 * mean(&ratios),
            mean(&counts),
            elapsed.as_micros() as f64 / fixtures.len() as f64
        );
    }
    println!("\nSlot granularity yields finer subgraphs and higher idealized speedup;");
    println!("account granularity is what the paper ships (cheap, and safe even when");
    println!("storage writes move the account's storage root).");
}
