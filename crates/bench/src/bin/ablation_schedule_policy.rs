//! Ablation: lane-assignment policy in the validator scheduler
//! (DESIGN.md §5, decision 3).
//!
//! The paper assigns subgraphs by gas-weighted longest-processing-time
//! ("the transaction's gas can serve as a reasonable estimation of
//! execution time"). This ablation compares gas-LPT against count-LPT and
//! round-robin.
//!
//! Usage: `cargo run -p bp-bench --release --bin ablation_schedule_policy`

use blockpilot_core::scheduler::{AssignPolicy, ConflictGranularity, Scheduler};
use bp_bench::{block_count, generate_fixtures, mean};
use bp_sim::{simulate_validator, CostModel};
use bp_workload::WorkloadConfig;

fn main() {
    let blocks = block_count(60);
    println!("=== Ablation: lane-assignment policy (validator, 16 threads) ===");
    println!("workload: {blocks} mainnet-like blocks\n");

    let fixtures = generate_fixtures(WorkloadConfig::default(), blocks);
    let model = CostModel::default();

    println!(
        "{:>12} {:>14} {:>20}",
        "policy", "mean speedup", "mean makespan (gas)"
    );
    for policy in [
        AssignPolicy::GasLpt,
        AssignPolicy::CountLpt,
        AssignPolicy::RoundRobin,
    ] {
        let scheduler = Scheduler::with_policy(ConflictGranularity::Account, policy);
        let mut speedups = Vec::new();
        let mut makespans = Vec::new();
        for f in &fixtures {
            let schedule = scheduler.schedule(&f.profile, 16);
            let r = simulate_validator(&schedule, &f.profile, &model);
            speedups.push(r.speedup);
            makespans.push(r.makespan as f64);
        }
        println!(
            "{:>12} {:>13.2}x {:>20.0}",
            format!("{policy:?}"),
            mean(&speedups),
            mean(&makespans)
        );
    }
    println!("\nGas-LPT balances lane *time*, not lane length; round-robin leaves the");
    println!("heaviest lane overloaded and drags the block's critical path out.");
}
