//! Ablation: write-snapshot isolation vs classic backward OCC validation.
//!
//! OCC-WSI aborts only on read-set staleness; classic OCC also aborts on
//! write-write overlap. This ablation quantifies how much of the proposer's
//! speedup comes from tolerating blind write-write conflicts (DESIGN.md §5,
//! decision 1).
//!
//! Usage: `cargo run -p bp-bench --release --bin ablation_wsi_vs_occ`

use bp_bench::{block_count, generate_fixtures, mean};
use bp_sim::{simulate_proposer_with_rule, CostModel, ValidationRule};
use bp_workload::{TxMix, WorkloadConfig};

fn main() {
    let blocks = block_count(40);
    println!("=== Ablation: WSI vs classic OCC commit validation (proposer) ===");
    println!("workload: {blocks} mainnet-like blocks\n");

    // Include blind registry writes: the transaction class where WSI's
    // write-write tolerance actually differs from classic OCC (ordinary EVM
    // balance/storage updates read before writing).
    let fixtures = generate_fixtures(
        WorkloadConfig {
            mix: TxMix {
                transfer: 0.50,
                token: 0.28,
                amm: 0.04,
                blind: 0.18,
                mint: 0.0,
            },
            ..WorkloadConfig::default()
        },
        blocks,
    );
    let model = CostModel::default();

    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "threads", "WSI speedup", "OCC speedup", "WSI aborts", "OCC aborts"
    );
    for threads in [2usize, 4, 8, 16] {
        let mut results = Vec::new();
        for rule in [ValidationRule::Wsi, ValidationRule::ClassicOcc] {
            let mut speedups = Vec::new();
            let mut aborts = 0u64;
            for f in &fixtures {
                let r = simulate_proposer_with_rule(
                    &f.pre_state,
                    &f.env,
                    &f.txs,
                    threads,
                    &model,
                    rule,
                );
                speedups.push(r.speedup);
                aborts += r.aborts;
            }
            results.push((mean(&speedups), aborts as f64 / fixtures.len() as f64));
        }
        println!(
            "{threads:>8} {:>13.2}x {:>13.2}x {:>14.1} {:>14.1}",
            results[0].0, results[1].0, results[0].1, results[1].1
        );
    }
    println!("\nREPRODUCTION FINDING: the two columns are identical. In an");
    println!("account-model EVM with Ethereum gas rules there are no blind writes —");
    println!("every balance update is read-modify-write and even a 'blind' SSTORE");
    println!("reads the old value for its set-vs-reset gas price, putting the slot");
    println!("in the read set. OCC-WSI's write-write tolerance therefore never");
    println!("fires, and WSI validation degenerates to classic backward (read-set)");
    println!("OCC validation. The registry workload above was built specifically");
    println!("to maximize write-write-only conflicts and still shows no gap.");
}
