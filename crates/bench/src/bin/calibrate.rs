//! Workload calibration probe (not a paper figure): prints the dependency
//! statistics the generator is tuned against — mean transactions per block,
//! largest-subgraph ratio by transaction count and by gas — so workload
//! parameter changes can be checked against the paper's §5.5 numbers
//! (mean largest subgraph ≈ 27.5% of transactions).

use blockpilot_core::scheduler::{ConflictGranularity, Scheduler};
use bp_bench::{block_count, generate_fixtures, mean, percentile};
use bp_workload::WorkloadConfig;

fn main() {
    let blocks = block_count(60);
    let fixtures = generate_fixtures(WorkloadConfig::default(), blocks);
    let scheduler = Scheduler::new(ConflictGranularity::Account);

    let mut tx_counts = Vec::new();
    let mut ratios = Vec::new();
    let mut gas_ratios = Vec::new();
    let mut subgraph_counts = Vec::new();
    for f in &fixtures {
        let s = scheduler.schedule(&f.profile, 16);
        tx_counts.push(f.txs.len() as f64);
        ratios.push(s.largest_subgraph_ratio());
        let max_gas = s.subgraphs.iter().map(|sg| sg.gas).max().unwrap_or(0);
        gas_ratios.push(max_gas as f64 / f.gas_used.max(1) as f64);
        subgraph_counts.push(s.subgraphs.len() as f64);
    }
    println!("blocks                    : {blocks}");
    println!(
        "mean txs/block            : {:.1} (paper: 132)",
        mean(&tx_counts)
    );
    println!(
        "largest subgraph (txs)    : mean {:.1}%  p50 {:.1}%  p90 {:.1}%  (paper mean: 27.5%)",
        100.0 * mean(&ratios),
        100.0 * percentile(&ratios, 50.0),
        100.0 * percentile(&ratios, 90.0)
    );
    println!(
        "largest subgraph (gas)    : mean {:.1}%  p50 {:.1}%",
        100.0 * mean(&gas_ratios),
        100.0 * percentile(&gas_ratios, 50.0)
    );
    println!("mean subgraphs/block      : {:.1}", mean(&subgraph_counts));
}
