//! §5.2 correctness validation.
//!
//! Paper: replaying 10M mainnet blocks, the prototype always produced the
//! MPT root recorded in each block header.
//!
//! This harness runs the *real* (multi-threaded) BlockPilot stack end to
//! end on a seeded chain: the OCC-WSI proposer packs each block, the serial
//! oracle independently replays it, and the validator pipeline re-executes
//! and verifies it. For every block all three MPT state roots must agree.
//!
//! Usage: `cargo run -p bp-bench --release --bin correctness`
//! (`BP_BLOCKS=N` overrides the chain length.)

use std::sync::Arc;

use blockpilot_core::{ConflictGranularity, OccWsiConfig, PipelineConfig, Proposer, Validator};
use bp_baseline::execute_block_serially;
use bp_bench::block_count;
use bp_workload::{WorkloadConfig, WorkloadGen};

fn main() {
    let blocks = block_count(20);
    println!("=== §5.2 correctness validation ===");
    println!("chain: {blocks} proposed blocks, OCC-WSI (4 threads) → pipeline (4 workers)\n");

    let mut gen = WorkloadGen::new(WorkloadConfig {
        txs_per_block: 60, // smaller blocks: MPT roots are computed per block
        accounts: 300,
        ..WorkloadConfig::default()
    });
    let genesis = gen.genesis_state();
    let validator = Validator::new(
        PipelineConfig {
            workers: 4,
            granularity: ConflictGranularity::Account,
            ..Default::default()
        },
        genesis.clone(),
    );
    let mut parent_hash = validator.genesis_hash();
    let mut state = Arc::new(genesis);
    let mut checked = 0usize;

    for height in 1..=blocks as u64 {
        let env = gen.block_env(height);
        let proposer = Proposer::new(OccWsiConfig {
            threads: 4,
            env,
            ..OccWsiConfig::default()
        });
        proposer.submit_transactions(gen.next_block_txs());
        let proposal = proposer.propose_block(Arc::clone(&state), parent_hash, height);

        // Oracle 1: serial replay must land on the proposer's root.
        let serial = execute_block_serially(&state, &env, &proposal.block.transactions)
            .expect("proposed blocks replay serially");
        assert_eq!(
            serial.post_state.state_root(),
            proposal.block.header.state_root,
            "height {height}: serial root != proposed root"
        );

        // Oracle 2: the pipeline validator must accept and agree.
        let outcome = validator.validate_and_commit(proposal.block.clone());
        assert!(
            outcome.is_valid(),
            "height {height}: pipeline rejected: {:?}",
            outcome.result
        );
        assert_eq!(
            outcome.post_state.as_ref().expect("valid").state_root(),
            proposal.block.header.state_root,
            "height {height}: validator root != proposed root"
        );

        parent_hash = proposal.block.hash();
        state = Arc::new(proposal.post_state);
        checked += 1;
        if height % 5 == 0 {
            println!("  {height:>4} blocks: all MPT roots match");
        }
    }

    println!("\nRESULT: {checked}/{blocks} blocks — proposer, serial oracle and");
    println!("validator pipeline produced identical MPT state roots (paper: 10M/10M).");
}
