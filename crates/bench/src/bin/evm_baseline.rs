//! EVM hot-loop A/B: analyzed jump-table interpreter vs the pre-optimization
//! reference engine.
//!
//! Records `BENCH_evm.json` with serial execution rates (gas/µs) for the
//! optimized transaction path ([`bp_evm::execute_transaction_in`] — cached
//! code analysis, block-level gas precharge + stack pre-validation, flat
//! jump-table dispatch, fused superinstructions, journaled host) against
//! [`bp_evm::reference::execute_transaction_reference_raw`], which pins the
//! seed interpreter byte-for-byte: per-frame jumpdest recomputation,
//! per-opcode gas metering, checked stack, monolithic `match` dispatch,
//! `BTreeMap` footprints, clone-based checkpoints and hash-on-read code
//! identity, driven through the seed's memo-less state view
//! ([`bp_evm::reference::RefView`]). The differential suite proves the two
//! engines agree on receipts, footprints and logs, so the rates are
//! directly comparable.
//!
//! Methodology:
//!
//! * Only the execute calls are timed — snapshotting the pre-state and
//!   applying write sets between transactions happen off the clock, since
//!   both engines share that infrastructure.
//! * Transactions are timed with raw TSC reads (calibrated once against the
//!   monotonic clock; plain `Instant` off x86_64): two `clock_gettime`
//!   calls per ~1µs transaction add equal constant overhead to both engines
//!   and bias the measured ratio toward 1.
//! * Each series keeps its best (minimum) time *per block* across trials:
//!   on a shared host scheduler noise only ever adds time, and per-block
//!   minima converge much faster than whole-pass minima.
//! * The optimized warm series shares one [`AnalysisCache`] across all
//!   blocks (the steady state of a proposer or validator); the cold series
//!   re-creates the cache per block to expose the analysis amortization.
//!
//! Usage: `cargo run -p bp-bench --release --bin evm_baseline [out.json]`
//! (`BP_BLOCKS=N` overrides the sample size).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bp_bench::{block_count, generate_fixtures, BlockFixture};
use bp_evm::reference::{execute_transaction_reference_raw, RefView};
use bp_evm::{execute_transaction_in, AnalysisCache, WorldView};
use bp_workload::{TxMix, WorkloadConfig};

const TRIALS: usize = 13;

/// Raw cycle counter: ~5ns per read against ~25ns for a vDSO
/// `clock_gettime`, and the per-transaction timing overhead lands equally
/// on both engines, diluting the measured ratio toward 1.
#[cfg(target_arch = "x86_64")]
fn ticks() -> u64 {
    // Unserialized TSC reads can slip a few instructions; at the ~1µs
    // granularity of a transaction that skew is noise we already tolerate.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(not(target_arch = "x86_64"))]
fn ticks() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Nanoseconds per tick, calibrated once against the monotonic clock over a
/// busy window (sleeping would let the governor shift the TSC ratio).
fn ns_per_tick() -> f64 {
    let started = Instant::now();
    let t0 = ticks();
    while started.elapsed() < Duration::from_millis(50) {
        std::hint::black_box(0u64);
    }
    let dt = ticks() - t0;
    started.elapsed().as_secs_f64() * 1e9 / dt as f64
}

/// One engine's per-block best-of-trials timings on one workload.
struct Series {
    gas: u64,
    txs: usize,
    /// Minimum observed ticks for each block across all trials so far.
    best_ticks: Vec<u64>,
}

impl Series {
    fn new(blocks: usize) -> Series {
        Series {
            gas: 0,
            txs: 0,
            best_ticks: vec![u64::MAX; blocks],
        }
    }

    /// Folds one trial's per-block tick counts into the per-block minima.
    fn fold(&mut self, gas: u64, txs: usize, block_ticks: &[u64]) {
        // Gas and tx counts are workload constants — identical every trial.
        self.gas = gas;
        self.txs = txs;
        for (best, &t) in self.best_ticks.iter_mut().zip(block_ticks) {
            *best = (*best).min(t);
        }
    }

    fn rate(&self, ns_per_tick: f64) -> Rate {
        let us = self.best_ticks.iter().sum::<u64>() as f64 * ns_per_tick / 1e3;
        Rate {
            gas_per_us: self.gas as f64 / us,
            us_per_tx: us / self.txs as f64,
        }
    }
}

/// An engine's aggregate serial rate on one workload.
#[derive(Clone, Copy)]
struct Rate {
    gas_per_us: f64,
    us_per_tx: f64,
}

/// Runs the pinned pre-optimization engine over all fixtures once,
/// returning (total gas, total txs, per-block ticks).
fn ref_trial(fixtures: &[BlockFixture]) -> (u64, usize, Vec<u64>) {
    let mut gas = 0u64;
    let mut txs = 0usize;
    let mut block_ticks = Vec::with_capacity(fixtures.len());
    for f in fixtures {
        let mut world = f.pre_state.snapshot();
        let mut timed = 0u64;
        for tx in &f.txs {
            let result = {
                // The seed's plain pass-through view: the reference series
                // must not ride the post-change WorldView account memo.
                let view = RefView::new(&world);
                let started = ticks();
                let r = execute_transaction_reference_raw(&view, &f.env, tx)
                    .expect("fixture txs are includable");
                timed += ticks() - started;
                r
            };
            gas += result.receipt.gas_used;
            txs += 1;
            let rw = result.rw.into_rw_set();
            world.apply_writes(&rw.writes);
            for (addr, code) in &result.deployed {
                world.set_code(*addr, (**code).clone());
            }
        }
        block_ticks.push(timed);
        std::hint::black_box(&world);
    }
    (gas, txs, block_ticks)
}

/// Runs the optimized engine over all fixtures once against `cache`,
/// returning (total gas, total txs, per-block ticks).
fn opt_trial(fixtures: &[BlockFixture], cache: &Arc<AnalysisCache>) -> (u64, usize, Vec<u64>) {
    let mut gas = 0u64;
    let mut txs = 0usize;
    let mut block_ticks = Vec::with_capacity(fixtures.len());
    for f in fixtures {
        let mut world = f.pre_state.snapshot();
        let mut timed = 0u64;
        for tx in &f.txs {
            let result = {
                let view = WorldView::new(&world);
                let started = ticks();
                let r = execute_transaction_in(cache, &view, &f.env, tx)
                    .expect("fixture txs are includable");
                timed += ticks() - started;
                r
            };
            gas += result.receipt.gas_used;
            txs += 1;
            world.apply_writes(&result.rw.writes);
            for (addr, code) in &result.deployed {
                world.set_code(*addr, (**code).clone());
            }
        }
        block_ticks.push(timed);
        std::hint::black_box(&world);
    }
    (gas, txs, block_ticks)
}

/// Both engines must retire the exact same gas on a workload — anything else
/// means the A/B compared different work.
fn assert_equivalent(fixtures: &[BlockFixture]) {
    let cache = AnalysisCache::with_capacity(4096);
    let cache = Arc::new(cache);
    for f in fixtures {
        let mut ref_world = f.pre_state.snapshot();
        let mut opt_world = f.pre_state.snapshot();
        for tx in &f.txs {
            let r = {
                let view = RefView::new(&ref_world);
                execute_transaction_reference_raw(&view, &f.env, tx).expect("includable")
            };
            let o = {
                let view = WorldView::new(&opt_world);
                execute_transaction_in(&cache, &view, &f.env, tx).expect("includable")
            };
            assert_eq!(
                r.receipt, o.receipt,
                "engines disagree on a fixture receipt"
            );
            let rw = r.rw.into_rw_set();
            ref_world.apply_writes(&rw.writes);
            opt_world.apply_writes(&o.rw.writes);
            for (addr, code) in &r.deployed {
                ref_world.set_code(*addr, (**code).clone());
            }
            for (addr, code) in &o.deployed {
                opt_world.set_code(*addr, (**code).clone());
            }
        }
    }
}

struct Row {
    workload: &'static str,
    reference: Rate,
    optimized: Rate,
    cold: Rate,
    cache_hits: u64,
    cache_misses: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.optimized.gas_per_us / self.reference.gas_per_us
    }
}

fn bench_workload(name: &'static str, mix: TxMix, blocks: usize, ns_per_tick: f64) -> Row {
    let config = WorkloadConfig {
        mix,
        ..WorkloadConfig::default()
    };
    let fixtures = generate_fixtures(config, blocks);
    assert_equivalent(&fixtures);

    let mut reference = Series::new(blocks);
    let mut optimized = Series::new(blocks);
    let mut cold = Series::new(blocks);
    let cache = Arc::new(AnalysisCache::with_capacity(4096));
    // Interleave engines within each trial so slow-noise epochs (cron, GC of
    // the host) hit both rather than biasing one series.
    for _ in 0..TRIALS {
        let (gas, txs, t) = ref_trial(&fixtures);
        reference.fold(gas, txs, &t);
        let (gas, txs, t) = opt_trial(&fixtures, &cache);
        optimized.fold(gas, txs, &t);
        let mut cold_gas = 0u64;
        let mut cold_txs = 0usize;
        let mut cold_ticks = Vec::with_capacity(blocks);
        for f in &fixtures {
            let fresh = Arc::new(AnalysisCache::with_capacity(4096));
            let (g, n, t) = opt_trial(std::slice::from_ref(f), &fresh);
            cold_gas += g;
            cold_txs += n;
            cold_ticks.extend(t);
        }
        cold.fold(cold_gas, cold_txs, &cold_ticks);
    }
    let stats = cache.stats();
    Row {
        workload: name,
        reference: reference.rate(ns_per_tick),
        optimized: optimized.rate(ns_per_tick),
        cold: cold.rate(ns_per_tick),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_evm.json".to_string());
    let blocks = block_count(8);
    println!("=== EVM hot loop A/B: analyzed jump-table vs reference interpreter ===");
    println!("workload: {blocks} mainnet-like 132-tx blocks per mix (seeded)\n");
    let ns_per_tick = ns_per_tick();

    let mix = |transfer, token, amm, blind| TxMix {
        transfer,
        token,
        amm,
        blind,
        mint: 0.0,
    };
    let rows = [
        bench_workload("token", mix(0.0, 1.0, 0.0, 0.0), blocks, ns_per_tick),
        bench_workload("amm", mix(0.0, 0.0, 1.0, 0.0), blocks, ns_per_tick),
        bench_workload("blind", mix(0.0, 0.0, 0.0, 1.0), blocks, ns_per_tick),
        bench_workload("transfer", mix(1.0, 0.0, 0.0, 0.0), blocks, ns_per_tick),
        bench_workload(
            "contract_mix",
            mix(0.0, 0.70, 0.20, 0.10),
            blocks,
            ns_per_tick,
        ),
    ];

    println!(
        "{:>14} {:>12} {:>12} {:>9} {:>12} {:>10} {:>10}",
        "workload", "ref gas/µs", "opt gas/µs", "speedup", "cold gas/µs", "opt µs/tx", "hit rate"
    );
    for r in &rows {
        let lookups = r.cache_hits + r.cache_misses;
        println!(
            "{:>14} {:>12.1} {:>12.1} {:>8.2}x {:>12.1} {:>10.2} {:>9.1}%",
            r.workload,
            r.reference.gas_per_us,
            r.optimized.gas_per_us,
            r.speedup(),
            r.cold.gas_per_us,
            r.optimized.us_per_tx,
            100.0 * r.cache_hits as f64 / lookups.max(1) as f64,
        );
    }

    let mix_row = rows
        .iter()
        .find(|r| r.workload == "contract_mix")
        .expect("mix row exists");
    println!(
        "\ncontract-mix speedup (token .70 / amm .20 / blind .10): {:.2}x",
        mix_row.speedup()
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"evm_hot_loop\",\n");
    json.push_str("  \"workload\": \"132-tx mainnet-like blocks (seeded)\",\n");
    json.push_str(&format!("  \"blocks\": {blocks},\n"));
    json.push_str(&format!("  \"trials\": {TRIALS},\n"));
    json.push_str(&format!(
        "  \"contract_mix_speedup\": {:.3},\n",
        mix_row.speedup()
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let lookups = r.cache_hits + r.cache_misses;
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"ref_gas_per_us\": {:.1}, \
             \"opt_gas_per_us\": {:.1}, \"speedup\": {:.3}, \
             \"cold_gas_per_us\": {:.1}, \"ref_us_per_tx\": {:.3}, \
             \"opt_us_per_tx\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"cache_hit_rate\": {:.4}}}{}\n",
            r.workload,
            r.reference.gas_per_us,
            r.optimized.gas_per_us,
            r.speedup(),
            r.cold.gas_per_us,
            r.reference.us_per_tx,
            r.optimized.us_per_tx,
            r.cache_hits,
            r.cache_misses,
            r.cache_hits as f64 / lookups.max(1) as f64,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write baseline json");
    println!("wrote {out_path}");
}
