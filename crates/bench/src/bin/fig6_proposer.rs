//! Figure 6: proposer (OCC-WSI) speedup distribution, 2–16 threads.
//!
//! Paper: proposers average 1.82×/2.60×/3.56×/4.89× at 2/4/8/16 threads,
//! with 99.7% of blocks accelerated; proposers beat validators because any
//! serializable order is acceptable.
//!
//! Usage: `cargo run -p bp-bench --release --bin fig6_proposer`
//! (`BP_BLOCKS=N` overrides the sample size).

use std::sync::Arc;

use blockpilot_core::{OccWsiConfig, OccWsiProposer};
use bp_bench::{bar, block_count, generate_fixtures, histogram, mean};
use bp_sim::{simulate_proposer, CostModel};
use bp_txpool::TxPool;
use bp_types::BlockHash;
use bp_workload::WorkloadConfig;

fn main() {
    let blocks = block_count(60);
    println!("=== Figure 6: proposer (OCC-WSI) parallel speedup ===");
    println!("workload: {blocks} mainnet-like pending-pool snapshots (seeded)\n");

    let fixtures = generate_fixtures(WorkloadConfig::default(), blocks);
    let model = CostModel::default();
    let paper = [(2usize, 1.82f64), (4, 2.60), (8, 3.56), (16, 4.89)];

    let mut per_thread: Vec<(usize, Vec<f64>, u64)> = Vec::new();
    for (threads, _) in paper {
        let mut speedups = Vec::with_capacity(fixtures.len());
        let mut aborts = 0u64;
        for f in &fixtures {
            let r = simulate_proposer(&f.pre_state, &f.env, &f.txs, threads, &model);
            assert_eq!(r.committed, f.txs.len(), "all txs must commit");
            speedups.push(r.speedup);
            aborts += r.aborts;
        }
        per_thread.push((threads, speedups, aborts));
    }

    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12} {:>12}",
        "threads", "mean", "paper", "ratio", "accelerated", "aborts/blk"
    );
    for ((threads, speedups, aborts), (_, paper_speedup)) in per_thread.iter().zip(paper) {
        let m = mean(speedups);
        let accelerated =
            100.0 * speedups.iter().filter(|&&s| s > 1.0).count() as f64 / speedups.len() as f64;
        println!(
            "{threads:>8} {m:>11.2}x {paper_speedup:>11.2}x {:>14.2} {accelerated:>11.1}% {:>12.1}",
            m / paper_speedup,
            *aborts as f64 / speedups.len() as f64
        );
    }

    // The paper's Figure 6 is a histogram of per-block speedups at each
    // thread count; print the 16-thread distribution.
    let (_, speedups16, _) = &per_thread[per_thread.len() - 1];
    println!("\n16-thread speedup distribution (% of blocks):");
    let hist = histogram(speedups16, 0.0, 16.0, 16);
    for (i, pct) in hist.iter().enumerate() {
        if *pct > 0.0 {
            bar(&format!("{}x-{}x", i, i + 1), *pct, 1.0);
        }
    }

    // Real (threaded) proposer on the same fixtures: wall time plus the
    // per-worker commit/abort/retry breakdown from ProposerStats. On a
    // single-core host this measures overhead, not scaling — the gas-time
    // series above carries the scaling claim.
    // The first/retry split separates the cost of optimism (a transaction's
    // *first* execution raced a conflicting commit) from pathological
    // thrash (the same transaction aborting again on its retries).
    println!("\nreal proposer (two-phase commit, wall clock):");
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10} {:>10} {:>24}",
        "threads", "wall µs/blk", "tx/s", "1st-abort", "re-abort", "retries", "per-worker commits"
    );
    for threads in [2usize, 4, 8] {
        let mut wall = Vec::with_capacity(fixtures.len());
        let mut tx_s = Vec::with_capacity(fixtures.len());
        let mut first_aborts = 0u64;
        let mut retry_aborts = 0u64;
        let mut retries = 0u64;
        let mut last_workers = String::new();
        for f in &fixtures {
            let pool = TxPool::new();
            for tx in &f.txs {
                pool.add(tx.clone());
            }
            let proposer = OccWsiProposer::new(OccWsiConfig {
                threads,
                env: f.env,
                ..OccWsiConfig::default()
            });
            let proposal = proposer.propose(&pool, Arc::clone(&f.pre_state), BlockHash::ZERO, 1);
            assert_eq!(proposal.stats.committed, f.txs.len() as u64);
            wall.push(proposal.stats.wall_micros as f64);
            tx_s.push(proposal.stats.committed_per_sec());
            first_aborts += proposal.stats.first_aborts;
            retry_aborts += proposal.stats.retry_aborts;
            retries += proposal
                .stats
                .workers
                .iter()
                .map(|w| w.retries)
                .sum::<u64>();
            last_workers = proposal
                .stats
                .workers
                .iter()
                .map(|w| w.committed.to_string())
                .collect::<Vec<_>>()
                .join("/");
        }
        println!(
            "{threads:>8} {:>12.0} {:>12.0} {first_aborts:>10} {retry_aborts:>10} {retries:>10} {last_workers:>24}",
            mean(&wall),
            mean(&tx_s),
        );
    }
}
