//! Figure 7(a): single-block validator scalability, BlockPilot vs OCC [27].
//!
//! Paper: validators average 1.7×/2.5×/3.03×/3.18× at 2/4/8/16 threads,
//! scaling well to ~6 threads; BlockPilot beats the OCC baseline throughout.
//!
//! Usage: `cargo run -p bp-bench --release --bin fig7a_validator_scaling`
//! (`BP_BLOCKS=N` overrides the sample size).

use std::sync::Arc;

use blockpilot_core::scheduler::{ConflictGranularity, Scheduler};
use blockpilot_core::{PipelineConfig, ValidatorPipeline};
use bp_baseline::occ_two_phase;
use bp_bench::{block_count, generate_fixtures, mean};
use bp_sim::{simulate_validator, CostModel};
use bp_types::BlockHash;
use bp_workload::WorkloadConfig;

fn main() {
    let blocks = block_count(120);
    println!("=== Figure 7(a): single-block validator scalability ===");
    println!("workload: {blocks} mainnet-like blocks (seeded), account-level conflicts\n");

    let fixtures = generate_fixtures(WorkloadConfig::default(), blocks);
    let scheduler = Scheduler::new(ConflictGranularity::Account);
    let model = CostModel::default();

    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}",
        "threads", "BlockPilot", "OCC [27]", "paper(BP)", "ratio-to-paper"
    );
    let paper = [
        (2usize, 1.7f64),
        (4, 2.5),
        (6, 2.9),
        (8, 3.03),
        (12, 3.1),
        (16, 3.18),
    ];
    for (threads, paper_speedup) in paper {
        let mut bp = Vec::with_capacity(fixtures.len());
        let mut occ = Vec::with_capacity(fixtures.len());
        for f in &fixtures {
            let schedule = scheduler.schedule(&f.profile, threads);
            bp.push(simulate_validator(&schedule, &f.profile, &model).speedup);
            let o = occ_two_phase(&f.pre_state, &f.env, &f.txs).expect("fixture replays");
            // OCC pays the same dispatch overhead per execution in gas-time.
            let occ_makespan = o.makespan_gas(threads)
                + model.per_tx_dispatch * f.txs.len() as u64 / threads as u64;
            occ.push(o.gas_used as f64 / occ_makespan as f64);
        }
        let bp_mean = mean(&bp);
        let occ_mean = mean(&occ);
        println!(
            "{threads:>8} {bp_mean:>11.2}x {occ_mean:>11.2}x {paper_speedup:>13.2}x {:>14.2}",
            bp_mean / paper_speedup
        );
    }

    // Real pipeline, stage observability: per-block means of the four stage
    // timers — including the queue-wait between job enqueue and first job
    // start — plus the executed-tx counter and early-abort flag. Not a
    // speedup claim (single-core runner); this is the instrumentation the
    // restructured pipeline exposes on every verdict.
    let real_blocks = fixtures.len().min(8);
    let genesis = BlockHash::from_low_u64(1);
    let mut sealed = Vec::with_capacity(real_blocks);
    let mut parent = genesis;
    for (i, f) in fixtures.iter().take(real_blocks).enumerate() {
        let block = f.seal(parent, i as u64 + 1);
        parent = block.hash();
        sealed.push(block);
    }
    println!("\nreal pipeline, {real_blocks} chained blocks — per-block stage means:");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>9} {:>8}",
        "threads", "prepare µs", "queue µs", "exec µs", "validate µs", "txs run", "aborted"
    );
    for (threads, _) in paper {
        let pipeline = ValidatorPipeline::new(PipelineConfig {
            workers: threads,
            granularity: ConflictGranularity::Account,
            ..PipelineConfig::default()
        });
        pipeline.register_state(genesis, Arc::clone(&fixtures[0].pre_state));
        let handles: Vec<_> = sealed.iter().map(|b| pipeline.submit(b.clone())).collect();
        let mut stages = [0.0f64; 4];
        let mut executed = 0usize;
        let mut aborted = 0usize;
        for handle in handles {
            let outcome = handle.wait();
            assert!(outcome.is_valid(), "{:?}", outcome.result);
            let t = outcome.timings;
            for (slot, d) in stages
                .iter_mut()
                .zip([t.prepare, t.queue_wait, t.execute, t.validate])
            {
                *slot += d.as_secs_f64() * 1e6 / real_blocks as f64;
            }
            executed += outcome.executed_txs;
            aborted += usize::from(outcome.aborted_early);
        }
        pipeline.shutdown();
        println!(
            "{threads:>8} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {executed:>9} {aborted:>8}",
            stages[0], stages[1], stages[2], stages[3]
        );
    }
}
