//! Figure 7(a): single-block validator scalability, BlockPilot vs OCC [27].
//!
//! Paper: validators average 1.7×/2.5×/3.03×/3.18× at 2/4/8/16 threads,
//! scaling well to ~6 threads; BlockPilot beats the OCC baseline throughout.
//!
//! Usage: `cargo run -p bp-bench --release --bin fig7a_validator_scaling`
//! (`BP_BLOCKS=N` overrides the sample size).

use blockpilot_core::scheduler::{ConflictGranularity, Scheduler};
use bp_baseline::occ_two_phase;
use bp_bench::{block_count, generate_fixtures, mean};
use bp_sim::{simulate_validator, CostModel};
use bp_workload::WorkloadConfig;

fn main() {
    let blocks = block_count(120);
    println!("=== Figure 7(a): single-block validator scalability ===");
    println!("workload: {blocks} mainnet-like blocks (seeded), account-level conflicts\n");

    let fixtures = generate_fixtures(WorkloadConfig::default(), blocks);
    let scheduler = Scheduler::new(ConflictGranularity::Account);
    let model = CostModel::default();

    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}",
        "threads", "BlockPilot", "OCC [27]", "paper(BP)", "ratio-to-paper"
    );
    let paper = [
        (2usize, 1.7f64),
        (4, 2.5),
        (6, 2.9),
        (8, 3.03),
        (12, 3.1),
        (16, 3.18),
    ];
    for (threads, paper_speedup) in paper {
        let mut bp = Vec::with_capacity(fixtures.len());
        let mut occ = Vec::with_capacity(fixtures.len());
        for f in &fixtures {
            let schedule = scheduler.schedule(&f.profile, threads);
            bp.push(simulate_validator(&schedule, &f.profile, &model).speedup);
            let o = occ_two_phase(&f.pre_state, &f.env, &f.txs).expect("fixture replays");
            // OCC pays the same dispatch overhead per execution in gas-time.
            let occ_makespan = o.makespan_gas(threads)
                + model.per_tx_dispatch * f.txs.len() as u64 / threads as u64;
            occ.push(o.gas_used as f64 / occ_makespan as f64);
        }
        let bp_mean = mean(&bp);
        let occ_mean = mean(&occ);
        println!(
            "{threads:>8} {bp_mean:>11.2}x {occ_mean:>11.2}x {paper_speedup:>13.2}x {:>14.2}",
            bp_mean / paper_speedup
        );
    }
}
