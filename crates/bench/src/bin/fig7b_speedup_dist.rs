//! Figure 7(b): distribution of single-block validator speedups at 16
//! worker threads.
//!
//! Paper: 99.8% of blocks are accelerated; most land between 2× and 5×,
//! with a tail of hotspot-bound blocks near 1×.
//!
//! Usage: `cargo run -p bp-bench --release --bin fig7b_speedup_dist`

use blockpilot_core::scheduler::{ConflictGranularity, Scheduler};
use bp_bench::{bar, block_count, generate_fixtures, histogram, mean, percentile};
use bp_sim::{simulate_validator, CostModel};
use bp_workload::WorkloadConfig;

fn main() {
    let blocks = block_count(200);
    println!("=== Figure 7(b): validator speedup distribution (16 threads) ===");
    println!("workload: {blocks} mainnet-like blocks (seeded)\n");

    let fixtures = generate_fixtures(WorkloadConfig::default(), blocks);
    let scheduler = Scheduler::new(ConflictGranularity::Account);
    let model = CostModel::default();

    let speedups: Vec<f64> = fixtures
        .iter()
        .map(|f| {
            let schedule = scheduler.schedule(&f.profile, 16);
            simulate_validator(&schedule, &f.profile, &model).speedup
        })
        .collect();

    let accelerated =
        100.0 * speedups.iter().filter(|&&s| s > 1.0).count() as f64 / speedups.len() as f64;
    println!("blocks accelerated : {accelerated:.1}%   (paper: 99.8%)");
    println!(
        "mean speedup       : {:.2}x (paper: 3.18x)",
        mean(&speedups)
    );
    println!(
        "p10 / p50 / p90    : {:.2}x / {:.2}x / {:.2}x\n",
        percentile(&speedups, 10.0),
        percentile(&speedups, 50.0),
        percentile(&speedups, 90.0)
    );

    println!("speedup histogram (% of blocks, bin width 0.5x):");
    let hist = histogram(&speedups, 0.0, 8.0, 16);
    for (i, pct) in hist.iter().enumerate() {
        if *pct > 0.0 {
            let lo = i as f64 * 0.5;
            bar(&format!("{:.1}x-{:.1}x", lo, lo + 0.5), *pct, 1.0);
        }
    }
}
