//! Figure 8: effect of the hotspot problem — largest-subgraph ratio vs
//! validator speedup at 16 threads.
//!
//! Paper: the mean largest subgraph holds 27.5% of a block's transactions;
//! blocks whose largest subgraph is ~10% reach >4×, while single-subgraph
//! blocks run at the serial EVM's speed.
//!
//! To cover the full ratio range the harness sweeps the workload's hotspot
//! intensity (AMM share and contract skew), then buckets blocks by their
//! measured largest-subgraph ratio, exactly as the paper's scatter plot
//! aggregates real blocks.
//!
//! Usage: `cargo run -p bp-bench --release --bin fig8_hotspot`

use blockpilot_core::scheduler::{ConflictGranularity, Scheduler};
use bp_bench::{block_count, generate_fixtures, mean};
use bp_sim::{
    simulate_proposer_block_stm, simulate_proposer_with_rule, simulate_validator, CostModel,
    ValidationRule,
};
use bp_workload::{TxMix, WorkloadConfig};

fn main() {
    let per_setting = block_count(25);
    println!("=== Figure 8: hotspot problem (largest subgraph vs speedup) ===");
    println!("workload: sweep of hotspot intensity, {per_setting} blocks each, 16 threads\n");

    let scheduler = Scheduler::new(ConflictGranularity::Account);
    let model = CostModel::default();

    // Sweep hotspot intensity: AMM share from none to block-wide, then the
    // NFT-mint storm — a *single* hot storage key, the regime past what any
    // AMM share produces (every transaction in one subgraph).
    let sweeps: Vec<(f64, f64, f64)> = vec![
        // (amm share, account zipf, mint share)
        (0.00, 0.30, 0.0),
        (0.02, 0.45, 0.0),
        (0.04, 0.50, 0.0),
        (0.10, 0.60, 0.0),
        (0.20, 0.80, 0.0),
        (0.40, 1.00, 0.0),
        (0.70, 1.20, 0.0),
        (1.00, 1.20, 0.0),
        (0.00, 0.00, 1.0),
    ];
    let mut samples: Vec<(f64, f64)> = Vec::new(); // (ratio, speedup)
    for (i, (amm, zipf, mint)) in sweeps.iter().enumerate() {
        let config = WorkloadConfig {
            seed: 0xF168 + i as u64,
            mix: TxMix {
                transfer: (1.0 - amm - mint) * 0.62,
                token: (1.0 - amm - mint) * 0.38,
                amm: *amm,
                blind: 0.0,
                mint: *mint,
            },
            zipf_accounts: *zipf,
            ..WorkloadConfig::default()
        };
        for f in generate_fixtures(config, per_setting) {
            let schedule = scheduler.schedule(&f.profile, 16);
            let r = simulate_validator(&schedule, &f.profile, &model);
            samples.push((r.largest_subgraph_ratio, r.speedup));
        }
    }

    let ratios: Vec<f64> = samples.iter().map(|s| s.0).collect();
    println!(
        "mean largest-subgraph ratio across sweep: {:.1}%  (paper workload mean: 27.5%)\n",
        100.0 * mean(&ratios)
    );

    println!(
        "{:>22} {:>8} {:>12} {:>14}",
        "largest-subgraph %", "blocks", "mean speedup", "paper trend"
    );
    let paper_trend = [">4x", "~4x", "~3x", "~2.5x", "~2x", "~1.5x", "~1.2x", "~1x"];
    for (i, lo) in (0..8).map(|i| (i, i as f64 * 0.125)) {
        let hi = lo + 0.125;
        let bucket: Vec<f64> = samples
            .iter()
            .filter(|(r, _)| *r >= lo && (*r < hi || (i == 7 && *r <= 1.0)))
            .map(|(_, s)| *s)
            .collect();
        if bucket.is_empty() {
            continue;
        }
        println!(
            "{:>20.0}-{:<3.0}% {:>6} {:>11.2}x {:>14}",
            100.0 * lo,
            100.0 * hi,
            bucket.len(),
            mean(&bucket),
            paper_trend[i]
        );
    }

    // Proposer engines under the same hotspot axis: OCC-WSI retries into
    // the hot key while Block-STM suspends on ESTIMATE markers, so the gap
    // opens as the largest subgraph approaches the whole block.
    println!("\nproposer engines along the hotspot axis (gas-time, 16 threads):");
    println!(
        "{:>12} {:>14} {:>14} {:>8} | aborts/blk {:>8} {:>8}",
        "regime", "occ-wsi", "block-stm", "ratio", "occ", "stm"
    );
    let regimes: [(&str, WorkloadConfig); 3] = [
        (
            "uniform",
            WorkloadConfig {
                zipf_accounts: 0.0,
                zipf_contracts: 0.0,
                ..WorkloadConfig::default()
            },
        ),
        ("zipf", WorkloadConfig::default()),
        ("mint-storm", WorkloadConfig::nft_mint_storm()),
    ];
    for (name, config) in regimes {
        let fixtures = generate_fixtures(config, per_setting.min(8));
        let mut occ = Vec::new();
        let mut stm = Vec::new();
        let (mut occ_aborts, mut stm_aborts) = (0u64, 0u64);
        for f in &fixtures {
            let o = simulate_proposer_with_rule(
                &f.pre_state,
                &f.env,
                &f.txs,
                16,
                &model,
                ValidationRule::Wsi,
            );
            let s = simulate_proposer_block_stm(&f.pre_state, &f.env, &f.txs, 16, &model);
            occ.push(o.speedup);
            stm.push(s.speedup);
            occ_aborts += o.aborts;
            stm_aborts += s.aborts;
        }
        println!(
            "{name:>12} {:>13.2}x {:>13.2}x {:>7.2}x | {:>19.1} {:>8.1}",
            mean(&occ),
            mean(&stm),
            mean(&stm) / mean(&occ),
            occ_aborts as f64 / fixtures.len() as f64,
            stm_aborts as f64 / fixtures.len() as f64,
        );
    }
}
