//! Figure 9: multi-block evaluation of the validator pipeline.
//!
//! Paper: executing the same-height block B ∈ {1..8} times concurrently on
//! 16 worker threads, the speedup (vs serial execution of all B blocks)
//! rises from the single-block 3.18× to a peak of 7.72× at 4 blocks, then
//! declines slightly — limited threads plus cross-block communication.
//!
//! The harness mirrors the paper's §5.6 setup exactly: each block is
//! replicated B times at the same height and pushed through the pipeline
//! model together.
//!
//! Usage: `cargo run -p bp-bench --release --bin fig9_multiblock`

use blockpilot_core::scheduler::{ConflictGranularity, Scheduler};
use bp_bench::{block_count, generate_fixtures, mean};
use bp_sim::{simulate_multiblock, CostModel};
use bp_workload::WorkloadConfig;

fn main() {
    let blocks = block_count(60);
    println!("=== Figure 9: multi-block validator pipeline (16 workers) ===");
    println!("workload: {blocks} mainnet-like blocks, each replicated B times at one height\n");

    let fixtures = generate_fixtures(WorkloadConfig::default(), blocks);
    let scheduler = Scheduler::new(ConflictGranularity::Account);
    let model = CostModel::default();

    let paper = [
        (1usize, 3.18f64),
        (2, 5.20),
        (3, 6.80),
        (4, 7.72),
        (6, 7.50),
        (8, 7.20),
    ];
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>14}",
        "blocks", "speedup", "paper", "ratio", "switches/blk"
    );
    for (b, paper_speedup) in paper {
        let mut speedups = Vec::with_capacity(fixtures.len());
        let mut switches = 0u64;
        for f in &fixtures {
            let replicas: Vec<_> = (0..b)
                .map(|_| (scheduler.schedule(&f.profile, 16), &f.profile))
                .collect();
            let r = simulate_multiblock(&replicas, 16, &model);
            speedups.push(r.speedup);
            switches += r.switches;
        }
        let m = mean(&speedups);
        println!(
            "{b:>8} {m:>11.2}x {paper_speedup:>11.2}x {:>10.2} {:>14.1}",
            m / paper_speedup,
            switches as f64 / fixtures.len() as f64
        );
    }
    println!("\n(paper values for 2/3/6/8 blocks are read off Figure 9's curve;");
    println!(" the printed numbers are the curve the pipeline model produces.)");
}
