//! Full node-loop A/B: pipelined proposer/validator overlap vs lock-step.
//!
//! This is the harness for the paper's Figure-1 claim measured end to end:
//! a node that packs height `N+1` while height `N` is still being encoded,
//! shipped, validated and persisted should sustain `1/max(stage)` blocks
//! per unit time, while the lock-step baseline pays `1/sum(stages)`.
//! Records `BENCH_node.json` with two artefact families:
//!
//! * **gas-time, calibrated** (primary): per-block stage costs are taken
//!   from the deterministic bp-sim stage models — proposer makespans from
//!   the OCC-WSI / Block-STM proposer sims, validator makespans from the
//!   restructured-pipeline sim with every overhead micro-timed on this
//!   machine, codec costs measured directly on the real wire encoder —
//!   and fed to [`bp_sim::simulate_node_loop`], the bounded-buffer model
//!   of `bp-node`'s channel topology. Series over engine × validator
//!   workers × channel depth × pacing mode; the headline is pipelined vs
//!   lock-step committed-tx/s with 4 validator workers. This is how the
//!   overlap is evaluated beyond the single CPU of the evaluation host.
//! * **wall-clock** (secondary but load-bearing for correctness): the real
//!   [`bp_node::run_node`] service — real threads, real bounded channels,
//!   real store-backed validator — in both modes, with the serial-replay
//!   equivalence gate **asserted**: the run aborts if any validator head
//!   diverges from serial execution of the committed chain. Injected wire
//!   latency makes the overlap physically observable even on one core
//!   (the proposer packs while the wire sleeps).
//!
//! Usage: `cargo run -p bp-bench --release --bin node_baseline [out.json]`
//! (`BP_NODE_BLOCKS=N` overrides the wall-clock block count,
//! `BP_BLOCKS=N` the calibration window).

use std::time::Instant;

use blockpilot_core::{
    CommitPath, ConflictGranularity, DispatchPolicy, PipelineConfig, ProposerAlgo, Scheduler,
};
use bp_baseline::execute_block_serially;
use bp_bench::{block_count, generate_fixtures, mean, BlockFixture};
use bp_block::wire::{encode_block, encode_block_into};
use bp_node::{run_node, NodeConfig, NodeMode, NodeReport};
use bp_sim::{
    simulate_node_loop, simulate_proposer_block_stm, simulate_proposer_configured,
    simulate_validator_pipeline, CostModel, NodeLoopConfig, PipelineSimConfig, ValidationRule,
};
use bp_store::GroupCommitConfig;
use bp_types::{BlockHash, Gas};
use bp_workload::WorkloadConfig;

const WORKERS: [usize; 5] = [1, 2, 4, 8, 16];
const DEPTHS: [usize; 3] = [1, 2, 8];
const ENGINES: [ProposerAlgo; 2] = [ProposerAlgo::OccWsi, ProposerAlgo::BlockStm];
/// Proposer threads used for every gas-time propose cost (the node's
/// default).
const PROPOSER_THREADS: usize = 2;
/// The per-block stage-cost window is tiled out to this many blocks so the
/// loop model reaches steady state instead of measuring fill/drain.
const SIM_BLOCKS: usize = 256;

fn engine_name(algo: ProposerAlgo) -> &'static str {
    match algo {
        ProposerAlgo::OccWsi => "occ_wsi",
        ProposerAlgo::BlockStm => "block_stm",
    }
}

fn mode_name(lock_step: bool) -> &'static str {
    if lock_step {
        "lock_step"
    } else {
        "pipelined"
    }
}

/// Machine constants tying gas-time to this host's wall clock. Validator
/// overheads are micro-timed here (same sections as `validator_baseline`);
/// proposer commit-section constants come from the documented DESIGN.md §7
/// calibration baked into [`CostModel::default`].
struct Calibration {
    gas_per_us: f64,
    prepare_us: f64,
    dispatch_us: f64,
    match_us: f64,
    applier_us: f64,
    applier_block_us: f64,
    /// Measured microseconds to wire-encode each calibration block with the
    /// reused scratch buffer (min over trials), one entry per block.
    codec_us: Vec<f64>,
}

const CALIBRATION_TRIALS: usize = 5;

impl Calibration {
    fn gas(us: f64) -> u64 {
        us.max(0.0).round().max(1.0) as u64
    }

    /// Validator-side implementation model: measured per-transaction
    /// overheads, proposer-only constants zeroed (the validator sim never
    /// reads them).
    fn validator_model(&self) -> CostModel {
        CostModel {
            per_tx_dispatch: Self::gas(self.dispatch_us * self.gas_per_us),
            prepare_per_tx: Self::gas(self.prepare_us * self.gas_per_us),
            applier_per_tx: Self::gas(self.applier_us * self.gas_per_us),
            match_per_tx: Self::gas(self.match_us * self.gas_per_us),
            applier_block: Self::gas(self.applier_block_us * self.gas_per_us),
            commit_sync: 0,
            commit_admit: 0,
            state_contention_permille: 0,
            stm_validate: 0,
            block_switch: 0,
            applier_switch: 0,
        }
    }
}

fn calibrate(fixtures: &[BlockFixture]) -> Calibration {
    let txs: usize = fixtures.iter().map(|f| f.profile.len()).sum();

    let mut gas_per_us = 0.0f64;
    for _ in 0..CALIBRATION_TRIALS {
        let started = Instant::now();
        let mut gas_total = 0u64;
        for f in fixtures {
            let out =
                execute_block_serially(&f.pre_state, &f.env, &f.txs).expect("fixtures replay");
            std::hint::black_box(&out.post_state);
            gas_total += out.gas_used;
        }
        let exec_us = started.elapsed().as_secs_f64() * 1e6;
        gas_per_us = gas_per_us.max(gas_total as f64 / exec_us);
    }

    let scheduler = Scheduler::new(ConflictGranularity::Account);
    let mut prepare_us = f64::INFINITY;
    for _ in 0..CALIBRATION_TRIALS {
        let started = Instant::now();
        for f in fixtures {
            std::hint::black_box(scheduler.schedule(&f.profile, 8));
        }
        prepare_us = prepare_us.min(started.elapsed().as_secs_f64() * 1e6 / txs as f64);
    }

    // Dispatch + result hand-off and footprint matching, micro-timed on the
    // profile structures exactly as `validator_baseline` does.
    let mut dispatch_us = f64::INFINITY;
    for _ in 0..CALIBRATION_TRIALS {
        let started = Instant::now();
        for f in fixtures {
            let slots: bp_concurrent::ResultSlots<bp_types::RwSet> =
                bp_concurrent::ResultSlots::new(f.profile.len());
            for (i, entry) in f.profile.entries.iter().enumerate() {
                slots.publish(i, entry.rw());
            }
            for i in 0..f.profile.len() {
                std::hint::black_box(slots.take(i));
            }
        }
        dispatch_us = dispatch_us.min(started.elapsed().as_secs_f64() * 1e6 / txs as f64);
    }

    let mut match_us = f64::INFINITY;
    for _ in 0..CALIBRATION_TRIALS {
        let rws: Vec<Vec<bp_types::RwSet>> = fixtures
            .iter()
            .map(|f| f.profile.entries.iter().map(|e| e.rw()).collect())
            .collect();
        let started = Instant::now();
        for (f, block_rws) in fixtures.iter().zip(&rws) {
            for (i, rw) in block_rws.iter().enumerate() {
                std::hint::black_box(f.profile.matches(i, rw));
            }
        }
        match_us = match_us.min(started.elapsed().as_secs_f64() * 1e6 / txs as f64);
    }

    // Warm every fixture's trie cache: the chained fixtures have never had
    // their roots computed, and a cold first `state_root` walks the whole
    // trie instead of the block's dirty set — exactly what the running
    // node's incremental recompute never does.
    for f in fixtures {
        std::hint::black_box(f.pre_state.state_root());
        std::hint::black_box(f.post_state.state_root());
    }

    let mut applier_us = f64::INFINITY;
    for _ in 0..CALIBRATION_TRIALS {
        let started = Instant::now();
        for f in fixtures {
            let mut world = f.pre_state.snapshot();
            for entry in &f.profile.entries {
                world.apply_writes(&entry.writes);
            }
            std::hint::black_box(&world);
        }
        applier_us = applier_us.min(started.elapsed().as_secs_f64() * 1e6 / txs as f64);
    }

    let mut block_us = f64::INFINITY;
    for _ in 0..CALIBRATION_TRIALS {
        let started = Instant::now();
        for f in fixtures {
            let mut world = f.pre_state.snapshot();
            for entry in &f.profile.entries {
                world.apply_writes(&entry.writes);
            }
            std::hint::black_box(world.state_root());
        }
        block_us = block_us.min(started.elapsed().as_secs_f64() * 1e6 / fixtures.len() as f64);
    }
    let mean_txs = txs as f64 / fixtures.len() as f64;
    let applier_block_us = (block_us - applier_us * mean_txs).max(1.0);

    // Codec: the real wire encoder with the reused scratch buffer, per
    // block. Sealing needs real roots, so it happens once, outside timing.
    let sealed: Vec<_> = fixtures
        .iter()
        .enumerate()
        .map(|(i, f)| f.seal(BlockHash::from_low_u64(i as u64), i as u64 + 1))
        .collect();
    let mut codec_us = vec![f64::INFINITY; sealed.len()];
    let mut scratch = encode_block(&sealed[0]);
    for _ in 0..CALIBRATION_TRIALS {
        for (i, block) in sealed.iter().enumerate() {
            let started = Instant::now();
            scratch = encode_block_into(block, scratch);
            std::hint::black_box(&scratch);
            codec_us[i] = codec_us[i].min(started.elapsed().as_secs_f64() * 1e6);
        }
    }

    Calibration {
        gas_per_us,
        prepare_us,
        dispatch_us,
        match_us,
        applier_us,
        applier_block_us,
        codec_us,
    }
}

/// Per-block gas-time stage costs over the calibration window.
struct StageCosts {
    /// `propose[engine_index][block]`, at [`PROPOSER_THREADS`] threads.
    propose: Vec<Vec<Gas>>,
    /// `validate[worker_index][block]`, restructured pipeline.
    validate: Vec<Vec<Gas>>,
    /// `codec[block]`, measured µs converted to gas.
    codec: Vec<Gas>,
    /// Transactions per block in the window.
    block_txs: Vec<u64>,
}

fn stage_costs(fixtures: &[BlockFixture], cal: &Calibration) -> StageCosts {
    let proposer_model = CostModel::default();
    // The real proposer seals every block it hands off — incremental state
    // root over its own post-state plus tx/receipts roots (occ_wsi.rs) —
    // the same dirty-set MPT work the validator's block stage pays. The
    // proposer sims model only packing, so the measured per-block root cost
    // is added on top.
    let seal_gas = Calibration::gas(cal.applier_block_us * cal.gas_per_us);
    let propose = ENGINES
        .iter()
        .map(|&engine| {
            fixtures
                .iter()
                .map(|f| {
                    let r = match engine {
                        ProposerAlgo::OccWsi => simulate_proposer_configured(
                            &f.pre_state,
                            &f.env,
                            &f.txs,
                            PROPOSER_THREADS,
                            &proposer_model,
                            ValidationRule::Wsi,
                            CommitPath::TwoPhase,
                        ),
                        ProposerAlgo::BlockStm => simulate_proposer_block_stm(
                            &f.pre_state,
                            &f.env,
                            &f.txs,
                            PROPOSER_THREADS,
                            &proposer_model,
                        ),
                    };
                    assert_eq!(r.committed, f.txs.len(), "{engine:?} commits the block");
                    r.makespan + seal_gas
                })
                .collect()
        })
        .collect();

    let validator_model = cal.validator_model();
    let validate = WORKERS
        .iter()
        .map(|&workers| {
            fixtures
                .iter()
                .map(|f| {
                    let schedule =
                        Scheduler::new(ConflictGranularity::Account).schedule(&f.profile, workers);
                    simulate_validator_pipeline(
                        &[(schedule, &f.profile)],
                        &PipelineSimConfig {
                            workers,
                            appliers: 2,
                            dispatch: DispatchPolicy::Subgraph,
                            overlap_verify: true,
                        },
                        &validator_model,
                    )
                    .makespan
                })
                .collect()
        })
        .collect();

    let codec = cal
        .codec_us
        .iter()
        .map(|&us| Calibration::gas(us * cal.gas_per_us))
        .collect();
    let block_txs = fixtures.iter().map(|f| f.txs.len() as u64).collect();
    StageCosts {
        propose,
        validate,
        codec,
        block_txs,
    }
}

/// Tiles a per-block window out to [`SIM_BLOCKS`] entries.
fn tile(window: &[Gas]) -> Vec<Gas> {
    (0..SIM_BLOCKS).map(|i| window[i % window.len()]).collect()
}

struct Row {
    engine: ProposerAlgo,
    workers: usize,
    /// Channel depths this row covers. Depths whose loop results are
    /// byte-identical (common when one stage dominates every block, e.g. the
    /// validator at workers=1 — deeper buffers cannot help a uniformly slow
    /// consumer) are merged into one labelled row instead of emitting
    /// duplicate rows that *look* like the depth knob was dropped.
    depths: Vec<usize>,
    lock_step: bool,
    committed_tx_s: f64,
    makespan_us: f64,
    proposer_occupancy: f64,
    validator_occupancy: f64,
    proposer_stall_share: f64,
}

fn gas_time_rows(costs: &StageCosts, cal: &Calibration) -> Vec<Row> {
    let total_txs: u64 = (0..SIM_BLOCKS)
        .map(|i| costs.block_txs[i % costs.block_txs.len()])
        .sum();
    let mut rows = Vec::new();
    for (e, &engine) in ENGINES.iter().enumerate() {
        for (w, &workers) in WORKERS.iter().enumerate() {
            for lock_step in [false, true] {
                // Sweep depths, merging equal-makespan neighbours.
                let mut merged: Vec<Row> = Vec::new();
                for depth in DEPTHS {
                    let r = simulate_node_loop(&NodeLoopConfig {
                        propose: tile(&costs.propose[e]),
                        codec: tile(&costs.codec),
                        validate: tile(&costs.validate[w]),
                        depth,
                        lock_step,
                    });
                    let makespan_us = r.makespan as f64 / cal.gas_per_us;
                    match merged.last_mut() {
                        Some(prev) if prev.makespan_us == makespan_us => {
                            prev.depths.push(depth);
                        }
                        _ => merged.push(Row {
                            engine,
                            workers,
                            depths: vec![depth],
                            lock_step,
                            committed_tx_s: total_txs as f64 * 1e6 / makespan_us,
                            makespan_us,
                            proposer_occupancy: r.occupancy[0],
                            validator_occupancy: r.occupancy[2],
                            proposer_stall_share: r.proposer_stall as f64
                                / r.makespan.max(1) as f64,
                        }),
                    }
                }
                rows.extend(merged);
            }
        }
    }
    rows
}

fn find_tx_s(rows: &[Row], engine: ProposerAlgo, workers: usize, depth: usize, lock: bool) -> f64 {
    rows.iter()
        .find(|r| {
            r.engine == engine
                && r.workers == workers
                && r.depths.contains(&depth)
                && r.lock_step == lock
        })
        .expect("row exists")
        .committed_tx_s
}

/// One wall-clock configuration of the real node service.
struct WallVariant {
    /// Row label in the report and JSON.
    name: &'static str,
    mode: NodeMode,
    /// Bounded channel depth — reaches `NodeConfig::channel_depth` (and, via
    /// the validator stage's submit-ahead window, the deferred-root overlap).
    depth: usize,
    /// Attach a persistent store to validator 0.
    store: bool,
    /// Defer state-root checks off the apply path (async commit pipeline).
    deferred_root: bool,
    /// Coalesce store fsyncs (requires `store`).
    group_commit: bool,
}

const WALL_VARIANTS: [WallVariant; 4] = [
    WallVariant {
        name: "pipelined",
        mode: NodeMode::Pipelined,
        depth: 2,
        store: false,
        deferred_root: false,
        group_commit: false,
    },
    WallVariant {
        name: "lock_step",
        mode: NodeMode::LockStep,
        depth: 2,
        store: false,
        deferred_root: false,
        group_commit: false,
    },
    // Store-backed pair: per-commit fsync vs the async commit pipeline
    // (deferred roots + group commit). Same store profile otherwise, so the
    // tx/s delta is exactly the root-hash wait and the fsync cadence.
    WallVariant {
        name: "pipelined_store",
        mode: NodeMode::Pipelined,
        depth: 2,
        store: true,
        deferred_root: false,
        group_commit: false,
    },
    WallVariant {
        name: "pipelined_store_async",
        mode: NodeMode::Pipelined,
        depth: 2,
        store: true,
        deferred_root: true,
        group_commit: true,
    },
];

/// One real node-service run, gated: the process aborts if the run is
/// unhealthy (head divergence, validation failure, or equivalence mismatch).
fn run_wall(variant: &WallVariant, blocks: u64) -> NodeReport {
    let store_dir = variant
        .store
        .then(|| bp_store::store::test_dir(&format!("node-baseline-{}", variant.name)));
    let report = run_node(NodeConfig {
        mode: variant.mode,
        blocks,
        channel_depth: variant.depth,
        engine: ProposerAlgo::OccWsi,
        // One proposer thread: on the single-CPU evaluation host extra
        // proposer workers only add contention, and the overlap being
        // measured is between *stages*, not within the proposer.
        proposer_threads: 1,
        pipeline: PipelineConfig {
            workers: 4,
            deferred_root: variant.deferred_root,
            ..PipelineConfig::default()
        },
        validators: 2,
        // Injected wire latency: the physically observable overlap on a
        // single-core host — the proposer packs the next block while the
        // wire sleeps. The hideable time is capped by the proposer's own
        // per-block compute (~3.5 ms on this workload), so the delay sits
        // just under that: much larger and both modes are latency-bound,
        // much smaller and the win drowns in scheduler noise.
        latency_us: 2500..3500,
        // ~64-tx blocks: the workload feeds 64-tx batches and the gas limit
        // caps packing near that size, so the sustained series measures many
        // uniform blocks instead of a few giant gas-limit-bound ones whose
        // compute would dwarf the wire latency.
        gas_limit: 2_000_000,
        min_pool_txs: 48,
        workload: WorkloadConfig {
            accounts: 400,
            txs_per_block: 64,
            tx_jitter: 8,
            ..WorkloadConfig::default()
        },
        check_equivalence: true,
        store_dir: store_dir.clone(),
        group_commit: variant.group_commit.then(GroupCommitConfig::default),
        ..NodeConfig::default()
    });
    if let Some(dir) = store_dir {
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(
        report.committed_blocks, blocks,
        "{} commits every block",
        variant.name
    );
    let eq = report.equivalence.as_ref().expect("equivalence gate ran");
    assert!(
        report.healthy(),
        "{} run unhealthy: failures={}, serial={}, node={}",
        variant.name,
        report.validation_failures,
        eq.serial_root,
        eq.node_root
    );
    report
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_node.json".to_string());
    let wall_blocks: u64 = std::env::var("BP_NODE_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let window = block_count(8).max(2);
    println!("=== node loop A/B: pipelined overlap vs lock-step ===");
    println!(
        "calibration window: {window} chained mainnet-like blocks; \
         loop model tiled to {SIM_BLOCKS} blocks; wall-clock runs: {wall_blocks} blocks\n"
    );

    let fixtures = generate_fixtures(WorkloadConfig::default(), window);
    let cal = calibrate(&fixtures);
    println!(
        "calibration: {:.1} gas/µs, codec {:.1} µs/block (mean), prepare {:.3} µs/tx, \
         dispatch {:.3} µs/tx, match {:.3} µs/tx, apply {:.3} µs/tx, \
         block validation {:.1} µs/block\n",
        cal.gas_per_us,
        mean(&cal.codec_us),
        cal.prepare_us,
        cal.dispatch_us,
        cal.match_us,
        cal.applier_us,
        cal.applier_block_us
    );

    let costs = stage_costs(&fixtures, &cal);
    let rows = gas_time_rows(&costs, &cal);

    println!("gas-time calibrated node loop (depth 2, occ_wsi engine):");
    println!(
        "{:>8} {:>16} {:>16} {:>8}",
        "workers", "pipelined tx/s", "lock-step tx/s", "ratio"
    );
    for workers in WORKERS {
        let p = find_tx_s(&rows, ProposerAlgo::OccWsi, workers, 2, false);
        let l = find_tx_s(&rows, ProposerAlgo::OccWsi, workers, 2, true);
        println!("{workers:>8} {p:>16.0} {l:>16.0} {:>7.2}x", p / l);
    }

    let headline = find_tx_s(&rows, ProposerAlgo::OccWsi, 4, 2, false)
        / find_tx_s(&rows, ProposerAlgo::OccWsi, 4, 2, true);
    println!("\npipelined vs lock-step at 4 validator workers (calibrated): {headline:.2}x");
    assert!(
        headline > 1.0,
        "pipelining must beat lock-step at 4 workers, got {headline:.3}x"
    );

    println!("\nwall-clock node service ({wall_blocks} blocks, equivalence gated):");
    let wall: Vec<NodeReport> = WALL_VARIANTS
        .iter()
        .map(|variant| {
            let r = run_wall(variant, wall_blocks);
            println!(
                "  {:>21}: {:>8.0} tx/s, proposer occupancy {:.0}%, stall {:.0}%, \
                 equivalence ok over {} blocks",
                variant.name,
                r.committed_tx_per_sec,
                r.proposer.occupancy(r.wall_micros) * 100.0,
                r.proposer.stall_share(r.wall_micros) * 100.0,
                r.equivalence.as_ref().map_or(0, |e| e.blocks)
            );
            r
        })
        .collect();
    let wall_ratio = wall[0].committed_tx_per_sec / wall[1].committed_tx_per_sec;
    println!("  wall-clock pipelined vs lock-step: {wall_ratio:.2}x");
    // The async commit pipeline (deferred roots + group-commit fsync
    // batching) against the same store-backed node without it.
    let async_ratio = wall[3].committed_tx_per_sec / wall[2].committed_tx_per_sec;
    println!("  wall-clock async commit vs per-commit fsync (store-backed): {async_ratio:.2}x");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"node_loop\",\n");
    json.push_str(&format!("  \"calibration_window\": {window},\n"));
    json.push_str(&format!("  \"sim_blocks\": {SIM_BLOCKS},\n"));
    json.push_str(&format!("  \"wall_blocks\": {wall_blocks},\n"));
    json.push_str(&format!(
        "  \"host_threads\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str(&format!(
        "  \"calibration\": {{\"gas_per_us\": {:.2}, \"codec_us_mean\": {:.3}, \
         \"prepare_us\": {:.4}, \"dispatch_us\": {:.4}, \"match_us\": {:.4}, \
         \"applier_us\": {:.4}, \"applier_block_us\": {:.2}}},\n",
        cal.gas_per_us,
        mean(&cal.codec_us),
        cal.prepare_us,
        cal.dispatch_us,
        cal.match_us,
        cal.applier_us,
        cal.applier_block_us
    ));
    json.push_str(&format!(
        "  \"pipelined_vs_lockstep_at_4_workers\": {headline:.3},\n"
    ));
    json.push_str(&format!(
        "  \"wall_clock_pipelined_vs_lockstep\": {wall_ratio:.3},\n"
    ));
    json.push_str(&format!(
        "  \"wall_clock_async_commit_vs_per_commit_fsync\": {async_ratio:.3},\n"
    ));
    json.push_str("  \"equivalence\": {\n");
    for (i, (v, r)) in WALL_VARIANTS.iter().zip(&wall).enumerate() {
        let eq = r.equivalence.as_ref().expect("gate ran");
        json.push_str(&format!(
            "    \"{}\": {{\"blocks\": {}, \"ok\": {}, \"serial_root\": \"{}\", \
             \"node_root\": \"{}\"}}{}\n",
            v.name,
            eq.blocks,
            eq.ok,
            eq.serial_root,
            eq.node_root,
            if i + 1 == wall.len() { "" } else { "," }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"wall_clock\": [\n");
    for (i, (v, r)) in WALL_VARIANTS.iter().zip(&wall).enumerate() {
        json.push_str(&format!(
            "    {{\"variant\": \"{}\", \"mode\": \"{}\", \"depth\": {}, \
             \"store\": {}, \"deferred_root\": {}, \"group_commit\": {}, \
             \"committed_blocks\": {}, \"committed_txs\": {}, \
             \"committed_tx_s\": {:.1}, \"proposer_occupancy\": {:.3}, \
             \"proposer_stall_share\": {:.3}, \"codec_occupancy\": {:.3}, \
             \"validator_occupancy\": {:.3}, \"max_wire_depth\": {}}}{}\n",
            v.name,
            mode_name(v.mode == NodeMode::LockStep),
            v.depth,
            v.store,
            v.deferred_root,
            v.group_commit,
            r.committed_blocks,
            r.committed_txs,
            r.committed_tx_per_sec,
            r.proposer.occupancy(r.wall_micros),
            r.proposer.stall_share(r.wall_micros),
            r.codec.occupancy(r.wall_micros),
            r.validators[0].occupancy(r.wall_micros),
            r.codec.max_queue_depth,
            if i + 1 == wall.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let depths: Vec<String> = r.depths.iter().map(|d| d.to_string()).collect();
        json.push_str(&format!(
            "    {{\"series\": \"gas_time_calibrated\", \"engine\": \"{}\", \
             \"workers\": {}, \"depths\": [{}], \"mode\": \"{}\", \
             \"committed_tx_s\": {:.1}, \"makespan_us\": {:.0}, \
             \"proposer_occupancy\": {:.3}, \"validator_occupancy\": {:.3}, \
             \"proposer_stall_share\": {:.3}}}{}\n",
            engine_name(r.engine),
            r.workers,
            depths.join(", "),
            mode_name(r.lock_step),
            r.committed_tx_s,
            r.makespan_us,
            r.proposer_occupancy,
            r.validator_occupancy,
            r.proposer_stall_share,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write node json");
    println!("wrote {out_path}");
}
