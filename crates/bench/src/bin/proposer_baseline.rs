//! Proposer A/B harness: commit paths and execution engines.
//!
//! Records `BENCH_proposer.json` with committed-tx/s and abort rates at
//! 1/2/4/8/16 threads for
//!
//! * the two [`CommitPath`]s of the OCC-WSI engine (two-phase vs coarse
//!   lock) on the standard 132-tx workload, and
//! * the two [`ProposerAlgo`] engines (OCC-WSI two-phase vs Block-STM)
//!   across three contention levels: `uniform` (no skew), `zipf` (the
//!   mainnet-like default) and `hot_key` (the NFT-mint storm, every
//!   transaction reading and writing one supply counter).
//!
//! Series:
//!
//! * **gas-time, implementation-calibrated** (primary): the deterministic
//!   bp-sim proposers with *every* overhead measured on this machine — the
//!   serial EVM execution rate fixes the gas↔time exchange rate, and the
//!   real dispatch and commit-section operations (validation, multi-version
//!   and reserve publication, body pushes) are micro-timed to place
//!   `per_tx_dispatch`, `commit_sync`, `commit_admit` and `stm_validate` on
//!   the same scale. This is how thread counts beyond the machine's cores
//!   are evaluated (see EXPERIMENTS.md: the evaluation container has a
//!   single CPU).
//! * **gas-time, paper model** (sensitivity): the commit-path A/B under the
//!   fig6 harness's geth-calibrated dispatch and state-contention
//!   coefficients.
//! * **wall-clock** (secondary): the real engines on real threads, with a
//!   per-block receipt-equivalence gate against the serial oracle. Honest
//!   but flat on a single-core machine — reported for completeness, not for
//!   scaling claims.
//!
//! Usage: `cargo run -p bp-bench --release --bin proposer_baseline
//! [out.json]` (`BP_BLOCKS=N` overrides the sample size).

use std::sync::Arc;
use std::time::Instant;

use blockpilot_core::{CommitPath, OccWsiConfig, OccWsiProposer, Proposer, ProposerAlgo};
use bp_baseline::execute_block_serially;
use bp_bench::{block_count, generate_fixtures, mean, BlockFixture};
use bp_concurrent::{ReserveTable, VersionAllocator, VersionGate};
use bp_evm::MvSnapshot;
use bp_sim::{
    simulate_proposer_block_stm, simulate_proposer_configured, CostModel, ValidationRule,
};
use bp_state::MultiVersionState;
use bp_txpool::TxPool;
use bp_types::BlockHash;
use bp_workload::WorkloadConfig;

const THREADS: [usize; 5] = [1, 2, 4, 8, 16];
const PATHS: [CommitPath; 2] = [CommitPath::TwoPhase, CommitPath::CoarseLock];
const ENGINES: [ProposerAlgo; 2] = [ProposerAlgo::OccWsi, ProposerAlgo::BlockStm];

fn path_name(path: CommitPath) -> &'static str {
    match path {
        CommitPath::TwoPhase => "two_phase",
        CommitPath::CoarseLock => "coarse_lock",
    }
}

fn engine_name(algo: ProposerAlgo) -> &'static str {
    match algo {
        ProposerAlgo::OccWsi => "two_phase",
        ProposerAlgo::BlockStm => "block_stm",
    }
}

/// The three contention regimes of the engine A/B, from no skew to a fully
/// serialized hot key.
fn contention_levels() -> [(&'static str, WorkloadConfig); 3] {
    [
        (
            "uniform",
            WorkloadConfig {
                zipf_accounts: 0.0,
                zipf_contracts: 0.0,
                ..WorkloadConfig::default()
            },
        ),
        ("zipf", WorkloadConfig::default()),
        ("hot_key", WorkloadConfig::nft_mint_storm()),
    ]
}

/// Machine-specific constants tying gas-time to this host's wall clock.
struct Calibration {
    /// Execution gas the serial EVM retires per microsecond.
    gas_per_us: f64,
    /// Mean microseconds of the full coarse commit section per transaction.
    commit_us: f64,
    /// Mean microseconds of the Phase A admit slice per transaction.
    admit_us: f64,
    /// Mean microseconds of per-transaction dispatch (batched pool checkout,
    /// snapshot setup, pool commit).
    dispatch_us: f64,
}

impl Calibration {
    fn commit_sync_gas(&self) -> u64 {
        (self.commit_us * self.gas_per_us).round().max(2.0) as u64
    }

    fn commit_admit_gas(&self) -> u64 {
        let admit = (self.admit_us * self.gas_per_us).round().max(1.0) as u64;
        admit.min(self.commit_sync_gas() - 1)
    }

    fn dispatch_gas(&self) -> u64 {
        (self.dispatch_us * self.gas_per_us).round().max(1.0) as u64
    }

    /// Block-STM's per-transaction read-set validation: the same work as
    /// the WSI admit-slice validation (walk the read set, compare
    /// versions), but on the validating worker's own clock rather than
    /// under a lock — so the admit-slice micro-timing is the right length
    /// for it.
    fn stm_validate_gas(&self) -> u64 {
        self.commit_admit_gas()
    }

    /// The A/B model: every overhead in it is measured on this host. No
    /// cross-worker state-contention coefficient — the structures both
    /// commit paths share (multi-version state, reserve table) are
    /// lock-striped sharded maps, and the coefficient the fig6 harness uses
    /// models geth's *global* StateDB traffic, which would drown the very
    /// commit section this A/B isolates (see the paper-model sensitivity
    /// series for that variant).
    fn implementation_model(&self) -> CostModel {
        CostModel {
            per_tx_dispatch: self.dispatch_gas(),
            commit_sync: self.commit_sync_gas(),
            commit_admit: self.commit_admit_gas(),
            stm_validate: self.stm_validate_gas(),
            state_contention_permille: 0,
            ..CostModel::default()
        }
    }

    /// The fig6 harness model (geth-calibrated dispatch + contention), with
    /// only the commit sections re-measured. Sensitivity series.
    fn paper_model(&self) -> CostModel {
        CostModel {
            commit_sync: self.commit_sync_gas(),
            commit_admit: self.commit_admit_gas(),
            stm_validate: self.stm_validate_gas(),
            ..CostModel::default()
        }
    }
}

/// Trials per calibration microbench. Each keeps its *fastest* trial —
/// on a shared host, scheduler noise only ever adds time, so min-of-N is
/// the least-biased estimate of the true section length (and max-of-N of
/// the execution rate). A single-trial calibration can swing the derived
/// gas costs by ±20% run to run.
const CALIBRATION_TRIALS: usize = 5;

/// Measures the serial execution rate and micro-times the two commit
/// sections, replaying the fixtures' committed footprints against the real
/// concurrent structures (single-threaded: we want section *length*, not
/// contention — the simulator supplies the contention).
fn calibrate(fixtures: &[BlockFixture]) -> Calibration {
    let mut gas_per_us = 0.0f64;
    for _ in 0..CALIBRATION_TRIALS {
        let started = Instant::now();
        let mut gas_total = 0u64;
        for f in fixtures {
            let out =
                execute_block_serially(&f.pre_state, &f.env, &f.txs).expect("fixtures replay");
            std::hint::black_box(&out.post_state);
            gas_total += out.gas_used;
        }
        let exec_us = started.elapsed().as_secs_f64() * 1e6;
        gas_per_us = gas_per_us.max(gas_total as f64 / exec_us);
    }

    let commits: usize = fixtures.iter().map(|f| f.profile.len()).sum();

    // Full coarse section: WSI validation over the read set, multi-version
    // + reserve publication, version allocation, profile clone and block
    // body pushes — worker_coarse's locked region.
    let mut commit_us = f64::INFINITY;
    for _ in 0..CALIBRATION_TRIALS {
        let started = Instant::now();
        for f in fixtures {
            let mv = MultiVersionState::new(Arc::clone(&f.pre_state), 1);
            let reserve = ReserveTable::new(1);
            let versions = VersionAllocator::new();
            let mut body = Vec::with_capacity(f.txs.len());
            for (i, entry) in f.profile.entries.iter().enumerate() {
                let snapshot = versions.current();
                let stale = entry.reads.keys().any(|k| reserve.is_stale(k, snapshot));
                std::hint::black_box(stale);
                let version = snapshot + 1;
                mv.commit_writes(&entry.writes, version);
                reserve.publish(entry.writes.keys(), version);
                versions.allocate();
                body.push((f.txs[i].clone(), entry.clone()));
            }
            std::hint::black_box(&body);
        }
        commit_us = commit_us.min(started.elapsed().as_secs_f64() * 1e6 / commits as f64);
    }

    // Phase A admit slice: validation, gate registration, reserve intents,
    // version allocation. (Value publication, gate opening and body pushes
    // happen off-lock in Phase B.)
    let mut admit_us = f64::INFINITY;
    for _ in 0..CALIBRATION_TRIALS {
        let started = Instant::now();
        for f in fixtures {
            let reserve = ReserveTable::new(1);
            let versions = VersionAllocator::new();
            let gate = VersionGate::new();
            for entry in &f.profile.entries {
                let snapshot = versions.current();
                let stale = entry.reads.keys().any(|k| reserve.is_stale(k, snapshot));
                std::hint::black_box(stale);
                let version = snapshot + 1;
                gate.register(version);
                reserve.publish(entry.writes.keys(), version);
                versions.allocate();
            }
            std::hint::black_box(gate.pending());
        }
        admit_us = admit_us.min(started.elapsed().as_secs_f64() * 1e6 / commits as f64);
    }

    // Per-transaction dispatch: batched pool checkout, snapshot setup,
    // pool commit bookkeeping.
    let mut dispatch_us = f64::INFINITY;
    for _ in 0..CALIBRATION_TRIALS {
        let pools: Vec<TxPool> = fixtures
            .iter()
            .map(|f| {
                let pool = TxPool::new();
                for tx in &f.txs {
                    pool.add(tx.clone());
                }
                pool
            })
            .collect();
        let mut dispatched = 0usize;
        let started = Instant::now();
        for (f, pool) in fixtures.iter().zip(&pools) {
            let mv = MultiVersionState::new(Arc::clone(&f.pre_state), 1);
            loop {
                let batch = pool.pop_many(4);
                if batch.is_empty() {
                    break;
                }
                for tx in batch {
                    let snapshot = MvSnapshot::new(&mv, 0);
                    std::hint::black_box(snapshot.version());
                    pool.commit(&tx);
                    dispatched += 1;
                }
            }
        }
        dispatch_us = dispatch_us.min(started.elapsed().as_secs_f64() * 1e6 / dispatched as f64);
    }

    Calibration {
        gas_per_us,
        commit_us,
        admit_us,
        dispatch_us,
    }
}

struct Row {
    series: &'static str,
    path: &'static str,
    contention: &'static str,
    threads: usize,
    committed_tx_s: f64,
    abort_rate: f64,
}

fn gas_time_rows(
    fixtures: &[BlockFixture],
    cal: &Calibration,
    model: &CostModel,
    series: &'static str,
) -> Vec<Row> {
    let gas_per_sec = cal.gas_per_us * 1e6;
    let mut rows = Vec::new();
    for path in PATHS {
        for threads in THREADS {
            let mut tx_s = Vec::with_capacity(fixtures.len());
            let mut aborts = 0u64;
            let mut committed = 0u64;
            for f in fixtures {
                let r = simulate_proposer_configured(
                    &f.pre_state,
                    &f.env,
                    &f.txs,
                    threads,
                    model,
                    ValidationRule::Wsi,
                    path,
                );
                assert_eq!(r.committed, f.txs.len(), "all txs must commit");
                tx_s.push(r.committed as f64 * gas_per_sec / r.makespan as f64);
                aborts += r.aborts;
                committed += r.committed as u64;
            }
            rows.push(Row {
                series,
                path: path_name(path),
                contention: "zipf",
                threads,
                committed_tx_s: mean(&tx_s),
                abort_rate: aborts as f64 / (aborts + committed) as f64,
            });
        }
    }
    rows
}

/// Engine A/B in gas-time: the OCC-WSI simulator (two-phase path) against
/// the Block-STM simulator on the same fixtures, per contention level.
fn engine_gas_time_rows(
    contention: &'static str,
    fixtures: &[BlockFixture],
    cal: &Calibration,
    model: &CostModel,
) -> Vec<Row> {
    let gas_per_sec = cal.gas_per_us * 1e6;
    let mut rows = Vec::new();
    for algo in ENGINES {
        for threads in THREADS {
            let mut tx_s = Vec::with_capacity(fixtures.len());
            let mut aborts = 0u64;
            let mut committed = 0u64;
            for f in fixtures {
                let r = match algo {
                    ProposerAlgo::OccWsi => simulate_proposer_configured(
                        &f.pre_state,
                        &f.env,
                        &f.txs,
                        threads,
                        model,
                        ValidationRule::Wsi,
                        CommitPath::TwoPhase,
                    ),
                    ProposerAlgo::BlockStm => {
                        simulate_proposer_block_stm(&f.pre_state, &f.env, &f.txs, threads, model)
                    }
                };
                assert_eq!(r.committed, f.txs.len(), "all txs must commit");
                tx_s.push(r.committed as f64 * gas_per_sec / r.makespan as f64);
                aborts += r.aborts;
                committed += r.committed as u64;
            }
            rows.push(Row {
                series: "engine_gas_time",
                path: engine_name(algo),
                contention,
                threads,
                committed_tx_s: mean(&tx_s),
                abort_rate: aborts as f64 / (aborts + committed) as f64,
            });
        }
    }
    rows
}

/// Per-engine wall-clock stats accumulated across a contention level.
#[derive(Default)]
struct EngineWallStats {
    executions: u64,
    committed: u64,
    validation_failures: u64,
    wait_on_estimate: u64,
}

/// Engine A/B on real threads with a receipt-equivalence gate: every
/// proposed block's receipts must be bit-identical to the serial oracle's
/// replay of the block body. Block-STM drains nonce chains across several
/// blocks (the pool releases one transaction per sender per block), so the
/// harness proposes until the pool is empty and scores total throughput.
fn engine_wall_clock_rows(
    contention: &'static str,
    fixtures: &[BlockFixture],
    stats_out: &mut Vec<(&'static str, &'static str, EngineWallStats)>,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for algo in ENGINES {
        let mut level = EngineWallStats::default();
        for threads in THREADS {
            let mut tx_s = Vec::with_capacity(fixtures.len());
            let mut aborts = 0u64;
            let mut executions = 0u64;
            for f in fixtures {
                let proposer = Proposer::new(OccWsiConfig {
                    threads,
                    env: f.env,
                    algo,
                    ..OccWsiConfig::default()
                });
                proposer.submit_transactions(f.txs.iter().cloned());
                let mut state = Arc::new(f.pre_state.snapshot());
                let mut committed = 0u64;
                let mut wall = 0u64;
                let mut height = 1u64;
                while !proposer.pool().is_empty() {
                    let proposal =
                        proposer.propose_block(Arc::clone(&state), BlockHash::ZERO, height);
                    assert!(
                        proposal.block.tx_count() > 0,
                        "pool stuck with {} pending",
                        proposer.pool().len()
                    );
                    // Receipt-equivalence gate: the sealed body must replay
                    // serially to the exact same receipts.
                    let serial =
                        execute_block_serially(&state, &f.env, &proposal.block.transactions)
                            .expect("sealed blocks replay");
                    assert_eq!(
                        serial.receipts,
                        proposal.receipts,
                        "{} receipts diverge from serial replay",
                        engine_name(algo)
                    );
                    committed += proposal.stats.committed;
                    wall += proposal.stats.wall_micros;
                    aborts += proposal.stats.aborts;
                    executions += proposal.stats.executions;
                    level.executions += proposal.stats.executions;
                    level.committed += proposal.stats.committed;
                    level.validation_failures += proposal.stats.validation_failures;
                    level.wait_on_estimate += proposal.stats.wait_on_estimate;
                    state = Arc::new(proposal.post_state);
                    height += 1;
                }
                assert_eq!(committed, f.txs.len() as u64, "every tx must commit");
                tx_s.push(committed as f64 * 1e6 / wall.max(1) as f64);
            }
            rows.push(Row {
                series: "engine_wall_clock",
                path: engine_name(algo),
                contention,
                threads,
                committed_tx_s: mean(&tx_s),
                abort_rate: aborts as f64 / executions.max(1) as f64,
            });
        }
        stats_out.push((contention, engine_name(algo), level));
    }
    rows
}

fn wall_clock_rows(fixtures: &[BlockFixture]) -> Vec<Row> {
    let mut rows = Vec::new();
    for path in PATHS {
        for threads in THREADS {
            let mut tx_s = Vec::with_capacity(fixtures.len());
            let mut aborts = 0u64;
            let mut executions = 0u64;
            for f in fixtures {
                let pool = TxPool::new();
                for tx in &f.txs {
                    pool.add(tx.clone());
                }
                let proposer = OccWsiProposer::new(OccWsiConfig {
                    threads,
                    env: f.env,
                    commit_path: path,
                    ..OccWsiConfig::default()
                });
                let proposal =
                    proposer.propose(&pool, Arc::clone(&f.pre_state), BlockHash::ZERO, 1);
                assert_eq!(
                    proposal.stats.committed,
                    f.txs.len() as u64,
                    "all txs must commit"
                );
                tx_s.push(proposal.stats.committed_per_sec());
                aborts += proposal.stats.aborts;
                executions += proposal.stats.executions;
            }
            rows.push(Row {
                series: "wall_clock",
                path: path_name(path),
                contention: "zipf",
                threads,
                committed_tx_s: mean(&tx_s),
                abort_rate: aborts as f64 / executions.max(1) as f64,
            });
        }
    }
    rows
}

fn print_series(rows: &[Row], series: &'static str, contention: &'static str) {
    let (a, b) = if series.starts_with("engine") {
        ("two_phase", "block_stm")
    } else {
        ("two_phase", "coarse_lock")
    };
    println!(
        "{:>8} {:>16} {:>16} {:>10} | abort% {:>8} {:>8}",
        "threads",
        format!("{a} tx/s"),
        format!("{b} tx/s"),
        "ratio",
        "occ",
        "alt"
    );
    for threads in THREADS {
        let find = |path: &'static str| {
            rows.iter()
                .find(|r| {
                    r.series == series
                        && r.path == path
                        && r.threads == threads
                        && r.contention == contention
                })
                .expect("row exists")
        };
        let tp = find(a);
        let alt = find(b);
        println!(
            "{threads:>8} {:>16.0} {:>16.0} {:>9.2}x | {:>14.2} {:>8.2}",
            tp.committed_tx_s,
            alt.committed_tx_s,
            alt.committed_tx_s / tp.committed_tx_s,
            100.0 * tp.abort_rate,
            100.0 * alt.abort_rate,
        );
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_proposer.json".to_string());
    let blocks = block_count(12);
    println!("=== proposer A/B: commit paths and execution engines ===");
    println!("workload: {blocks} 132-tx blocks per contention level (seeded)\n");

    let fixtures = generate_fixtures(WorkloadConfig::default(), blocks);
    let cal = calibrate(&fixtures);
    println!(
        "calibration: {:.1} gas/µs, dispatch {:.2} µs/tx ({} gas), \
         coarse section {:.2} µs/tx ({} gas), admit slice {:.2} µs/tx ({} gas)\n",
        cal.gas_per_us,
        cal.dispatch_us,
        cal.dispatch_gas(),
        cal.commit_us,
        cal.commit_sync_gas(),
        cal.admit_us,
        cal.commit_admit_gas()
    );

    let mut rows = gas_time_rows(
        &fixtures,
        &cal,
        &cal.implementation_model(),
        "gas_time_calibrated",
    );
    rows.extend(gas_time_rows(
        &fixtures,
        &cal,
        &cal.paper_model(),
        "gas_time_paper_model",
    ));
    rows.extend(wall_clock_rows(&fixtures));

    println!("commit-path A/B — gas-time, implementation-calibrated model:");
    print_series(&rows, "gas_time_calibrated", "zipf");
    println!("\ncommit-path A/B — gas-time, fig6 paper model (sensitivity):");
    print_series(&rows, "gas_time_paper_model", "zipf");
    println!(
        "\ncommit-path A/B — wall-clock, {} real thread(s) on this host:",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    print_series(&rows, "wall_clock", "zipf");

    // Engine A/B across contention levels. The mint-storm fixtures reuse
    // the calibrated model: the exchange rate is a property of the host's
    // EVM, not of the workload.
    let model = cal.implementation_model();
    let mut engine_stats: Vec<(&'static str, &'static str, EngineWallStats)> = Vec::new();
    for (contention, config) in contention_levels() {
        let level_fixtures = generate_fixtures(config, blocks);
        rows.extend(engine_gas_time_rows(
            contention,
            &level_fixtures,
            &cal,
            &model,
        ));
        rows.extend(engine_wall_clock_rows(
            contention,
            &level_fixtures,
            &mut engine_stats,
        ));
        println!("\nengine A/B — {contention} contention, gas-time calibrated:");
        print_series(&rows, "engine_gas_time", contention);
        println!("\nengine A/B — {contention} contention, wall-clock (receipt-gated):");
        print_series(&rows, "engine_wall_clock", contention);
    }

    println!("\nper-engine execution statistics (wall-clock sweeps, all thread counts):");
    println!(
        "{:>10} {:>10} {:>14} {:>16} {:>16}",
        "contention", "engine", "execs/commit", "validation-fail", "wait-on-ESTIMATE"
    );
    for (contention, engine, s) in &engine_stats {
        println!(
            "{contention:>10} {engine:>10} {:>14.3} {:>16} {:>16}",
            s.executions as f64 / s.committed.max(1) as f64,
            s.validation_failures,
            s.wait_on_estimate
        );
    }

    let engine_at = |contention: &str, path: &str, threads: usize| {
        rows.iter()
            .find(|r| {
                r.series == "engine_gas_time"
                    && r.contention == contention
                    && r.path == path
                    && r.threads == threads
            })
            .expect("row exists")
            .committed_tx_s
    };
    let stm_hot8 = engine_at("hot_key", "block_stm", 8) / engine_at("hot_key", "two_phase", 8);
    let stm_hot16 = engine_at("hot_key", "block_stm", 16) / engine_at("hot_key", "two_phase", 16);
    println!(
        "\nblock-stm vs two-phase on hot_key: {stm_hot8:.2}x at 8 threads, {stm_hot16:.2}x at 16"
    );

    let at8 = |path: &str| {
        rows.iter()
            .find(|r| r.series == "gas_time_calibrated" && r.path == path && r.threads == 8)
            .expect("row exists")
            .committed_tx_s
    };
    let ratio8 = at8("two_phase") / at8("coarse_lock");
    println!("two-phase vs coarse at 8 threads (calibrated): {ratio8:.2}x");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"proposer_commit\",\n");
    json.push_str("  \"workload\": \"132-tx blocks (seeded), per-contention fixtures\",\n");
    json.push_str(&format!("  \"blocks\": {blocks},\n"));
    json.push_str(&format!(
        "  \"host_threads\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str(&format!(
        "  \"calibration\": {{\"gas_per_us\": {:.2}, \"dispatch_us\": {:.3}, \
         \"coarse_section_us\": {:.3}, \"admit_slice_us\": {:.3}, \"dispatch_gas\": {}, \
         \"commit_sync_gas\": {}, \"commit_admit_gas\": {}, \"stm_validate_gas\": {}}},\n",
        cal.gas_per_us,
        cal.dispatch_us,
        cal.commit_us,
        cal.admit_us,
        cal.dispatch_gas(),
        cal.commit_sync_gas(),
        cal.commit_admit_gas(),
        cal.stm_validate_gas()
    ));
    json.push_str(&format!(
        "  \"two_phase_vs_coarse_at_8_threads\": {ratio8:.3},\n"
    ));
    json.push_str(&format!(
        "  \"block_stm_vs_two_phase_hot_key_at_8_threads\": {stm_hot8:.3},\n"
    ));
    json.push_str(&format!(
        "  \"block_stm_vs_two_phase_hot_key_at_16_threads\": {stm_hot16:.3},\n"
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"series\": \"{}\", \"path\": \"{}\", \"contention\": \"{}\", \
             \"threads\": {}, \"committed_tx_s\": {:.1}, \"abort_rate\": {:.4}}}{}\n",
            r.series,
            r.path,
            r.contention,
            r.threads,
            r.committed_tx_s,
            r.abort_rate,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write baseline json");
    println!("wrote {out_path}");
}
