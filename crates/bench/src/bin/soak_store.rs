//! Soak test: drive a few thousand blocks through a windowed `Store` (trie
//! retention + snapshot flattening both on) and assert the disk footprint
//! plateaus — node count, retained roots, and flat-base file length must
//! all stay bounded as the chain grows without bound.
//!
//! Usage: `cargo run -p bp-bench --release --bin soak_store`
//!
//! * `BP_SOAK_BLOCKS` — chain length to drive (default 3000);
//! * `BP_SOAK_WINDOW` — retention window in blocks (default 8);
//! * `BP_SOAK_DIR` — store directory (default: fresh temp dir, removed on
//!   success).

use std::path::PathBuf;
use std::sync::Arc;

use bp_block::{genesis_header, Block, BlockProfile};
use bp_snap::SnapTree;
use bp_state::{StateReader, WorldState};
use bp_store::{Store, StoreConfig, StoreError};
use bp_types::{AccessKey, Address, H256, U256};

const ACCOUNTS: u64 = 1_000;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn genesis_world() -> WorldState {
    let mut w = WorldState::new();
    for i in 0..ACCOUNTS {
        let a = Address::from_index(i);
        w.set_balance(a, U256::from(1_000_000u64));
        w.set_storage(a, H256::from_low_u64(i % 4), U256::from(i + 1));
    }
    w
}

/// One block's writes over a *fixed* account universe, so live state stays
/// constant and any footprint growth is leaked garbage by definition.
fn mutate(world: &mut WorldState, seq: u64) -> Vec<AccessKey> {
    let mut keys = Vec::new();
    for t in 0..10u64 {
        let addr = Address::from_index((seq * 31 + t * 97) % ACCOUNTS);
        world.set_balance(addr, U256::from(seq * 13 + t + 1));
        keys.push(AccessKey::Balance(addr));
        if t % 3 == 0 {
            let slot = H256::from_low_u64((seq + t) % 4);
            world.set_storage(addr, slot, U256::from(seq + t));
            keys.push(AccessKey::Storage(addr, slot));
        }
    }
    keys
}

fn child_block(parent: &Block, state_root: H256, seq: u64) -> Block {
    let mut header = genesis_header(state_root);
    header.parent_hash = parent.hash();
    header.height = parent.height() + 1;
    header.proposer_seed = seq;
    Block {
        header,
        transactions: vec![],
        profile: BlockProfile::new(),
    }
}

fn main() -> Result<(), StoreError> {
    let blocks = env_u64("BP_SOAK_BLOCKS", 3_000);
    let window = env_u64("BP_SOAK_WINDOW", 8) as usize;
    let (dir, ephemeral): (PathBuf, bool) = match std::env::var("BP_SOAK_DIR") {
        Ok(d) => (PathBuf::from(d), false),
        Err(_) => (
            std::env::temp_dir().join(format!("bp-soak-{}", std::process::id())),
            true,
        ),
    };
    let _ = std::fs::remove_dir_all(&dir);

    let mut world = genesis_world();
    let genesis_root = world.state_root();
    let gblock = Block {
        header: genesis_header(genesis_root),
        transactions: vec![],
        profile: BlockProfile::new(),
    };
    let mut store = Store::open_with(
        &dir,
        StoreConfig {
            retention_window: Some(window),
            snapshots: true,
            group_commit: None,
        },
    )?;
    store.initialize(&world, &gblock)?;
    let snaps: SnapTree = store.snapshots().expect("snapshots enabled").clone();
    // Run the chain through a base-backed world, like a long-lived node.
    world.rebase(Arc::new(
        snaps.reader(genesis_root).expect("genesis reader"),
    ));

    let mut parent = gblock;
    let mut parent_root = genesis_root;
    let warmup = (window as u64 * 2).min(blocks / 2);
    let half = blocks / 2;
    let (mut max_nodes_1, mut max_nodes_2) = (0usize, 0usize);
    let (mut max_flat_1, mut max_flat_2) = (0u64, 0u64);

    for seq in 1..=blocks {
        let keys = mutate(&mut world, seq);
        let root = world.state_root();
        let block = child_block(&parent, root, seq);
        store.put_block(&block)?;
        let (committed, nodes) = world.commit_tries();
        debug_assert_eq!(committed, root);
        store.commit_root(root, &nodes)?;
        let delta = world.delta_for_keys(keys.iter());
        store.snap_add_layer(root, parent_root, seq, delta)?;
        store.commit(block.hash())?;
        world.rebase(Arc::new(snaps.reader(root).expect("head reader")));

        assert!(
            store.roots().len() <= window,
            "block {seq}: {} roots retained, window {window}",
            store.roots().len()
        );
        assert!(
            snaps.layer_count() <= window,
            "block {seq}: {} diff layers, window {window}",
            snaps.layer_count()
        );
        if seq > warmup {
            let (nodes_now, flat_now) = (store.node_count(), snaps.flat_len());
            if seq <= half {
                max_nodes_1 = max_nodes_1.max(nodes_now);
                max_flat_1 = max_flat_1.max(flat_now);
            } else {
                max_nodes_2 = max_nodes_2.max(nodes_now);
                max_flat_2 = max_flat_2.max(flat_now);
            }
        }
        parent = block;
        parent_root = root;
    }

    println!(
        "soak: {blocks} blocks, window {window} | roots {} | nodes max {}/{} | \
         flat max {}/{} bytes | base height {}",
        store.roots().len(),
        max_nodes_1,
        max_nodes_2,
        max_flat_1,
        max_flat_2,
        snaps.base_height(),
    );

    // Plateau assertions: a leak grows roughly linearly, which would make
    // the second-half maxima ~2x the first-half ones. Bounded footprints
    // sawtooth around a constant.
    assert!(
        max_nodes_2 as f64 <= max_nodes_1 as f64 * 1.5,
        "node count still growing: {max_nodes_1} -> {max_nodes_2}"
    );
    assert!(
        max_flat_2 as f64 <= max_flat_1 as f64 * 1.5,
        "flat base still growing: {max_flat_1} -> {max_flat_2}"
    );
    // The flattened base has advanced with the chain.
    assert!(
        snaps.base_height() >= blocks - window as u64,
        "snapshot base lags: height {} after {blocks} blocks",
        snaps.base_height()
    );

    // Reads at the head resolve correctly through the layered stack.
    let reader = snaps.reader(parent_root).expect("head reader");
    for i in (0..ACCOUNTS).step_by(111) {
        let a = Address::from_index(i);
        assert_eq!(
            reader.base_account(&a).map(|acct| acct.balance),
            Some(world.balance(&a)),
            "balance mismatch at {a:?}"
        );
    }

    // And a cold reopen recovers the same head with the same bounds.
    drop(store);
    let reopened = Store::open_with(
        &dir,
        StoreConfig {
            retention_window: Some(window),
            snapshots: true,
            group_commit: None,
        },
    )?;
    assert_eq!(reopened.head(), Some(parent.hash()));
    assert!(reopened.roots().len() <= window);
    assert!(reopened
        .snapshots()
        .expect("snapshots enabled")
        .has_root(parent_root));

    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("soak OK");
    Ok(())
}
