//! Records the `BENCH_state_root.json` baseline: cold (from-scratch) vs
//! incremental (dirty-tracked) state-root computation, for both fully
//! resident worlds and worlds whose reads resolve through a `bp-snap`
//! layered flat base on disk. Plain wall-clock timing so the baseline can
//! be (re)captured anywhere.
//!
//! Usage: `cargo run -p bp-bench --release --bin state_root_baseline [out.json]`
//!
//! Environment knobs (CI smoke and deep sweeps share this binary):
//!
//! * `BP_SR_ACCOUNTS` — comma-separated account counts (default
//!   `1000,10000,100000,1000000`);
//! * `BP_SR_FRACTIONS` — comma-separated dirty fractions (default
//!   `0.001,0.01,0.1`);
//! * `BP_SR_BLOCKS` — override the per-scenario measurement repetitions
//!   ("block budget"; default auto-scales with size);
//! * `BP_SR_10M` — `1` appends a 10M-account sweep (slow; opt-in);
//! * `BP_SR_LAYERED` — `0` skips the snap-backed layered scenarios;
//! * `BP_SR_THREADS` — comma-separated worker counts for the parallel
//!   commit sweep (default `1,2,4,8,16`; `0` skips the sweep);
//! * `BP_SR_APPEND` — `1` appends rows to an existing out file instead of
//!   overwriting it.

use std::sync::Arc;
use std::time::Instant;

use bp_snap::SnapTree;
use bp_state::WorldState;
use bp_types::{Address, H256, U256};

struct Row {
    scenario: String,
    accounts: u64,
    dirty_accounts: usize,
    cold_ms: f64,
    incremental_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.cold_ms / self.incremental_ms
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| v == "1" || v == "true")
        .unwrap_or(false)
}

fn env_list<T: std::str::FromStr + Copy>(name: &str, default: &[T]) -> Vec<T> {
    match std::env::var(name) {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => default.to_vec(),
    }
}

fn build_world(accounts: u64, slots_per_account: u64) -> WorldState {
    let mut world = WorldState::new();
    for i in 0..accounts {
        let addr = Address::from_index(i);
        world.set_balance(addr, U256::from(1_000_000 + i));
        world.set_nonce(addr, i % 7);
        for s in 0..slots_per_account {
            world.set_storage(addr, H256::from_low_u64(s), U256::from(i * 10 + s + 1));
        }
    }
    world
}

fn dirty_accounts(world: &mut WorldState, total: u64, count: usize, salt: u64) {
    for i in 0..count {
        let addr = Address::from_index((i as u64 * 97 + salt) % total);
        world.set_balance(addr, U256::from(salt * 1000 + i as u64 + 1));
        world.set_storage(addr, H256::from_low_u64(1), U256::from(salt + i as u64 + 1));
    }
}

/// Average milliseconds of `reps` runs of `f`.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1000.0 / reps as f64
}

/// Measures `world` in place: one cold rebuild (priced separately so huge
/// layered worlds do not pay it `reps` times) and `reps` incremental
/// dirty-then-recommit rounds.
fn measure_world(
    world: &mut WorldState,
    scenario: &str,
    accounts: u64,
    dirty: usize,
    reps: usize,
) -> Row {
    let _ = world.state_root(); // prime the incremental memo
    let cold_reps = if accounts >= 1_000_000 {
        1
    } else {
        reps.min(3)
    };
    let cold_ms = time_ms(cold_reps, || {
        std::hint::black_box(world.rebuild_root());
    });
    let mut salt = 0u64;
    let incremental_ms = time_ms(reps, || {
        salt += 1;
        dirty_accounts(world, accounts, dirty, salt);
        std::hint::black_box(world.state_root());
    });
    Row {
        scenario: scenario.to_string(),
        accounts,
        dirty_accounts: dirty,
        cold_ms,
        incremental_ms,
    }
}

fn measure(scenario: &str, accounts: u64, dirty: usize, reps: usize) -> Row {
    let mut world = build_world(accounts, 2);
    measure_world(&mut world, scenario, accounts, dirty, reps)
}

/// The same sweep, but with the world rebased onto a disk-backed snapshot
/// base: resident account bodies are shed, every miss resolves through the
/// flat file, and the incremental recommit pays real layer/disk probes.
fn measure_layered(accounts: u64, fraction: f64, dirty: usize, reps: usize) -> Row {
    let mut world = build_world(accounts, 2);
    let root = world.state_root();
    let dir = std::env::temp_dir().join(format!("bp-sr-layered-{accounts}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tree = SnapTree::open(&dir).expect("open snapshot dir");
    tree.seed(&world.full_delta(), root, 0)
        .expect("seed flat base");
    world.rebase(Arc::new(tree.reader(root).expect("reader at seeded root")));
    let row = measure_world(
        &mut world,
        &format!("layered_f{fraction}"),
        accounts,
        dirty,
        reps,
    );
    drop(world);
    let _ = std::fs::remove_dir_all(&dir);
    row
}

/// One 132-transaction block of transfers over a 10k-account world: each
/// transfer dirties the sender's balance+nonce and the recipient's balance.
fn measure_block_scenario(reps: usize) -> Row {
    let accounts = 10_000u64;
    let mut world = build_world(accounts, 2);
    let _ = world.state_root();
    let cold_ms = time_ms(reps, || {
        std::hint::black_box(world.rebuild_root());
    });
    let mut salt = 0u64;
    let incremental_ms = time_ms(reps, || {
        salt += 1;
        for t in 0..132u64 {
            let sender = Address::from_index((t * 37 + salt) % accounts);
            let recipient = Address::from_index((t * 61 + salt * 13) % accounts);
            world.set_balance(sender, U256::from(salt * 7 + t));
            world.set_nonce(sender, salt + t);
            world.set_balance(recipient, U256::from(salt * 11 + t));
        }
        std::hint::black_box(world.state_root());
    });
    Row {
        scenario: "block_132tx".to_string(),
        accounts,
        dirty_accounts: 264,
        cold_ms,
        incremental_ms,
    }
}

/// One cell of the parallel-commit sweep: the same 1%-dirty incremental
/// recommit with the commit worker cap pinned to `threads` — the measured
/// wall time on *this* host plus the calibrated-model makespan (per-subtree
/// costs measured serially, then packed over `threads` lanes exactly the
/// way `Trie::apply_batch` round-robins its 16 shards).
struct ThreadRow {
    accounts: u64,
    dirty_accounts: usize,
    threads: usize,
    incremental_ms: f64,
    modeled_ms: f64,
    final_root: H256,
}

/// Calibrates the shardable account-trie work for a `dirty`-update batch
/// over an `accounts`-key trie: measures each first-nibble subtree's
/// apply+hash cost in isolation (real wall time, serial, so a 1-core host
/// calibrates the same vector an N-core host does) and the full serial
/// commit. Returns `(per-shard ms, serial residue ms)`; the residue is the
/// unshardable remainder (root-branch merge, batch partitioning).
fn calibrate_shards(accounts: u64, dirty: usize, reps: usize) -> (Vec<f64>, f64) {
    use bp_crypto::keccak256;
    let account_body = |i: u64, salt: u64| {
        // ~70 bytes, the size of an RLP account body.
        let mut v = vec![0u8; 70];
        v[..8].copy_from_slice(&i.to_be_bytes());
        v[8..16].copy_from_slice(&salt.to_be_bytes());
        v
    };
    let mut base = bp_state::trie::Trie::new();
    for i in 0..accounts {
        base.insert(keccak256(&i.to_be_bytes()).as_bytes(), account_body(i, 0));
    }
    let _ = base.root_hash(); // prime the per-node memo; clones share it
    let batch: Vec<(Vec<u8>, Option<Vec<u8>>)> = (0..dirty as u64)
        .map(|j| {
            let i = (j * 97) % accounts;
            (
                keccak256(&i.to_be_bytes()).as_bytes().to_vec(),
                Some(account_body(i, j + 1)),
            )
        })
        .collect();
    type Update = (Vec<u8>, Option<Vec<u8>>);
    let mut shards: Vec<Vec<Update>> = (0..16).map(|_| Vec::new()).collect();
    for (k, v) in &batch {
        shards[(k[0] >> 4) as usize].push((k.clone(), v.clone()));
    }
    let shard_ms: Vec<f64> = shards
        .iter()
        .map(|shard| {
            if shard.is_empty() {
                return 0.0;
            }
            time_ms(reps, || {
                let mut t = base.clone();
                t.apply_batch(shard.clone(), 1);
                std::hint::black_box(t.root_hash());
            })
        })
        .collect();
    let full_ms = time_ms(reps, || {
        let mut t = base.clone();
        t.apply_batch(batch.clone(), 1);
        std::hint::black_box(t.root_hash());
    });
    let residue = (full_ms - shard_ms.iter().sum::<f64>()).max(0.0);
    (shard_ms, residue)
}

/// The modeled makespan of a sharded commit at `threads` workers: the 16
/// subtree costs are dealt round-robin over `min(threads, 16)` lanes in
/// shard order — the exact assignment `Trie::apply_batch` uses — and the
/// serial residue is added on top.
fn modeled_makespan(shard_ms: &[f64], residue: f64, threads: usize) -> f64 {
    let lanes = threads.clamp(1, 16);
    let mut lane_ms = vec![0.0f64; lanes];
    for (next, &ms) in shard_ms.iter().filter(|&&ms| ms > 0.0).enumerate() {
        lane_ms[next % lanes] += ms;
    }
    residue + lane_ms.iter().cloned().fold(0.0, f64::max)
}

/// Sweeps `set_commit_threads` over `threads_list` on identical worlds and
/// identical dirty sequences, so every cell commits the exact same state.
/// Returns one row per worker count; the caller asserts the roots agree.
fn measure_thread_sweep(
    accounts: u64,
    fraction: f64,
    threads_list: &[usize],
    reps: usize,
) -> Vec<ThreadRow> {
    let dirty = ((accounts as f64 * fraction) as usize).max(1);
    let (shard_ms, residue) = calibrate_shards(accounts, dirty, reps);
    let base = build_world(accounts, 2);
    let _ = base.state_root(); // prime the memo once; clones share it
    threads_list
        .iter()
        .map(|&threads| {
            let mut world = base.clone();
            world.set_commit_threads(threads.max(1));
            let mut salt = 0u64;
            let incremental_ms = time_ms(reps, || {
                salt += 1;
                dirty_accounts(&mut world, accounts, dirty, salt);
                std::hint::black_box(world.state_root());
            });
            ThreadRow {
                accounts,
                dirty_accounts: dirty,
                threads,
                incremental_ms,
                modeled_ms: modeled_makespan(&shard_ms, residue, threads),
                final_root: world.state_root(),
            }
        })
        .collect()
}

/// Default measurement repetitions for a world size, unless `BP_SR_BLOCKS`
/// pins the budget.
fn reps_for(accounts: u64, budget: Option<u64>) -> usize {
    if let Some(b) = budget {
        return b.max(1) as usize;
    }
    match accounts {
        0..=1_000 => 50,
        1_001..=10_000 => 20,
        10_001..=100_000 => 3,
        _ => 1,
    }
}

fn main() {
    if cfg!(debug_assertions) {
        eprintln!(
            "run with --release: debug builds cross-check every incremental root \
             against a from-scratch rebuild, which is exactly what this measures"
        );
        std::process::exit(2);
    }
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_state_root.json".to_string());

    let mut account_counts = env_list("BP_SR_ACCOUNTS", &[1_000u64, 10_000, 100_000, 1_000_000]);
    if env_flag("BP_SR_10M") {
        account_counts.push(10_000_000);
    }
    let fractions = env_list("BP_SR_FRACTIONS", &[0.001f64, 0.01, 0.1]);
    let budget = env_u64("BP_SR_BLOCKS");
    let layered = !std::env::var("BP_SR_LAYERED")
        .map(|v| v == "0")
        .unwrap_or(false);

    let threads_list: Vec<usize> = env_list("BP_SR_THREADS", &[1usize, 2, 4, 8, 16])
        .into_iter()
        .filter(|&t| t > 0)
        .collect();

    let mut rows = Vec::new();
    for &accounts in &account_counts {
        let reps = reps_for(accounts, budget);
        for &fraction in &fractions {
            let dirty = ((accounts as f64 * fraction) as usize).max(1);
            rows.push(measure(
                &format!("dirty_f{fraction}"),
                accounts,
                dirty,
                reps,
            ));
            if layered {
                rows.push(measure_layered(accounts, fraction, dirty, reps));
            }
        }
    }
    rows.push(measure_block_scenario(reps_for(10_000, budget)));

    // Parallel-commit sweep: 1%-dirty recommit across worker counts, only
    // for worlds big enough for subtree hashing to matter.
    let mut thread_rows: Vec<ThreadRow> = Vec::new();
    if !threads_list.is_empty() {
        for &accounts in account_counts.iter().filter(|&&a| a >= 10_000) {
            let sweep =
                measure_thread_sweep(accounts, 0.01, &threads_list, reps_for(accounts, budget));
            // Equality gate: every worker count commits the same root.
            for pair in sweep.windows(2) {
                assert_eq!(
                    pair[0].final_root, pair[1].final_root,
                    "parallel commit diverged at {accounts} accounts: t{} vs t{}",
                    pair[0].threads, pair[1].threads
                );
            }
            thread_rows.extend(sweep);
        }
    }

    println!(
        "{:>14} {:>9} {:>7} {:>12} {:>14} {:>9}",
        "scenario", "accounts", "dirty", "cold(ms)", "increm(ms)", "speedup"
    );
    let mut row_lines = String::new();
    for (i, r) in rows.iter().enumerate() {
        println!(
            "{:>14} {:>9} {:>7} {:>12.3} {:>14.4} {:>8.1}x",
            r.scenario,
            r.accounts,
            r.dirty_accounts,
            r.cold_ms,
            r.incremental_ms,
            r.speedup()
        );
        row_lines.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"accounts\": {}, \"dirty_accounts\": {}, \
             \"cold_ms\": {:.4}, \"incremental_ms\": {:.4}, \"speedup\": {:.2}}}{}\n",
            r.scenario,
            r.accounts,
            r.dirty_accounts,
            r.cold_ms,
            r.incremental_ms,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }

    // Per-account-size t=1 baselines give each sweep cell its speedup.
    let t1_ms = |accounts: u64| {
        thread_rows
            .iter()
            .find(|r| r.accounts == accounts && r.threads == 1)
            .map(|r| r.incremental_ms)
    };
    let modeled_t1 = |accounts: u64| {
        thread_rows
            .iter()
            .find(|r| r.accounts == accounts && r.threads == 1)
            .map(|r| r.modeled_ms)
    };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut sweep_lines = String::new();
    if !thread_rows.is_empty() {
        println!(
            "\nparallel commit sweep ({host_threads} real thread(s) on this host; \
             modeled = calibrated per-subtree costs packed over the workers):"
        );
        println!(
            "{:>9} {:>7} {:>8} {:>14} {:>9} {:>13} {:>9}",
            "accounts", "dirty", "threads", "increm(ms)", "vs t1", "modeled(ms)", "modeled"
        );
        for (i, r) in thread_rows.iter().enumerate() {
            let speedup = t1_ms(r.accounts).map(|t1| t1 / r.incremental_ms);
            let modeled_speedup = modeled_t1(r.accounts).map(|t1| t1 / r.modeled_ms);
            println!(
                "{:>9} {:>7} {:>8} {:>14.4} {:>8} {:>13.4} {:>8}",
                r.accounts,
                r.dirty_accounts,
                r.threads,
                r.incremental_ms,
                speedup
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".to_string()),
                r.modeled_ms,
                modeled_speedup
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".to_string()),
            );
            sweep_lines.push_str(&format!(
                "    {{\"accounts\": {}, \"dirty_accounts\": {}, \"threads\": {}, \
                 \"host_threads\": {}, \"incremental_ms\": {:.4}, \"speedup_vs_t1\": {}, \
                 \"modeled_ms\": {:.4}, \"modeled_speedup_vs_t1\": {}, \"root\": \"{:?}\"}}{}\n",
                r.accounts,
                r.dirty_accounts,
                r.threads,
                host_threads,
                r.incremental_ms,
                speedup
                    .map(|s| format!("{s:.2}"))
                    .unwrap_or_else(|| "null".to_string()),
                r.modeled_ms,
                modeled_speedup
                    .map(|s| format!("{s:.2}"))
                    .unwrap_or_else(|| "null".to_string()),
                r.final_root,
                if i + 1 == thread_rows.len() { "" } else { "," }
            ));
        }
    }
    // `thread_sweep` sits before `rows` so the append-mode splice (which
    // targets the file's last array close) keeps landing inside `rows`.
    let fresh = format!(
        "{{\n  \"bench\": \"state_root\",\n  \"unit\": \"ms\",\n  \
         \"thread_sweep\": [\n{sweep_lines}  ],\n  \"rows\": [\n{row_lines}  ]\n}}\n"
    );
    let json = if env_flag("BP_SR_APPEND") {
        match std::fs::read_to_string(&out_path) {
            Ok(existing) if existing.contains("\"rows\": [") => {
                // Splice the new rows in front of the closing "  ]".
                let cut = existing.rfind("  ]").expect("rows array close");
                let mut head = existing[..cut].trim_end().to_string();
                if !head.ends_with('[') {
                    head.push(',');
                }
                head.push('\n');
                format!("{head}{row_lines}  ]\n}}\n")
            }
            _ => fresh,
        }
    } else {
        fresh
    };
    std::fs::write(&out_path, json).expect("write baseline json");
    println!("\nwrote {out_path}");

    let block = rows.last().expect("block scenario present");
    assert!(
        block.speedup() >= 5.0,
        "acceptance: 132-tx block over 10k accounts must be >= 5x vs cold, got {:.1}x",
        block.speedup()
    );
    // Acceptance for the parallel commit: 8 workers must clear 1.5x over
    // serial on the 1M-account / 1%-dirty recommit (when the sweep ran at
    // that size — CI smokes run reduced grids). The gate reads the real
    // measurement when the host has the cores to express it, and the
    // calibrated model otherwise (same rule the other scaling figures use:
    // per-unit costs are measured for real, the packing is arithmetic).
    if let (Some(t1), Some(t8)) = (
        t1_ms(1_000_000).zip(modeled_t1(1_000_000)),
        thread_rows
            .iter()
            .find(|r| r.accounts == 1_000_000 && r.threads == 8)
            .map(|r| (r.incremental_ms, r.modeled_ms)),
    ) {
        let speedup = if host_threads >= 8 {
            t1.0 / t8.0
        } else {
            t1.1 / t8.1
        };
        assert!(
            speedup >= 1.5,
            "acceptance: parallel commit at 8 threads must be >= 1.5x over serial \
             on 1M accounts / 1% dirty, got {speedup:.2}x \
             (host_threads {host_threads}, measured {:.2}ms -> {:.2}ms, \
             modeled {:.2}ms -> {:.2}ms)",
            t1.0,
            t8.0,
            t1.1,
            t8.1
        );
    }
}
