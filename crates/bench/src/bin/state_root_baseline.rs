//! Records the `BENCH_state_root.json` baseline: cold (from-scratch) vs
//! incremental (dirty-tracked) state-root computation, matching the
//! workloads of the `state_root` Criterion bench but using plain wall-clock
//! timing so the baseline can be (re)captured anywhere.
//!
//! Usage: `cargo run -p bp-bench --release --bin state_root_baseline [out.json]`

use std::time::Instant;

use bp_state::WorldState;
use bp_types::{Address, H256, U256};

struct Row {
    scenario: String,
    accounts: u64,
    dirty_accounts: usize,
    cold_ms: f64,
    incremental_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.cold_ms / self.incremental_ms
    }
}

fn build_world(accounts: u64, slots_per_account: u64) -> WorldState {
    let mut world = WorldState::new();
    for i in 0..accounts {
        let addr = Address::from_index(i);
        world.set_balance(addr, U256::from(1_000_000 + i));
        world.set_nonce(addr, i % 7);
        for s in 0..slots_per_account {
            world.set_storage(addr, H256::from_low_u64(s), U256::from(i * 10 + s + 1));
        }
    }
    world
}

fn dirty_accounts(world: &mut WorldState, total: u64, count: usize, salt: u64) {
    for i in 0..count {
        let addr = Address::from_index((i as u64 * 97 + salt) % total);
        world.set_balance(addr, U256::from(salt * 1000 + i as u64 + 1));
        world.set_storage(addr, H256::from_low_u64(1), U256::from(salt + i as u64 + 1));
    }
}

/// Average milliseconds of `reps` runs of `f`.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1000.0 / reps as f64
}

fn measure(scenario: &str, accounts: u64, dirty: usize, reps: usize) -> Row {
    let mut world = build_world(accounts, 2);
    let _ = world.state_root(); // prime the incremental memo
    let cold_ms = time_ms(reps, || {
        std::hint::black_box(world.rebuild_root());
    });
    let mut salt = 0u64;
    let incremental_ms = time_ms(reps, || {
        salt += 1;
        dirty_accounts(&mut world, accounts, dirty, salt);
        std::hint::black_box(world.state_root());
    });
    Row {
        scenario: scenario.to_string(),
        accounts,
        dirty_accounts: dirty,
        cold_ms,
        incremental_ms,
    }
}

/// One 132-transaction block of transfers over a 10k-account world: each
/// transfer dirties the sender's balance+nonce and the recipient's balance.
fn measure_block_scenario(reps: usize) -> Row {
    let accounts = 10_000u64;
    let mut world = build_world(accounts, 2);
    let _ = world.state_root();
    let cold_ms = time_ms(reps, || {
        std::hint::black_box(world.rebuild_root());
    });
    let mut salt = 0u64;
    let incremental_ms = time_ms(reps, || {
        salt += 1;
        for t in 0..132u64 {
            let sender = Address::from_index((t * 37 + salt) % accounts);
            let recipient = Address::from_index((t * 61 + salt * 13) % accounts);
            world.set_balance(sender, U256::from(salt * 7 + t));
            world.set_nonce(sender, salt + t);
            world.set_balance(recipient, U256::from(salt * 11 + t));
        }
        std::hint::black_box(world.state_root());
    });
    Row {
        scenario: "block_132tx".to_string(),
        accounts,
        dirty_accounts: 264,
        cold_ms,
        incremental_ms,
    }
}

fn main() {
    if cfg!(debug_assertions) {
        eprintln!(
            "run with --release: debug builds cross-check every incremental root \
             against a from-scratch rebuild, which is exactly what this measures"
        );
        std::process::exit(2);
    }
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_state_root.json".to_string());

    let mut rows = Vec::new();
    for &(accounts, reps) in &[(1_000u64, 50usize), (10_000, 20), (100_000, 3)] {
        for &fraction in &[0.001f64, 0.01, 0.1] {
            let dirty = ((accounts as f64 * fraction) as usize).max(1);
            let name = format!("dirty_f{fraction}");
            rows.push(measure(&name, accounts, dirty, reps));
        }
    }
    rows.push(measure_block_scenario(20));

    println!(
        "{:>14} {:>9} {:>7} {:>12} {:>14} {:>9}",
        "scenario", "accounts", "dirty", "cold(ms)", "increm(ms)", "speedup"
    );
    let mut json =
        String::from("{\n  \"bench\": \"state_root\",\n  \"unit\": \"ms\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        println!(
            "{:>14} {:>9} {:>7} {:>12.3} {:>14.4} {:>8.1}x",
            r.scenario,
            r.accounts,
            r.dirty_accounts,
            r.cold_ms,
            r.incremental_ms,
            r.speedup()
        );
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"accounts\": {}, \"dirty_accounts\": {}, \
             \"cold_ms\": {:.4}, \"incremental_ms\": {:.4}, \"speedup\": {:.2}}}{}\n",
            r.scenario,
            r.accounts,
            r.dirty_accounts,
            r.cold_ms,
            r.incremental_ms,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write baseline json");
    println!("\nwrote {out_path}");

    let block = rows.last().expect("block scenario present");
    assert!(
        block.speedup() >= 5.0,
        "acceptance: 132-tx block over 10k accounts must be >= 5x vs cold, got {:.1}x",
        block.speedup()
    );
}
