//! Records the `BENCH_state_root.json` baseline: cold (from-scratch) vs
//! incremental (dirty-tracked) state-root computation, for both fully
//! resident worlds and worlds whose reads resolve through a `bp-snap`
//! layered flat base on disk. Plain wall-clock timing so the baseline can
//! be (re)captured anywhere.
//!
//! Usage: `cargo run -p bp-bench --release --bin state_root_baseline [out.json]`
//!
//! Environment knobs (CI smoke and deep sweeps share this binary):
//!
//! * `BP_SR_ACCOUNTS` — comma-separated account counts (default
//!   `1000,10000,100000,1000000`);
//! * `BP_SR_FRACTIONS` — comma-separated dirty fractions (default
//!   `0.001,0.01,0.1`);
//! * `BP_SR_BLOCKS` — override the per-scenario measurement repetitions
//!   ("block budget"; default auto-scales with size);
//! * `BP_SR_10M` — `1` appends a 10M-account sweep (slow; opt-in);
//! * `BP_SR_LAYERED` — `0` skips the snap-backed layered scenarios;
//! * `BP_SR_APPEND` — `1` appends rows to an existing out file instead of
//!   overwriting it.

use std::sync::Arc;
use std::time::Instant;

use bp_snap::SnapTree;
use bp_state::WorldState;
use bp_types::{Address, H256, U256};

struct Row {
    scenario: String,
    accounts: u64,
    dirty_accounts: usize,
    cold_ms: f64,
    incremental_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.cold_ms / self.incremental_ms
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| v == "1" || v == "true")
        .unwrap_or(false)
}

fn env_list<T: std::str::FromStr + Copy>(name: &str, default: &[T]) -> Vec<T> {
    match std::env::var(name) {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => default.to_vec(),
    }
}

fn build_world(accounts: u64, slots_per_account: u64) -> WorldState {
    let mut world = WorldState::new();
    for i in 0..accounts {
        let addr = Address::from_index(i);
        world.set_balance(addr, U256::from(1_000_000 + i));
        world.set_nonce(addr, i % 7);
        for s in 0..slots_per_account {
            world.set_storage(addr, H256::from_low_u64(s), U256::from(i * 10 + s + 1));
        }
    }
    world
}

fn dirty_accounts(world: &mut WorldState, total: u64, count: usize, salt: u64) {
    for i in 0..count {
        let addr = Address::from_index((i as u64 * 97 + salt) % total);
        world.set_balance(addr, U256::from(salt * 1000 + i as u64 + 1));
        world.set_storage(addr, H256::from_low_u64(1), U256::from(salt + i as u64 + 1));
    }
}

/// Average milliseconds of `reps` runs of `f`.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1000.0 / reps as f64
}

/// Measures `world` in place: one cold rebuild (priced separately so huge
/// layered worlds do not pay it `reps` times) and `reps` incremental
/// dirty-then-recommit rounds.
fn measure_world(
    world: &mut WorldState,
    scenario: &str,
    accounts: u64,
    dirty: usize,
    reps: usize,
) -> Row {
    let _ = world.state_root(); // prime the incremental memo
    let cold_reps = if accounts >= 1_000_000 {
        1
    } else {
        reps.min(3)
    };
    let cold_ms = time_ms(cold_reps, || {
        std::hint::black_box(world.rebuild_root());
    });
    let mut salt = 0u64;
    let incremental_ms = time_ms(reps, || {
        salt += 1;
        dirty_accounts(world, accounts, dirty, salt);
        std::hint::black_box(world.state_root());
    });
    Row {
        scenario: scenario.to_string(),
        accounts,
        dirty_accounts: dirty,
        cold_ms,
        incremental_ms,
    }
}

fn measure(scenario: &str, accounts: u64, dirty: usize, reps: usize) -> Row {
    let mut world = build_world(accounts, 2);
    measure_world(&mut world, scenario, accounts, dirty, reps)
}

/// The same sweep, but with the world rebased onto a disk-backed snapshot
/// base: resident account bodies are shed, every miss resolves through the
/// flat file, and the incremental recommit pays real layer/disk probes.
fn measure_layered(accounts: u64, fraction: f64, dirty: usize, reps: usize) -> Row {
    let mut world = build_world(accounts, 2);
    let root = world.state_root();
    let dir = std::env::temp_dir().join(format!("bp-sr-layered-{accounts}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tree = SnapTree::open(&dir).expect("open snapshot dir");
    tree.seed(&world.full_delta(), root, 0)
        .expect("seed flat base");
    world.rebase(Arc::new(tree.reader(root).expect("reader at seeded root")));
    let row = measure_world(
        &mut world,
        &format!("layered_f{fraction}"),
        accounts,
        dirty,
        reps,
    );
    drop(world);
    let _ = std::fs::remove_dir_all(&dir);
    row
}

/// One 132-transaction block of transfers over a 10k-account world: each
/// transfer dirties the sender's balance+nonce and the recipient's balance.
fn measure_block_scenario(reps: usize) -> Row {
    let accounts = 10_000u64;
    let mut world = build_world(accounts, 2);
    let _ = world.state_root();
    let cold_ms = time_ms(reps, || {
        std::hint::black_box(world.rebuild_root());
    });
    let mut salt = 0u64;
    let incremental_ms = time_ms(reps, || {
        salt += 1;
        for t in 0..132u64 {
            let sender = Address::from_index((t * 37 + salt) % accounts);
            let recipient = Address::from_index((t * 61 + salt * 13) % accounts);
            world.set_balance(sender, U256::from(salt * 7 + t));
            world.set_nonce(sender, salt + t);
            world.set_balance(recipient, U256::from(salt * 11 + t));
        }
        std::hint::black_box(world.state_root());
    });
    Row {
        scenario: "block_132tx".to_string(),
        accounts,
        dirty_accounts: 264,
        cold_ms,
        incremental_ms,
    }
}

/// Default measurement repetitions for a world size, unless `BP_SR_BLOCKS`
/// pins the budget.
fn reps_for(accounts: u64, budget: Option<u64>) -> usize {
    if let Some(b) = budget {
        return b.max(1) as usize;
    }
    match accounts {
        0..=1_000 => 50,
        1_001..=10_000 => 20,
        10_001..=100_000 => 3,
        _ => 1,
    }
}

fn main() {
    if cfg!(debug_assertions) {
        eprintln!(
            "run with --release: debug builds cross-check every incremental root \
             against a from-scratch rebuild, which is exactly what this measures"
        );
        std::process::exit(2);
    }
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_state_root.json".to_string());

    let mut account_counts = env_list("BP_SR_ACCOUNTS", &[1_000u64, 10_000, 100_000, 1_000_000]);
    if env_flag("BP_SR_10M") {
        account_counts.push(10_000_000);
    }
    let fractions = env_list("BP_SR_FRACTIONS", &[0.001f64, 0.01, 0.1]);
    let budget = env_u64("BP_SR_BLOCKS");
    let layered = !std::env::var("BP_SR_LAYERED")
        .map(|v| v == "0")
        .unwrap_or(false);

    let mut rows = Vec::new();
    for &accounts in &account_counts {
        let reps = reps_for(accounts, budget);
        for &fraction in &fractions {
            let dirty = ((accounts as f64 * fraction) as usize).max(1);
            rows.push(measure(
                &format!("dirty_f{fraction}"),
                accounts,
                dirty,
                reps,
            ));
            if layered {
                rows.push(measure_layered(accounts, fraction, dirty, reps));
            }
        }
    }
    rows.push(measure_block_scenario(reps_for(10_000, budget)));

    println!(
        "{:>14} {:>9} {:>7} {:>12} {:>14} {:>9}",
        "scenario", "accounts", "dirty", "cold(ms)", "increm(ms)", "speedup"
    );
    let mut row_lines = String::new();
    for (i, r) in rows.iter().enumerate() {
        println!(
            "{:>14} {:>9} {:>7} {:>12.3} {:>14.4} {:>8.1}x",
            r.scenario,
            r.accounts,
            r.dirty_accounts,
            r.cold_ms,
            r.incremental_ms,
            r.speedup()
        );
        row_lines.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"accounts\": {}, \"dirty_accounts\": {}, \
             \"cold_ms\": {:.4}, \"incremental_ms\": {:.4}, \"speedup\": {:.2}}}{}\n",
            r.scenario,
            r.accounts,
            r.dirty_accounts,
            r.cold_ms,
            r.incremental_ms,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }

    let json = if env_flag("BP_SR_APPEND") {
        match std::fs::read_to_string(&out_path) {
            Ok(existing) if existing.contains("\"rows\": [") => {
                // Splice the new rows in front of the closing "  ]".
                let cut = existing.rfind("  ]").expect("rows array close");
                let mut head = existing[..cut].trim_end().to_string();
                if !head.ends_with('[') {
                    head.push(',');
                }
                head.push('\n');
                format!("{head}{row_lines}  ]\n}}\n")
            }
            _ => format!(
                "{{\n  \"bench\": \"state_root\",\n  \"unit\": \"ms\",\n  \"rows\": [\n{row_lines}  ]\n}}\n"
            ),
        }
    } else {
        format!(
            "{{\n  \"bench\": \"state_root\",\n  \"unit\": \"ms\",\n  \"rows\": [\n{row_lines}  ]\n}}\n"
        )
    };
    std::fs::write(&out_path, json).expect("write baseline json");
    println!("\nwrote {out_path}");

    let block = rows.last().expect("block scenario present");
    assert!(
        block.speedup() >= 5.0,
        "acceptance: 132-tx block over 10k accounts must be >= 5x vs cold, got {:.1}x",
        block.speedup()
    );
}
