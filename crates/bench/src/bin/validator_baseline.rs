//! Validator-pipeline A/B: restructured vs baseline stage structure.
//!
//! The restructured pipeline (subgraph-granular dispatch, overlapped
//! footprint verification, applier *pool*) is compared against the old
//! structure (static gas-LPT lanes, applier-side checks, single serialized
//! block-validation stage) on a window of **same-height** 132-tx blocks —
//! the paper's Figure 5 setup, where independent blocks should overlap in
//! every stage. Records `BENCH_validator.json` with three artefacts:
//!
//! * **gas-time, implementation-calibrated** (primary): the deterministic
//!   bp-sim pipeline with every overhead measured on this machine — serial
//!   EVM execution fixes the gas↔time exchange rate, and the real
//!   preparation, dispatch/result hand-off, footprint matching, per-tx
//!   apply and per-block validation (CoW snapshot + incremental MPT root)
//!   are micro-timed onto the same scale. This is how worker counts beyond
//!   the machine's cores are evaluated (see EXPERIMENTS.md: the evaluation
//!   container has a single CPU). Series over dispatch policy × applier
//!   pool size × 1–16 workers; the headline is restructured vs baseline
//!   committed-tx/s at 8 workers.
//! * **same-height overlap**: per-block block-validation intervals, from
//!   the simulator (virtual time, exact) and from the real pipeline
//!   (wall clock, `[t_verdict − validate, t_verdict]` per block) — with one
//!   applier the intervals queue; with a pool they overlap.
//! * **wall-clock** (secondary): the real [`ValidatorPipeline`] on real
//!   threads, with per-stage timings (prepare / queue-wait / execute /
//!   validate). Honest but flat on a single-core machine — reported for
//!   completeness, not for scaling claims.
//!
//! Usage: `cargo run -p bp-bench --release --bin validator_baseline
//! [out.json]` (`BP_BLOCKS=N` overrides the same-height window size).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use blockpilot_core::{
    ConflictGranularity, DispatchPolicy, PipelineConfig, Schedule, Scheduler, ValidatorPipeline,
};
use bp_baseline::execute_block_serially;
use bp_bench::{block_count, generate_fixtures, BlockFixture};
use bp_block::Block;
use bp_concurrent::ResultSlots;
use bp_sim::{simulate_validator_pipeline, CostModel, PipelineSimConfig};
use bp_state::WorldState;
use bp_types::{AccessKey, BlockHash, RwSet, U256};
use bp_workload::WorkloadConfig;

const WORKERS: [usize; 5] = [1, 2, 4, 8, 16];
const APPLIERS: [usize; 3] = [1, 2, 4];
const POLICIES: [DispatchPolicy; 2] = [DispatchPolicy::Subgraph, DispatchPolicy::StaticLanes];

fn policy_name(policy: DispatchPolicy) -> &'static str {
    match policy {
        DispatchPolicy::Subgraph => "subgraph",
        DispatchPolicy::StaticLanes => "static_lanes",
    }
}

/// The dispatch knob selects the whole job-shape family in the simulator:
/// [`DispatchPolicy::Subgraph`] rows model the restructured pipeline
/// (footprint checks overlapped onto the workers' clocks), while
/// [`DispatchPolicy::StaticLanes`] rows model the old pipeline, whose
/// applier performed the per-transaction checks serially.
fn overlap_verify(policy: DispatchPolicy) -> bool {
    policy == DispatchPolicy::Subgraph
}

/// Generates `count` **same-height sibling** blocks: identical genesis
/// (the funded account/contract set depends only on the config shape), a
/// different seeded transaction stream each. This is the Figure 5 window —
/// independent blocks at one height, all valid on the same parent state.
fn sibling_fixtures(count: usize) -> Vec<BlockFixture> {
    let base = WorkloadConfig::default();
    let siblings: Vec<BlockFixture> = (0..count)
        .map(|i| {
            let config = WorkloadConfig {
                seed: base.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
                ..WorkloadConfig::default()
            };
            generate_fixtures(config, 1).remove(0)
        })
        .collect();
    let root = siblings[0].pre_state.state_root();
    for f in &siblings[1..] {
        assert_eq!(f.pre_state.state_root(), root, "siblings share one genesis");
    }
    siblings
}

/// Machine-specific constants tying gas-time to this host's wall clock.
struct Calibration {
    /// Execution gas the serial EVM retires per microsecond.
    gas_per_us: f64,
    /// Mean microseconds of preparation (scheduling) per transaction.
    prepare_us: f64,
    /// Mean microseconds of per-transaction dispatch and result hand-off
    /// (footprint reconstruction, overlay update, lock-free slot
    /// publish/take).
    dispatch_us: f64,
    /// Mean microseconds of one footprint comparison against the profile.
    match_us: f64,
    /// Mean microseconds of the applier's per-transaction apply.
    applier_us: f64,
    /// Mean microseconds of the fixed per-block validation work (CoW
    /// snapshot + incremental MPT root over the dirty set).
    applier_block_us: f64,
}

impl Calibration {
    fn gas(us: f64) -> u64 {
        us.max(0.0).round().max(1.0) as u64
    }

    /// The A/B model: every validator-side overhead in it is measured on
    /// this host. Proposer-only constants are zeroed — the validator sims
    /// never read them — and the §5.6 block-switch penalty is zero because
    /// the real worker pool's "context switch" is just a channel dequeue,
    /// already inside `per_tx_dispatch`.
    fn implementation_model(&self) -> CostModel {
        CostModel {
            per_tx_dispatch: Self::gas(self.dispatch_us * self.gas_per_us),
            prepare_per_tx: Self::gas(self.prepare_us * self.gas_per_us),
            applier_per_tx: Self::gas(self.applier_us * self.gas_per_us),
            match_per_tx: Self::gas(self.match_us * self.gas_per_us),
            applier_block: Self::gas(self.applier_block_us * self.gas_per_us),
            commit_sync: 0,
            commit_admit: 0,
            state_contention_permille: 0,
            stm_validate: 0,
            block_switch: 0,
            applier_switch: 0,
        }
    }
}

/// Trials per calibration microbench. Each keeps its *fastest* trial —
/// on a shared host, scheduler noise only ever adds time, so min-of-N is
/// the least-biased estimate of the true section length (and max-of-N of
/// the execution rate). A single-trial calibration can swing the derived
/// gas costs by ±20% run to run.
const CALIBRATION_TRIALS: usize = 5;

/// Measures the serial execution rate and micro-times each pipeline stage
/// on the real structures (single-threaded: we want section *length*, not
/// contention — the simulator supplies the contention).
fn calibrate(fixtures: &[BlockFixture]) -> Calibration {
    let txs: usize = fixtures.iter().map(|f| f.profile.len()).sum();

    let mut gas_per_us = 0.0f64;
    for _ in 0..CALIBRATION_TRIALS {
        let started = Instant::now();
        let mut gas_total = 0u64;
        for f in fixtures {
            let out =
                execute_block_serially(&f.pre_state, &f.env, &f.txs).expect("fixtures replay");
            std::hint::black_box(&out.post_state);
            gas_total += out.gas_used;
        }
        let exec_us = started.elapsed().as_secs_f64() * 1e6;
        gas_per_us = gas_per_us.max(gas_total as f64 / exec_us);
    }

    // Preparation: the real scheduler over the block profile (dependency
    // subgraphs + gas-LPT packing, the more expensive of the two policies).
    let scheduler = Scheduler::new(ConflictGranularity::Account);
    let mut prepare_us = f64::INFINITY;
    for _ in 0..CALIBRATION_TRIALS {
        let started = Instant::now();
        for f in fixtures {
            std::hint::black_box(scheduler.schedule(&f.profile, 8));
        }
        prepare_us = prepare_us.min(started.elapsed().as_secs_f64() * 1e6 / txs as f64);
    }

    // Dispatch + result hand-off: footprint reconstruction, job-local
    // overlay update, and the lock-free slot publish/take — the worker
    // loop's per-transaction bookkeeping around the EVM call.
    let mut dispatch_us = f64::INFINITY;
    for _ in 0..CALIBRATION_TRIALS {
        let started = Instant::now();
        for f in fixtures {
            let slots: ResultSlots<RwSet> = ResultSlots::new(f.profile.len());
            let mut overlay: HashMap<AccessKey, U256> = HashMap::new();
            for (i, entry) in f.profile.entries.iter().enumerate() {
                let rw = entry.rw();
                for (key, value) in &entry.writes {
                    overlay.insert(*key, *value);
                }
                slots.publish(i, rw);
            }
            for i in 0..f.profile.len() {
                std::hint::black_box(slots.take(i));
            }
            std::hint::black_box(&overlay);
        }
        dispatch_us = dispatch_us.min(started.elapsed().as_secs_f64() * 1e6 / txs as f64);
    }

    // Footprint verification: Algorithm 2's per-transaction comparison of a
    // replayed footprint against the block profile.
    let mut match_us = f64::INFINITY;
    for _ in 0..CALIBRATION_TRIALS {
        let rws: Vec<Vec<RwSet>> = fixtures
            .iter()
            .map(|f| f.profile.entries.iter().map(|e| e.rw()).collect())
            .collect();
        let started = Instant::now();
        for (f, block_rws) in fixtures.iter().zip(&rws) {
            for (i, rw) in block_rws.iter().enumerate() {
                std::hint::black_box(f.profile.matches(i, rw));
            }
        }
        match_us = match_us.min(started.elapsed().as_secs_f64() * 1e6 / txs as f64);
    }

    // The applier's per-transaction apply: profiled writes into the
    // block's working state.
    let mut applier_us = f64::INFINITY;
    for _ in 0..CALIBRATION_TRIALS {
        let started = Instant::now();
        for f in fixtures {
            let mut world = f.pre_state.snapshot();
            for entry in &f.profile.entries {
                world.apply_writes(&entry.writes);
            }
            std::hint::black_box(&world);
        }
        applier_us = applier_us.min(started.elapsed().as_secs_f64() * 1e6 / txs as f64);
    }

    // The full block-validation stage: CoW snapshot, all applies, and the
    // incremental MPT root over the dirty set. Its fixed per-block part is
    // the total minus the per-transaction applies measured above.
    let mut block_us = f64::INFINITY;
    for _ in 0..CALIBRATION_TRIALS {
        let started = Instant::now();
        for f in fixtures {
            let mut world = f.pre_state.snapshot();
            for entry in &f.profile.entries {
                world.apply_writes(&entry.writes);
            }
            std::hint::black_box(world.state_root());
        }
        block_us = block_us.min(started.elapsed().as_secs_f64() * 1e6 / fixtures.len() as f64);
    }
    let mean_txs = txs as f64 / fixtures.len() as f64;
    let applier_block_us = (block_us - applier_us * mean_txs).max(1.0);

    Calibration {
        gas_per_us,
        prepare_us,
        dispatch_us,
        match_us,
        applier_us,
        applier_block_us,
    }
}

struct Row {
    series: &'static str,
    dispatch: DispatchPolicy,
    appliers: usize,
    workers: usize,
    committed_tx_s: f64,
    overlaps: bool,
    stages_us: Option<[f64; 4]>,
}

fn gas_time_rows(fixtures: &[BlockFixture], cal: &Calibration, model: &CostModel) -> Vec<Row> {
    let gas_per_sec = cal.gas_per_us * 1e6;
    let mut rows = Vec::new();
    for workers in WORKERS {
        let schedules: Vec<Schedule> = fixtures
            .iter()
            .map(|f| Scheduler::new(ConflictGranularity::Account).schedule(&f.profile, workers))
            .collect();
        let blocks: Vec<_> = schedules
            .iter()
            .zip(fixtures)
            .map(|(s, f)| (s.clone(), &f.profile))
            .collect();
        for dispatch in POLICIES {
            for appliers in APPLIERS {
                let r = simulate_validator_pipeline(
                    &blocks,
                    &PipelineSimConfig {
                        workers,
                        appliers,
                        dispatch,
                        overlap_verify: overlap_verify(dispatch),
                    },
                    model,
                );
                rows.push(Row {
                    series: "gas_time_calibrated",
                    dispatch,
                    appliers,
                    workers,
                    committed_tx_s: r.total_txs as f64 * gas_per_sec / r.makespan as f64,
                    overlaps: r.validation_overlaps(),
                    stages_us: None,
                });
            }
        }
    }
    rows
}

/// One real-pipeline run over the sealed same-height window; returns
/// committed tx/s and the window-mean per-stage timings in microseconds.
fn run_wall(
    sealed: &[Block],
    pre_state: &Arc<WorldState>,
    parent: BlockHash,
    dispatch: DispatchPolicy,
    appliers: usize,
    workers: usize,
) -> (f64, [f64; 4]) {
    let pipeline = ValidatorPipeline::new(PipelineConfig {
        workers,
        granularity: ConflictGranularity::Account,
        dispatch,
        appliers,
        deferred_root: false,
    });
    pipeline.register_state(parent, Arc::clone(pre_state));
    let total_txs: usize = sealed.iter().map(|b| b.transactions.len()).sum();
    let started = Instant::now();
    let handles: Vec<_> = sealed.iter().map(|b| pipeline.submit(b.clone())).collect();
    let mut stages = [0.0f64; 4];
    for handle in handles {
        let outcome = handle.wait();
        assert!(
            outcome.is_valid(),
            "sibling validates: {:?}",
            outcome.result
        );
        assert_eq!(outcome.executed_txs, outcome.receipts.len());
        let t = outcome.timings;
        for (slot, d) in stages
            .iter_mut()
            .zip([t.prepare, t.queue_wait, t.execute, t.validate])
        {
            *slot += d.as_secs_f64() * 1e6 / sealed.len() as f64;
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    pipeline.shutdown();
    (total_txs as f64 / elapsed, stages)
}

fn wall_clock_rows(sealed: &[Block], pre_state: &Arc<WorldState>, parent: BlockHash) -> Vec<Row> {
    let mut rows = Vec::new();
    for dispatch in POLICIES {
        for appliers in APPLIERS {
            for workers in WORKERS {
                let (tx_s, stages) =
                    run_wall(sealed, pre_state, parent, dispatch, appliers, workers);
                rows.push(Row {
                    series: "wall_clock",
                    dispatch,
                    appliers,
                    workers,
                    committed_tx_s: tx_s,
                    overlaps: false,
                    stages_us: Some(stages),
                });
            }
        }
    }
    rows
}

/// Wall-clock block-validation intervals on the real pipeline: two sibling
/// blocks are submitted together and each verdict is awaited on its own
/// thread, stamping `t_verdict`; the block's interval is
/// `[t_verdict − validate, t_verdict]` relative to submission.
fn real_overlap(
    sealed: &[Block],
    pre_state: &Arc<WorldState>,
    parent: BlockHash,
    appliers: usize,
) -> (bool, Vec<(f64, f64)>) {
    let pipeline = ValidatorPipeline::new(PipelineConfig {
        workers: 8,
        granularity: ConflictGranularity::Account,
        dispatch: DispatchPolicy::Subgraph,
        appliers,
        deferred_root: false,
    });
    pipeline.register_state(parent, Arc::clone(pre_state));
    let t0 = Instant::now();
    let waiters: Vec<_> = sealed
        .iter()
        .take(2)
        .map(|b| pipeline.submit(b.clone()))
        .map(|handle| {
            std::thread::spawn(move || {
                let outcome = handle.wait();
                let end_us = t0.elapsed().as_secs_f64() * 1e6;
                assert!(
                    outcome.is_valid(),
                    "sibling validates: {:?}",
                    outcome.result
                );
                let validate_us = outcome.timings.validate.as_secs_f64() * 1e6;
                ((end_us - validate_us).max(0.0), end_us)
            })
        })
        .collect();
    let intervals: Vec<(f64, f64)> = waiters
        .into_iter()
        .map(|w| w.join().expect("waiter thread"))
        .collect();
    pipeline.shutdown();
    let overlaps = intervals
        .iter()
        .enumerate()
        .any(|(i, a)| intervals.iter().skip(i + 1).any(|b| a.0 < b.1 && b.0 < a.1));
    (overlaps, intervals)
}

fn find_tx_s(rows: &[Row], dispatch: DispatchPolicy, appliers: usize, workers: usize) -> f64 {
    rows.iter()
        .find(|r| {
            r.series == "gas_time_calibrated"
                && r.dispatch == dispatch
                && r.appliers == appliers
                && r.workers == workers
        })
        .expect("row exists")
        .committed_tx_s
}

fn print_gas_series(rows: &[Row]) {
    println!(
        "{:>8} {:>9} {:>18} {:>18} {:>8}",
        "workers", "appliers", "restructured tx/s", "baseline tx/s", "ratio"
    );
    for workers in WORKERS {
        for appliers in APPLIERS {
            let sub = find_tx_s(rows, DispatchPolicy::Subgraph, appliers, workers);
            let lanes = find_tx_s(rows, DispatchPolicy::StaticLanes, 1, workers);
            println!(
                "{workers:>8} {appliers:>9} {sub:>18.0} {lanes:>18.0} {:>7.2}x",
                sub / lanes
            );
        }
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_validator.json".to_string());
    let window = block_count(4).max(2);
    println!("=== validator pipeline A/B: restructured vs baseline ===");
    println!("workload: {window} same-height mainnet-like 132-tx sibling blocks (seeded)\n");

    let siblings = sibling_fixtures(window);
    let cal = calibrate(&siblings);
    let model = cal.implementation_model();
    println!(
        "calibration: {:.1} gas/µs, prepare {:.3} µs/tx ({} gas), dispatch {:.3} µs/tx \
         ({} gas), match {:.3} µs/tx ({} gas), apply {:.3} µs/tx ({} gas), \
         block validation {:.1} µs/block ({} gas)\n",
        cal.gas_per_us,
        cal.prepare_us,
        model.prepare_per_tx,
        cal.dispatch_us,
        model.per_tx_dispatch,
        cal.match_us,
        model.match_per_tx,
        cal.applier_us,
        model.applier_per_tx,
        cal.applier_block_us,
        model.applier_block
    );

    let mut rows = gas_time_rows(&siblings, &cal, &model);

    let parent = BlockHash::from_low_u64(1);
    let sealed: Vec<Block> = siblings.iter().map(|f| f.seal(parent, 1)).collect();
    let pre_state = Arc::clone(&siblings[0].pre_state);
    rows.extend(wall_clock_rows(&sealed, &pre_state, parent));

    println!("gas-time, implementation-calibrated model (all overheads measured):");
    print_gas_series(&rows);

    // Headline: the full restructured configuration (subgraph dispatch,
    // overlapped verification, default 2-applier pool) against the full
    // baseline (static lanes, applier-side checks, single applier).
    let restructured = find_tx_s(&rows, DispatchPolicy::Subgraph, 2, 8);
    let baseline = find_tx_s(&rows, DispatchPolicy::StaticLanes, 1, 8);
    let ratio8 = restructured / baseline;
    println!("\nrestructured vs baseline at 8 workers (calibrated): {ratio8:.2}x");

    // Same-height overlap: virtual-time intervals from the simulator plus
    // wall-clock intervals from the real pipeline, one applier vs a pool.
    let schedules: Vec<_> = siblings
        .iter()
        .map(|f| {
            (
                Scheduler::new(ConflictGranularity::Account).schedule(&f.profile, 8),
                &f.profile,
            )
        })
        .collect();
    let sim_overlap = |appliers: usize| {
        simulate_validator_pipeline(
            &schedules,
            &PipelineSimConfig {
                appliers,
                ..PipelineSimConfig::default()
            },
            &model,
        )
    };
    let sim_single = sim_overlap(1);
    let sim_pool = sim_overlap(2);
    let (real_single_overlaps, real_single) = real_overlap(&sealed, &pre_state, parent, 1);
    let (real_pool_overlaps, real_pool) = real_overlap(&sealed, &pre_state, parent, 2);
    println!(
        "\nsame-height block-validation overlap: sim 1 applier {}, sim 2 appliers {}, \
         real 1 applier {}, real 2 appliers {}",
        sim_single.validation_overlaps(),
        sim_pool.validation_overlaps(),
        real_single_overlaps,
        real_pool_overlaps
    );
    println!(
        "\nwall-clock, {} real thread(s) available on this host: see JSON rows",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let gas_intervals = |r: &bp_sim::PipelineSimResult| {
        let parts: Vec<String> = r
            .block_validate
            .iter()
            .map(|&(s, e)| format!("[{s}, {e}]"))
            .collect();
        parts.join(", ")
    };
    let us_intervals = |intervals: &[(f64, f64)]| {
        let parts: Vec<String> = intervals
            .iter()
            .map(|&(s, e)| format!("[{s:.1}, {e:.1}]"))
            .collect();
        parts.join(", ")
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"validator_pipeline\",\n");
    json.push_str("  \"workload\": \"same-height 132-tx mainnet-like sibling blocks (seeded)\",\n");
    json.push_str(&format!("  \"window_blocks\": {window},\n"));
    json.push_str(&format!(
        "  \"host_threads\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str(&format!(
        "  \"calibration\": {{\"gas_per_us\": {:.2}, \"prepare_us\": {:.4}, \
         \"dispatch_us\": {:.4}, \"match_us\": {:.4}, \"applier_us\": {:.4}, \
         \"applier_block_us\": {:.2}, \"prepare_gas\": {}, \"dispatch_gas\": {}, \
         \"match_gas\": {}, \"applier_gas\": {}, \"applier_block_gas\": {}}},\n",
        cal.gas_per_us,
        cal.prepare_us,
        cal.dispatch_us,
        cal.match_us,
        cal.applier_us,
        cal.applier_block_us,
        model.prepare_per_tx,
        model.per_tx_dispatch,
        model.match_per_tx,
        model.applier_per_tx,
        model.applier_block
    ));
    json.push_str(&format!(
        "  \"restructured_vs_baseline_at_8_workers\": {ratio8:.3},\n"
    ));
    json.push_str(&format!(
        "  \"same_height_overlap\": {{\n    \"sim_appliers_1\": {{\"overlaps\": {}, \
         \"intervals_gas\": [{}]}},\n    \"sim_appliers_2\": {{\"overlaps\": {}, \
         \"intervals_gas\": [{}]}},\n    \"real_appliers_1\": {{\"overlaps\": {}, \
         \"intervals_us\": [{}]}},\n    \"real_appliers_2\": {{\"overlaps\": {}, \
         \"intervals_us\": [{}]}}\n  }},\n",
        sim_single.validation_overlaps(),
        gas_intervals(&sim_single),
        sim_pool.validation_overlaps(),
        gas_intervals(&sim_pool),
        real_single_overlaps,
        us_intervals(&real_single),
        real_pool_overlaps,
        us_intervals(&real_pool)
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let stages = match r.stages_us {
            Some([prepare, queue_wait, execute, validate]) => format!(
                ", \"prepare_us\": {prepare:.1}, \"queue_wait_us\": {queue_wait:.1}, \
                 \"execute_us\": {execute:.1}, \"validate_us\": {validate:.1}"
            ),
            None => format!(", \"validation_overlaps\": {}", r.overlaps),
        };
        json.push_str(&format!(
            "    {{\"series\": \"{}\", \"dispatch\": \"{}\", \"appliers\": {}, \
             \"workers\": {}, \"committed_tx_s\": {:.1}{}}}{}\n",
            r.series,
            policy_name(r.dispatch),
            r.appliers,
            r.workers,
            r.committed_tx_s,
            stages,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write baseline json");
    println!("wrote {out_path}");
}
