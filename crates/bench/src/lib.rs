//! Shared harness plumbing for the per-figure benchmark binaries.
//!
//! Every figure harness follows the same pattern: generate a seeded stream
//! of mainnet-like blocks, run the algorithm under test, and print the same
//! rows/series the paper reports. [`BlockFixture`] packages one generated
//! block with everything the harnesses need (transactions, profile, gas,
//! pre-state), built once by the serial oracle.

#![warn(missing_docs)]

use std::sync::Arc;

use bp_baseline::execute_block_serially;
use bp_block::{receipts_root, tx_root, Block, BlockHeader, BlockProfile};
use bp_evm::{BlockEnv, Transaction};
use bp_state::WorldState;
use bp_types::{BlockHash, Gas};
use bp_workload::{WorkloadConfig, WorkloadGen};

/// One generated block, pre-executed by the serial oracle.
pub struct BlockFixture {
    /// Transactions in a valid serial order.
    pub txs: Vec<Transaction>,
    /// The serial oracle's footprints (identical content to a proposer's
    /// block profile).
    pub profile: BlockProfile,
    /// Total gas — the serial execution time in gas-time.
    pub gas_used: Gas,
    /// Execution environment.
    pub env: BlockEnv,
    /// The state this block executes on.
    pub pre_state: Arc<WorldState>,
    /// The post state of serial execution.
    pub post_state: Arc<WorldState>,
}

impl BlockFixture {
    /// Assembles a sealed [`Block`] (with real roots) on `parent`. Only used
    /// by harnesses that need full validation; root computation is costly.
    pub fn seal(&self, parent: BlockHash, height: u64) -> Block {
        let receipts = execute_block_serially(&self.pre_state, &self.env, &self.txs)
            .expect("fixture replays")
            .receipts;
        let header = BlockHeader {
            parent_hash: parent,
            height,
            state_root: self.post_state.state_root(),
            tx_root: tx_root(&self.txs),
            receipts_root: receipts_root(&receipts),
            gas_used: self.gas_used,
            gas_limit: 30_000_000,
            coinbase: self.env.coinbase,
            timestamp: self.env.timestamp,
            proposer_seed: height,
        };
        Block {
            header,
            transactions: self.txs.clone(),
            profile: self.profile.clone(),
        }
    }
}

/// Generates `count` block fixtures from one seeded workload, all executing
/// on the same genesis-descended chain state (each block applies on the
/// previous block's post-state, like the paper's consecutive mainnet range).
pub fn generate_fixtures(config: WorkloadConfig, count: usize) -> Vec<BlockFixture> {
    let mut gen = WorkloadGen::new(config);
    let mut state = Arc::new(gen.genesis_state());
    let mut fixtures = Vec::with_capacity(count);
    for height in 1..=count as u64 {
        let env = gen.block_env(height);
        let txs = gen.next_block_txs();
        let out = execute_block_serially(&state, &env, &txs).expect("generated blocks replay");
        let post = Arc::new(out.post_state);
        fixtures.push(BlockFixture {
            txs,
            profile: out.profile,
            gas_used: out.gas_used,
            env,
            pre_state: Arc::clone(&state),
            post_state: Arc::clone(&post),
        });
        state = post;
    }
    fixtures
}

/// Reads the harness block count from `BP_BLOCKS` (default `default`).
pub fn block_count(default: usize) -> usize {
    std::env::var("BP_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Percentile (0–100) by nearest-rank on a sorted copy.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Histogram of `values` over `buckets` equal bins spanning `[lo, hi)`;
/// returns per-bin percentages.
pub fn histogram(values: &[f64], lo: f64, hi: f64, buckets: usize) -> Vec<f64> {
    let mut counts = vec![0usize; buckets];
    for &v in values {
        let t = ((v - lo) / (hi - lo) * buckets as f64).floor();
        let idx = (t.max(0.0) as usize).min(buckets - 1);
        counts[idx] += 1;
    }
    counts
        .into_iter()
        .map(|c| 100.0 * c as f64 / values.len().max(1) as f64)
        .collect()
}

/// Prints an ASCII bar chart row.
pub fn bar(label: &str, value: f64, scale: f64) {
    let width = (value * scale).round().max(0.0) as usize;
    println!(
        "  {label:>18} | {:<50} {value:.2}",
        "#".repeat(width.min(50))
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 100.0), 4.0);
        let h = histogram(&[0.5, 1.5, 1.6, 3.9], 0.0, 4.0, 4);
        assert_eq!(h, vec![25.0, 50.0, 0.0, 25.0]);
    }

    #[test]
    fn fixtures_chain_states() {
        let config = WorkloadConfig {
            accounts: 50,
            txs_per_block: 10,
            tx_jitter: 0,
            ..Default::default()
        };
        let fixtures = generate_fixtures(config, 3);
        assert_eq!(fixtures.len(), 3);
        for f in &fixtures {
            assert_eq!(f.txs.len(), 10);
            assert_eq!(f.profile.len(), 10);
            assert!(f.gas_used > 0);
        }
        // Block 2 executes on block 1's post-state.
        assert!(Arc::ptr_eq(&fixtures[1].pre_state, &fixtures[0].post_state));
    }
}
