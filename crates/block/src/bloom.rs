//! The 2048-bit Ethereum logs bloom filter.
//!
//! Every block header commits to a bloom over the addresses and topics of
//! all logs in the block, letting light clients skip blocks that cannot
//! contain events they care about. The construction is Ethereum's: for each
//! item, keccak-256 the bytes and set three bits, each selected by an
//! 11-bit value from byte pairs (0,1), (2,3) and (4,5) of the hash.

use bp_crypto::keccak256;
use bp_evm::Log;
use serde::{Deserialize, Serialize};

/// A 2048-bit bloom filter (256 bytes).
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bloom(#[serde(with = "serde_bytes_256")] pub [u8; 256]);

mod serde_bytes_256 {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &[u8; 256], s: S) -> Result<S::Ok, S::Error> {
        serde::Serialize::serialize(v.as_slice(), s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<[u8; 256], D::Error> {
        let v: Vec<u8> = Deserialize::deserialize(d)?;
        v.try_into()
            .map_err(|_| serde::de::Error::custom("bloom must be 256 bytes"))
    }
}

impl Default for Bloom {
    fn default() -> Self {
        Bloom([0u8; 256])
    }
}

impl std::fmt::Debug for Bloom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bloom({} bits set)", self.count_ones())
    }
}

impl Bloom {
    /// The empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// The three bit indices Ethereum derives for `data`.
    fn bits_for(data: &[u8]) -> [usize; 3] {
        let h = keccak256(data);
        let mut out = [0usize; 3];
        for (i, slot) in out.iter_mut().enumerate() {
            let hi = h.0[2 * i] as usize;
            let lo = h.0[2 * i + 1] as usize;
            *slot = ((hi << 8) | lo) & 0x7FF;
        }
        out
    }

    /// Adds raw bytes (an address or topic).
    pub fn accrue(&mut self, data: &[u8]) {
        for bit in Self::bits_for(data) {
            self.0[255 - bit / 8] |= 1 << (bit % 8);
        }
    }

    /// Adds a log's address and all topics.
    pub fn accrue_log(&mut self, log: &Log) {
        self.accrue(log.address.as_bytes());
        for topic in &log.topics {
            self.accrue(topic.as_bytes());
        }
    }

    /// True iff the filter *may* contain `data` (no false negatives).
    pub fn may_contain(&self, data: &[u8]) -> bool {
        Self::bits_for(data)
            .into_iter()
            .all(|bit| self.0[255 - bit / 8] & (1 << (bit % 8)) != 0)
    }

    /// Merges another bloom into this one.
    pub fn union(&mut self, other: &Bloom) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a |= b;
        }
    }

    /// True iff no bits are set.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// Number of set bits (diagnostics).
    pub fn count_ones(&self) -> u32 {
        self.0.iter().map(|b| b.count_ones()).sum()
    }
}

/// The block-level bloom over all logs of all receipts.
pub fn logs_bloom<'a>(logs: impl IntoIterator<Item = &'a Log>) -> Bloom {
    let mut bloom = Bloom::new();
    for log in logs {
        bloom.accrue_log(log);
    }
    bloom
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_types::{Address, H256};

    fn log(addr: u64, topics: &[u64]) -> Log {
        Log {
            address: Address::from_index(addr),
            topics: topics.iter().map(|&t| H256::from_low_u64(t)).collect(),
            data: vec![],
        }
    }

    #[test]
    fn empty_bloom_contains_nothing() {
        let b = Bloom::new();
        assert!(b.is_empty());
        assert!(!b.may_contain(Address::from_index(1).as_bytes()));
    }

    #[test]
    fn accrued_items_are_found() {
        let l = log(7, &[1, 2]);
        let b = logs_bloom([&l]);
        assert!(b.may_contain(Address::from_index(7).as_bytes()));
        assert!(b.may_contain(H256::from_low_u64(1).as_bytes()));
        assert!(b.may_contain(H256::from_low_u64(2).as_bytes()));
        assert!(!b.is_empty());
        // Exactly ≤ 9 bits for three items.
        assert!(b.count_ones() <= 9);
    }

    #[test]
    fn unrelated_items_are_probably_absent() {
        let b = logs_bloom([&log(7, &[1])]);
        let misses = (100..200u64)
            .filter(|&i| !b.may_contain(Address::from_index(i).as_bytes()))
            .count();
        // With 6 bits set out of 2048 the false-positive rate is tiny.
        assert!(misses >= 99, "only {misses} misses");
    }

    #[test]
    fn union_is_inclusive() {
        let mut a = logs_bloom([&log(1, &[])]);
        let b = logs_bloom([&log(2, &[])]);
        a.union(&b);
        assert!(a.may_contain(Address::from_index(1).as_bytes()));
        assert!(a.may_contain(Address::from_index(2).as_bytes()));
    }

    #[test]
    fn deterministic_across_instances() {
        let a = logs_bloom([&log(1, &[9])]);
        let b = logs_bloom([&log(1, &[9])]);
        assert_eq!(a, b);
    }
}
