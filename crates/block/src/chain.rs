//! A fork-aware chain store.
//!
//! Validators in a Byzantine network receive *multiple* blocks per height
//! (§3.4) — all of them are kept, one per height eventually becomes
//! canonical, and the rest are uncles. The store answers the questions the
//! validator pipeline asks: "which blocks exist at height h?", "is the parent
//! of this block validated?", "what is the canonical head?".

use std::collections::{BTreeMap, HashMap};

use bp_types::{BlockHash, Height};

use crate::Block;

/// All known blocks, indexed by hash and by height, with a canonical chain.
#[derive(Default)]
pub struct ChainStore {
    blocks: HashMap<BlockHash, Block>,
    by_height: BTreeMap<Height, Vec<BlockHash>>,
    canonical: BTreeMap<Height, BlockHash>,
}

impl ChainStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a block (idempotent). Returns its hash.
    pub fn insert(&mut self, block: Block) -> BlockHash {
        let hash = block.hash();
        let height = block.height();
        if self.blocks.insert(hash, block).is_none() {
            self.by_height.entry(height).or_default().push(hash);
        }
        hash
    }

    /// Looks a block up by hash.
    pub fn get(&self, hash: &BlockHash) -> Option<&Block> {
        self.blocks.get(hash)
    }

    /// All blocks known at `height` (competing forks included).
    pub fn at_height(&self, height: Height) -> Vec<&Block> {
        self.by_height
            .get(&height)
            .map(|hashes| hashes.iter().filter_map(|h| self.blocks.get(h)).collect())
            .unwrap_or_default()
    }

    /// Marks `hash` canonical at its height. Returns false if the block is
    /// unknown or does not extend the canonical chain (its parent must be
    /// canonical at height−1, except at the genesis height).
    pub fn set_canonical(&mut self, hash: BlockHash) -> bool {
        let Some(block) = self.blocks.get(&hash) else {
            return false;
        };
        let height = block.height();
        if height > 0 {
            let parent_ok = self
                .canonical
                .get(&(height - 1))
                .is_some_and(|p| *p == block.header.parent_hash);
            if !parent_ok {
                return false;
            }
        }
        // Adopting a different block at this height orphans any canonical
        // descendants.
        let to_remove: Vec<Height> = self.canonical.range(height..).map(|(h, _)| *h).collect();
        for h in to_remove {
            self.canonical.remove(&h);
        }
        self.canonical.insert(height, hash);
        true
    }

    /// The canonical block at `height`, if decided.
    pub fn canonical_at(&self, height: Height) -> Option<&Block> {
        self.canonical.get(&height).and_then(|h| self.blocks.get(h))
    }

    /// The canonical head (highest decided height).
    pub fn head(&self) -> Option<&Block> {
        self.canonical
            .iter()
            .next_back()
            .and_then(|(_, h)| self.blocks.get(h))
    }

    /// Non-canonical blocks at a decided height — Ethereum's *uncles*.
    pub fn uncles_at(&self, height: Height) -> Vec<&Block> {
        let canonical = self.canonical.get(&height);
        self.at_height(height)
            .into_iter()
            .filter(|b| Some(&b.hash()) != canonical)
            .collect()
    }

    /// Total number of stored blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True iff no blocks are stored.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{genesis_header, BlockProfile};
    use bp_types::H256;

    fn block(parent: BlockHash, height: Height, seed: u64) -> Block {
        let mut header = genesis_header(H256::from_low_u64(height));
        header.parent_hash = parent;
        header.height = height;
        header.proposer_seed = seed;
        Block {
            header,
            transactions: vec![],
            profile: BlockProfile::new(),
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut store = ChainStore::new();
        let g = block(BlockHash::ZERO, 0, 0);
        let gh = store.insert(g.clone());
        assert_eq!(store.get(&gh).unwrap().height(), 0);
        assert_eq!(store.len(), 1);
        // Idempotent insert.
        store.insert(g);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn multiple_blocks_per_height() {
        let mut store = ChainStore::new();
        let g = block(BlockHash::ZERO, 0, 0);
        let gh = store.insert(g);
        let a = block(gh, 1, 1);
        let b = block(gh, 1, 2);
        store.insert(a);
        store.insert(b);
        assert_eq!(store.at_height(1).len(), 2);
    }

    #[test]
    fn canonical_chain_and_uncles() {
        let mut store = ChainStore::new();
        let g = block(BlockHash::ZERO, 0, 0);
        let gh = store.insert(g);
        assert!(store.set_canonical(gh));
        let a = block(gh, 1, 1);
        let b = block(gh, 1, 2);
        let ah = store.insert(a);
        let bh = store.insert(b);
        assert!(store.set_canonical(ah));
        assert_eq!(store.head().unwrap().hash(), ah);
        let uncles = store.uncles_at(1);
        assert_eq!(uncles.len(), 1);
        assert_eq!(uncles[0].hash(), bh);
    }

    #[test]
    fn canonical_requires_canonical_parent() {
        let mut store = ChainStore::new();
        let g = block(BlockHash::ZERO, 0, 0);
        let gh = store.insert(g);
        assert!(store.set_canonical(gh));
        // A block whose parent is not canonical cannot be adopted.
        let stray = block(H256::from_low_u64(99), 1, 7);
        let sh = store.insert(stray);
        assert!(!store.set_canonical(sh));
        // Unknown hash rejected.
        assert!(!store.set_canonical(H256::from_low_u64(1234)));
    }

    #[test]
    fn reorg_drops_descendants() {
        let mut store = ChainStore::new();
        let gh = store.insert(block(BlockHash::ZERO, 0, 0));
        store.set_canonical(gh);
        let ah = store.insert(block(gh, 1, 1));
        store.set_canonical(ah);
        let a2h = store.insert(block(ah, 2, 1));
        store.set_canonical(a2h);
        assert_eq!(store.head().unwrap().height(), 2);
        // Switch height 1 to the competing block: height 2 is orphaned.
        let bh = store.insert(block(gh, 1, 2));
        assert!(store.set_canonical(bh));
        assert_eq!(store.head().unwrap().hash(), bh);
        assert!(store.canonical_at(2).is_none());
    }
}
