//! Block structures: header, body, the **block profile**, and a fork-aware
//! chain store.
//!
//! The block profile is BlockPilot's protocol addition (§4.2): the proposer
//! ships the per-transaction read/write sets (with snapshot versions) and
//! gas alongside the block so validators can schedule and verify without
//! first re-discovering conflicts. The chain store keeps *all* blocks per
//! height — in a Byzantine network validators receive competing blocks at the
//! same height (§3.4) and the pipeline executes them concurrently.

#![warn(missing_docs)]

pub mod bloom;
pub mod chain;
pub mod profile;
pub mod wire;

use bp_crypto::{keccak256, Keccak256, RlpStream};
use bp_evm::{Receipt, Transaction};
use bp_types::{Address, BlockHash, Gas, Height, H256};
use serde::{Deserialize, Serialize};

pub use bloom::{logs_bloom, Bloom};
pub use chain::ChainStore;
pub use profile::{BlockProfile, TxProfile};
pub use wire::{decode_block, encode_block, encode_block_into, encoded_size_hint};

/// A block header.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Hash of the parent block.
    pub parent_hash: BlockHash,
    /// Height (block number).
    pub height: Height,
    /// MPT root of the post-state.
    pub state_root: H256,
    /// Commitment to the ordered transaction list.
    pub tx_root: H256,
    /// Commitment to the ordered receipt list.
    pub receipts_root: H256,
    /// Total gas consumed by the block.
    pub gas_used: Gas,
    /// Block gas limit.
    pub gas_limit: Gas,
    /// Fee recipient.
    pub coinbase: Address,
    /// Timestamp (seconds).
    pub timestamp: u64,
    /// Disambiguates blocks from different proposers at the same height.
    pub proposer_seed: u64,
}

impl BlockHeader {
    /// Canonical block hash: keccak of the RLP-encoded header.
    pub fn hash(&self) -> BlockHash {
        let mut s = RlpStream::new();
        s.begin_list(10);
        s.append_h256(&self.parent_hash);
        s.append_u64(self.height);
        s.append_h256(&self.state_root);
        s.append_h256(&self.tx_root);
        s.append_h256(&self.receipts_root);
        s.append_u64(self.gas_used);
        s.append_u64(self.gas_limit);
        s.append_address(&self.coinbase);
        s.append_u64(self.timestamp);
        s.append_u64(self.proposer_seed);
        keccak256(&s.out())
    }
}

/// A full block: header, ordered transactions, and the BlockPilot profile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The sealed header.
    pub header: BlockHeader,
    /// Transactions in commit order.
    pub transactions: Vec<Transaction>,
    /// Per-transaction read/write sets and gas (the proposer's execution
    /// details, §4.2 "block profile").
    pub profile: BlockProfile,
}

impl Block {
    /// The block hash.
    pub fn hash(&self) -> BlockHash {
        self.header.hash()
    }

    /// The block height.
    pub fn height(&self) -> Height {
        self.header.height
    }

    /// Number of transactions.
    pub fn tx_count(&self) -> usize {
        self.transactions.len()
    }
}

/// Commitment to an ordered transaction list: the running keccak of the
/// transaction hashes. (Ethereum uses an index-keyed trie; a sequential hash
/// chain commits to the same information — content *and order* — which is
/// all validation needs.)
pub fn tx_root(txs: &[Transaction]) -> H256 {
    let mut h = Keccak256::new();
    for tx in txs {
        h.update(tx.hash().as_bytes());
    }
    h.finalize()
}

/// Commitment to the ordered receipt list (status, gas used, log count per
/// receipt).
pub fn receipts_root(receipts: &[Receipt]) -> H256 {
    let mut h = Keccak256::new();
    for r in receipts {
        let mut s = RlpStream::new();
        s.begin_list(3);
        s.append_u64(r.success as u64);
        s.append_u64(r.gas_used);
        s.append_u64(r.logs.len() as u64);
        h.update(&s.out());
    }
    h.finalize()
}

/// The genesis block header for a given state root.
pub fn genesis_header(state_root: H256) -> BlockHeader {
    BlockHeader {
        parent_hash: BlockHash::ZERO,
        height: 0,
        state_root,
        tx_root: tx_root(&[]),
        receipts_root: receipts_root(&[]),
        gas_used: 0,
        gas_limit: 30_000_000,
        coinbase: Address::ZERO,
        timestamp: 0,
        proposer_seed: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_types::U256;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn tx(sender: u64, nonce: u64) -> Transaction {
        Transaction::transfer(addr(sender), addr(99), U256::ONE, nonce, 1)
    }

    #[test]
    fn header_hash_covers_every_field() {
        let base = genesis_header(H256::from_low_u64(1));
        let h0 = base.hash();
        let mut m = base.clone();
        m.height = 5;
        assert_ne!(m.hash(), h0);
        let mut m = base.clone();
        m.state_root = H256::from_low_u64(2);
        assert_ne!(m.hash(), h0);
        let mut m = base.clone();
        m.proposer_seed = 7;
        assert_ne!(m.hash(), h0);
        let mut m = base.clone();
        m.gas_used = 1;
        assert_ne!(m.hash(), h0);
        assert_eq!(base.hash(), h0, "hash is deterministic");
    }

    #[test]
    fn tx_root_commits_to_order() {
        let a = tx(1, 0);
        let b = tx(2, 0);
        let r1 = tx_root(&[a.clone(), b.clone()]);
        let r2 = tx_root(&[b, a]);
        assert_ne!(r1, r2);
        assert_ne!(r1, tx_root(&[]));
    }

    #[test]
    fn receipts_root_commits_to_status_and_gas() {
        let ok = Receipt {
            success: true,
            gas_used: 21_000,
            output: vec![],
            logs: vec![],
            fee: U256::from(21_000u64),
            created: None,
        };
        let mut failed = ok.clone();
        failed.success = false;
        assert_ne!(
            receipts_root(std::slice::from_ref(&ok)),
            receipts_root(&[failed])
        );
        let mut pricier = ok.clone();
        pricier.gas_used = 22_000;
        assert_ne!(receipts_root(&[ok]), receipts_root(&[pricier]));
    }
}
