//! The block profile: per-transaction execution details shipped with the
//! block (§4.2 of the paper).

use bp_types::{Gas, ReadSet, RwSet, WriteSet};
use serde::{Deserialize, Serialize};

/// One transaction's entry in the block profile.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxProfile {
    /// Keys read, each with the snapshot version observed.
    pub reads: ReadSet,
    /// Keys written with the values produced.
    pub writes: WriteSet,
    /// Gas consumed — the scheduler's execution-time estimate (§4.3).
    pub gas_used: Gas,
}

impl TxProfile {
    /// Builds a profile entry from an executed footprint.
    pub fn from_rw(rw: &RwSet, gas_used: Gas) -> Self {
        TxProfile {
            reads: rw.reads.clone(),
            writes: rw.writes.clone(),
            gas_used,
        }
    }

    /// The footprint as an [`RwSet`] (for conflict queries).
    pub fn rw(&self) -> RwSet {
        RwSet {
            reads: self.reads.clone(),
            writes: self.writes.clone(),
        }
    }
}

/// Per-transaction profiles, in block order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockProfile {
    /// `entries[i]` describes `transactions[i]`.
    pub entries: Vec<TxProfile>,
}

impl BlockProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one transaction's profile.
    pub fn push(&mut self, entry: TxProfile) {
        self.entries.push(entry);
    }

    /// Number of profiled transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no transactions are profiled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total gas across all entries.
    pub fn total_gas(&self) -> Gas {
        self.entries.iter().map(|e| e.gas_used).sum()
    }

    /// Verifies that an executed footprint matches the profiled one for
    /// transaction `index`: identical key sets and written values. Validators
    /// use this in the block-validation phase (Algorithm 2's
    /// `Verify(rs/ws, Info)`).
    ///
    /// Read *versions* are not compared: the proposer's snapshot versions
    /// reflect its commit interleaving, while a validator replays the fixed
    /// schedule — only the footprint shape and produced values must agree.
    pub fn matches(&self, index: usize, rw: &RwSet) -> bool {
        let Some(entry) = self.entries.get(index) else {
            return false;
        };
        // Key-set comparison must not assume an iteration order: the
        // profiled entry may have been rebuilt from the (sorted) wire form
        // while the replayed footprint is in execution insertion order.
        entry.writes == rw.writes
            && entry.reads.len() == rw.reads.len()
            && rw.reads.keys().all(|k| entry.reads.contains_key(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_types::{AccessKey, Address, U256};

    fn key(i: u64) -> AccessKey {
        AccessKey::Balance(Address::from_index(i))
    }

    fn sample_rw() -> RwSet {
        let mut rw = RwSet::new();
        rw.record_read(key(1), 3);
        rw.record_write(key(2), U256::from(9u64));
        rw
    }

    #[test]
    fn from_rw_roundtrip() {
        let rw = sample_rw();
        let p = TxProfile::from_rw(&rw, 21_000);
        assert_eq!(p.rw(), rw);
        assert_eq!(p.gas_used, 21_000);
    }

    #[test]
    fn matches_identical_footprint() {
        let mut profile = BlockProfile::new();
        profile.push(TxProfile::from_rw(&sample_rw(), 21_000));
        assert!(profile.matches(0, &sample_rw()));
    }

    #[test]
    fn matches_ignores_read_versions() {
        let mut profile = BlockProfile::new();
        profile.push(TxProfile::from_rw(&sample_rw(), 21_000));
        let mut replay = RwSet::new();
        replay.record_read(key(1), 0); // different version, same key
        replay.record_write(key(2), U256::from(9u64));
        assert!(profile.matches(0, &replay));
    }

    #[test]
    fn mismatch_on_extra_read() {
        let mut profile = BlockProfile::new();
        profile.push(TxProfile::from_rw(&sample_rw(), 21_000));
        let mut replay = sample_rw();
        replay.record_read(key(5), 0);
        assert!(!profile.matches(0, &replay));
    }

    #[test]
    fn mismatch_on_different_written_value() {
        let mut profile = BlockProfile::new();
        profile.push(TxProfile::from_rw(&sample_rw(), 21_000));
        let mut replay = sample_rw();
        replay.record_write(key(2), U256::from(10u64));
        assert!(!profile.matches(0, &replay));
    }

    #[test]
    fn mismatch_on_missing_index() {
        let profile = BlockProfile::new();
        assert!(!profile.matches(0, &sample_rw()));
    }

    #[test]
    fn total_gas_sums() {
        let mut profile = BlockProfile::new();
        profile.push(TxProfile::from_rw(&RwSet::new(), 10));
        profile.push(TxProfile::from_rw(&RwSet::new(), 32));
        assert_eq!(profile.total_gas(), 42);
        assert_eq!(profile.len(), 2);
        assert!(!profile.is_empty());
    }
}
