//! RLP wire encoding for blocks.
//!
//! Dissemination (the first leg of DiCE) ships whole blocks — header,
//! transactions **and the BlockPilot block profile** — between nodes. The
//! profile is part of BlockPilot's protocol surface (§4.2), so it gets a
//! canonical encoding too: each entry is `[reads, writes, gas]`, where reads
//! are `[key, version]` pairs and writes are `[key, value]` pairs.
//!
//! Decoding is strict (inherited from `bp_crypto::rlp`): any mutation of the
//! byte stream fails to decode or changes the block hash.

use bp_crypto::rlp::{self, DecodeError, Item, RlpStream};
use bp_evm::Transaction;
use bp_types::{AccessKey, ReadSet, WriteSet};

use crate::{Block, BlockHeader, BlockProfile, TxProfile};

/// Upper bound on the encoded size of `block`, cheap enough to compute per
/// block. Used to seed the output buffer so encoding never reallocates.
pub fn encoded_size_hint(block: &Block) -> usize {
    // Worst-case item sizes: h256 = 33, address = 21, u64 = 9, u256 = 33,
    // list header = 9. Header: 3 hashes + 1 address + 6 integers + header.
    const HEADER: usize = 3 * 33 + 21 + 6 * 9 + 9;
    // Tx: sender + to + value + 3 integers + data header + list header.
    const TX_FIXED: usize = 21 + 21 + 33 + 3 * 9 + 9 + 9;
    // Access key: tag + address + slot + list header.
    const KEY: usize = 9 + 21 + 33 + 9;
    // Read pair: key + version + pair header; write pair: key + value + hdr.
    const READ: usize = KEY + 9 + 9;
    const WRITE: usize = KEY + 33 + 9;
    let txs: usize = block
        .transactions
        .iter()
        .map(|tx| TX_FIXED + tx.data.len())
        .sum();
    let profile: usize = block
        .profile
        .entries
        .iter()
        // Entry = reads + writes + gas + entry/reads/writes list headers.
        .map(|e| e.reads.len() * READ + e.writes.len() * WRITE + 9 + 3 * 9)
        .sum();
    // Outer list + the two collection headers (or empty markers).
    HEADER + txs + profile + 4 * 9
}

/// Encodes a block for broadcast.
pub fn encode_block(block: &Block) -> Vec<u8> {
    encode_block_with(block, RlpStream::with_capacity(encoded_size_hint(block)))
}

/// Encodes a block into a reusable scratch buffer (cleared first), returning
/// the encoded bytes in that buffer. Steady-state encode loops pass the Vec
/// back in each round and amortize the allocation away entirely.
pub fn encode_block_into(block: &Block, buf: Vec<u8>) -> Vec<u8> {
    let mut s = RlpStream::from_vec(buf);
    s.reserve(encoded_size_hint(block));
    encode_block_with(block, s)
}

fn encode_block_with(block: &Block, mut s: RlpStream) -> Vec<u8> {
    s.begin_list(3);
    append_header(&mut s, &block.header);
    s.begin_list(block.transactions.len().max(1));
    if block.transactions.is_empty() {
        s.append_bytes(&[]);
    } else {
        for tx in &block.transactions {
            append_tx(&mut s, tx);
        }
    }
    s.begin_list(block.profile.entries.len().max(1));
    if block.profile.entries.is_empty() {
        s.append_bytes(&[]);
    } else {
        for entry in &block.profile.entries {
            append_profile_entry(&mut s, entry);
        }
    }
    s.out()
}

/// Decodes a broadcast block.
pub fn decode_block(data: &[u8]) -> Result<Block, DecodeError> {
    let item = rlp::decode(data)?;
    let l = expect_list(&item, 3)?;
    let header = decode_header(&l[0])?;
    let txs_list = l[1].as_list()?;
    let transactions = if is_empty_marker(txs_list) {
        Vec::new()
    } else {
        txs_list.iter().map(decode_tx).collect::<Result<_, _>>()?
    };
    let profile_list = l[2].as_list()?;
    let entries = if is_empty_marker(profile_list) {
        Vec::new()
    } else {
        profile_list
            .iter()
            .map(decode_profile_entry)
            .collect::<Result<_, _>>()?
    };
    Ok(Block {
        header,
        transactions,
        profile: BlockProfile { entries },
    })
}

/// An empty collection is encoded as a one-element list holding the empty
/// string (RLP lists of length zero collide with our fixed-arity scheme).
fn is_empty_marker(items: &[Item]) -> bool {
    matches!(items, [Item::Bytes(b)] if b.is_empty())
}

fn expect_list(item: &Item, len: usize) -> Result<&[Item], DecodeError> {
    let l = item.as_list()?;
    if l.len() != len {
        return Err(DecodeError::TypeMismatch);
    }
    Ok(l)
}

fn append_header(s: &mut RlpStream, h: &BlockHeader) {
    s.begin_list(10);
    s.append_h256(&h.parent_hash);
    s.append_u64(h.height);
    s.append_h256(&h.state_root);
    s.append_h256(&h.tx_root);
    s.append_h256(&h.receipts_root);
    s.append_u64(h.gas_used);
    s.append_u64(h.gas_limit);
    s.append_address(&h.coinbase);
    s.append_u64(h.timestamp);
    s.append_u64(h.proposer_seed);
}

fn decode_header(item: &Item) -> Result<BlockHeader, DecodeError> {
    let l = expect_list(item, 10)?;
    Ok(BlockHeader {
        parent_hash: l[0].as_h256()?,
        height: l[1].as_u64()?,
        state_root: l[2].as_h256()?,
        tx_root: l[3].as_h256()?,
        receipts_root: l[4].as_h256()?,
        gas_used: l[5].as_u64()?,
        gas_limit: l[6].as_u64()?,
        coinbase: l[7].as_address()?,
        timestamp: l[8].as_u64()?,
        proposer_seed: l[9].as_u64()?,
    })
}

fn append_tx(s: &mut RlpStream, tx: &Transaction) {
    s.begin_list(7);
    s.append_address(&tx.sender);
    match &tx.to {
        Some(to) => s.append_address(to),
        None => s.append_bytes(&[]),
    }
    s.append_u256(&tx.value);
    s.append_u64(tx.nonce);
    s.append_u64(tx.gas_limit);
    s.append_u64(tx.gas_price);
    s.append_bytes(&tx.data);
}

fn decode_tx(item: &Item) -> Result<Transaction, DecodeError> {
    let l = expect_list(item, 7)?;
    let to_bytes = l[1].as_bytes()?;
    let to = if to_bytes.is_empty() {
        None
    } else {
        Some(l[1].as_address()?)
    };
    Ok(Transaction {
        sender: l[0].as_address()?,
        to,
        value: l[2].as_u256()?,
        nonce: l[3].as_u64()?,
        gas_limit: l[4].as_u64()?,
        gas_price: l[5].as_u64()?,
        data: l[6].as_bytes()?.to_vec(),
    })
}

fn append_access_key(s: &mut RlpStream, key: &AccessKey) {
    s.begin_list(3);
    match key {
        AccessKey::Balance(a) => {
            s.append_u64(0);
            s.append_address(a);
            s.append_bytes(&[]);
        }
        AccessKey::Nonce(a) => {
            s.append_u64(1);
            s.append_address(a);
            s.append_bytes(&[]);
        }
        AccessKey::Storage(a, slot) => {
            s.append_u64(2);
            s.append_address(a);
            s.append_h256(slot);
        }
        AccessKey::Code(a) => {
            s.append_u64(3);
            s.append_address(a);
            s.append_bytes(&[]);
        }
    }
}

fn decode_access_key(item: &Item) -> Result<AccessKey, DecodeError> {
    let l = expect_list(item, 3)?;
    let tag = l[0].as_u64()?;
    let addr = l[1].as_address()?;
    Ok(match tag {
        0 => AccessKey::Balance(addr),
        1 => AccessKey::Nonce(addr),
        2 => AccessKey::Storage(addr, l[2].as_h256()?),
        3 => AccessKey::Code(addr),
        _ => return Err(DecodeError::TypeMismatch),
    })
}

fn append_profile_entry(s: &mut RlpStream, entry: &TxProfile) {
    s.begin_list(3);
    // Footprints are hash maps; sort so the wire bytes (and therefore the
    // block hash) are deterministic regardless of insertion or bucket order.
    s.begin_list(entry.reads.len().max(1));
    if entry.reads.is_empty() {
        s.append_bytes(&[]);
    } else {
        let mut reads: Vec<_> = entry.reads.iter().collect();
        reads.sort_by_key(|(key, _)| **key);
        for (key, version) in reads {
            s.begin_list(2);
            append_access_key(s, key);
            s.append_u64(*version);
        }
    }
    s.begin_list(entry.writes.len().max(1));
    if entry.writes.is_empty() {
        s.append_bytes(&[]);
    } else {
        let mut writes: Vec<_> = entry.writes.iter().collect();
        writes.sort_by_key(|(key, _)| **key);
        for (key, value) in writes {
            s.begin_list(2);
            append_access_key(s, key);
            s.append_u256(value);
        }
    }
    s.append_u64(entry.gas_used);
}

fn decode_profile_entry(item: &Item) -> Result<TxProfile, DecodeError> {
    let l = expect_list(item, 3)?;
    let mut reads: ReadSet = Default::default();
    let reads_list = l[0].as_list()?;
    if !is_empty_marker(reads_list) {
        for pair in reads_list {
            let p = expect_list(pair, 2)?;
            reads.insert(decode_access_key(&p[0])?, p[1].as_u64()?);
        }
    }
    let mut writes: WriteSet = Default::default();
    let writes_list = l[1].as_list()?;
    if !is_empty_marker(writes_list) {
        for pair in writes_list {
            let p = expect_list(pair, 2)?;
            writes.insert(decode_access_key(&p[0])?, p[1].as_u256()?);
        }
    }
    Ok(TxProfile {
        reads,
        writes,
        gas_used: l[2].as_u64()?,
    })
}

/// Convenience: the round trip used by tests and the dissemination layer.
pub fn roundtrip(block: &Block) -> Result<Block, DecodeError> {
    decode_block(&encode_block(block))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genesis_header;
    use bp_types::{Address, RwSet, H256, U256};

    fn sample_block() -> Block {
        let mut header = genesis_header(H256::from_low_u64(9));
        header.height = 3;
        header.gas_used = 63_000;
        let txs = vec![
            Transaction::transfer(
                Address::from_index(1),
                Address::from_index(2),
                U256::ONE,
                0,
                5,
            ),
            Transaction {
                sender: Address::from_index(3),
                to: None,
                value: U256::from(7u64),
                nonce: 2,
                gas_limit: 100_000,
                gas_price: 9,
                data: vec![0x60, 0x00, 0xF3],
            },
        ];
        let mut profile = BlockProfile::new();
        for tx in &txs {
            let mut rw = RwSet::new();
            rw.record_read(AccessKey::Balance(tx.sender), 0);
            rw.record_read(AccessKey::Nonce(tx.sender), 1);
            rw.record_write(AccessKey::Balance(tx.sender), U256::from(100u64));
            rw.record_write(
                AccessKey::Storage(Address::from_index(50), H256::from_low_u64(3)),
                U256::from(8u64),
            );
            rw.record_write(AccessKey::Code(Address::from_index(51)), U256::ONE);
            profile.push(TxProfile::from_rw(&rw, 21_000));
        }
        Block {
            header,
            transactions: txs,
            profile,
        }
    }

    #[test]
    fn block_roundtrips() {
        let block = sample_block();
        let decoded = roundtrip(&block).unwrap();
        assert_eq!(decoded, block);
        assert_eq!(decoded.hash(), block.hash());
    }

    #[test]
    fn empty_block_roundtrips() {
        let block = Block {
            header: genesis_header(H256::from_low_u64(1)),
            transactions: vec![],
            profile: BlockProfile::new(),
        };
        let decoded = roundtrip(&block).unwrap();
        assert_eq!(decoded, block);
    }

    #[test]
    fn truncated_stream_rejected() {
        let bytes = encode_block(&sample_block());
        for cut in [1usize, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_block(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bitflips_never_yield_the_same_block() {
        let block = sample_block();
        let bytes = encode_block(&block);
        // Flip one byte at a sample of positions: the result must either
        // fail to decode or decode to a *different* block (a flipped
        // transaction byte leaves the header hash intact but trips the
        // header's tx_root during validation — the content difference is
        // what matters here).
        for pos in (0..bytes.len()).step_by(7) {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0x01;
            match decode_block(&mutated) {
                Err(_) => {}
                Ok(other) => {
                    assert_ne!(other, block, "bitflip at {pos} went unnoticed");
                }
            }
        }
    }

    #[test]
    fn size_hint_bounds_actual_encoding() {
        for block in [
            sample_block(),
            Block {
                header: genesis_header(H256::from_low_u64(1)),
                transactions: vec![],
                profile: BlockProfile::new(),
            },
        ] {
            let bytes = encode_block(&block);
            assert!(
                bytes.len() <= encoded_size_hint(&block),
                "hint {} < actual {}",
                encoded_size_hint(&block),
                bytes.len()
            );
        }
    }

    #[test]
    fn scratch_buffer_encoding_is_identical_and_allocation_free() {
        let block = sample_block();
        let fresh = encode_block(&block);
        // Round 1 sizes the buffer; round 2 must reuse it without growing.
        let buf = encode_block_into(&block, Vec::new());
        assert_eq!(buf, fresh);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        let buf = encode_block_into(&block, buf);
        assert_eq!(buf, fresh);
        assert_eq!(buf.capacity(), cap, "steady-state encode grew the buffer");
        assert_eq!(buf.as_ptr(), ptr, "steady-state encode reallocated");
    }

    #[test]
    fn create_transaction_roundtrips() {
        let block = sample_block();
        let decoded = roundtrip(&block).unwrap();
        assert_eq!(decoded.transactions[1].to, None);
        assert_eq!(decoded.transactions[1].data, vec![0x60, 0x00, 0xF3]);
    }
}
