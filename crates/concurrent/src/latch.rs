//! Latches: a countdown latch for stage barriers in the validator pipeline,
//! a one-shot per-height root latch for the deferred-commitment apply stage,
//! and the per-version visibility gate of the two-phase proposer commit.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Condvar, Mutex};

/// A one-shot hand-off slot: one producer [`RootLatch::set`]s a value once,
/// any number of consumers [`RootLatch::wait`] for it.
///
/// The deferred-root apply stage allocates one per height: the applier
/// publishes a block's writes, releases the next height into execution, and
/// only then hashes the state root — setting the latch with the verdict.
/// Everything that genuinely needs the root (commit publication, the header
/// check verdict, a child block's own verdict, the serial-replay equivalence
/// gate) waits on the latch, so the wait moves off the execution path while
/// the ordering of *checks* is unchanged. Waits only ever chain parent-ward
/// and every code path that creates a latch also sets it, so the chain of
/// waits is acyclic and always drains.
pub struct RootLatch<T> {
    slot: Mutex<Option<T>>,
    cond: Condvar,
}

impl<T: Clone> RootLatch<T> {
    /// An unset latch.
    pub fn new() -> Self {
        RootLatch {
            slot: Mutex::new(None),
            cond: Condvar::new(),
        }
    }

    /// Publishes the value and wakes all waiters. First set wins; a second
    /// set is ignored (the latch is one-shot).
    pub fn set(&self, value: T) {
        let mut g = self.slot.lock();
        if g.is_none() {
            *g = Some(value);
            self.cond.notify_all();
        }
    }

    /// Blocks until the value is published, then returns a clone of it.
    pub fn wait(&self) -> T {
        let mut g = self.slot.lock();
        while g.is_none() {
            self.cond.wait(&mut g);
        }
        g.as_ref().expect("checked above").clone()
    }

    /// The value if already published, without blocking.
    pub fn try_get(&self) -> Option<T> {
        self.slot.lock().clone()
    }

    /// Whether the value has been published.
    pub fn is_set(&self) -> bool {
        self.slot.lock().is_some()
    }
}

impl<T: Clone> Default for RootLatch<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Blocks waiters until `count` calls to [`CountdownLatch::count_down`] have
/// happened.
///
/// Used by the validator pipeline to detect "all lanes of this block have
/// finished executing" before the applier seals the block, and by tests to
/// coordinate worker startup.
pub struct CountdownLatch {
    remaining: Mutex<usize>,
    cond: Condvar,
}

impl CountdownLatch {
    /// A latch requiring `count` count-downs.
    pub fn new(count: usize) -> Self {
        CountdownLatch {
            remaining: Mutex::new(count),
            cond: Condvar::new(),
        }
    }

    /// Records one completion; wakes all waiters when the count reaches zero.
    /// Extra count-downs after zero are ignored.
    pub fn count_down(&self) {
        let mut g = self.remaining.lock();
        if *g > 0 {
            *g -= 1;
            if *g == 0 {
                self.cond.notify_all();
            }
        }
    }

    /// Blocks until the count reaches zero.
    pub fn wait(&self) {
        let mut g = self.remaining.lock();
        while *g > 0 {
            self.cond.wait(&mut g);
        }
    }

    /// Current remaining count (for diagnostics).
    pub fn remaining(&self) -> usize {
        *self.remaining.lock()
    }
}

#[derive(Default)]
struct GateState {
    /// Versions allocated (Phase A) but not yet fully published (Phase B).
    pending: std::collections::BTreeSet<u64>,
    /// Highest version ever registered.
    highest: u64,
}

/// Per-version visibility gate for the two-phase proposer commit.
///
/// Phase A of a commit allocates a version and [`VersionGate::register`]s it
/// as *pending* before the version becomes discoverable; Phase B publishes
/// the write set outside any global lock and then [`VersionGate::open`]s the
/// version. A snapshot reader that lands on a still-pending version parks on
/// [`VersionGate::wait_visible`] until every version at or below its snapshot
/// is fully published — instead of every committer blocking every reader
/// behind one coarse commit lock.
///
/// Registration must happen-before the version is discoverable by readers
/// (the proposer does both under its commit-sequence lock); with that, a
/// reader waiting on version `v` is guaranteed the gate already knows about
/// every version `≤ v`.
#[derive(Default)]
pub struct VersionGate {
    /// All versions `≤ visible` are fully published (lock-free fast path).
    visible: AtomicU64,
    state: Mutex<GateState>,
    cond: Condvar,
}

impl VersionGate {
    /// A gate with no versions registered (everything up to `u64::MAX` that
    /// was never registered counts as visible).
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `version` pending. Must be called before the version becomes
    /// discoverable by snapshot readers.
    pub fn register(&self, version: u64) {
        let mut g = self.state.lock();
        g.pending.insert(version);
        g.highest = g.highest.max(version);
    }

    /// Marks `version` fully published and wakes any readers whose snapshot
    /// it was blocking.
    pub fn open(&self, version: u64) {
        let mut g = self.state.lock();
        g.pending.remove(&version);
        g.highest = g.highest.max(version);
        let new_visible = match g.pending.first() {
            Some(&min_pending) => min_pending - 1,
            None => g.highest,
        };
        self.visible.store(new_visible, Ordering::Release);
        drop(g);
        self.cond.notify_all();
    }

    /// Blocks until every registered version `≤ version` has been opened.
    ///
    /// Versions that were never registered do not block: the gate only
    /// tracks the pending window between Phase A and Phase B.
    pub fn wait_visible(&self, version: u64) {
        if self.visible.load(Ordering::Acquire) >= version {
            return;
        }
        let mut g = self.state.lock();
        while g.pending.first().is_some_and(|&min| min <= version) {
            self.cond.wait(&mut g);
        }
    }

    /// The highest version below which everything registered is published.
    pub fn visible(&self) -> u64 {
        self.visible.load(Ordering::Acquire)
    }

    /// Number of versions currently in the pending window (diagnostics).
    pub fn pending(&self) -> usize {
        self.state.lock().pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn zero_latch_never_blocks() {
        let l = CountdownLatch::new(0);
        l.wait();
        assert_eq!(l.remaining(), 0);
    }

    #[test]
    fn waits_for_all_workers() {
        let latch = Arc::new(CountdownLatch::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let latch = Arc::clone(&latch);
            handles.push(thread::spawn(move || latch.count_down()));
        }
        latch.wait();
        assert_eq!(latch.remaining(), 0);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn extra_countdowns_ignored() {
        let l = CountdownLatch::new(1);
        l.count_down();
        l.count_down();
        assert_eq!(l.remaining(), 0);
        l.wait();
    }

    #[test]
    fn root_latch_hands_off_once() {
        let l = Arc::new(RootLatch::<u64>::new());
        assert!(!l.is_set());
        assert_eq!(l.try_get(), None);
        let waiter = {
            let l = Arc::clone(&l);
            thread::spawn(move || l.wait())
        };
        l.set(7);
        l.set(9); // one-shot: ignored
        assert_eq!(waiter.join().unwrap(), 7);
        assert_eq!(l.try_get(), Some(7));
        assert_eq!(l.wait(), 7); // set latch never blocks again
    }

    #[test]
    fn root_latch_wakes_many_waiters() {
        let l = Arc::new(RootLatch::<bool>::new());
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || l.wait())
            })
            .collect();
        l.set(true);
        for w in waiters {
            assert!(w.join().unwrap());
        }
    }

    #[test]
    fn unregistered_versions_are_visible() {
        let g = VersionGate::new();
        g.wait_visible(0);
        g.wait_visible(42); // never registered: must not block
        assert_eq!(g.pending(), 0);
    }

    #[test]
    fn visibility_tracks_the_pending_window() {
        let g = VersionGate::new();
        g.register(1);
        g.register(2);
        assert_eq!(g.visible(), 0);
        g.open(1);
        assert_eq!(g.visible(), 1);
        g.wait_visible(1);
        g.open(2);
        assert_eq!(g.visible(), 2);
        g.wait_visible(2);
        assert_eq!(g.pending(), 0);
    }

    #[test]
    fn out_of_order_opens_hold_the_watermark() {
        let g = VersionGate::new();
        g.register(1);
        g.register(2);
        g.register(3);
        g.open(3);
        g.open(2);
        // Version 1 still pending: nothing at or above it is visible.
        assert_eq!(g.visible(), 0);
        g.open(1);
        assert_eq!(g.visible(), 3);
    }

    #[test]
    fn waiters_wake_when_their_version_opens() {
        let g = Arc::new(VersionGate::new());
        g.register(1);
        g.register(2);
        let waiter = {
            let g = Arc::clone(&g);
            thread::spawn(move || {
                g.wait_visible(2);
                g.visible()
            })
        };
        // Open out of order; the waiter needs both.
        g.open(2);
        g.open(1);
        assert!(waiter.join().unwrap() >= 2);
    }
}
