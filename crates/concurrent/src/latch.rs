//! A countdown latch for stage barriers in the validator pipeline.

use parking_lot::{Condvar, Mutex};

/// Blocks waiters until `count` calls to [`CountdownLatch::count_down`] have
/// happened.
///
/// Used by the validator pipeline to detect "all lanes of this block have
/// finished executing" before the applier seals the block, and by tests to
/// coordinate worker startup.
pub struct CountdownLatch {
    remaining: Mutex<usize>,
    cond: Condvar,
}

impl CountdownLatch {
    /// A latch requiring `count` count-downs.
    pub fn new(count: usize) -> Self {
        CountdownLatch {
            remaining: Mutex::new(count),
            cond: Condvar::new(),
        }
    }

    /// Records one completion; wakes all waiters when the count reaches zero.
    /// Extra count-downs after zero are ignored.
    pub fn count_down(&self) {
        let mut g = self.remaining.lock();
        if *g > 0 {
            *g -= 1;
            if *g == 0 {
                self.cond.notify_all();
            }
        }
    }

    /// Blocks until the count reaches zero.
    pub fn wait(&self) {
        let mut g = self.remaining.lock();
        while *g > 0 {
            self.cond.wait(&mut g);
        }
    }

    /// Current remaining count (for diagnostics).
    pub fn remaining(&self) -> usize {
        *self.remaining.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn zero_latch_never_blocks() {
        let l = CountdownLatch::new(0);
        l.wait();
        assert_eq!(l.remaining(), 0);
    }

    #[test]
    fn waits_for_all_workers() {
        let latch = Arc::new(CountdownLatch::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let latch = Arc::clone(&latch);
            handles.push(thread::spawn(move || latch.count_down()));
        }
        latch.wait();
        assert_eq!(latch.remaining(), 0);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn extra_countdowns_ignored() {
        let l = CountdownLatch::new(1);
        l.count_down();
        l.count_down();
        assert_eq!(l.remaining(), 0);
        l.wait();
    }
}
