//! Concurrency utilities shared by the OCC-WSI proposer and the validator
//! pipeline.
//!
//! The hot structures in BlockPilot are maps keyed by [`bp_types::AccessKey`]
//! that every worker thread reads and writes: the multi-version state and the
//! OCC *reserve table*. Wrapping a single `HashMap` in one lock would
//! serialize the workers, so [`ShardedMap`] stripes the key space over many
//! small `parking_lot::RwLock`ed maps. [`ReserveTable`] builds the versioned
//! write-reservation semantics of Algorithm 1 on top of it, and
//! [`VersionAllocator`] hands out the monotonically increasing commit
//! versions. [`ResultSlots`] gives the validator pipeline a lock-free,
//! single-writer result array for the transaction-execution phase.

#![warn(missing_docs)]

pub mod latch;
pub mod reserve;
pub mod sharded;
pub mod slots;
pub mod stm_scheduler;
pub mod version;

pub use latch::{CountdownLatch, RootLatch, VersionGate};
pub use reserve::ReserveTable;
pub use sharded::ShardedMap;
pub use slots::ResultSlots;
pub use stm_scheduler::{StmScheduler, StmTask};
pub use version::VersionAllocator;
