//! The OCC-WSI *reserve table* (Algorithm 1 of the paper).
//!
//! The table maps every state key to the **version** of the last committed
//! transaction that wrote it. A transaction that executed against snapshot
//! version `v` validates by checking, for every key in its read set, that the
//! table entry is still ≤ `v`; a larger entry means a concurrent transaction
//! committed a write the snapshot did not see, so the reader must abort
//! (write-snapshot isolation: readers abort, blind writers do not).

use bp_types::AccessKey;

use crate::sharded::ShardedMap;

/// Versioned write-reservation table keyed by [`AccessKey`].
///
/// Keys absent from the table implicitly carry version 0 (the pre-block
/// state), matching the paper's initialization "each key is assigned with
/// version 0".
pub struct ReserveTable {
    table: ShardedMap<AccessKey, u64>,
}

impl ReserveTable {
    /// Creates a table sized for `threads` concurrent workers.
    pub fn new(threads: usize) -> Self {
        ReserveTable {
            table: ShardedMap::for_threads(threads),
        }
    }

    /// The committed version of `key` (0 if never written in this block).
    pub fn version_of(&self, key: &AccessKey) -> u64 {
        self.table.get(key).unwrap_or(0)
    }

    /// Validation check for one read: did any transaction with a version
    /// newer than `snapshot_version` write `key`?
    pub fn is_stale(&self, key: &AccessKey, snapshot_version: u64) -> bool {
        self.version_of(key) > snapshot_version
    }

    /// Records that the transaction committed at `version` wrote `keys`.
    ///
    /// Versions are monotone per key: a lagging writer can never roll an
    /// entry backwards (commits are serialized by the proposer's commit lock,
    /// but the invariant is cheap to keep unconditionally).
    pub fn publish<'a>(&self, keys: impl IntoIterator<Item = &'a AccessKey>, version: u64) {
        for key in keys {
            self.table.update(*key, |slot| {
                let cur = slot.unwrap_or(0);
                if version > cur {
                    *slot = Some(version);
                }
            });
        }
    }

    /// Number of distinct keys written so far in this block.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Resets the table for the next block.
    pub fn clear(&self) {
        self.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_types::Address;

    fn key(i: u64) -> AccessKey {
        AccessKey::Balance(Address::from_index(i))
    }

    #[test]
    fn fresh_keys_have_version_zero() {
        let t = ReserveTable::new(4);
        assert_eq!(t.version_of(&key(1)), 0);
        assert!(!t.is_stale(&key(1), 0));
        assert!(t.is_empty());
    }

    #[test]
    fn publish_and_staleness() {
        let t = ReserveTable::new(4);
        t.publish([key(1), key(2)].iter(), 3);
        assert_eq!(t.version_of(&key(1)), 3);
        // A snapshot taken at version 2 missed the write at version 3.
        assert!(t.is_stale(&key(1), 2));
        // A snapshot at version 3 or later saw it.
        assert!(!t.is_stale(&key(1), 3));
        assert!(!t.is_stale(&key(1), 5));
        // Unwritten keys never go stale.
        assert!(!t.is_stale(&key(9), 0));
    }

    #[test]
    fn versions_are_monotone() {
        let t = ReserveTable::new(4);
        t.publish([key(1)].iter(), 5);
        t.publish([key(1)].iter(), 3); // late, lower version: ignored
        assert_eq!(t.version_of(&key(1)), 5);
        t.publish([key(1)].iter(), 7);
        assert_eq!(t.version_of(&key(1)), 7);
    }

    #[test]
    fn clear_resets() {
        let t = ReserveTable::new(4);
        t.publish([key(1)].iter(), 1);
        assert_eq!(t.len(), 1);
        t.clear();
        assert_eq!(t.version_of(&key(1)), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn concurrent_publishes_keep_max() {
        use std::sync::Arc;
        let t = Arc::new(ReserveTable::new(8));
        let mut handles = Vec::new();
        for v in 1..=16u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                t.publish([key(0)].iter(), v);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.version_of(&key(0)), 16);
    }
}
