//! A lock-striped concurrent hash map.

use core::hash::{BuildHasher, Hash};
use std::collections::hash_map::RandomState;
use std::collections::HashMap;

use parking_lot::RwLock;

/// A concurrent map striped over `2^shard_bits` independent
/// `RwLock<HashMap>` shards.
///
/// Readers of different keys proceed in parallel; writers only contend when
/// their keys land in the same shard. This is the backing store for the
/// OCC-WSI reserve table and the multi-version state overlay, where the
/// access pattern is many point reads/writes from all worker threads.
pub struct ShardedMap<K, V, S = RandomState> {
    shards: Vec<RwLock<HashMap<K, V, S>>>,
    mask: usize,
    hasher: S,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// Creates a map with a shard count suited to `threads` workers (at least
    /// 4× the thread count, rounded up to a power of two, capped at 256).
    pub fn for_threads(threads: usize) -> Self {
        let want = (threads.max(1) * 4).next_power_of_two().min(256);
        Self::with_shards(want)
    }

    /// Creates a map with exactly `shards` shards (rounded up to a power of
    /// two).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedMap {
            shards: (0..n).map(|_| RwLock::new(HashMap::default())).collect(),
            mask: n - 1,
            hasher: RandomState::new(),
        }
    }
}

impl<K: Hash + Eq, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::with_shards(16)
    }
}

impl<K: Hash + Eq, V, S: BuildHasher> ShardedMap<K, V, S> {
    #[inline]
    fn shard_for(&self, key: &K) -> &RwLock<HashMap<K, V, S>> {
        let h = self.hasher.hash_one(key);
        &self.shards[(h as usize) & self.mask]
    }

    /// Returns a clone of the value for `key`.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.shard_for(key).read().get(key).cloned()
    }

    /// Applies `f` to the value for `key` under the shard read lock, avoiding
    /// a clone for large values.
    pub fn with<R>(&self, key: &K, f: impl FnOnce(Option<&V>) -> R) -> R {
        f(self.shard_for(key).read().get(key))
    }

    /// Inserts, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard_for(&key).write().insert(key, value)
    }

    /// Removes, returning the previous value if any.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard_for(key).write().remove(key)
    }

    /// True iff the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard_for(key).read().contains_key(key)
    }

    /// Read-modify-write of one entry under the shard write lock; returns
    /// whatever `f` returns.
    pub fn update<R>(&self, key: K, f: impl FnOnce(&mut Option<V>) -> R) -> R {
        let shard = self.shard_for(&key);
        let mut guard = shard.write();
        // Work on an Option so `f` can insert, mutate or remove.
        let mut slot = guard.remove(&key);
        let out = f(&mut slot);
        if let Some(v) = slot {
            guard.insert(key, v);
        }
        out
    }

    /// Total number of entries (takes every shard's read lock in turn; not a
    /// linearizable snapshot).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True iff no entries exist.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Clears all shards.
    pub fn clear(&self) {
        for s in &self.shards {
            s.write().clear();
        }
    }

    /// Snapshots all entries into a `Vec` (shard by shard).
    pub fn snapshot(&self) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let mut out = Vec::new();
        for s in &self.shards {
            let g = s.read();
            out.extend(g.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Number of shards (for tests and tuning).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn basic_ops() {
        let m: ShardedMap<u64, String> = ShardedMap::default();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "a".into()), None);
        assert_eq!(m.insert(1, "b".into()), Some("a".into()));
        assert_eq!(m.get(&1), Some("b".into()));
        assert!(m.contains_key(&1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(&1), Some("b".into()));
        assert!(m.get(&1).is_none());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let m: ShardedMap<u64, u64> = ShardedMap::with_shards(5);
        assert_eq!(m.shard_count(), 8);
        let m: ShardedMap<u64, u64> = ShardedMap::for_threads(16);
        assert_eq!(m.shard_count(), 64);
        let m: ShardedMap<u64, u64> = ShardedMap::for_threads(1000);
        assert_eq!(m.shard_count(), 256);
    }

    #[test]
    fn update_can_insert_mutate_remove() {
        let m: ShardedMap<u64, u64> = ShardedMap::default();
        m.update(7, |slot| {
            assert!(slot.is_none());
            *slot = Some(1);
        });
        assert_eq!(m.get(&7), Some(1));
        m.update(7, |slot| {
            *slot.as_mut().unwrap() += 10;
        });
        assert_eq!(m.get(&7), Some(11));
        m.update(7, |slot| {
            *slot = None;
        });
        assert!(m.get(&7).is_none());
    }

    #[test]
    fn with_borrows_without_clone() {
        let m: ShardedMap<u64, Vec<u8>> = ShardedMap::default();
        m.insert(1, vec![1, 2, 3]);
        let sum: u32 = m.with(&1, |v| v.unwrap().iter().map(|&b| b as u32).sum());
        assert_eq!(sum, 6);
        let missing = m.with(&2, |v| v.is_none());
        assert!(missing);
    }

    #[test]
    fn snapshot_collects_everything() {
        let m: ShardedMap<u64, u64> = ShardedMap::with_shards(4);
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        let mut snap = m.snapshot();
        snap.sort_unstable();
        assert_eq!(snap.len(), 100);
        assert_eq!(snap[10], (10, 20));
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn concurrent_counters_are_exact() {
        let m: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::for_threads(8));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for i in 0..1000u64 {
                    let key = (t * 1000 + i) % 64; // heavy sharing across threads
                    m.update(key, |slot| {
                        *slot = Some(slot.unwrap_or(0) + 1);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = m.snapshot().into_iter().map(|(_, v)| v).sum();
        assert_eq!(total, 8000);
    }
}
