//! Lock-free single-writer result slots.
//!
//! The validator's transaction-execution phase produces one result per
//! transaction index, and the scheduler guarantees **disjoint ownership**:
//! every index belongs to exactly one dependency subgraph, and a subgraph is
//! executed by exactly one worker job. [`ResultSlots`] exploits that to
//! publish results with a single release store per slot instead of a global
//! mutex — removing the per-transaction lock from the execution hot loop.
//!
//! Protocol (enforced with per-slot state machines, not locks):
//!
//! 1. **Publish phase** — for each index, the owning worker calls
//!    [`ResultSlots::publish`] exactly once (`EMPTY → FULL`, release store).
//! 2. **Drain phase** — after the completion barrier (the last finishing
//!    worker hands the block to the applier through a channel), the applier
//!    calls [`ResultSlots::take`] per slot (`FULL → TAKEN`, acquire CAS),
//!    *moving* the value out — no clone, no lock.
//!
//! A slot may legitimately stay `EMPTY` forever: when a block trips its
//! early-abort flag, the remaining subgraph jobs stop without executing
//! their transactions. [`ResultSlots::take`] returns `None` for those.
//! Double publishes and double takes, by contrast, indicate a scheduler bug
//! (an index claimed by two jobs) and panic.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU8, Ordering};

const EMPTY: u8 = 0;
const WRITING: u8 = 1;
const FULL: u8 = 2;
const TAKEN: u8 = 3;

/// A fixed-size array of single-writer, single-reader result cells.
pub struct ResultSlots<T> {
    states: Vec<AtomicU8>,
    cells: Vec<UnsafeCell<MaybeUninit<T>>>,
}

// SAFETY: every cell is guarded by its own atomic state machine. A cell's
// payload is written exactly once (EMPTY→WRITING→FULL, the FULL store is a
// release) and moved out exactly once (FULL→TAKEN via an acquire CAS), so no
// two threads ever access a payload concurrently.
unsafe impl<T: Send> Sync for ResultSlots<T> {}
unsafe impl<T: Send> Send for ResultSlots<T> {}

impl<T> ResultSlots<T> {
    /// `n` empty slots.
    pub fn new(n: usize) -> Self {
        ResultSlots {
            states: (0..n).map(|_| AtomicU8::new(EMPTY)).collect(),
            cells: (0..n)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True iff there are no slots.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Publishes `value` into slot `index`. Panics if the slot was already
    /// published — that means two workers claimed the same transaction.
    pub fn publish(&self, index: usize, value: T) {
        let state = &self.states[index];
        if state
            .compare_exchange(EMPTY, WRITING, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            panic!("result slot {index} published twice");
        }
        // SAFETY: the EMPTY→WRITING transition above grants this thread
        // exclusive access to the cell.
        unsafe { (*self.cells[index].get()).write(value) };
        state.store(FULL, Ordering::Release);
    }

    /// Moves the value out of slot `index`, or `None` if it was never
    /// published (the block aborted early and this index's job was
    /// cancelled). Panics on a double take.
    pub fn take(&self, index: usize) -> Option<T> {
        let state = &self.states[index];
        match state.compare_exchange(FULL, TAKEN, Ordering::Acquire, Ordering::Relaxed) {
            Ok(_) => {
                // SAFETY: the FULL→TAKEN transition grants exclusive access,
                // and the acquire pairs with the publisher's release store,
                // so the payload write is visible.
                Some(unsafe { (*self.cells[index].get()).assume_init_read() })
            }
            Err(TAKEN) => panic!("result slot {index} taken twice"),
            Err(_) => None,
        }
    }

    /// True iff slot `index` holds an un-taken value.
    pub fn is_full(&self, index: usize) -> bool {
        self.states[index].load(Ordering::Acquire) == FULL
    }
}

impl<T> Drop for ResultSlots<T> {
    fn drop(&mut self) {
        for (state, cell) in self.states.iter_mut().zip(&mut self.cells) {
            if *state.get_mut() == FULL {
                // SAFETY: FULL slots hold an initialized, never-taken value.
                unsafe { cell.get_mut().assume_init_drop() };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn publish_then_take_moves_the_value() {
        let slots = ResultSlots::new(3);
        slots.publish(1, String::from("hello"));
        assert!(slots.is_full(1));
        assert_eq!(slots.take(1), Some(String::from("hello")));
        assert!(!slots.is_full(1));
        assert_eq!(slots.take(0), None); // never published
    }

    #[test]
    #[should_panic(expected = "published twice")]
    fn double_publish_panics() {
        let slots = ResultSlots::new(1);
        slots.publish(0, 1u32);
        slots.publish(0, 2u32);
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_panics() {
        let slots = ResultSlots::new(1);
        slots.publish(0, 1u32);
        let _ = slots.take(0);
        let _ = slots.take(0);
    }

    #[test]
    fn drop_releases_untaken_values() {
        let marker = Arc::new(());
        {
            let slots = ResultSlots::new(2);
            slots.publish(0, Arc::clone(&marker));
            slots.publish(1, Arc::clone(&marker));
            let _ = slots.take(0);
            // Slot 1 is dropped with the structure.
        }
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    #[test]
    fn concurrent_publishers_disjoint_slots() {
        let slots = Arc::new(ResultSlots::new(64));
        let mut handles = Vec::new();
        for t in 0..4usize {
            let slots = Arc::clone(&slots);
            handles.push(std::thread::spawn(move || {
                for i in (t..64).step_by(4) {
                    slots.publish(i, i * 10);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..64 {
            assert_eq!(slots.take(i), Some(i * 10));
        }
    }
}
