//! The Block-STM collaborative scheduler.
//!
//! Workers pull tasks from two logical queues — *execution* and
//! *validation* — realized as two atomic counters over the preset
//! transaction order. Each counter only ever moves forward via `fetch_add`
//! (claiming the next index) or backward via `fetch_min` (an abort or a
//! resumed dependency re-opens a prefix); the pair acts as the engine's
//! **decrease-only commit watermark**: every transaction below
//! `min(execution_idx, validation_idx)` that is `Executed` and has no
//! pending re-validation is final.
//!
//! Termination detection is the paper's stability check: the run is done
//! when both counters have passed the end, no claimed task is in flight,
//! and `decrease_cnt` — bumped on every backward move — did not change
//! while we looked.
//!
//! Suspension: when an execution reads an ESTIMATE marker it registers a
//! dependency on the writer ([`StmScheduler::add_dependency`]) instead of
//! spinning; the writer's next [`StmScheduler::finish_execution`] resumes
//! every suspended dependent (same incarnation) and re-opens the execution
//! watermark down to the lowest of them.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

/// A unit of work handed to a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StmTask {
    /// Execute incarnation `incarnation` of transaction `tx`.
    Execute {
        /// Preset index.
        tx: usize,
        /// Incarnation to run.
        incarnation: u32,
    },
    /// Validate the read set of incarnation `incarnation` of `tx`.
    Validate {
        /// Preset index.
        tx: usize,
        /// Incarnation whose reads are checked.
        incarnation: u32,
    },
    /// Every transaction is executed and validated: workers exit.
    Done,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    ReadyToExecute,
    Executing,
    Suspended,
    Executed,
    Aborting,
}

struct TxState {
    incarnation: u32,
    status: Status,
    /// Transactions suspended on this one (resumed at finish_execution).
    deps: Vec<usize>,
}

/// The scheduler for one Block-STM block run over `n` preset transactions.
pub struct StmScheduler {
    n: usize,
    execution_idx: AtomicUsize,
    validation_idx: AtomicUsize,
    /// Bumped on every backward (`fetch_min`) move of either index; the
    /// stability witness for termination detection.
    decrease_cnt: AtomicUsize,
    /// Tasks currently claimed by some worker.
    num_active: AtomicUsize,
    done: AtomicBool,
    txs: Vec<Mutex<TxState>>,
}

impl StmScheduler {
    /// A scheduler over `n` transactions (all initially ready to execute).
    pub fn new(n: usize) -> Self {
        StmScheduler {
            n,
            execution_idx: AtomicUsize::new(0),
            validation_idx: AtomicUsize::new(0),
            decrease_cnt: AtomicUsize::new(0),
            num_active: AtomicUsize::new(0),
            done: AtomicBool::new(n == 0),
            txs: (0..n)
                .map(|_| {
                    Mutex::new(TxState {
                        incarnation: 0,
                        status: Status::ReadyToExecute,
                        deps: Vec::new(),
                    })
                })
                .collect(),
        }
    }

    /// True once every transaction is executed and validated.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn decrease_execution_idx(&self, to: usize) {
        self.execution_idx.fetch_min(to, Ordering::SeqCst);
        self.decrease_cnt.fetch_add(1, Ordering::SeqCst);
    }

    fn decrease_validation_idx(&self, to: usize) {
        self.validation_idx.fetch_min(to, Ordering::SeqCst);
        self.decrease_cnt.fetch_add(1, Ordering::SeqCst);
    }

    fn check_done(&self) {
        let observed = self.decrease_cnt.load(Ordering::SeqCst);
        let e = self.execution_idx.load(Ordering::SeqCst);
        let v = self.validation_idx.load(Ordering::SeqCst);
        if e.min(v) >= self.n
            && self.num_active.load(Ordering::SeqCst) == 0
            && self.decrease_cnt.load(Ordering::SeqCst) == observed
        {
            self.done.store(true, Ordering::Release);
        }
    }

    fn next_version_to_execute(&self) -> Option<StmTask> {
        if self.execution_idx.load(Ordering::SeqCst) >= self.n {
            self.check_done();
            return None;
        }
        self.num_active.fetch_add(1, Ordering::SeqCst);
        let idx = self.execution_idx.fetch_add(1, Ordering::SeqCst);
        if idx < self.n {
            let mut st = self.txs[idx].lock();
            if st.status == Status::ReadyToExecute {
                st.status = Status::Executing;
                return Some(StmTask::Execute {
                    tx: idx,
                    incarnation: st.incarnation,
                });
            }
        }
        self.num_active.fetch_sub(1, Ordering::SeqCst);
        None
    }

    fn next_version_to_validate(&self) -> Option<StmTask> {
        if self.validation_idx.load(Ordering::SeqCst) >= self.n {
            self.check_done();
            return None;
        }
        self.num_active.fetch_add(1, Ordering::SeqCst);
        let idx = self.validation_idx.fetch_add(1, Ordering::SeqCst);
        if idx < self.n {
            let st = self.txs[idx].lock();
            if st.status == Status::Executed {
                return Some(StmTask::Validate {
                    tx: idx,
                    incarnation: st.incarnation,
                });
            }
        }
        self.num_active.fetch_sub(1, Ordering::SeqCst);
        None
    }

    /// The next task for an idle worker. Spins (yielding) while both queues
    /// are drained but other workers still hold tasks that may re-open them;
    /// returns [`StmTask::Done`] once the run converged.
    pub fn next_task(&self) -> StmTask {
        loop {
            if self.done.load(Ordering::Acquire) {
                return StmTask::Done;
            }
            let task = if self.validation_idx.load(Ordering::SeqCst)
                < self.execution_idx.load(Ordering::SeqCst)
            {
                self.next_version_to_validate()
            } else {
                self.next_version_to_execute()
            };
            match task {
                Some(t) => return t,
                None => std::thread::yield_now(),
            }
        }
    }

    /// Suspends `tx` (currently `Executing`) until `blocking` finishes its
    /// next execution. Returns `false` — and suspends nothing — if
    /// `blocking` already finished (the caller should simply re-execute).
    /// On success the claimed execution task is released.
    pub fn add_dependency(&self, tx: usize, blocking: usize) -> bool {
        debug_assert!(blocking < tx, "dependencies point down the preset order");
        // Lock order: lower index first (finish_execution locks tx then its
        // higher-index dependents, so this cannot deadlock).
        let mut b = self.txs[blocking].lock();
        if b.status == Status::Executed {
            return false;
        }
        {
            let mut t = self.txs[tx].lock();
            debug_assert_eq!(t.status, Status::Executing);
            t.status = Status::Suspended;
        }
        b.deps.push(tx);
        drop(b);
        self.num_active.fetch_sub(1, Ordering::SeqCst);
        true
    }

    /// Marks incarnation `incarnation` of `tx` executed, resumes everything
    /// suspended on it, and schedules re-validation. With
    /// `revalidate_suffix` the validation watermark drops to `tx` (required
    /// when the write set grew a new location, and — beyond the original
    /// algorithm — whenever `incarnation > 0`, because this engine
    /// soft-passes validations that land on an ESTIMATE and must therefore
    /// force a fresh pass over the suffix once the re-execution lands).
    /// Otherwise the worker gets the single validation task back.
    pub fn finish_execution(
        &self,
        tx: usize,
        incarnation: u32,
        revalidate_suffix: bool,
    ) -> Option<StmTask> {
        let deps = {
            let mut st = self.txs[tx].lock();
            debug_assert_eq!(st.status, Status::Executing);
            debug_assert_eq!(st.incarnation, incarnation);
            st.status = Status::Executed;
            std::mem::take(&mut st.deps)
        };
        if let Some(&min_dep) = deps.iter().min() {
            for &d in &deps {
                let mut ds = self.txs[d].lock();
                debug_assert_eq!(ds.status, Status::Suspended);
                ds.status = Status::ReadyToExecute;
            }
            self.decrease_execution_idx(min_dep);
        }
        if self.validation_idx.load(Ordering::SeqCst) > tx {
            if revalidate_suffix {
                self.decrease_validation_idx(tx);
            } else {
                return Some(StmTask::Validate { tx, incarnation });
            }
        }
        self.num_active.fetch_sub(1, Ordering::SeqCst);
        None
    }

    /// Claims the right to abort incarnation `incarnation` of `tx`. Exactly
    /// one concurrent validator of the same incarnation wins; the winner
    /// must flag the write set as ESTIMATEs and then call
    /// [`StmScheduler::finish_validation`] with `aborted = true`.
    pub fn try_validation_abort(&self, tx: usize, incarnation: u32) -> bool {
        let mut st = self.txs[tx].lock();
        if st.incarnation == incarnation && st.status == Status::Executed {
            st.status = Status::Aborting;
            true
        } else {
            false
        }
    }

    /// Completes a validation task. On an abort the transaction becomes
    /// ready at the next incarnation, the validation watermark drops below
    /// every higher transaction, and — when the execution watermark already
    /// passed it — the worker immediately gets the re-execution task back.
    pub fn finish_validation(&self, tx: usize, aborted: bool) -> Option<StmTask> {
        if aborted {
            {
                let mut st = self.txs[tx].lock();
                debug_assert_eq!(st.status, Status::Aborting);
                st.incarnation += 1;
                st.status = Status::ReadyToExecute;
            }
            self.decrease_validation_idx(tx + 1);
            if self.execution_idx.load(Ordering::SeqCst) > tx {
                let mut st = self.txs[tx].lock();
                if st.status == Status::ReadyToExecute {
                    st.status = Status::Executing;
                    return Some(StmTask::Execute {
                        tx,
                        incarnation: st.incarnation,
                    });
                }
            }
        }
        self.num_active.fetch_sub(1, Ordering::SeqCst);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_run_is_immediately_done() {
        let s = StmScheduler::new(0);
        assert!(s.is_done());
        assert_eq!(s.next_task(), StmTask::Done);
    }

    #[test]
    fn serial_happy_path_executes_then_validates() {
        let s = StmScheduler::new(2);
        // The validation watermark trails the execution watermark, so a
        // single worker alternates execute → validate down the preset order.
        assert_eq!(
            s.next_task(),
            StmTask::Execute {
                tx: 0,
                incarnation: 0
            }
        );
        // validation_idx (0) is not past tx 0 yet: no task handed back, the
        // validation queue itself covers it.
        assert!(s.finish_execution(0, 0, false).is_none());
        assert_eq!(
            s.next_task(),
            StmTask::Validate {
                tx: 0,
                incarnation: 0
            }
        );
        assert!(s.finish_validation(0, false).is_none());
        assert_eq!(
            s.next_task(),
            StmTask::Execute {
                tx: 1,
                incarnation: 0
            }
        );
        assert!(s.finish_execution(1, 0, false).is_none());
        assert_eq!(
            s.next_task(),
            StmTask::Validate {
                tx: 1,
                incarnation: 0
            }
        );
        assert!(s.finish_validation(1, false).is_none());
        assert_eq!(s.next_task(), StmTask::Done);
    }

    #[test]
    fn finish_execution_hands_back_validation_when_watermark_passed() {
        let s = StmScheduler::new(2);
        let _e0 = s.next_task();
        // The second claim first tries (and wastes) validation slot 0 — tx 0
        // is still executing — bumping the validation watermark past tx 0.
        let _e1 = s.next_task();
        // So when tx 0 finishes, the watermark (1 > 0) already passed it and
        // the finishing worker gets tx 0's validation task back directly.
        let v0 = s.finish_execution(0, 0, false).unwrap();
        assert_eq!(
            v0,
            StmTask::Validate {
                tx: 0,
                incarnation: 0
            }
        );
        assert!(s.finish_validation(0, false).is_none());
        // tx 1: the watermark (1) has not passed it, so no handback; the
        // validation queue covers it.
        assert!(s.finish_execution(1, 0, false).is_none());
        assert_eq!(
            s.next_task(),
            StmTask::Validate {
                tx: 1,
                incarnation: 0
            }
        );
        assert!(s.finish_validation(1, false).is_none());
        assert_eq!(s.next_task(), StmTask::Done);
    }

    #[test]
    fn abort_bumps_incarnation_and_reopens_validation() {
        let s = StmScheduler::new(2);
        assert_eq!(
            s.next_task(),
            StmTask::Execute {
                tx: 0,
                incarnation: 0
            }
        );
        assert_eq!(
            s.next_task(),
            StmTask::Execute {
                tx: 1,
                incarnation: 0
            }
        );
        assert!(s.finish_execution(0, 0, true).is_none());
        assert!(s.finish_execution(1, 0, true).is_none());
        // Validate 0 fine, abort 1.
        let v0 = s.next_task();
        assert_eq!(
            v0,
            StmTask::Validate {
                tx: 0,
                incarnation: 0
            }
        );
        assert!(s.finish_validation(0, false).is_none());
        let v1 = s.next_task();
        assert_eq!(
            v1,
            StmTask::Validate {
                tx: 1,
                incarnation: 0
            }
        );
        assert!(s.try_validation_abort(1, 0));
        // Double-abort of the same incarnation is rejected.
        assert!(!s.try_validation_abort(1, 0));
        let re = s.finish_validation(1, true).unwrap();
        assert_eq!(
            re,
            StmTask::Execute {
                tx: 1,
                incarnation: 1
            }
        );
        let v1b = s.finish_execution(1, 1, false).unwrap();
        assert_eq!(
            v1b,
            StmTask::Validate {
                tx: 1,
                incarnation: 1
            }
        );
        assert!(s.finish_validation(1, false).is_none());
        assert_eq!(s.next_task(), StmTask::Done);
    }

    #[test]
    fn suspended_tasks_resume_after_the_blocker_executes() {
        let s = StmScheduler::new(2);
        let _e0 = s.next_task();
        let _e1 = s.next_task();
        // tx 1 read an ESTIMATE of tx 0: suspend.
        assert!(s.add_dependency(1, 0));
        // tx 0 finishes: tx 1 must become executable again. The validation
        // watermark trails, so tx 0's validation is handed out first, then
        // the resumed execution of tx 1.
        assert!(s.finish_execution(0, 0, true).is_none());
        assert_eq!(
            s.next_task(),
            StmTask::Validate {
                tx: 0,
                incarnation: 0
            }
        );
        assert!(s.finish_validation(0, false).is_none());
        let t = s.next_task();
        assert_eq!(
            t,
            StmTask::Execute {
                tx: 1,
                incarnation: 0
            }
        );
        assert!(s.finish_execution(1, 0, true).is_none());
        // Drain the two validations.
        loop {
            match s.next_task() {
                StmTask::Validate { tx, .. } => {
                    s.finish_validation(tx, false);
                }
                StmTask::Done => break,
                t => panic!("unexpected {t:?}"),
            }
        }
    }

    #[test]
    fn add_dependency_fails_once_blocker_executed() {
        let s = StmScheduler::new(2);
        let _e0 = s.next_task();
        let _e1 = s.next_task();
        assert!(s.finish_execution(0, 0, true).is_none());
        // Too late to suspend: the caller must just re-execute.
        assert!(!s.add_dependency(1, 0));
        assert!(s.finish_execution(1, 0, true).is_none());
        loop {
            match s.next_task() {
                StmTask::Validate { tx, .. } => {
                    s.finish_validation(tx, false);
                }
                StmTask::Done => break,
                t => panic!("unexpected {t:?}"),
            }
        }
    }

    #[test]
    fn concurrent_workers_converge() {
        // A synthetic torture run: every validation of incarnation 0 aborts,
        // so each transaction executes at least twice; the scheduler must
        // still converge and hand out exactly one final validation per tx.
        let n = 64;
        let s = Arc::new(StmScheduler::new(n));
        let validated = Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = Arc::clone(&s);
                let validated = Arc::clone(&validated);
                scope.spawn(move || {
                    let mut task = None;
                    loop {
                        let t = match task.take() {
                            Some(t) => t,
                            None => s.next_task(),
                        };
                        match t {
                            StmTask::Done => break,
                            StmTask::Execute { tx, incarnation } => {
                                task = s.finish_execution(tx, incarnation, true);
                            }
                            StmTask::Validate { tx, incarnation } => {
                                if incarnation == 0 && s.try_validation_abort(tx, 0) {
                                    task = s.finish_validation(tx, true);
                                } else {
                                    validated[tx].fetch_add(1, Ordering::Relaxed);
                                    task = s.finish_validation(tx, false);
                                }
                            }
                        }
                    }
                });
            }
        });
        assert!(s.is_done());
        for v in validated.iter() {
            assert!(v.load(Ordering::Relaxed) >= 1);
        }
    }
}
