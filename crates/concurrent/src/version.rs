//! Commit-version allocation.

use core::sync::atomic::{AtomicU64, Ordering};

/// Hands out the monotonically increasing commit versions used by OCC-WSI.
///
/// Version 0 is reserved for the pre-block state; the first committed
/// transaction takes version 1, mirroring Algorithm 1's `version' + 1`.
#[derive(Debug, Default)]
pub struct VersionAllocator {
    // Stores the last allocated version; `fetch_add` makes allocation
    // wait-free. Relaxed suffices: the allocator only needs atomicity of the
    // counter itself — commit visibility is ordered by the proposer's commit
    // lock, not by this counter.
    next: AtomicU64,
}

impl VersionAllocator {
    /// A fresh allocator whose next allocation is version 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next commit version (1, 2, 3, ...).
    #[inline]
    pub fn allocate(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The most recently allocated version (0 if none yet): the version a new
    /// snapshot should be taken at.
    #[inline]
    pub fn current(&self) -> u64 {
        self.next.load(Ordering::Acquire)
    }

    /// Resets to the pre-block state (version 0) for the next block.
    pub fn reset(&self) {
        self.next.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn allocates_from_one() {
        let a = VersionAllocator::new();
        assert_eq!(a.current(), 0);
        assert_eq!(a.allocate(), 1);
        assert_eq!(a.allocate(), 2);
        assert_eq!(a.current(), 2);
        a.reset();
        assert_eq!(a.current(), 0);
        assert_eq!(a.allocate(), 1);
    }

    #[test]
    fn concurrent_allocations_are_unique() {
        let a = Arc::new(VersionAllocator::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                (0..500).map(|_| a.allocate()).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
        assert_eq!(all[0], 1);
        assert_eq!(*all.last().unwrap(), 4000);
    }
}
