//! Property test: `ShardedMap` behaves like a `HashMap` under any sequence
//! of operations, regardless of shard count.

use std::collections::HashMap;

use bp_concurrent::ShardedMap;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Update(u16, u32),
    Get(u16),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
            any::<u16>().prop_map(Op::Remove),
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Update(k, v)),
            any::<u16>().prop_map(Op::Get),
        ],
        0..120,
    )
}

proptest! {
    #[test]
    fn matches_hashmap_model(ops in arb_ops(), shards in 1usize..40) {
        let map: ShardedMap<u16, u32> = ShardedMap::with_shards(shards);
        let mut model: HashMap<u16, u32> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(map.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(map.remove(&k), model.remove(&k));
                }
                Op::Update(k, v) => {
                    map.update(k, |slot| {
                        *slot = Some(slot.unwrap_or(0).wrapping_add(v));
                    });
                    let entry = model.entry(k).or_insert(0);
                    *entry = entry.wrapping_add(v);
                }
                Op::Get(k) => {
                    prop_assert_eq!(map.get(&k), model.get(&k).copied());
                    prop_assert_eq!(map.contains_key(&k), model.contains_key(&k));
                }
            }
        }
        prop_assert_eq!(map.len(), model.len());
        let mut snap = map.snapshot();
        snap.sort_unstable();
        let mut expect: Vec<(u16, u32)> = model.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(snap, expect);
    }
}
