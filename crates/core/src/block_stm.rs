//! Block-STM: the proposer's dynamic re-execution engine (the A/B
//! alternative to [`crate::occ_wsi`], selected by [`ProposerAlgo`]).
//!
//! Where OCC-WSI discards an aborted execution and re-queues the
//! transaction behind a fresh snapshot, Block-STM (Gelashvili et al.) fixes
//! a **preset order** over the block's candidates up front and executes
//! *incarnations* against a multi-version memory
//! ([`bp_state::MvMemory`]):
//!
//! * a read by transaction `j` resolves to the highest-index write below
//!   `j`, so the converged run is exactly the serial execution of the
//!   preset order;
//! * a validation abort does not delete the stale writes — it flags them as
//!   **ESTIMATE** markers (dependency estimation seeded from the prior
//!   abort's write set). A later transaction that reads one learns *which*
//!   transaction it must wait for ([`bp_concurrent::StmScheduler::add_dependency`])
//!   instead of executing blind, failing validation and retrying;
//! * the collaborative scheduler ([`bp_concurrent::StmScheduler`]) hands out
//!   execution and validation tasks over two decrease-only watermarks and
//!   detects convergence by counter stability.
//!
//! One engine-specific deviation from the original algorithm: a validation
//! that lands on an ESTIMATE **soft-passes** (counted as
//! `wait_on_estimate`) instead of aborting the reader — the paper's
//! "suspend dependents, don't kill them" rule applied to validation. This
//! is sound because every re-execution finishes with
//! `revalidate_suffix = true` (see [`bp_concurrent::StmScheduler::finish_execution`]),
//! so the deferred verdict is always re-checked once the writer lands.
//!
//! Sealing takes the longest preset **prefix** that fits the gas limit:
//! later speculative results assumed every predecessor's effects, so the
//! block cannot skip a non-fitting transaction and keep its successors
//! (unlike OCC-WSI, whose commit order is discovered dynamically). Failed
//! candidates (bad nonce, no funds) wrote nothing and are simply dropped
//! from the body; everything past the cut returns to the pool untouched.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bp_block::{receipts_root, tx_root, Block, BlockHeader, BlockProfile, TxProfile};
use bp_concurrent::{StmScheduler, StmTask};
use bp_evm::{
    execute_transaction_in, AnalysisCache, ExecutionResult, StateView, Transaction, TxError,
};
use bp_state::ReadValidation;
use bp_state::{MvMemory, MvRead, ReadOrigin, WorldState};
use bp_txpool::TxPool;
use bp_types::{AccessKey, Address, BlockHash, Height, U256};
use parking_lot::Mutex;

use crate::occ_wsi::{OccWsiConfig, Proposal, ProposerStats, WorkerStats};

/// Which parallel execution engine the proposer runs (the A/B knob; see
/// `proposer_baseline` in `bp-bench` for the sweep).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProposerAlgo {
    /// OCC with write-snapshot isolation and discard-and-retry aborts
    /// (Algorithm 1; [`crate::occ_wsi::OccWsiProposer`]).
    #[default]
    OccWsi,
    /// Block-STM: preset order, multi-version memory with ESTIMATE markers,
    /// cooperative dependency-aware re-execution ([`BlockStmProposer`]).
    BlockStm,
}

/// How many transactions one pool-lock acquisition checks out while
/// draining the candidate prefix.
const DRAIN_BATCH: usize = 32;

/// The candidate drain stops once the summed *declared* gas
/// (`tx.gas_limit`) reaches this multiple of the block gas limit: declared
/// gas upper-bounds used gas, so the slack keeps the block full even when
/// transactions use far less than they declare. Over-drained candidates
/// return to the pool at seal time.
const DRAIN_GAS_HEADROOM: u64 = 2;

/// The Block-STM proposer engine.
pub struct BlockStmProposer {
    config: OccWsiConfig,
    /// Code-analysis cache shared across every block this proposer packs.
    cache: Arc<AnalysisCache>,
}

/// The [`StateView`] one incarnation executes against: reads resolve
/// through the multi-version memory at the transaction's preset index and
/// are recorded (with their [`ReadOrigin`]) for later validation.
///
/// [`StateView::read_key`] is infallible, so a read that lands on an
/// ESTIMATE cannot suspend mid-execution: the view notes the blocking
/// writer in `blocked_on`, serves the stale fallback value, and the worker
/// discards the whole execution afterwards — the incarnation re-runs once
/// the writer finishes. Every view-level read is recorded (the host may
/// consult the view more than once per key as the memory changes
/// underneath), and validation re-checks each one.
struct StmView<'a> {
    mv: &'a MvMemory,
    tx: u32,
    reads: RefCell<Vec<(AccessKey, ReadOrigin)>>,
    blocked_on: Cell<Option<u32>>,
}

impl StateView for StmView<'_> {
    fn read_key(&self, key: &AccessKey) -> (U256, u64) {
        match self.mv.read(key, self.tx) {
            MvRead::Value { value, origin } => {
                self.reads.borrow_mut().push((*key, origin));
                // Version surfaced to the host: the writer's index + 1 (0 =
                // pre-block), mirroring OCC's commit-version convention so
                // profile read-version fields stay meaningful.
                let version = match origin {
                    ReadOrigin::Base => 0,
                    ReadOrigin::Version { tx, .. } => tx as u64 + 1,
                };
                (value, version)
            }
            MvRead::Estimate { writer, fallback } => {
                self.blocked_on.set(Some(writer));
                (fallback, 0)
            }
        }
    }

    fn code(&self, addr: &Address) -> Arc<Vec<u8>> {
        // Code identity is covered by the AccessKey::Code read the host
        // records around this call; no separate origin tracking needed.
        self.mv.code_at(addr, self.tx)
    }
}

/// State shared by the workers of one Block-STM run.
struct StmShared<'a> {
    mv: &'a MvMemory,
    sched: &'a StmScheduler,
    txs: &'a [Transaction],
    /// Latest incarnation's outcome per preset index; the seal walk takes
    /// them after convergence.
    results: &'a [Mutex<Option<Result<ExecutionResult, TxError>>>],
    executions: &'a AtomicU64,
    first_aborts: &'a AtomicU64,
    retry_aborts: &'a AtomicU64,
    validation_failures: &'a AtomicU64,
    wait_on_estimate: &'a AtomicU64,
}

impl BlockStmProposer {
    /// An engine with the given configuration, sharing the process-wide
    /// analysis cache. (`config.commit_path` is OCC-specific and ignored.)
    pub fn new(config: OccWsiConfig) -> Self {
        Self::with_cache(config, AnalysisCache::global())
    }

    /// An engine with a dedicated analysis cache.
    pub fn with_cache(config: OccWsiConfig, cache: Arc<AnalysisCache>) -> Self {
        assert!(config.threads > 0, "need at least one worker");
        BlockStmProposer { config, cache }
    }

    /// The configuration.
    pub fn config(&self) -> &OccWsiConfig {
        &self.config
    }

    /// The code-analysis cache this engine's workers execute against.
    pub fn analysis_cache(&self) -> &Arc<AnalysisCache> {
        &self.cache
    }

    /// Packs and seals the next block: drains a candidate prefix from
    /// `pool` (preset order = pool priority order), runs Block-STM over it,
    /// and seals the longest converged prefix that fits the gas limit.
    ///
    /// Per-sender nonce chains span *blocks*, not one block: the pool only
    /// exposes each sender's lowest pending nonce until it commits, so a
    /// single drain checks out at most one transaction per sender.
    pub fn propose(
        &self,
        pool: &TxPool,
        parent_state: Arc<WorldState>,
        parent: BlockHash,
        height: Height,
    ) -> Proposal {
        // ---- Drain the candidate prefix (the preset order). ----
        let mut candidates: Vec<Transaction> = Vec::new();
        let gas_target = self.config.gas_limit.saturating_mul(DRAIN_GAS_HEADROOM);
        let mut drained_gas: u64 = 0;
        'drain: loop {
            let batch = pool.pop_many(DRAIN_BATCH);
            if batch.is_empty() {
                break;
            }
            let mut batch = batch.into_iter();
            for tx in batch.by_ref() {
                drained_gas += tx.gas_limit;
                candidates.push(tx);
                if drained_gas >= gas_target
                    || (self.config.max_txs > 0 && candidates.len() >= self.config.max_txs)
                {
                    // Checked-out leftovers go straight back to the pool.
                    for rest in batch {
                        pool.push_back(&rest);
                    }
                    break 'drain;
                }
            }
        }
        let n = candidates.len();

        let mv = MvMemory::new(Arc::clone(&parent_state), n, self.config.threads);
        let sched = StmScheduler::new(n);
        let results: Vec<Mutex<Option<Result<ExecutionResult, TxError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let executions = AtomicU64::new(0);
        let first_aborts = AtomicU64::new(0);
        let retry_aborts = AtomicU64::new(0);
        let validation_failures = AtomicU64::new(0);
        let wait_on_estimate = AtomicU64::new(0);
        let shared = StmShared {
            mv: &mv,
            sched: &sched,
            txs: &candidates,
            results: &results,
            executions: &executions,
            first_aborts: &first_aborts,
            retry_aborts: &retry_aborts,
            validation_failures: &validation_failures,
            wait_on_estimate: &wait_on_estimate,
        };

        let threads = self.config.threads.min(n.max(1));
        let started = Instant::now();
        let cache_base = self.cache.stats();
        let worker_stats: Vec<WorkerStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| scope.spawn(|| self.worker(&shared)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let wall_micros = started.elapsed().as_micros() as u64;
        let cache_delta = self.cache.stats().since(&cache_base);
        debug_assert!(sched.is_done());

        // ---- Seal: the longest preset prefix that fits. ----
        let mut txs_out: Vec<Transaction> = Vec::new();
        let mut receipts: Vec<bp_evm::Receipt> = Vec::new();
        let mut profile = BlockProfile::default();
        let mut gas_used: u64 = 0;
        let mut discarded: u64 = 0;
        let mut cut = 0usize;
        while cut < n {
            let result = results[cut]
                .lock()
                .take()
                .expect("scheduler converged: every candidate has a result");
            match result {
                Err(_) => {
                    // Wrote nothing (the engine records an empty write set
                    // for failed candidates), so dropping it from the body
                    // does not disturb the prefix's state.
                    discarded += 1;
                    pool.discard(&candidates[cut]);
                }
                Ok(res) => {
                    if gas_used + res.receipt.gas_used > self.config.gas_limit
                        || (self.config.max_txs > 0 && txs_out.len() >= self.config.max_txs)
                    {
                        // Prefix rule: this result (and every later one)
                        // assumed all predecessors' effects; none of them
                        // can be included once one is cut.
                        break;
                    }
                    gas_used += res.receipt.gas_used;
                    profile.push(TxProfile::from_rw(&res.rw, res.receipt.gas_used));
                    txs_out.push(candidates[cut].clone());
                    receipts.push(res.receipt);
                    pool.commit(&candidates[cut]);
                }
            }
            cut += 1;
        }
        for tx in &candidates[cut..] {
            pool.push_back(tx);
        }

        let mut post_state = mv.materialize(cut as u32);
        let fees: U256 = receipts.iter().map(|r| r.fee).sum();
        if !fees.is_zero() {
            let coinbase = self.config.env.coinbase;
            let bal = post_state.balance(&coinbase);
            post_state.set_balance(coinbase, bal + fees);
        }

        let header = BlockHeader {
            parent_hash: parent,
            height,
            state_root: post_state.state_root(),
            tx_root: tx_root(&txs_out),
            receipts_root: receipts_root(&receipts),
            gas_used,
            gas_limit: self.config.gas_limit,
            coinbase: self.config.env.coinbase,
            timestamp: self.config.env.timestamp,
            proposer_seed: self.config.env.number,
        };

        let first = first_aborts.load(Ordering::Acquire);
        let retry = retry_aborts.load(Ordering::Acquire);
        let committed = txs_out.len() as u64;
        Proposal {
            block: Block {
                header,
                transactions: txs_out,
                profile,
            },
            receipts,
            post_state,
            stats: ProposerStats {
                committed,
                aborts: first + retry,
                discarded,
                executions: executions.load(Ordering::Acquire),
                wall_micros,
                analysis_hits: cache_delta.hits,
                analysis_misses: cache_delta.misses,
                first_aborts: first,
                retry_aborts: retry,
                validation_failures: validation_failures.load(Ordering::Acquire),
                wait_on_estimate: wait_on_estimate.load(Ordering::Acquire),
                workers: worker_stats,
            },
        }
    }

    /// The worker loop: pull tasks until the scheduler converges. For this
    /// engine's [`WorkerStats`], `aborts` counts validation aborts this
    /// worker performed and `retries` counts re-executions (incarnation
    /// above 0) it ran; `committed` is left 0 (commit order is the preset
    /// order, not worker-attributed).
    fn worker(&self, s: &StmShared<'_>) -> WorkerStats {
        let mut stats = WorkerStats::default();
        let mut task: Option<StmTask> = None;
        loop {
            let t = match task.take() {
                Some(t) => t,
                None => s.sched.next_task(),
            };
            match t {
                StmTask::Done => return stats,
                StmTask::Execute { tx, incarnation } => {
                    task = self.run_execute(s, tx, incarnation, &mut stats);
                }
                StmTask::Validate { tx, incarnation } => {
                    task = self.run_validate(s, tx, incarnation, &mut stats);
                }
            }
        }
    }

    /// Runs one incarnation. A read that hit an ESTIMATE discards the
    /// execution and either suspends on the writer or (if the writer
    /// already landed) re-runs immediately.
    fn run_execute(
        &self,
        s: &StmShared<'_>,
        tx: usize,
        incarnation: u32,
        stats: &mut WorkerStats,
    ) -> Option<StmTask> {
        loop {
            s.executions.fetch_add(1, Ordering::Relaxed);
            if incarnation > 0 {
                stats.retries += 1;
            }
            let view = StmView {
                mv: s.mv,
                tx: tx as u32,
                reads: RefCell::new(Vec::new()),
                blocked_on: Cell::new(None),
            };
            let exec = execute_transaction_in(&self.cache, &view, &self.config.env, &s.txs[tx]);
            if let Some(writer) = view.blocked_on.get() {
                s.wait_on_estimate.fetch_add(1, Ordering::Relaxed);
                if s.sched.add_dependency(tx, writer as usize) {
                    // Suspended; the writer's finish re-opens this index.
                    return None;
                }
                // The writer finished while we executed: retry now.
                continue;
            }
            let reads = view.reads.into_inner();
            let wrote_new = match &exec {
                Ok(res) => s.mv.record(
                    tx as u32,
                    incarnation,
                    reads,
                    &res.rw.writes,
                    res.deployed.iter().map(|(a, c)| (*a, Arc::clone(c))),
                ),
                // Failed candidates have exact, tiny read sets (nonce,
                // balance) and no writes; recording the empty write set
                // clears any previous incarnation's stale entries.
                Err(_) => s.mv.record(
                    tx as u32,
                    incarnation,
                    reads,
                    &Default::default(),
                    std::iter::empty(),
                ),
            };
            *s.results[tx].lock() = Some(exec);
            // Re-executions must force a suffix revalidation even without a
            // new location: validations that soft-passed on this
            // transaction's ESTIMATEs (SawEstimate) carry deferred verdicts
            // that only a fresh pass settles.
            return s
                .sched
                .finish_execution(tx, incarnation, wrote_new || incarnation > 0);
        }
    }

    /// Re-validates a recorded read set.
    fn run_validate(
        &self,
        s: &StmShared<'_>,
        tx: usize,
        incarnation: u32,
        stats: &mut WorkerStats,
    ) -> Option<StmTask> {
        match s.mv.validate_reads(tx as u32) {
            ReadValidation::Valid => s.sched.finish_validation(tx, false),
            ReadValidation::SawEstimate => {
                // The writer is mid-re-execution; its finish forces a fresh
                // suffix pass, so the verdict is safely deferred.
                s.wait_on_estimate.fetch_add(1, Ordering::Relaxed);
                s.sched.finish_validation(tx, false)
            }
            ReadValidation::Invalid => {
                if s.sched.try_validation_abort(tx, incarnation) {
                    s.mv.convert_to_estimates(tx as u32);
                    s.validation_failures.fetch_add(1, Ordering::Relaxed);
                    if incarnation == 0 {
                        s.first_aborts.fetch_add(1, Ordering::Relaxed);
                    } else {
                        s.retry_aborts.fetch_add(1, Ordering::Relaxed);
                    }
                    stats.aborts += 1;
                    s.sched.finish_validation(tx, true)
                } else {
                    // A newer incarnation exists; its own validation is
                    // already scheduled.
                    s.sched.finish_validation(tx, false)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_evm::contracts;
    use bp_types::Address;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn funded_world(accounts: u64) -> WorldState {
        let mut w = WorldState::new();
        for i in 1..=accounts {
            w.set_balance(addr(i), U256::from(1_000_000_000u64));
        }
        w
    }

    fn engine(threads: usize) -> BlockStmProposer {
        BlockStmProposer::new(OccWsiConfig {
            threads,
            ..OccWsiConfig::default()
        })
    }

    /// Serial replay of the block order over the base state (the
    /// serializability witness, identical to the OCC-WSI test helper).
    fn serial_replay(
        block: &Block,
        base: &WorldState,
        env: &bp_evm::BlockEnv,
    ) -> (WorldState, Vec<bp_evm::Receipt>) {
        let mut world = base.clone();
        let mut fees = U256::ZERO;
        let mut receipts = Vec::new();
        for tx in &block.transactions {
            let view = bp_evm::WorldView::new(&world);
            let result = bp_evm::execute_transaction(&view, env, tx).expect("replay must accept");
            world.apply_writes(&result.rw.writes);
            for (a, code) in &result.deployed {
                world.set_code(*a, (**code).clone());
            }
            fees += result.receipt.fee;
            receipts.push(result.receipt);
        }
        let cb = world.balance(&env.coinbase);
        world.set_balance(env.coinbase, cb + fees);
        (world, receipts)
    }

    #[test]
    fn disjoint_transfers_commit_and_replay() {
        let world = Arc::new(funded_world(20));
        let pool = TxPool::new();
        for i in 1..=10u64 {
            pool.add(Transaction::transfer(
                addr(i),
                addr(i + 10),
                U256::from(5u64),
                0,
                i,
            ));
        }
        let p = engine(4);
        let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 10);
        assert_eq!(proposal.stats.committed, 10);
        assert!(pool.is_empty());
        let (replay, receipts) = serial_replay(&proposal.block, &world, &p.config.env);
        assert_eq!(replay.state_root(), proposal.post_state.state_root());
        assert_eq!(proposal.block.header.state_root, replay.state_root());
        assert_eq!(receipts, proposal.receipts, "receipts bit-identical");
    }

    #[test]
    fn conflicting_counter_calls_converge_to_the_preset_order() {
        let mut w = funded_world(20);
        let c = addr(100);
        w.set_code(c, contracts::counter());
        let world = Arc::new(w);
        let pool = TxPool::new();
        for i in 1..=8u64 {
            pool.add(Transaction {
                sender: addr(i),
                to: Some(c),
                value: U256::ZERO,
                nonce: 0,
                gas_limit: 200_000,
                gas_price: 1,
                data: vec![],
            });
        }
        let p = engine(4);
        let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 8);
        assert_eq!(
            proposal
                .post_state
                .storage(&c, &bp_types::H256::from_low_u64(0)),
            U256::from(8u64)
        );
        let (replay, receipts) = serial_replay(&proposal.block, &world, &p.config.env);
        assert_eq!(replay.state_root(), proposal.post_state.state_root());
        assert_eq!(receipts, proposal.receipts);
        // Hot-key contention must show up in the engine counters: either
        // some incarnation aborted or everything serialized cleanly on the
        // first pass — but execution count is always >= committed.
        assert!(proposal.stats.executions >= proposal.stats.committed);
        assert_eq!(
            proposal.stats.aborts,
            proposal.stats.first_aborts + proposal.stats.retry_aborts
        );
    }

    #[test]
    fn gas_limit_takes_the_preset_prefix() {
        let world = Arc::new(funded_world(30));
        let pool = TxPool::new();
        for i in 1..=20u64 {
            // Distinct priorities make the preset order deterministic.
            pool.add(Transaction::transfer(addr(i), addr(99), U256::ONE, 0, i));
        }
        let p = BlockStmProposer::new(OccWsiConfig {
            threads: 4,
            gas_limit: 21_000 * 5,
            ..OccWsiConfig::default()
        });
        let proposal = p.propose(&pool, world, BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 5);
        assert_eq!(proposal.block.header.gas_used, 21_000 * 5);
        // Highest gas price first: the prefix is senders 20..=16.
        let senders: Vec<Address> = proposal
            .block
            .transactions
            .iter()
            .map(|t| t.sender)
            .collect();
        assert_eq!(senders, (16..=20u64).rev().map(addr).collect::<Vec<_>>());
        assert_eq!(pool.len(), 15);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn max_txs_caps_the_block() {
        let world = Arc::new(funded_world(30));
        let pool = TxPool::new();
        for i in 1..=20u64 {
            pool.add(Transaction::transfer(addr(i), addr(99), U256::ONE, 0, 1));
        }
        let p = BlockStmProposer::new(OccWsiConfig {
            threads: 2,
            max_txs: 7,
            ..OccWsiConfig::default()
        });
        let proposal = p.propose(&pool, world, BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 7);
        assert_eq!(pool.len(), 13);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn invalid_candidates_are_discarded_without_breaking_the_prefix() {
        let world = Arc::new(funded_world(3));
        let pool = TxPool::new();
        // Sender 50 has no funds; give it the highest priority so it leads
        // the preset order.
        pool.add(Transaction::transfer(addr(50), addr(1), U256::ONE, 0, 9));
        pool.add(Transaction::transfer(addr(1), addr(2), U256::ONE, 0, 1));
        let p = engine(2);
        let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 1);
        assert_eq!(proposal.stats.discarded, 1);
        assert!(pool.is_empty());
        let (replay, _) = serial_replay(&proposal.block, &world, &p.config.env);
        assert_eq!(replay.state_root(), proposal.post_state.state_root());
    }

    #[test]
    fn empty_pool_seals_empty_block() {
        let world = Arc::new(funded_world(1));
        let pool = TxPool::new();
        let p = engine(2);
        let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 7);
        assert_eq!(proposal.block.tx_count(), 0);
        assert_eq!(proposal.block.header.height, 7);
        assert_eq!(proposal.block.header.state_root, world.state_root());
    }

    #[test]
    fn amm_hotspot_is_serializable_across_thread_counts() {
        for threads in [1usize, 2, 8] {
            let mut w = funded_world(32);
            let amm = addr(200);
            w.set_code(amm, contracts::amm_pair());
            w.set_storage(
                amm,
                contracts::amm_reserve_slot(0),
                U256::from(10_000_000u64),
            );
            w.set_storage(
                amm,
                contracts::amm_reserve_slot(1),
                U256::from(10_000_000u64),
            );
            let world = Arc::new(w);
            let pool = TxPool::new();
            for i in 1..=16u64 {
                pool.add(Transaction {
                    sender: addr(i),
                    to: Some(amm),
                    value: U256::ZERO,
                    nonce: 0,
                    gas_limit: 300_000,
                    gas_price: 1,
                    data: contracts::amm_swap_calldata((i % 2) as u8, U256::from(1000 + i)),
                });
            }
            let p = engine(threads);
            let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 1);
            assert_eq!(proposal.block.tx_count(), 16);
            let (replay, receipts) = serial_replay(&proposal.block, &world, &p.config.env);
            assert_eq!(replay.state_root(), proposal.post_state.state_root());
            assert_eq!(receipts, proposal.receipts);
        }
    }

    #[test]
    fn stats_reconcile() {
        let mut w = funded_world(20);
        let c = addr(100);
        w.set_code(c, contracts::counter());
        let world = Arc::new(w);
        let pool = TxPool::new();
        for i in 1..=12u64 {
            pool.add(Transaction {
                sender: addr(i),
                to: Some(c),
                value: U256::ZERO,
                nonce: 0,
                gas_limit: 200_000,
                gas_price: 1,
                data: vec![],
            });
        }
        let p = engine(8);
        let proposal = p.propose(&pool, world, BlockHash::ZERO, 1);
        assert_eq!(proposal.stats.committed, 12);
        assert_eq!(proposal.stats.discarded, 0);
        assert!(proposal.stats.executions >= proposal.stats.committed);
        assert_eq!(
            proposal.stats.aborts,
            proposal.stats.first_aborts + proposal.stats.retry_aborts
        );
        // Worker-attributed validation aborts must sum to the total.
        let worker_aborts: u64 = proposal.stats.workers.iter().map(|w| w.aborts).sum();
        assert_eq!(worker_aborts, proposal.stats.validation_failures);
        assert!(proposal.stats.wall_micros > 0);
    }
}
