//! BlockPilot core: the paper's contribution.
//!
//! * [`occ_wsi`] — Algorithm 1: the proposer's optimistic parallel execution
//!   under write-snapshot isolation; the commit order becomes the block
//!   order and ships with a **block profile** of per-transaction read/write
//!   sets.
//! * [`scheduler`] — the validator's preparation phase: dependency graph →
//!   conflict subgraphs → gas-LPT lane assignment.
//! * [`pipeline`] — the validator's four-stage pipeline (preparation,
//!   transaction execution, block validation, block commitment) processing
//!   multiple blocks concurrently: same-height blocks overlap fully,
//!   cross-height blocks respect parent ordering.
//! * [`proposer`] / [`validator`] — node-level facades.

#![warn(missing_docs)]

pub mod block_stm;
pub mod occ_wsi;
pub mod pipeline;
pub mod proposer;
pub mod scheduler;
pub mod validator;

pub use block_stm::{BlockStmProposer, ProposerAlgo};
pub use occ_wsi::{CommitPath, OccWsiConfig, OccWsiProposer, Proposal, ProposerStats, WorkerStats};
pub use pipeline::{
    DispatchPolicy, PipelineConfig, StageTimings, ValidationError, ValidationHandle,
    ValidationOutcome, ValidatorPipeline,
};
pub use proposer::Proposer;
pub use scheduler::{AssignPolicy, ConflictGranularity, Schedule, Scheduler, Subgraph};
pub use validator::Validator;
