//! OCC-WSI: the proposer's optimistic parallel execution (Algorithm 1).
//!
//! Worker threads repeatedly pop the highest-priority pending transaction,
//! take a snapshot of the multi-version block state at the current commit
//! version, execute optimistically, then validate-and-commit atomically:
//!
//! * **validation** (write-snapshot isolation): abort iff some key in the
//!   transaction's *read set* was written by a transaction that committed
//!   after our snapshot (`Table[rec] > snapshot.version`). Write-write
//!   overlap alone does not abort — blind writes still serialize in commit
//!   order;
//! * **commit**: allocate the next version, publish the write set to the
//!   multi-version state and the reserve table, append the transaction to
//!   the block under construction, and record its read/write sets in the
//!   **block profile** for the validators.
//!
//! The committed sequence is a serializable schedule by construction, and it
//! *is* the block order.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bp_block::{receipts_root, tx_root, Block, BlockHeader, BlockProfile, TxProfile};
use bp_concurrent::{ReserveTable, VersionAllocator};
use bp_evm::{execute_transaction, BlockEnv, MvSnapshot, Receipt, Transaction, TxError};
use bp_state::{MultiVersionState, WorldState};
use bp_txpool::TxPool;
use bp_types::{BlockHash, Gas, Height, U256};
use parking_lot::Mutex;

/// Configuration for a proposal run.
#[derive(Clone, Debug)]
pub struct OccWsiConfig {
    /// Worker thread count (Algorithm 1's thread pool).
    pub threads: usize,
    /// Block gas limit: packing stops when no pending transaction fits.
    pub gas_limit: Gas,
    /// Execution environment for the new block.
    pub env: BlockEnv,
    /// Optional ceiling on transactions per block (0 = unlimited).
    pub max_txs: usize,
}

impl Default for OccWsiConfig {
    fn default() -> Self {
        OccWsiConfig {
            threads: 4,
            gas_limit: 30_000_000,
            env: BlockEnv::default(),
            max_txs: 0,
        }
    }
}

/// Statistics from one proposal run (feeds the Figure 6 harness and the
/// WSI-vs-OCC ablation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProposerStats {
    /// Transactions committed into the block.
    pub committed: u64,
    /// Optimistic executions that failed WSI validation and were re-queued.
    pub aborts: u64,
    /// Transactions discarded as permanently invalid (bad nonce, no funds).
    pub discarded: u64,
    /// Total executions (committed + aborted + discarded attempts).
    pub executions: u64,
}

/// The outcome of one proposal: a sealed block plus everything a caller
/// needs to adopt it locally.
pub struct Proposal {
    /// The sealed block (header, ordered transactions, block profile).
    pub block: Block,
    /// Receipts in block order.
    pub receipts: Vec<Receipt>,
    /// The post-state the block commits to.
    pub post_state: WorldState,
    /// Run statistics.
    pub stats: ProposerStats,
}

/// The OCC-WSI proposer.
pub struct OccWsiProposer {
    config: OccWsiConfig,
}

impl OccWsiProposer {
    /// A proposer with the given configuration.
    pub fn new(config: OccWsiConfig) -> Self {
        assert!(config.threads > 0, "need at least one worker");
        OccWsiProposer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &OccWsiConfig {
        &self.config
    }

    /// Runs Algorithm 1: executes transactions from `pool` in parallel over
    /// `parent_state` until the gas limit is reached or the pool drains,
    /// then seals the block on top of `parent`.
    pub fn propose(
        &self,
        pool: &TxPool,
        parent_state: Arc<WorldState>,
        parent: BlockHash,
        height: Height,
    ) -> Proposal {
        let mv = MultiVersionState::new(Arc::clone(&parent_state), self.config.threads);
        let reserve = ReserveTable::new(self.config.threads);
        let versions = VersionAllocator::new();
        let builder = Mutex::new(BlockBuilder::default());
        let cur_gas = AtomicU64::new(0);
        let full = AtomicBool::new(false);
        let aborts = AtomicU64::new(0);
        let discarded = AtomicU64::new(0);
        let executions = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for _ in 0..self.config.threads {
                scope.spawn(|| {
                    self.worker(
                        pool,
                        &mv,
                        &reserve,
                        &versions,
                        &builder,
                        &cur_gas,
                        &full,
                        &aborts,
                        &discarded,
                        &executions,
                    )
                });
            }
        });

        let built = builder.into_inner();
        let gas_used = cur_gas.load(Ordering::Acquire);

        // Seal: materialize the post-state, credit aggregated fees to the
        // coinbase, and build the header.
        let mut post_state = mv.materialize(versions.current());
        let fees: U256 = built.receipts.iter().map(|r| r.fee).sum();
        if !fees.is_zero() {
            let coinbase = self.config.env.coinbase;
            let bal = post_state.balance(&coinbase);
            post_state.set_balance(coinbase, bal + fees);
        }

        let header = BlockHeader {
            parent_hash: parent,
            height,
            state_root: post_state.state_root(),
            tx_root: tx_root(&built.txs),
            receipts_root: receipts_root(&built.receipts),
            gas_used,
            gas_limit: self.config.gas_limit,
            coinbase: self.config.env.coinbase,
            timestamp: self.config.env.timestamp,
            proposer_seed: self.config.env.number,
        };

        Proposal {
            block: Block {
                header,
                transactions: built.txs,
                profile: built.profile,
            },
            receipts: built.receipts,
            post_state,
            stats: ProposerStats {
                committed: built.profile_len as u64,
                aborts: aborts.load(Ordering::Acquire),
                discarded: discarded.load(Ordering::Acquire),
                executions: executions.load(Ordering::Acquire),
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn worker(
        &self,
        pool: &TxPool,
        mv: &MultiVersionState,
        reserve: &ReserveTable,
        versions: &VersionAllocator,
        builder: &Mutex<BlockBuilder>,
        cur_gas: &AtomicU64,
        full: &AtomicBool,
        aborts: &AtomicU64,
        discarded: &AtomicU64,
        executions: &AtomicU64,
    ) {
        let mut idle_spins = 0u32;
        // Future-nonce transactions (a predecessor from the same sender has
        // not committed yet) are retried, but only while commits are still
        // happening: a gap whose predecessor is not in the system at all
        // would otherwise livelock the worker.
        let mut futile: std::collections::HashMap<bp_types::TxHash, (u64, u32)> =
            std::collections::HashMap::new();
        const MAX_FUTILE_RETRIES: u32 = 50;
        loop {
            if full.load(Ordering::Acquire) {
                return;
            }
            let Some(tx) = pool.pop() else {
                // The pool may refill when an in-flight transaction of some
                // sender commits; spin briefly before giving up.
                if pool.is_empty() || idle_spins > 64 {
                    return;
                }
                idle_spins += 1;
                std::thread::yield_now();
                continue;
            };
            idle_spins = 0;

            // snapshot(thread, version) <- State(version)
            let snapshot_version = versions.current();
            let snapshot = MvSnapshot::new(mv, snapshot_version);
            executions.fetch_add(1, Ordering::Relaxed);
            let exec = execute_transaction(&snapshot, &self.config.env, &tx);

            match exec {
                Err(TxError::BadNonce { expected, got }) if got > expected => {
                    // A prerequisite from the same sender hasn't committed
                    // yet. Retry while the block is still making progress;
                    // if nothing commits across repeated attempts the
                    // prerequisite is missing entirely — drop the tx.
                    let version_now = versions.current();
                    let entry = futile.entry(tx.hash()).or_insert((version_now, 0));
                    if entry.0 == version_now {
                        entry.1 += 1;
                    } else {
                        *entry = (version_now, 1);
                    }
                    if entry.1 >= MAX_FUTILE_RETRIES {
                        discarded.fetch_add(1, Ordering::Relaxed);
                        pool.discard(&tx);
                    } else {
                        aborts.fetch_add(1, Ordering::Relaxed);
                        pool.push_back(&tx);
                        std::thread::yield_now();
                    }
                    continue;
                }
                Err(_) => {
                    discarded.fetch_add(1, Ordering::Relaxed);
                    pool.discard(&tx);
                    continue;
                }
                Ok(result) => {
                    // DetectConflict + commit, atomically.
                    let mut b = builder.lock();
                    if full.load(Ordering::Acquire) {
                        pool.push_back(&tx);
                        return;
                    }
                    // WSI validation over the read set.
                    let stale = result
                        .rw
                        .reads
                        .keys()
                        .any(|key| reserve.is_stale(key, snapshot_version));
                    if stale {
                        drop(b);
                        aborts.fetch_add(1, Ordering::Relaxed);
                        pool.push_back(&tx);
                        continue;
                    }
                    // Gas-limit check.
                    let gas_after = cur_gas.load(Ordering::Acquire) + result.receipt.gas_used;
                    if gas_after > self.config.gas_limit
                        || (self.config.max_txs > 0 && b.txs.len() >= self.config.max_txs)
                    {
                        full.store(true, Ordering::Release);
                        drop(b);
                        pool.push_back(&tx);
                        return;
                    }
                    // Commit.
                    let version = versions.allocate();
                    mv.commit_writes(&result.rw.writes, version);
                    for (addr, code) in &result.deployed {
                        mv.install_code(*addr, Arc::clone(code));
                    }
                    reserve.publish(result.rw.writes.keys(), version);
                    cur_gas.store(gas_after, Ordering::Release);
                    b.profile
                        .push(TxProfile::from_rw(&result.rw, result.receipt.gas_used));
                    b.profile_len += 1;
                    b.txs.push(tx.clone());
                    b.receipts.push(result.receipt);
                    drop(b);
                    pool.commit(&tx);
                }
            }
        }
    }
}

#[derive(Default)]
struct BlockBuilder {
    txs: Vec<Transaction>,
    receipts: Vec<Receipt>,
    profile: BlockProfile,
    profile_len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_evm::contracts;
    use bp_types::{AccessKey, Address};

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn funded_world(accounts: u64) -> WorldState {
        let mut w = WorldState::new();
        for i in 1..=accounts {
            w.set_balance(addr(i), U256::from(1_000_000_000u64));
        }
        w
    }

    fn proposer(threads: usize) -> OccWsiProposer {
        OccWsiProposer::new(OccWsiConfig {
            threads,
            ..OccWsiConfig::default()
        })
    }

    /// Replays a block's transactions serially in block order; the result
    /// must equal the proposer's post-state (serializability witness).
    fn serial_replay(block: &Block, base: &WorldState, env: &BlockEnv) -> WorldState {
        let mut world = base.clone();
        let mut fees = U256::ZERO;
        for tx in &block.transactions {
            let view = bp_evm::WorldView(&world);
            let result = execute_transaction(&view, env, tx).expect("replay must accept");
            world.apply_writes(&result.rw.writes);
            for (a, code) in &result.deployed {
                world.set_code(*a, (**code).clone());
            }
            fees += result.receipt.fee;
        }
        let cb = world.balance(&env.coinbase);
        world.set_balance(env.coinbase, cb + fees);
        world
    }

    #[test]
    fn proposes_disjoint_transfers() {
        let world = Arc::new(funded_world(20));
        let pool = TxPool::new();
        for i in 1..=10u64 {
            pool.add(Transaction::transfer(
                addr(i),
                addr(i + 10),
                U256::from(5u64),
                0,
                i,
            ));
        }
        let p = proposer(4);
        let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 10);
        assert_eq!(proposal.stats.committed, 10);
        assert!(pool.is_empty());
        // Serializability: replaying the block order serially reproduces the
        // exact post-state root.
        let replay = serial_replay(&proposal.block, &world, &p.config.env);
        assert_eq!(replay.state_root(), proposal.post_state.state_root());
        assert_eq!(proposal.block.header.state_root, replay.state_root());
    }

    #[test]
    fn conflicting_counter_calls_all_commit_serializably() {
        let mut w = funded_world(20);
        let c = addr(100);
        w.set_code(c, contracts::counter());
        let world = Arc::new(w);
        let pool = TxPool::new();
        for i in 1..=8u64 {
            pool.add(Transaction {
                sender: addr(i),
                to: Some(c),
                value: U256::ZERO,
                nonce: 0,
                gas_limit: 200_000,
                gas_price: 1,
                data: vec![],
            });
        }
        let p = proposer(4);
        let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 8);
        // The counter must reach exactly 8: lost updates would show here.
        assert_eq!(
            proposal
                .post_state
                .storage(&c, &bp_types::H256::from_low_u64(0)),
            U256::from(8u64)
        );
        let replay = serial_replay(&proposal.block, &world, &p.config.env);
        assert_eq!(replay.state_root(), proposal.post_state.state_root());
    }

    #[test]
    fn aborted_transactions_are_retried_not_lost() {
        let mut w = funded_world(20);
        let c = addr(100);
        w.set_code(c, contracts::counter());
        let world = Arc::new(w);
        let pool = TxPool::new();
        for i in 1..=12u64 {
            pool.add(Transaction {
                sender: addr(i),
                to: Some(c),
                value: U256::ZERO,
                nonce: 0,
                gas_limit: 200_000,
                gas_price: 1,
                data: vec![],
            });
        }
        let p = proposer(8);
        let proposal = p.propose(&pool, world, BlockHash::ZERO, 1);
        assert_eq!(proposal.stats.committed, 12);
        assert_eq!(proposal.stats.discarded, 0);
        // Executions ≥ commits; the surplus is aborted attempts.
        assert!(proposal.stats.executions >= proposal.stats.committed);
        assert_eq!(
            proposal.stats.executions - proposal.stats.committed,
            proposal.stats.aborts
        );
    }

    #[test]
    fn same_sender_nonce_chain_commits_in_order() {
        let world = Arc::new(funded_world(5));
        let pool = TxPool::new();
        for nonce in 0..5u64 {
            pool.add(Transaction::transfer(
                addr(1),
                addr(2),
                U256::ONE,
                nonce,
                10,
            ));
        }
        let p = proposer(4);
        let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 5);
        let nonces: Vec<u64> = proposal
            .block
            .transactions
            .iter()
            .map(|t| t.nonce)
            .collect();
        assert_eq!(nonces, vec![0, 1, 2, 3, 4]);
        assert_eq!(proposal.post_state.nonce(&addr(1)), 5);
        assert_eq!(
            proposal.post_state.balance(&addr(2)),
            U256::from(1_000_000_005u64)
        );
    }

    #[test]
    fn gas_limit_bounds_the_block() {
        let world = Arc::new(funded_world(30));
        let pool = TxPool::new();
        for i in 1..=20u64 {
            pool.add(Transaction::transfer(addr(i), addr(99), U256::ONE, 0, 1));
        }
        let p = OccWsiProposer::new(OccWsiConfig {
            threads: 4,
            gas_limit: 21_000 * 5, // exactly five transfers
            ..OccWsiConfig::default()
        });
        let proposal = p.propose(&pool, world, BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 5);
        assert_eq!(proposal.block.header.gas_used, 21_000 * 5);
        // The remaining transactions stay pending.
        assert_eq!(pool.len(), 15);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn max_txs_caps_the_block() {
        let world = Arc::new(funded_world(30));
        let pool = TxPool::new();
        for i in 1..=20u64 {
            pool.add(Transaction::transfer(addr(i), addr(99), U256::ONE, 0, 1));
        }
        let p = OccWsiProposer::new(OccWsiConfig {
            threads: 2,
            max_txs: 7,
            ..OccWsiConfig::default()
        });
        let proposal = p.propose(&pool, world, BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 7);
    }

    #[test]
    fn invalid_transactions_are_discarded() {
        let world = Arc::new(funded_world(3));
        let pool = TxPool::new();
        // Sender 50 has no funds.
        pool.add(Transaction::transfer(addr(50), addr(1), U256::ONE, 0, 1));
        pool.add(Transaction::transfer(addr(1), addr(2), U256::ONE, 0, 1));
        let p = proposer(2);
        let proposal = p.propose(&pool, world, BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 1);
        assert_eq!(proposal.stats.discarded, 1);
        assert!(pool.is_empty());
    }

    #[test]
    fn profile_covers_every_transaction() {
        let world = Arc::new(funded_world(10));
        let pool = TxPool::new();
        for i in 1..=6u64 {
            pool.add(Transaction::transfer(addr(i), addr(9), U256::ONE, 0, 1));
        }
        let p = proposer(3);
        let proposal = p.propose(&pool, world, BlockHash::ZERO, 1);
        assert_eq!(proposal.block.profile.len(), proposal.block.tx_count());
        for (i, tx) in proposal.block.transactions.iter().enumerate() {
            let entry = &proposal.block.profile.entries[i];
            assert!(entry.writes.contains_key(&AccessKey::Nonce(tx.sender)));
            assert_eq!(entry.gas_used, proposal.receipts[i].gas_used);
        }
    }

    #[test]
    fn empty_pool_seals_empty_block() {
        let world = Arc::new(funded_world(1));
        let pool = TxPool::new();
        let p = proposer(2);
        let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 7);
        assert_eq!(proposal.block.tx_count(), 0);
        assert_eq!(proposal.block.header.height, 7);
        assert_eq!(proposal.block.header.state_root, world.state_root());
    }

    #[test]
    fn hotspot_block_is_serializable_with_many_threads() {
        // Heavy contention: all transactions hit one AMM pair.
        let mut w = funded_world(32);
        let amm = addr(200);
        w.set_code(amm, contracts::amm_pair());
        w.set_storage(
            amm,
            contracts::amm_reserve_slot(0),
            U256::from(10_000_000u64),
        );
        w.set_storage(
            amm,
            contracts::amm_reserve_slot(1),
            U256::from(10_000_000u64),
        );
        let world = Arc::new(w);
        let pool = TxPool::new();
        for i in 1..=16u64 {
            pool.add(Transaction {
                sender: addr(i),
                to: Some(amm),
                value: U256::ZERO,
                nonce: 0,
                gas_limit: 300_000,
                gas_price: 1,
                data: contracts::amm_swap_calldata((i % 2) as u8, U256::from(1000 + i)),
            });
        }
        let p = proposer(8);
        let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 16);
        let replay = serial_replay(&proposal.block, &world, &p.config.env);
        assert_eq!(replay.state_root(), proposal.post_state.state_root());
    }
}
