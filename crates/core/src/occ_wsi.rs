//! OCC-WSI: the proposer's optimistic parallel execution (Algorithm 1).
//!
//! Worker threads repeatedly pop the highest-priority pending transaction,
//! take a snapshot of the multi-version block state at the current commit
//! version, execute optimistically, then validate-and-commit:
//!
//! * **validation** (write-snapshot isolation): abort iff some key in the
//!   transaction's *read set* was written by a transaction that committed
//!   after our snapshot (`Table[rec] > snapshot.version`). Write-write
//!   overlap alone does not abort — blind writes still serialize in commit
//!   order;
//! * **commit**: allocate the next version, publish the write set to the
//!   multi-version state and the reserve table, append the transaction to
//!   the block under construction, and record its read/write sets in the
//!   **block profile** for the validators.
//!
//! The committed sequence is a serializable schedule by construction, and it
//! *is* the block order.
//!
//! # Two-phase commit (the default path)
//!
//! The straightforward implementation funnels every commit through one
//! global mutex covering validation, version allocation, multi-version
//! publication, reserve publication, gas accounting and block-body pushes —
//! and stops scaling as soon as commits are frequent. The default
//! [`CommitPath::TwoPhase`] protocol shrinks the serialized region to the
//! part that genuinely needs atomicity:
//!
//! * **Phase A** (under a commit-sequence lock, microseconds): WSI read-set
//!   validation, gas-limit admission, version allocation, and publication of
//!   the write *intentions* to the lock-free [`ReserveTable`]. Validation
//!   and intent publication must be mutually ordered — a committer must see
//!   the reservations of everything admitted before it, or a stale read
//!   could slip through — so they share the tiny critical section. The new
//!   version is registered *pending* on a [`VersionGate`] before it becomes
//!   discoverable.
//! * **Phase B** (no global lock): publish the write *values* to the
//!   [`MultiVersionState`], install deployed code, open the version's
//!   visibility latch, and append the `(version, tx, receipt, profile)`
//!   record to a per-worker segment buffer. Snapshot readers that land on a
//!   still-pending version wait on its latch instead of blocking committers.
//!
//! Block bodies never touch the critical path: [`OccWsiProposer::propose`]
//! merges the per-worker segments in version order at seal time.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bp_block::{receipts_root, tx_root, Block, BlockHeader, BlockProfile, TxProfile};
use bp_concurrent::{ReserveTable, ShardedMap, VersionAllocator, VersionGate};
use bp_evm::{
    execute_transaction_in, gas, AnalysisCache, BlockEnv, MvSnapshot, Receipt, Transaction, TxError,
};
use bp_state::{MultiVersionState, WorldState};
use bp_txpool::TxPool;
use bp_types::{BlockHash, Gas, Height, U256};
use parking_lot::Mutex;

/// How many transactions a worker checks out from the pool per heap lock
/// acquisition. Small enough that priority inversion is bounded, large
/// enough to amortize the pool's mutex on hot paths.
const POP_BATCH: usize = 4;

/// After the block first fails to fit a transaction, how many further
/// pending candidates each worker still tries before sealing. Bounded so a
/// nearly-full block cannot degenerate into scanning the whole pool.
const MAX_UNFIT_CANDIDATES: usize = 8;

/// Which commit protocol the proposer runs (kept switchable for A/B
/// benchmarking; see `proposer_baseline` in `bp-bench`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommitPath {
    /// Two-phase commit: tiny serialized admission (validation + version
    /// allocation + reserve intents), lock-free publication behind a
    /// per-version visibility gate, per-worker block segments.
    #[default]
    TwoPhase,
    /// The original single-mutex commit: validation, publication, gas and
    /// block-body pushes all under one global lock. Kept as the baseline.
    CoarseLock,
}

/// Configuration for a proposal run.
#[derive(Clone, Debug)]
pub struct OccWsiConfig {
    /// Worker thread count (Algorithm 1's thread pool).
    pub threads: usize,
    /// Block gas limit. Packing seals when no pending transaction fits:
    /// after the first transaction overflows the remaining gas, workers
    /// still probe a bounded number of further (smaller) candidates before
    /// giving up, so one oversized transaction does not strand the rest.
    pub gas_limit: Gas,
    /// Execution environment for the new block.
    pub env: BlockEnv,
    /// Optional ceiling on transactions per block (0 = unlimited).
    pub max_txs: usize,
    /// Commit protocol (two-phase by default; coarse lock for A/B).
    pub commit_path: CommitPath,
    /// Which execution engine a [`crate::Proposer`] built from this config
    /// runs (OCC-WSI by default; Block-STM for the A/B). Ignored by a
    /// directly-constructed [`OccWsiProposer`].
    pub algo: crate::block_stm::ProposerAlgo,
}

impl Default for OccWsiConfig {
    fn default() -> Self {
        OccWsiConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(1),
            gas_limit: 30_000_000,
            env: BlockEnv::default(),
            max_txs: 0,
            commit_path: CommitPath::default(),
            algo: crate::block_stm::ProposerAlgo::default(),
        }
    }
}

/// Per-worker counters from one proposal run (contention diagnostics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Transactions this worker committed.
    pub committed: u64,
    /// WSI validation failures this worker hit.
    pub aborts: u64,
    /// Future-nonce retries (prerequisite not yet committed) this worker
    /// burned.
    pub retries: u64,
}

/// Statistics from one proposal run (feeds the Figure 6 harness and the
/// WSI-vs-OCC ablation).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProposerStats {
    /// Transactions committed into the block.
    pub committed: u64,
    /// Optimistic executions that failed WSI validation and were re-queued.
    pub aborts: u64,
    /// Aborts hit on a transaction's *first* execution attempt (the
    /// first-vs-retry split attributes wasted work in the engine A/B: a
    /// first abort is the unavoidable discovery of a conflict, a retry
    /// abort is the same transaction thrashing).
    pub first_aborts: u64,
    /// Aborts hit on second and later attempts of the same transaction.
    pub retry_aborts: u64,
    /// Read-set validation failures (OCC-WSI: stale-read aborts; Block-STM:
    /// validation-task aborts). Excludes future-nonce retries.
    pub validation_failures: u64,
    /// Block-STM only: executions and validations that landed on an
    /// ESTIMATE marker and deferred to the blocking writer (0 for OCC-WSI,
    /// which has no dependency estimation).
    pub wait_on_estimate: u64,
    /// Transactions discarded as permanently invalid (bad nonce, no funds).
    pub discarded: u64,
    /// Total executions (committed + aborted + discarded attempts).
    pub executions: u64,
    /// Wall time of the parallel packing phase, in microseconds.
    pub wall_micros: u64,
    /// Code-analysis cache hits across all workers during this run.
    pub analysis_hits: u64,
    /// Code-analysis cache misses (fresh analyses) during this run.
    pub analysis_misses: u64,
    /// Per-worker commit/abort/retry breakdown, indexed by worker.
    pub workers: Vec<WorkerStats>,
}

impl ProposerStats {
    /// Committed transactions per wall-clock second of the packing phase
    /// (0.0 for an instantaneous empty run).
    pub fn committed_per_sec(&self) -> f64 {
        if self.wall_micros == 0 {
            0.0
        } else {
            self.committed as f64 * 1e6 / self.wall_micros as f64
        }
    }
}

/// The outcome of one proposal: a sealed block plus everything a caller
/// needs to adopt it locally.
pub struct Proposal {
    /// The sealed block (header, ordered transactions, block profile).
    pub block: Block,
    /// Receipts in block order.
    pub receipts: Vec<Receipt>,
    /// The post-state the block commits to.
    pub post_state: WorldState,
    /// Run statistics.
    pub stats: ProposerStats,
}

/// One committed transaction, buffered by the worker that committed it and
/// merged into the block body at seal time.
struct CommitRecord {
    version: u64,
    tx: Transaction,
    receipt: Receipt,
    profile: TxProfile,
}

/// State shared by all workers of one proposal run.
struct Shared<'a> {
    pool: &'a TxPool,
    mv: &'a MultiVersionState,
    reserve: &'a ReserveTable,
    versions: &'a VersionAllocator,
    gate: &'a VersionGate,
    /// The commit-sequence lock serializing Phase A. Guards nothing by
    /// value; the data it orders (reserve table, version allocator, gas
    /// meter) is reachable lock-free.
    admit: &'a Mutex<()>,
    cur_gas: &'a AtomicU64,
    full: &'a AtomicBool,
    aborts: &'a AtomicU64,
    discarded: &'a AtomicU64,
    executions: &'a AtomicU64,
    first_aborts: &'a AtomicU64,
    retry_aborts: &'a AtomicU64,
    validation_failures: &'a AtomicU64,
    /// Per-transaction abort tally backing the first-vs-retry split.
    abort_counts: &'a ShardedMap<bp_types::TxHash, u32>,
}

impl Shared<'_> {
    /// Tallies one abort of `hash` into the first-vs-retry split.
    fn note_abort(&self, hash: bp_types::TxHash) {
        let prior = self.abort_counts.update(hash, |slot| {
            let count = slot.get_or_insert(0);
            let prior = *count;
            *count += 1;
            prior
        });
        if prior == 0 {
            self.first_aborts.fetch_add(1, Ordering::Relaxed);
        } else {
            self.retry_aborts.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The OCC-WSI proposer.
pub struct OccWsiProposer {
    config: OccWsiConfig,
    /// Code-analysis cache shared by every worker across every block this
    /// proposer packs; contract bytecode is analyzed once, ever.
    cache: Arc<AnalysisCache>,
}

impl OccWsiProposer {
    /// A proposer with the given configuration, sharing the process-wide
    /// analysis cache.
    pub fn new(config: OccWsiConfig) -> Self {
        Self::with_cache(config, AnalysisCache::global())
    }

    /// A proposer with a dedicated analysis cache (isolated benchmarks and
    /// tests that want cold-cache behaviour).
    pub fn with_cache(config: OccWsiConfig, cache: Arc<AnalysisCache>) -> Self {
        assert!(config.threads > 0, "need at least one worker");
        OccWsiProposer { config, cache }
    }

    /// The configuration.
    pub fn config(&self) -> &OccWsiConfig {
        &self.config
    }

    /// The code-analysis cache this proposer's workers execute against.
    pub fn analysis_cache(&self) -> &Arc<AnalysisCache> {
        &self.cache
    }

    /// Runs Algorithm 1: executes transactions from `pool` in parallel over
    /// `parent_state` until the gas limit is reached or the pool drains,
    /// then seals the block on top of `parent`.
    pub fn propose(
        &self,
        pool: &TxPool,
        parent_state: Arc<WorldState>,
        parent: BlockHash,
        height: Height,
    ) -> Proposal {
        let gate = Arc::new(VersionGate::new());
        let mv = match self.config.commit_path {
            // Snapshots on the two-phase path wait on the gate for any
            // version still pending publication.
            CommitPath::TwoPhase => MultiVersionState::with_gate(
                Arc::clone(&parent_state),
                self.config.threads,
                Arc::clone(&gate),
            ),
            CommitPath::CoarseLock => {
                MultiVersionState::new(Arc::clone(&parent_state), self.config.threads)
            }
        };
        let reserve = ReserveTable::new(self.config.threads);
        let versions = VersionAllocator::new();
        let admit = Mutex::new(());
        let builder = Mutex::new(BlockBuilder::default());
        let cur_gas = AtomicU64::new(0);
        let full = AtomicBool::new(false);
        let aborts = AtomicU64::new(0);
        let discarded = AtomicU64::new(0);
        let executions = AtomicU64::new(0);
        let first_aborts = AtomicU64::new(0);
        let retry_aborts = AtomicU64::new(0);
        let validation_failures = AtomicU64::new(0);
        let abort_counts = ShardedMap::for_threads(self.config.threads);

        let shared = Shared {
            pool,
            mv: &mv,
            reserve: &reserve,
            versions: &versions,
            gate: &gate,
            admit: &admit,
            cur_gas: &cur_gas,
            full: &full,
            aborts: &aborts,
            discarded: &discarded,
            executions: &executions,
            first_aborts: &first_aborts,
            retry_aborts: &retry_aborts,
            validation_failures: &validation_failures,
            abort_counts: &abort_counts,
        };

        let started = Instant::now();
        let cache_base = self.cache.stats();
        let (mut records, worker_stats) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.config.threads)
                .map(|_| {
                    scope.spawn(|| match self.config.commit_path {
                        CommitPath::TwoPhase => self.worker_two_phase(&shared),
                        CommitPath::CoarseLock => {
                            (Vec::new(), self.worker_coarse(&shared, &builder))
                        }
                    })
                })
                .collect();
            let mut records = Vec::new();
            let mut stats = Vec::new();
            for h in handles {
                let (r, s) = h.join().expect("worker panicked");
                records.extend(r);
                stats.push(s);
            }
            (records, stats)
        });
        let wall_micros = started.elapsed().as_micros() as u64;
        let cache_delta = self.cache.stats().since(&cache_base);
        let gas_used = cur_gas.load(Ordering::Acquire);

        // Merge the per-worker segments into the block body, in version
        // (= block) order. Versions are dense 1..=committed.
        let built = match self.config.commit_path {
            CommitPath::TwoPhase => {
                records.sort_unstable_by_key(|r| r.version);
                debug_assert!(records
                    .iter()
                    .enumerate()
                    .all(|(i, r)| r.version == i as u64 + 1));
                let mut b = BlockBuilder::default();
                for r in records {
                    b.txs.push(r.tx);
                    b.receipts.push(r.receipt);
                    b.profile.push(r.profile);
                    b.profile_len += 1;
                }
                b
            }
            CommitPath::CoarseLock => builder.into_inner(),
        };

        // Seal: materialize the post-state, credit aggregated fees to the
        // coinbase, and build the header.
        let mut post_state = mv.materialize(versions.current());
        let fees: U256 = built.receipts.iter().map(|r| r.fee).sum();
        if !fees.is_zero() {
            let coinbase = self.config.env.coinbase;
            let bal = post_state.balance(&coinbase);
            post_state.set_balance(coinbase, bal + fees);
        }

        let header = BlockHeader {
            parent_hash: parent,
            height,
            state_root: post_state.state_root(),
            tx_root: tx_root(&built.txs),
            receipts_root: receipts_root(&built.receipts),
            gas_used,
            gas_limit: self.config.gas_limit,
            coinbase: self.config.env.coinbase,
            timestamp: self.config.env.timestamp,
            proposer_seed: self.config.env.number,
        };

        Proposal {
            block: Block {
                header,
                transactions: built.txs,
                profile: built.profile,
            },
            receipts: built.receipts,
            post_state,
            stats: ProposerStats {
                committed: built.profile_len as u64,
                aborts: aborts.load(Ordering::Acquire),
                first_aborts: first_aborts.load(Ordering::Acquire),
                retry_aborts: retry_aborts.load(Ordering::Acquire),
                validation_failures: validation_failures.load(Ordering::Acquire),
                wait_on_estimate: 0,
                discarded: discarded.load(Ordering::Acquire),
                executions: executions.load(Ordering::Acquire),
                wall_micros,
                analysis_hits: cache_delta.hits,
                analysis_misses: cache_delta.misses,
                workers: worker_stats,
            },
        }
    }

    /// The two-phase worker loop (the default commit path).
    fn worker_two_phase(&self, s: &Shared<'_>) -> (Vec<CommitRecord>, WorkerStats) {
        let mut stats = WorkerStats::default();
        let mut records: Vec<CommitRecord> = Vec::new();
        // Locally checked-out work, popped in batches to amortize the pool
        // lock. Entries are in-flight from the pool's point of view.
        let mut batch: std::collections::VecDeque<Transaction> = Default::default();
        // Transactions that did not fit the remaining gas; held aside (gas
        // only grows, so they can never fit later in this block) and
        // returned to the pool at seal time.
        let mut unfit: Vec<Transaction> = Vec::new();
        let mut idle_spins = 0u32;
        // Future-nonce transactions (a predecessor from the same sender has
        // not committed yet) are retried, but only while commits are still
        // happening: a gap whose predecessor is not in the system at all
        // would otherwise livelock the worker.
        let mut futile: std::collections::HashMap<bp_types::TxHash, (u64, u32)> =
            std::collections::HashMap::new();
        const MAX_FUTILE_RETRIES: u32 = 50;

        let flush = |batch: &mut std::collections::VecDeque<Transaction>,
                     unfit: &mut Vec<Transaction>| {
            for tx in batch.drain(..) {
                s.pool.push_back(&tx);
            }
            for tx in unfit.drain(..) {
                s.pool.push_back(&tx);
            }
        };

        loop {
            if s.full.load(Ordering::Acquire) {
                flush(&mut batch, &mut unfit);
                return (records, stats);
            }
            let tx = match batch.pop_front() {
                Some(tx) => tx,
                None => {
                    let mut popped = s.pool.pop_many(POP_BATCH);
                    if popped.is_empty() {
                        // The pool may refill when an in-flight transaction
                        // of some sender commits; spin briefly before giving
                        // up.
                        if s.pool.is_empty() || idle_spins > 64 {
                            flush(&mut batch, &mut unfit);
                            return (records, stats);
                        }
                        idle_spins += 1;
                        std::thread::yield_now();
                        continue;
                    }
                    let first = popped.remove(0);
                    batch.extend(popped);
                    first
                }
            };
            idle_spins = 0;

            // snapshot(thread, version) <- State(version); the snapshot
            // waits on the visibility gate if any version ≤ it is pending.
            let snapshot_version = s.versions.current();
            let snapshot = MvSnapshot::new(s.mv, snapshot_version);
            s.executions.fetch_add(1, Ordering::Relaxed);
            let exec = execute_transaction_in(&self.cache, &snapshot, &self.config.env, &tx);

            let result = match exec {
                Err(TxError::BadNonce { expected, got }) if got > expected => {
                    // A prerequisite from the same sender hasn't committed
                    // yet. Retry while the block is still making progress;
                    // if nothing commits across repeated attempts the
                    // prerequisite is missing entirely — drop the tx.
                    let version_now = s.versions.current();
                    let entry = futile.entry(tx.hash()).or_insert((version_now, 0));
                    if entry.0 == version_now {
                        entry.1 += 1;
                    } else {
                        *entry = (version_now, 1);
                    }
                    if entry.1 >= MAX_FUTILE_RETRIES {
                        s.discarded.fetch_add(1, Ordering::Relaxed);
                        s.pool.discard(&tx);
                    } else {
                        s.aborts.fetch_add(1, Ordering::Relaxed);
                        s.note_abort(tx.hash());
                        stats.retries += 1;
                        s.pool.push_back(&tx);
                        std::thread::yield_now();
                    }
                    continue;
                }
                Err(_) => {
                    s.discarded.fetch_add(1, Ordering::Relaxed);
                    s.pool.discard(&tx);
                    continue;
                }
                Ok(result) => result,
            };

            // ---- Phase A: admission, under the commit-sequence lock. ----
            let version = {
                let _seq = s.admit.lock();
                if s.full.load(Ordering::Acquire) {
                    s.pool.push_back(&tx);
                    flush(&mut batch, &mut unfit);
                    return (records, stats);
                }
                // WSI validation over the read set: the lock orders us
                // after the reserve intents of every admitted predecessor.
                let stale = result
                    .rw
                    .reads
                    .keys()
                    .any(|key| s.reserve.is_stale(key, snapshot_version));
                if stale {
                    drop(_seq);
                    s.aborts.fetch_add(1, Ordering::Relaxed);
                    s.validation_failures.fetch_add(1, Ordering::Relaxed);
                    s.note_abort(tx.hash());
                    stats.aborts += 1;
                    s.pool.push_back(&tx);
                    continue;
                }
                // Gas-limit admission.
                let gas_now = s.cur_gas.load(Ordering::Acquire);
                let gas_after = gas_now + result.receipt.gas_used;
                if gas_after > self.config.gas_limit {
                    // This one doesn't fit, but smaller pending transactions
                    // may: hold it aside and keep probing (bounded), unless
                    // nothing can ever fit the remaining headroom.
                    let nothing_fits = self.config.gas_limit - gas_now < gas::TX_BASE
                        || unfit.len() + 1 > MAX_UNFIT_CANDIDATES;
                    if nothing_fits {
                        s.full.store(true, Ordering::Release);
                        drop(_seq);
                        s.pool.push_back(&tx);
                        flush(&mut batch, &mut unfit);
                        return (records, stats);
                    }
                    drop(_seq);
                    unfit.push(tx);
                    continue;
                }
                if self.config.max_txs > 0 && s.versions.current() as usize >= self.config.max_txs {
                    s.full.store(true, Ordering::Release);
                    drop(_seq);
                    s.pool.push_back(&tx);
                    flush(&mut batch, &mut unfit);
                    return (records, stats);
                }
                // Admit: register the version as pending *before* it becomes
                // discoverable through the allocator, publish the write
                // intents, and account the gas.
                let version = s.versions.current() + 1;
                s.gate.register(version);
                s.reserve.publish(result.rw.writes.keys(), version);
                s.cur_gas.store(gas_after, Ordering::Release);
                let allocated = s.versions.allocate();
                debug_assert_eq!(allocated, version);
                version
            };

            // ---- Phase B: publication, outside any global lock. ----
            s.mv.commit_writes(&result.rw.writes, version);
            for (addr, code) in &result.deployed {
                s.mv.install_code(*addr, Arc::clone(code));
            }
            s.gate.open(version);
            let profile = TxProfile::from_rw(&result.rw, result.receipt.gas_used);
            records.push(CommitRecord {
                version,
                tx: tx.clone(),
                receipt: result.receipt,
                profile,
            });
            stats.committed += 1;
            s.pool.commit(&tx);
        }
    }

    /// The original coarse-lock worker loop, kept verbatim (modulo the
    /// publish-before-allocate reorder, which closes a racy snapshot window)
    /// as the A/B baseline.
    fn worker_coarse(&self, s: &Shared<'_>, builder: &Mutex<BlockBuilder>) -> WorkerStats {
        let mut stats = WorkerStats::default();
        let mut idle_spins = 0u32;
        let mut futile: std::collections::HashMap<bp_types::TxHash, (u64, u32)> =
            std::collections::HashMap::new();
        const MAX_FUTILE_RETRIES: u32 = 50;
        loop {
            if s.full.load(Ordering::Acquire) {
                return stats;
            }
            let Some(tx) = s.pool.pop() else {
                if s.pool.is_empty() || idle_spins > 64 {
                    return stats;
                }
                idle_spins += 1;
                std::thread::yield_now();
                continue;
            };
            idle_spins = 0;

            let snapshot_version = s.versions.current();
            let snapshot = MvSnapshot::new(s.mv, snapshot_version);
            s.executions.fetch_add(1, Ordering::Relaxed);
            let exec = execute_transaction_in(&self.cache, &snapshot, &self.config.env, &tx);

            match exec {
                Err(TxError::BadNonce { expected, got }) if got > expected => {
                    let version_now = s.versions.current();
                    let entry = futile.entry(tx.hash()).or_insert((version_now, 0));
                    if entry.0 == version_now {
                        entry.1 += 1;
                    } else {
                        *entry = (version_now, 1);
                    }
                    if entry.1 >= MAX_FUTILE_RETRIES {
                        s.discarded.fetch_add(1, Ordering::Relaxed);
                        s.pool.discard(&tx);
                    } else {
                        s.aborts.fetch_add(1, Ordering::Relaxed);
                        s.note_abort(tx.hash());
                        stats.retries += 1;
                        s.pool.push_back(&tx);
                        std::thread::yield_now();
                    }
                    continue;
                }
                Err(_) => {
                    s.discarded.fetch_add(1, Ordering::Relaxed);
                    s.pool.discard(&tx);
                    continue;
                }
                Ok(result) => {
                    // DetectConflict + commit, atomically.
                    let mut b = builder.lock();
                    if s.full.load(Ordering::Acquire) {
                        s.pool.push_back(&tx);
                        return stats;
                    }
                    // WSI validation over the read set.
                    let stale = result
                        .rw
                        .reads
                        .keys()
                        .any(|key| s.reserve.is_stale(key, snapshot_version));
                    if stale {
                        drop(b);
                        s.aborts.fetch_add(1, Ordering::Relaxed);
                        s.validation_failures.fetch_add(1, Ordering::Relaxed);
                        s.note_abort(tx.hash());
                        stats.aborts += 1;
                        s.pool.push_back(&tx);
                        continue;
                    }
                    // Gas-limit check.
                    let gas_after = s.cur_gas.load(Ordering::Acquire) + result.receipt.gas_used;
                    if gas_after > self.config.gas_limit
                        || (self.config.max_txs > 0 && b.txs.len() >= self.config.max_txs)
                    {
                        s.full.store(true, Ordering::Release);
                        drop(b);
                        s.pool.push_back(&tx);
                        return stats;
                    }
                    // Commit: publish at the next version *before* the
                    // allocator makes it discoverable, so no concurrent
                    // snapshot can observe the version number ahead of its
                    // write set.
                    let version = s.versions.current() + 1;
                    s.mv.commit_writes(&result.rw.writes, version);
                    for (addr, code) in &result.deployed {
                        s.mv.install_code(*addr, Arc::clone(code));
                    }
                    s.reserve.publish(result.rw.writes.keys(), version);
                    s.versions.allocate();
                    s.cur_gas.store(gas_after, Ordering::Release);
                    b.profile
                        .push(TxProfile::from_rw(&result.rw, result.receipt.gas_used));
                    b.profile_len += 1;
                    b.txs.push(tx.clone());
                    b.receipts.push(result.receipt);
                    drop(b);
                    stats.committed += 1;
                    s.pool.commit(&tx);
                }
            }
        }
    }
}

#[derive(Default)]
struct BlockBuilder {
    txs: Vec<Transaction>,
    receipts: Vec<Receipt>,
    profile: BlockProfile,
    profile_len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_evm::asm::Asm;
    use bp_evm::contracts;
    use bp_evm::opcode::Op;
    use bp_types::{AccessKey, Address};

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn funded_world(accounts: u64) -> WorldState {
        let mut w = WorldState::new();
        for i in 1..=accounts {
            w.set_balance(addr(i), U256::from(1_000_000_000u64));
        }
        w
    }

    fn proposer(threads: usize) -> OccWsiProposer {
        OccWsiProposer::new(OccWsiConfig {
            threads,
            ..OccWsiConfig::default()
        })
    }

    fn proposer_on(path: CommitPath, threads: usize) -> OccWsiProposer {
        OccWsiProposer::new(OccWsiConfig {
            threads,
            commit_path: path,
            ..OccWsiConfig::default()
        })
    }

    /// Replays a block's transactions serially in block order; the result
    /// must equal the proposer's post-state (serializability witness).
    fn serial_replay(block: &Block, base: &WorldState, env: &BlockEnv) -> WorldState {
        let mut world = base.clone();
        let mut fees = U256::ZERO;
        for tx in &block.transactions {
            let view = bp_evm::WorldView::new(&world);
            let result = bp_evm::execute_transaction(&view, env, tx).expect("replay must accept");
            world.apply_writes(&result.rw.writes);
            for (a, code) in &result.deployed {
                world.set_code(*a, (**code).clone());
            }
            fees += result.receipt.fee;
        }
        let cb = world.balance(&env.coinbase);
        world.set_balance(env.coinbase, cb + fees);
        world
    }

    #[test]
    fn default_threads_match_the_machine() {
        let got = OccWsiConfig::default().threads;
        let want = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(got, want.max(1));
        assert!(got >= 1);
    }

    #[test]
    fn proposes_disjoint_transfers() {
        for path in [CommitPath::TwoPhase, CommitPath::CoarseLock] {
            let world = Arc::new(funded_world(20));
            let pool = TxPool::new();
            for i in 1..=10u64 {
                pool.add(Transaction::transfer(
                    addr(i),
                    addr(i + 10),
                    U256::from(5u64),
                    0,
                    i,
                ));
            }
            let p = proposer_on(path, 4);
            let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 1);
            assert_eq!(proposal.block.tx_count(), 10);
            assert_eq!(proposal.stats.committed, 10);
            assert!(pool.is_empty());
            // Serializability: replaying the block order serially reproduces
            // the exact post-state root.
            let replay = serial_replay(&proposal.block, &world, &p.config.env);
            assert_eq!(replay.state_root(), proposal.post_state.state_root());
            assert_eq!(proposal.block.header.state_root, replay.state_root());
        }
    }

    #[test]
    fn conflicting_counter_calls_all_commit_serializably() {
        for path in [CommitPath::TwoPhase, CommitPath::CoarseLock] {
            let mut w = funded_world(20);
            let c = addr(100);
            w.set_code(c, contracts::counter());
            let world = Arc::new(w);
            let pool = TxPool::new();
            for i in 1..=8u64 {
                pool.add(Transaction {
                    sender: addr(i),
                    to: Some(c),
                    value: U256::ZERO,
                    nonce: 0,
                    gas_limit: 200_000,
                    gas_price: 1,
                    data: vec![],
                });
            }
            let p = proposer_on(path, 4);
            let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 1);
            assert_eq!(proposal.block.tx_count(), 8);
            // The counter must reach exactly 8: lost updates would show here.
            assert_eq!(
                proposal
                    .post_state
                    .storage(&c, &bp_types::H256::from_low_u64(0)),
                U256::from(8u64)
            );
            let replay = serial_replay(&proposal.block, &world, &p.config.env);
            assert_eq!(replay.state_root(), proposal.post_state.state_root());
        }
    }

    #[test]
    fn aborted_transactions_are_retried_not_lost() {
        let mut w = funded_world(20);
        let c = addr(100);
        w.set_code(c, contracts::counter());
        let world = Arc::new(w);
        let pool = TxPool::new();
        for i in 1..=12u64 {
            pool.add(Transaction {
                sender: addr(i),
                to: Some(c),
                value: U256::ZERO,
                nonce: 0,
                gas_limit: 200_000,
                gas_price: 1,
                data: vec![],
            });
        }
        let p = proposer(8);
        let proposal = p.propose(&pool, world, BlockHash::ZERO, 1);
        assert_eq!(proposal.stats.committed, 12);
        assert_eq!(proposal.stats.discarded, 0);
        // Executions ≥ commits; the surplus is aborted attempts.
        assert!(proposal.stats.executions >= proposal.stats.committed);
        assert_eq!(
            proposal.stats.executions - proposal.stats.committed,
            proposal.stats.aborts
        );
        // Every abort is attributed to exactly one side of the
        // first-vs-retry split.
        assert_eq!(
            proposal.stats.aborts,
            proposal.stats.first_aborts + proposal.stats.retry_aborts
        );
        // WSI validation failures are the aborts that are not nonce retries.
        let worker_retries: u64 = proposal.stats.workers.iter().map(|w| w.retries).sum();
        assert_eq!(
            proposal.stats.validation_failures,
            proposal.stats.aborts - worker_retries
        );
        // Per-worker counters must reconcile with the totals.
        let worker_committed: u64 = proposal.stats.workers.iter().map(|w| w.committed).sum();
        assert_eq!(worker_committed, proposal.stats.committed);
        let worker_aborts: u64 = proposal
            .stats
            .workers
            .iter()
            .map(|w| w.aborts + w.retries)
            .sum();
        assert_eq!(worker_aborts, proposal.stats.aborts);
    }

    #[test]
    fn same_sender_nonce_chain_commits_in_order() {
        let world = Arc::new(funded_world(5));
        let pool = TxPool::new();
        for nonce in 0..5u64 {
            pool.add(Transaction::transfer(
                addr(1),
                addr(2),
                U256::ONE,
                nonce,
                10,
            ));
        }
        let p = proposer(4);
        let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 5);
        let nonces: Vec<u64> = proposal
            .block
            .transactions
            .iter()
            .map(|t| t.nonce)
            .collect();
        assert_eq!(nonces, vec![0, 1, 2, 3, 4]);
        assert_eq!(proposal.post_state.nonce(&addr(1)), 5);
        assert_eq!(
            proposal.post_state.balance(&addr(2)),
            U256::from(1_000_000_005u64)
        );
    }

    #[test]
    fn gas_limit_bounds_the_block() {
        for path in [CommitPath::TwoPhase, CommitPath::CoarseLock] {
            let world = Arc::new(funded_world(30));
            let pool = TxPool::new();
            for i in 1..=20u64 {
                pool.add(Transaction::transfer(addr(i), addr(99), U256::ONE, 0, 1));
            }
            let p = OccWsiProposer::new(OccWsiConfig {
                threads: 4,
                gas_limit: 21_000 * 5, // exactly five transfers
                commit_path: path,
                ..OccWsiConfig::default()
            });
            let proposal = p.propose(&pool, world, BlockHash::ZERO, 1);
            assert_eq!(proposal.block.tx_count(), 5);
            assert_eq!(proposal.block.header.gas_used, 21_000 * 5);
            // The remaining transactions stay pending.
            assert_eq!(pool.len(), 15);
            assert_eq!(pool.in_flight(), 0);
        }
    }

    /// A contract that stores to `slots` fresh storage slots: ~20k gas each,
    /// for building transactions much heavier than a plain transfer.
    fn gas_burner(slots: u64) -> Vec<u8> {
        let mut a = Asm::new();
        for slot in 0..slots {
            a = a.push_u64(1).push_u64(slot).op(Op::SStore);
        }
        a.op(Op::Stop).build()
    }

    #[test]
    fn oversized_transaction_does_not_strand_smaller_ones() {
        // Regression for the gas-packing early stop: the highest-priority
        // transaction overflows the block, but five cheap transfers still
        // fit and must be packed before sealing.
        let mut w = funded_world(10);
        let burner = addr(200);
        w.set_code(burner, gas_burner(6)); // ≥ 120k gas + intrinsic
        let world = Arc::new(w);
        let pool = TxPool::new();
        pool.add(Transaction {
            sender: addr(9),
            to: Some(burner),
            value: U256::ZERO,
            nonce: 0,
            gas_limit: 1_000_000,
            gas_price: 1_000, // popped first
            data: vec![],
        });
        for i in 1..=5u64 {
            pool.add(Transaction::transfer(addr(i), addr(8), U256::ONE, 0, 1));
        }
        let p = OccWsiProposer::new(OccWsiConfig {
            threads: 2,
            gas_limit: 21_000 * 5, // five transfers; the burner never fits
            ..OccWsiConfig::default()
        });
        let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 5, "small transfers must pack");
        assert_eq!(proposal.block.header.gas_used, 21_000 * 5);
        assert!(proposal
            .block
            .transactions
            .iter()
            .all(|t| t.to == Some(addr(8))));
        // The oversized transaction goes back to the pool intact.
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.in_flight(), 0);
        let replay = serial_replay(&proposal.block, &world, &p.config.env);
        assert_eq!(replay.state_root(), proposal.post_state.state_root());
    }

    #[test]
    fn max_txs_caps_the_block() {
        for path in [CommitPath::TwoPhase, CommitPath::CoarseLock] {
            let world = Arc::new(funded_world(30));
            let pool = TxPool::new();
            for i in 1..=20u64 {
                pool.add(Transaction::transfer(addr(i), addr(99), U256::ONE, 0, 1));
            }
            let p = OccWsiProposer::new(OccWsiConfig {
                threads: 2,
                max_txs: 7,
                commit_path: path,
                ..OccWsiConfig::default()
            });
            let proposal = p.propose(&pool, world, BlockHash::ZERO, 1);
            assert_eq!(proposal.block.tx_count(), 7);
        }
    }

    #[test]
    fn invalid_transactions_are_discarded() {
        let world = Arc::new(funded_world(3));
        let pool = TxPool::new();
        // Sender 50 has no funds.
        pool.add(Transaction::transfer(addr(50), addr(1), U256::ONE, 0, 1));
        pool.add(Transaction::transfer(addr(1), addr(2), U256::ONE, 0, 1));
        let p = proposer(2);
        let proposal = p.propose(&pool, world, BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 1);
        assert_eq!(proposal.stats.discarded, 1);
        assert!(pool.is_empty());
    }

    #[test]
    fn profile_covers_every_transaction() {
        let world = Arc::new(funded_world(10));
        let pool = TxPool::new();
        for i in 1..=6u64 {
            pool.add(Transaction::transfer(addr(i), addr(9), U256::ONE, 0, 1));
        }
        let p = proposer(3);
        let proposal = p.propose(&pool, world, BlockHash::ZERO, 1);
        assert_eq!(proposal.block.profile.len(), proposal.block.tx_count());
        for (i, tx) in proposal.block.transactions.iter().enumerate() {
            let entry = &proposal.block.profile.entries[i];
            assert!(entry.writes.contains_key(&AccessKey::Nonce(tx.sender)));
            assert_eq!(entry.gas_used, proposal.receipts[i].gas_used);
        }
    }

    #[test]
    fn empty_pool_seals_empty_block() {
        let world = Arc::new(funded_world(1));
        let pool = TxPool::new();
        let p = proposer(2);
        let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 7);
        assert_eq!(proposal.block.tx_count(), 0);
        assert_eq!(proposal.block.header.height, 7);
        assert_eq!(proposal.block.header.state_root, world.state_root());
    }

    #[test]
    fn hotspot_block_is_serializable_with_many_threads() {
        // Heavy contention: all transactions hit one AMM pair.
        for path in [CommitPath::TwoPhase, CommitPath::CoarseLock] {
            let mut w = funded_world(32);
            let amm = addr(200);
            w.set_code(amm, contracts::amm_pair());
            w.set_storage(
                amm,
                contracts::amm_reserve_slot(0),
                U256::from(10_000_000u64),
            );
            w.set_storage(
                amm,
                contracts::amm_reserve_slot(1),
                U256::from(10_000_000u64),
            );
            let world = Arc::new(w);
            let pool = TxPool::new();
            for i in 1..=16u64 {
                pool.add(Transaction {
                    sender: addr(i),
                    to: Some(amm),
                    value: U256::ZERO,
                    nonce: 0,
                    gas_limit: 300_000,
                    gas_price: 1,
                    data: contracts::amm_swap_calldata((i % 2) as u8, U256::from(1000 + i)),
                });
            }
            let p = proposer_on(path, 8);
            let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 1);
            assert_eq!(proposal.block.tx_count(), 16);
            let replay = serial_replay(&proposal.block, &world, &p.config.env);
            assert_eq!(replay.state_root(), proposal.post_state.state_root());
        }
    }

    #[test]
    fn two_phase_and_coarse_agree_on_the_state_root() {
        // Same pool contents through both commit paths: each proposal must
        // independently satisfy the serial-replay witness (schedules and
        // block orders may differ).
        let mut w = funded_world(24);
        let c = addr(100);
        w.set_code(c, contracts::counter());
        let world = Arc::new(w);
        for path in [CommitPath::TwoPhase, CommitPath::CoarseLock] {
            let pool = TxPool::new();
            for i in 1..=10u64 {
                pool.add(Transaction::transfer(
                    addr(i),
                    addr(i + 10),
                    U256::ONE,
                    0,
                    i,
                ));
                pool.add(Transaction {
                    sender: addr(i),
                    to: Some(c),
                    value: U256::ZERO,
                    nonce: 1,
                    gas_limit: 200_000,
                    gas_price: 1,
                    data: vec![],
                });
            }
            let p = proposer_on(path, 4);
            let proposal = p.propose(&pool, Arc::clone(&world), BlockHash::ZERO, 1);
            assert_eq!(proposal.block.tx_count(), 20);
            let replay = serial_replay(&proposal.block, &world, &p.config.env);
            assert_eq!(replay.state_root(), proposal.post_state.state_root());
        }
    }

    #[test]
    fn stats_record_wall_time() {
        let world = Arc::new(funded_world(10));
        let pool = TxPool::new();
        for i in 1..=6u64 {
            pool.add(Transaction::transfer(addr(i), addr(9), U256::ONE, 0, 1));
        }
        let p = proposer(2);
        let proposal = p.propose(&pool, world, BlockHash::ZERO, 1);
        assert!(proposal.stats.wall_micros > 0);
        assert!(proposal.stats.committed_per_sec() > 0.0);
        assert_eq!(proposal.stats.workers.len(), 2);
    }
}
