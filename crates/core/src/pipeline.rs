//! The validator pipeline (§4.3): preparation → transaction execution →
//! block validation → block commitment.
//!
//! * **Preparation** — the scheduler splits the block into conflict-free
//!   lanes from its profile (dependency subgraphs, gas-LPT assignment).
//! * **Transaction execution** — a shared *worker pool* executes lanes from
//!   *any* in-flight block: two blocks at the same height overlap fully,
//!   exactly as in the paper's Figure 5.
//! * **Block validation** — the *applier* gathers lane results, checks every
//!   transaction's read/write sets against the block profile (Algorithm 2),
//!   applies writes in block order, credits aggregated fees, and compares
//!   the resulting MPT root with the proposed header.
//! * **Block commitment** — a validated block's post-state is indexed by its
//!   hash; blocks at the next height that were parked waiting for this
//!   parent are released, which is precisely the paper's rule that a block
//!   may not enter validation before its predecessor has cleared it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bp_block::{receipts_root, tx_root, Block, BlockProfile};
use bp_evm::{execute_transaction, BlockEnv, Receipt, StateView, Transaction, TxError};
use bp_state::WorldState;
use bp_types::{AccessKey, Address, BlockHash, Gas, RwSet, U256};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::scheduler::{ConflictGranularity, Scheduler};

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Worker-pool size (the paper evaluates 2–16).
    pub workers: usize,
    /// Conflict granularity for the preparation phase.
    pub granularity: ConflictGranularity,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workers: 4,
            granularity: ConflictGranularity::Account,
        }
    }
}

/// Why a block was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// A transaction's replayed footprint diverged from the block profile.
    ProfileMismatch {
        /// Index of the offending transaction.
        index: usize,
    },
    /// A transaction was outright invalid on replay (nonce/funds).
    TxRejected {
        /// Index of the offending transaction.
        index: usize,
    },
    /// Replayed cumulative gas differs from the header.
    GasMismatch {
        /// Header value.
        expected: Gas,
        /// Replayed value.
        got: Gas,
    },
    /// The transaction-list commitment does not match the header.
    TxRootMismatch,
    /// The receipt commitment does not match the header.
    ReceiptsRootMismatch,
    /// The final MPT root does not match the header.
    StateRootMismatch,
    /// The parent block failed validation, so this block can never validate.
    ParentInvalid,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::ProfileMismatch { index } => {
                write!(f, "tx {index}: footprint does not match block profile")
            }
            ValidationError::TxRejected { index } => write!(f, "tx {index}: invalid on replay"),
            ValidationError::GasMismatch { expected, got } => {
                write!(f, "gas used {got} != header {expected}")
            }
            ValidationError::TxRootMismatch => write!(f, "tx root mismatch"),
            ValidationError::ReceiptsRootMismatch => write!(f, "receipts root mismatch"),
            ValidationError::StateRootMismatch => write!(f, "state root mismatch"),
            ValidationError::ParentInvalid => write!(f, "parent block invalid"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Wall-clock spent in each pipeline stage for one block.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Preparation (scheduling).
    pub prepare: Duration,
    /// Transaction execution (first lane start → last lane end).
    pub execute: Duration,
    /// Block validation (applier).
    pub validate: Duration,
}

/// The pipeline's verdict on one block.
#[derive(Clone, Debug)]
pub struct ValidationOutcome {
    /// The validated block.
    pub block_hash: BlockHash,
    /// Its height.
    pub height: u64,
    /// `Ok` iff the block is valid.
    pub result: Result<(), ValidationError>,
    /// Post-state for valid blocks.
    pub post_state: Option<Arc<WorldState>>,
    /// Receipts replayed by this validator (valid blocks only).
    pub receipts: Vec<Receipt>,
    /// Per-stage timings.
    pub timings: StageTimings,
}

impl ValidationOutcome {
    /// True iff the block validated.
    pub fn is_valid(&self) -> bool {
        self.result.is_ok()
    }
}

/// A handle to one submitted block's eventual outcome.
pub struct ValidationHandle {
    rx: Receiver<ValidationOutcome>,
}

impl ValidationHandle {
    /// Blocks until the pipeline has a verdict.
    pub fn wait(self) -> ValidationOutcome {
        self.rx.recv().expect("pipeline dropped without verdict")
    }
}

// ---------------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------------

struct TxOutcome {
    rw: RwSet,
    receipt: Receipt,
    deployed: Vec<(Address, Arc<Vec<u8>>)>,
    error: Option<usize>, // index, when replay rejected the tx
}

struct BlockTask {
    block: Arc<Block>,
    base: Arc<WorldState>,
    env: BlockEnv,
    results: Mutex<Vec<Option<TxOutcome>>>,
    remaining_lanes: AtomicUsize,
    verdict: Sender<ValidationOutcome>,
    prepare: Duration,
    exec_start: Instant,
}

struct LaneJob {
    task: Arc<BlockTask>,
    lane: Vec<usize>,
}

enum ApplierMsg {
    BlockDone(Arc<BlockTask>, Duration),
    Shutdown,
}

struct StateIndex {
    states: HashMap<BlockHash, Arc<WorldState>>,
    waiting: HashMap<BlockHash, Vec<(Block, Sender<ValidationOutcome>)>>,
    invalid: std::collections::HashSet<BlockHash>,
}

/// Everything needed to push a prepared block into the worker pool. Shared
/// by the public API and the applier (which releases parked children).
struct Starter {
    scheduler: Scheduler,
    workers: usize,
    lane_tx: Sender<LaneJob>,
    applier_tx: Sender<ApplierMsg>,
    index: Arc<Mutex<StateIndex>>,
}

/// The four-stage validator pipeline.
pub struct ValidatorPipeline {
    config: PipelineConfig,
    starter: Arc<Starter>,
    workers: Vec<std::thread::JoinHandle<()>>,
    applier: Option<std::thread::JoinHandle<()>>,
}

impl ValidatorPipeline {
    /// Spawns the worker pool and applier.
    pub fn new(config: PipelineConfig) -> Self {
        assert!(config.workers > 0);
        let (lane_tx, lane_rx) = unbounded::<LaneJob>();
        let (applier_tx, applier_rx) = unbounded::<ApplierMsg>();
        let index = Arc::new(Mutex::new(StateIndex {
            states: HashMap::new(),
            waiting: HashMap::new(),
            invalid: std::collections::HashSet::new(),
        }));
        let starter = Arc::new(Starter {
            scheduler: Scheduler::new(config.granularity),
            workers: config.workers,
            lane_tx,
            applier_tx,
            index,
        });

        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let lane_rx: Receiver<LaneJob> = lane_rx.clone();
            let applier_tx = starter.applier_tx.clone();
            workers.push(std::thread::spawn(move || {
                while let Ok(job) = lane_rx.recv() {
                    run_lane(&job);
                    if job.task.remaining_lanes.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let exec = job.task.exec_start.elapsed();
                        let _ = applier_tx.send(ApplierMsg::BlockDone(job.task, exec));
                    }
                }
            }));
        }

        let applier = {
            let starter = Arc::clone(&starter);
            std::thread::spawn(move || {
                while let Ok(msg) = applier_rx.recv() {
                    match msg {
                        ApplierMsg::BlockDone(task, exec) => apply_block(task, exec, &starter),
                        ApplierMsg::Shutdown => break,
                    }
                }
                // Dropping `starter` here closes the lane channel (the
                // public handle replaced its copy at shutdown), which ends
                // the worker loops.
            })
        };

        ValidatorPipeline {
            config,
            starter,
            workers,
            applier: Some(applier),
        }
    }

    /// Registers a trusted base state (e.g. the genesis post-state) so
    /// blocks naming `hash` as parent can start.
    pub fn register_state(&self, hash: BlockHash, state: Arc<WorldState>) {
        let ready = {
            let mut idx = self.starter.index.lock();
            idx.states.insert(hash, state);
            idx.waiting.remove(&hash).unwrap_or_default()
        };
        for (block, verdict) in ready {
            self.starter.start_block(block, verdict);
        }
    }

    /// Submits a block (preparation phase). Returns immediately; the
    /// outcome arrives through the handle. Blocks whose parent state is not
    /// yet known are parked until the parent validates — the paper's
    /// cross-height ordering rule. The execution environment is derived from
    /// the block header.
    pub fn submit(&self, block: Block) -> ValidationHandle {
        let (tx, rx) = unbounded();
        let parent = block.header.parent_hash;
        let parked = {
            let mut idx = self.starter.index.lock();
            if idx.invalid.contains(&parent) {
                None // fall through to immediate rejection below
            } else if idx.states.contains_key(&parent) {
                Some(false)
            } else {
                idx.waiting
                    .entry(parent)
                    .or_default()
                    .push((block.clone(), tx.clone()));
                Some(true)
            }
        };
        match parked {
            Some(false) => self.starter.start_block(block, tx),
            Some(true) => {}
            None => {
                let _ = tx.send(ValidationOutcome {
                    block_hash: block.hash(),
                    height: block.height(),
                    result: Err(ValidationError::ParentInvalid),
                    post_state: None,
                    receipts: vec![],
                    timings: StageTimings::default(),
                });
            }
        }
        ValidationHandle { rx }
    }

    /// Convenience: submit and wait.
    pub fn validate_block(&self, block: Block) -> ValidationOutcome {
        self.submit(block).wait()
    }

    /// The committed post-state of `hash` — available once the block
    /// validated (or was registered as a trusted base state).
    pub fn state_of(&self, hash: &BlockHash) -> Option<Arc<WorldState>> {
        self.starter.index.lock().states.get(hash).cloned()
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Shuts the pipeline down, joining all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.applier.is_none() {
            return; // already shut down
        }
        // Ask the applier to stop, then drop this handle's channel senders
        // by swapping in a dead Starter. The applier's own Arc<Starter> (and
        // with it the last lane sender) dies when its thread exits, which in
        // turn ends the worker loops.
        let applier_tx = self.starter.applier_tx.clone();
        let (dead_lane, _) = unbounded();
        let (dead_applier, _) = unbounded();
        self.starter = Arc::new(Starter {
            scheduler: self.starter.scheduler,
            workers: self.starter.workers,
            lane_tx: dead_lane,
            applier_tx: dead_applier,
            index: Arc::clone(&self.starter.index),
        });
        let _ = applier_tx.send(ApplierMsg::Shutdown);
        drop(applier_tx);
        if let Some(a) = self.applier.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ValidatorPipeline {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

// ---------------------------------------------------------------------------
// Transaction-execution phase
// ---------------------------------------------------------------------------

/// A lane's view: the pre-block world plus the writes of the lane's already
/// executed transactions. Lanes are conflict-free against each other, so no
/// other lane's writes can be observed by these transactions in a serial
/// replay either.
struct LaneView<'a> {
    base: &'a WorldState,
    overlay: HashMap<AccessKey, U256>,
    code_overlay: HashMap<Address, Arc<Vec<u8>>>,
}

impl StateView for LaneView<'_> {
    fn read_key(&self, key: &AccessKey) -> (U256, u64) {
        match self.overlay.get(key) {
            Some(v) => (*v, 0),
            None => (self.base.read_key(key), 0),
        }
    }

    fn code(&self, addr: &Address) -> Arc<Vec<u8>> {
        self.code_overlay
            .get(addr)
            .cloned()
            .unwrap_or_else(|| self.base.code(addr))
    }
}

fn run_lane(job: &LaneJob) {
    let task = &job.task;
    let mut view = LaneView {
        base: &task.base,
        overlay: HashMap::new(),
        code_overlay: HashMap::new(),
    };
    for &i in &job.lane {
        let tx: &Transaction = &task.block.transactions[i];
        let outcome = match execute_transaction(&view, &task.env, tx) {
            Ok(result) => {
                for (key, value) in &result.rw.writes {
                    view.overlay.insert(*key, *value);
                }
                for (addr, code) in &result.deployed {
                    view.code_overlay.insert(*addr, Arc::clone(code));
                }
                TxOutcome {
                    rw: result.rw,
                    deployed: result.deployed.into_iter().collect(),
                    receipt: result.receipt,
                    error: None,
                }
            }
            Err(TxError::BadNonce { .. })
            | Err(TxError::InsufficientFunds)
            | Err(TxError::IntrinsicGas) => TxOutcome {
                rw: RwSet::new(),
                receipt: Receipt {
                    success: false,
                    gas_used: 0,
                    output: vec![],
                    logs: vec![],
                    fee: U256::ZERO,
                    created: None,
                },
                deployed: vec![],
                error: Some(i),
            },
        };
        task.results.lock()[i] = Some(outcome);
    }
}

// ---------------------------------------------------------------------------
// Block-validation + commitment phases (the applier)
// ---------------------------------------------------------------------------

impl Starter {
    /// Preparation phase for a block whose parent state is available.
    fn start_block(&self, block: Block, verdict: Sender<ValidationOutcome>) {
        let base = {
            let idx = self.index.lock();
            Arc::clone(
                idx.states
                    .get(&block.header.parent_hash)
                    .expect("start_block requires parent state"),
            )
        };
        let env = BlockEnv {
            coinbase: block.header.coinbase,
            number: block.header.height,
            timestamp: block.header.timestamp,
            gas_limit: block.header.gas_limit,
        };
        let t0 = Instant::now();
        // A malformed profile (wrong length) cannot drive scheduling; fall
        // back to one serial lane over the real transaction list — the
        // applier will reject the block with a precise error.
        let lanes: Vec<Vec<usize>> = if block.profile.len() == block.transactions.len() {
            let schedule = self.scheduler.schedule(&block.profile, self.workers);
            schedule
                .lanes
                .into_iter()
                .filter(|l| !l.is_empty())
                .collect()
        } else {
            let all: Vec<usize> = (0..block.transactions.len()).collect();
            if all.is_empty() {
                Vec::new()
            } else {
                vec![all]
            }
        };
        let prepare = t0.elapsed();
        let n = block.transactions.len();
        let task = Arc::new(BlockTask {
            block: Arc::new(block),
            base,
            env,
            results: Mutex::new((0..n).map(|_| None).collect()),
            remaining_lanes: AtomicUsize::new(lanes.len()),
            verdict,
            prepare,
            exec_start: Instant::now(),
        });
        if lanes.is_empty() {
            // Empty block: straight to the applier.
            let _ = self
                .applier_tx
                .send(ApplierMsg::BlockDone(task, Duration::ZERO));
            return;
        }
        for lane in lanes {
            let _ = self.lane_tx.send(LaneJob {
                task: Arc::clone(&task),
                lane,
            });
        }
    }
}

fn apply_block(task: Arc<BlockTask>, exec: Duration, starter: &Starter) {
    let t0 = Instant::now();
    let block = &task.block;
    let hash = block.hash();
    let result = validate_and_apply(&task);
    let validate = t0.elapsed();

    let timings = StageTimings {
        prepare: task.prepare,
        execute: exec,
        validate,
    };
    let (verdict_result, post_state, receipts) = match result {
        Ok((state, receipts)) => (Ok(()), Some(Arc::new(state)), receipts),
        Err(e) => (Err(e), None, vec![]),
    };

    // Commitment phase: index the post-state and release parked children —
    // or mark the subtree invalid.
    let ready = {
        let mut idx = starter.index.lock();
        match &post_state {
            Some(state) => {
                idx.states.insert(hash, Arc::clone(state));
            }
            None => {
                idx.invalid.insert(hash);
            }
        }
        idx.waiting.remove(&hash).unwrap_or_default()
    };
    for (child, child_verdict) in ready {
        if post_state.is_some() {
            starter.start_block(child, child_verdict);
        } else {
            let _ = child_verdict.send(ValidationOutcome {
                block_hash: child.hash(),
                height: child.height(),
                result: Err(ValidationError::ParentInvalid),
                post_state: None,
                receipts: vec![],
                timings: StageTimings::default(),
            });
        }
    }

    let _ = task.verdict.send(ValidationOutcome {
        block_hash: hash,
        height: block.height(),
        result: verdict_result,
        post_state,
        receipts,
        timings,
    });
}

/// Algorithm 2: verify every transaction's read/write sets against the block
/// profile, apply changes in block order, and check the block-level
/// commitments.
fn validate_and_apply(task: &BlockTask) -> Result<(WorldState, Vec<Receipt>), ValidationError> {
    let block = &task.block;
    let profile: &BlockProfile = &block.profile;
    if block.header.tx_root != tx_root(&block.transactions) {
        return Err(ValidationError::TxRootMismatch);
    }
    if profile.len() != block.transactions.len() {
        return Err(ValidationError::ProfileMismatch {
            index: profile.len().min(block.transactions.len()),
        });
    }
    let results = task.results.lock();
    // Copy-on-write snapshot of the parent state: O(accounts) pointer bumps
    // instead of a deep copy of the whole world per block.
    let mut world = task.base.snapshot();
    let mut gas_total: Gas = 0;
    let mut fees = U256::ZERO;
    let mut receipts = Vec::with_capacity(block.transactions.len());
    for (i, slot) in results.iter().enumerate() {
        let outcome = slot.as_ref().expect("all lanes completed");
        if outcome.error.is_some() {
            return Err(ValidationError::TxRejected { index: i });
        }
        if !profile.matches(i, &outcome.rw) {
            return Err(ValidationError::ProfileMismatch { index: i });
        }
        world.apply_writes(&outcome.rw.writes);
        for (addr, code) in &outcome.deployed {
            world.set_code(*addr, (**code).clone());
        }
        gas_total += outcome.receipt.gas_used;
        fees += outcome.receipt.fee;
        receipts.push(outcome.receipt.clone());
    }
    if gas_total != block.header.gas_used {
        return Err(ValidationError::GasMismatch {
            expected: block.header.gas_used,
            got: gas_total,
        });
    }
    if receipts_root(&receipts) != block.header.receipts_root {
        return Err(ValidationError::ReceiptsRootMismatch);
    }
    if !fees.is_zero() {
        let cb = world.balance(&block.header.coinbase);
        world.set_balance(block.header.coinbase, cb + fees);
    }
    if world.state_root() != block.header.state_root {
        return Err(ValidationError::StateRootMismatch);
    }
    Ok((world, receipts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occ_wsi::{OccWsiConfig, OccWsiProposer, Proposal};
    use bp_txpool::TxPool;
    use bp_types::Address;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn funded_world(n: u64) -> WorldState {
        let mut w = WorldState::new();
        for i in 1..=n {
            w.set_balance(addr(i), U256::from(1_000_000_000u64));
        }
        w
    }

    /// Proposes a block of simple transfers on top of `base`.
    fn propose_transfers(
        base: &Arc<WorldState>,
        parent: BlockHash,
        height: u64,
        senders: std::ops::Range<u64>,
        nonce: u64,
    ) -> Proposal {
        let pool = TxPool::new();
        for i in senders {
            pool.add(Transaction::transfer(
                addr(i),
                addr(i + 500),
                U256::from(7u64),
                nonce,
                i,
            ));
        }
        let proposer = OccWsiProposer::new(OccWsiConfig {
            threads: 2,
            env: BlockEnv {
                number: height,
                ..BlockEnv::default()
            },
            ..Default::default()
        });
        proposer.propose(&pool, Arc::clone(base), parent, height)
    }

    fn pipeline_with_genesis(
        workers: usize,
        world: &Arc<WorldState>,
    ) -> (ValidatorPipeline, BlockHash) {
        let pipeline = ValidatorPipeline::new(PipelineConfig {
            workers,
            granularity: ConflictGranularity::Account,
        });
        let genesis = BlockHash::from_low_u64(1);
        pipeline.register_state(genesis, Arc::clone(world));
        (pipeline, genesis)
    }

    #[test]
    fn validates_honest_block() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(4, &world);
        let proposal = propose_transfers(&world, genesis, 1, 1..9, 0);
        let outcome = pipeline.validate_block(proposal.block.clone());
        assert!(outcome.is_valid(), "{:?}", outcome.result);
        assert_eq!(
            outcome.post_state.unwrap().state_root(),
            proposal.post_state.state_root()
        );
        assert_eq!(outcome.receipts.len(), proposal.block.tx_count());
        pipeline.shutdown();
    }

    #[test]
    fn rejects_tampered_state_root() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(2, &world);
        let mut proposal = propose_transfers(&world, genesis, 1, 1..5, 0);
        proposal.block.header.state_root = bp_types::H256::from_low_u64(0xBAD);
        let outcome = pipeline.validate_block(proposal.block);
        assert_eq!(outcome.result, Err(ValidationError::StateRootMismatch));
        pipeline.shutdown();
    }

    #[test]
    fn rejects_tampered_profile() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(2, &world);
        let mut proposal = propose_transfers(&world, genesis, 1, 1..5, 0);
        // Corrupt one profiled write value: the replayed footprint diverges.
        let entry = &mut proposal.block.profile.entries[0];
        let key = *entry.writes.keys().next().unwrap();
        entry.writes.insert(key, U256::from(123_456u64));
        let outcome = pipeline.validate_block(proposal.block);
        assert_eq!(
            outcome.result,
            Err(ValidationError::ProfileMismatch { index: 0 })
        );
        pipeline.shutdown();
    }

    #[test]
    fn rejects_tampered_tx_list() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(2, &world);
        let mut proposal = propose_transfers(&world, genesis, 1, 1..5, 0);
        proposal.block.transactions.swap(0, 1);
        let outcome = pipeline.validate_block(proposal.block);
        assert_eq!(outcome.result, Err(ValidationError::TxRootMismatch));
        pipeline.shutdown();
    }

    #[test]
    fn rejects_tampered_gas() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(2, &world);
        let mut proposal = propose_transfers(&world, genesis, 1, 1..5, 0);
        proposal.block.header.gas_used += 1;
        let outcome = pipeline.validate_block(proposal.block);
        assert!(matches!(
            outcome.result,
            Err(ValidationError::GasMismatch { .. })
        ));
        pipeline.shutdown();
    }

    #[test]
    fn same_height_blocks_validate_concurrently() {
        let world = Arc::new(funded_world(20));
        let (pipeline, genesis) = pipeline_with_genesis(4, &world);
        // Two competing proposals at height 1 from different tx subsets.
        let block_a = propose_transfers(&world, genesis, 1, 1..10, 0).block;
        let mut b = propose_transfers(&world, genesis, 1, 10..20, 0);
        b.block.header.proposer_seed = 99;
        let block_b = b.block;
        assert_ne!(block_a.hash(), block_b.hash());
        let ha = pipeline.submit(block_a);
        let hb = pipeline.submit(block_b);
        let oa = ha.wait();
        let ob = hb.wait();
        assert!(oa.is_valid(), "{:?}", oa.result);
        assert!(ob.is_valid(), "{:?}", ob.result);
        pipeline.shutdown();
    }

    #[test]
    fn child_waits_for_parent_and_completes() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(4, &world);
        let parent = propose_transfers(&world, genesis, 1, 1..5, 0);
        let parent_hash = parent.block.hash();
        let child = propose_transfers(
            &Arc::new(parent.post_state.clone()),
            parent_hash,
            2,
            1..5,
            1, // next nonce
        );
        // Submit the child FIRST: it must park until the parent validates.
        let hc = pipeline.submit(child.block.clone());
        let hp = pipeline.submit(parent.block.clone());
        assert!(hp.wait().is_valid());
        let oc = hc.wait();
        assert!(oc.is_valid(), "{:?}", oc.result);
        assert_eq!(
            oc.post_state.unwrap().state_root(),
            child.post_state.state_root()
        );
        pipeline.shutdown();
    }

    #[test]
    fn child_of_invalid_parent_is_rejected() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(2, &world);
        let mut parent = propose_transfers(&world, genesis, 1, 1..5, 0);
        parent.block.header.state_root = bp_types::H256::from_low_u64(0xBAD);
        let parent_hash = parent.block.hash();
        let child = propose_transfers(
            &Arc::new(parent.post_state.clone()),
            parent_hash,
            2,
            1..5,
            1,
        );
        let hc = pipeline.submit(child.block);
        let hp = pipeline.submit(parent.block);
        assert!(!hp.wait().is_valid());
        assert_eq!(hc.wait().result, Err(ValidationError::ParentInvalid));
        pipeline.shutdown();
    }

    #[test]
    fn empty_block_validates() {
        let world = Arc::new(funded_world(2));
        let (pipeline, genesis) = pipeline_with_genesis(2, &world);
        let proposal = propose_transfers(&world, genesis, 1, 1..1, 0); // no txs
        assert_eq!(proposal.block.tx_count(), 0);
        let outcome = pipeline.validate_block(proposal.block);
        assert!(outcome.is_valid(), "{:?}", outcome.result);
        pipeline.shutdown();
    }

    #[test]
    fn chain_of_three_heights_validates_in_any_submit_order() {
        let world = Arc::new(funded_world(6));
        let (pipeline, genesis) = pipeline_with_genesis(3, &world);
        let b1 = propose_transfers(&world, genesis, 1, 1..4, 0);
        let s1 = Arc::new(b1.post_state.clone());
        let b2 = propose_transfers(&s1, b1.block.hash(), 2, 1..4, 1);
        let s2 = Arc::new(b2.post_state.clone());
        let b3 = propose_transfers(&s2, b2.block.hash(), 3, 1..4, 2);
        // Reverse submit order: deepest first.
        let h3 = pipeline.submit(b3.block.clone());
        let h2 = pipeline.submit(b2.block.clone());
        let h1 = pipeline.submit(b1.block.clone());
        assert!(h1.wait().is_valid());
        assert!(h2.wait().is_valid());
        let o3 = h3.wait();
        assert!(o3.is_valid(), "{:?}", o3.result);
        assert_eq!(
            o3.post_state.unwrap().state_root(),
            b3.post_state.state_root()
        );
        pipeline.shutdown();
    }

    #[test]
    fn timings_are_recorded() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(2, &world);
        let proposal = propose_transfers(&world, genesis, 1, 1..9, 0);
        let outcome = pipeline.validate_block(proposal.block);
        assert!(outcome.is_valid());
        // Execution of 8 transfers takes nonzero wall time.
        assert!(outcome.timings.execute > Duration::ZERO);
        pipeline.shutdown();
    }
}
