//! The validator pipeline (§4.3): preparation → transaction execution →
//! block validation → block commitment.
//!
//! * **Preparation** — cheap header commitments (`tx_root`, profile length)
//!   are checked first so malformed blocks are rejected before a single
//!   transaction executes; the scheduler then splits the block into
//!   dependency subgraphs from its profile.
//! * **Transaction execution** — a shared *worker pool* executes jobs from
//!   *any* in-flight block: two blocks at the same height overlap fully,
//!   exactly as in the paper's Figure 5. Under the default
//!   [`DispatchPolicy::Subgraph`] every dependency subgraph is its own pool
//!   job (enqueued heaviest-first), so the pool load-balances dynamically
//!   across subgraphs and blocks; [`DispatchPolicy::StaticLanes`] keeps the
//!   old gas-LPT pre-packing as the A/B baseline. Each result is published
//!   into a lock-free single-writer slot ([`ResultSlots`]) — no mutex on the
//!   per-transaction result path. Footprint verification (Algorithm 2) is
//!   *overlapped*: each worker checks its transaction against the block
//!   profile right after executing it, and the first mismatch trips a
//!   per-block cancellation flag so the block's remaining jobs stop early.
//! * **Block validation** — an *applier pool* drains the result slots in
//!   block order, applies writes, credits aggregated fees, and compares the
//!   resulting MPT root with the proposed header. Independent blocks (same
//!   height, or different forks) validate on different applier threads
//!   concurrently.
//! * **Block commitment** — a validated block's post-state is indexed by its
//!   hash; blocks at the next height that were parked waiting for this
//!   parent are released, which is precisely the paper's rule that a block
//!   may not enter validation before its predecessor has cleared it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use bp_block::{receipts_root, tx_root, Block};
use bp_concurrent::{ResultSlots, RootLatch};
use bp_evm::{
    execute_transaction_in, AnalysisCache, BlockEnv, CacheStats, Receipt, StateView, Transaction,
    TxError,
};
use bp_state::{StateDelta, WorldState};
use bp_types::{AccessKey, Address, BlockHash, Gas, U256};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::scheduler::{ConflictGranularity, Scheduler};

/// How prepared blocks are handed to the worker pool (kept switchable for
/// A/B benchmarking; see `validator_baseline` in `bp-bench`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Every dependency subgraph is its own pool job, enqueued
    /// heaviest-first: the pool load-balances dynamically across subgraphs
    /// and in-flight blocks.
    #[default]
    Subgraph,
    /// Subgraphs are pre-packed into `workers` gas-LPT lanes at preparation
    /// and each lane is one job. Kept as the baseline: a straggler lane
    /// cannot be rebalanced once packed.
    StaticLanes,
}

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Worker-pool size (the paper evaluates 2–16).
    pub workers: usize,
    /// Conflict granularity for the preparation phase.
    pub granularity: ConflictGranularity,
    /// Execution-job granularity (subgraph-dynamic vs static lanes).
    pub dispatch: DispatchPolicy,
    /// Applier-pool size: how many blocks can be in block validation
    /// simultaneously.
    pub appliers: usize,
    /// Deferred-root apply: split block validation into "publish writes +
    /// schedule root". The applier indexes the post-state and releases the
    /// next height into execution *before* hashing the state root; the root
    /// check settles a per-height [`RootLatch`] that the verdict (and thus
    /// commit publication and every descendant's verdict) still waits on.
    /// Correctness gates are unchanged — only the wait moves off the
    /// execution path.
    pub deferred_root: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workers: 4,
            granularity: ConflictGranularity::Account,
            dispatch: DispatchPolicy::Subgraph,
            appliers: 2,
            deferred_root: false,
        }
    }
}

/// Why a block was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// A transaction's replayed footprint diverged from the block profile.
    ProfileMismatch {
        /// Index of the offending transaction.
        index: usize,
    },
    /// A transaction was outright invalid on replay (nonce/funds).
    TxRejected {
        /// Index of the offending transaction.
        index: usize,
    },
    /// Replayed cumulative gas differs from the header.
    GasMismatch {
        /// Header value.
        expected: Gas,
        /// Replayed value.
        got: Gas,
    },
    /// The transaction-list commitment does not match the header.
    TxRootMismatch,
    /// The receipt commitment does not match the header.
    ReceiptsRootMismatch,
    /// The final MPT root does not match the header.
    StateRootMismatch,
    /// The parent block failed validation, so this block can never validate.
    ParentInvalid,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::ProfileMismatch { index } => {
                write!(f, "tx {index}: footprint does not match block profile")
            }
            ValidationError::TxRejected { index } => write!(f, "tx {index}: invalid on replay"),
            ValidationError::GasMismatch { expected, got } => {
                write!(f, "gas used {got} != header {expected}")
            }
            ValidationError::TxRootMismatch => write!(f, "tx root mismatch"),
            ValidationError::ReceiptsRootMismatch => write!(f, "receipts root mismatch"),
            ValidationError::StateRootMismatch => write!(f, "state root mismatch"),
            ValidationError::ParentInvalid => write!(f, "parent block invalid"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Wall-clock spent in each pipeline stage for one block.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Preparation (header checks + scheduling).
    pub prepare: Duration,
    /// Channel queueing: job enqueue → first job start.
    pub queue_wait: Duration,
    /// Transaction execution (first job start → last job end).
    pub execute: Duration,
    /// Block validation (applier).
    pub validate: Duration,
}

/// The pipeline's verdict on one block.
#[derive(Clone, Debug)]
pub struct ValidationOutcome {
    /// The validated block.
    pub block_hash: BlockHash,
    /// Its height.
    pub height: u64,
    /// `Ok` iff the block is valid.
    pub result: Result<(), ValidationError>,
    /// Post-state for valid blocks.
    pub post_state: Option<Arc<WorldState>>,
    /// Receipts replayed by this validator (valid blocks only).
    pub receipts: Vec<Receipt>,
    /// Per-stage timings.
    pub timings: StageTimings,
    /// How many transactions actually executed (header-check rejections
    /// execute zero; early-aborted blocks execute fewer than the block
    /// carries).
    pub executed_txs: usize,
    /// True iff the per-block cancellation flag tripped and remaining
    /// execution jobs were cut short.
    pub aborted_early: bool,
    /// Code-analysis cache hits observed over this block's validation
    /// window. The cache is shared pipeline-wide, so when blocks overlap in
    /// flight the attribution is approximate — the sum over all outcomes is
    /// exact.
    pub analysis_hits: u64,
    /// Code-analysis cache misses (fresh analyses) over the same window.
    pub analysis_misses: u64,
}

impl ValidationOutcome {
    /// True iff the block validated.
    pub fn is_valid(&self) -> bool {
        self.result.is_ok()
    }
}

/// A handle to one submitted block's eventual outcome.
pub struct ValidationHandle {
    rx: Receiver<ValidationOutcome>,
}

impl ValidationHandle {
    /// Blocks until the pipeline has a verdict.
    pub fn wait(self) -> ValidationOutcome {
        self.rx.recv().expect("pipeline dropped without verdict")
    }
}

// ---------------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------------

struct TxOutcome {
    rw: bp_types::RwSet,
    receipt: Receipt,
    deployed: Vec<(Address, Arc<Vec<u8>>)>,
}

/// Abort-record encoding: `(index << 1) | kind`, taken with `fetch_min` so
/// concurrent detections resolve to the lowest offending index (kind breaks
/// ties at equal index in favour of `TxRejected`, matching the serial
/// applier's old check order).
const ABORT_NONE: u64 = u64::MAX;
const ABORT_KIND_REJECTED: u64 = 0;
const ABORT_KIND_PROFILE: u64 = 1;

struct BlockTask {
    block: Arc<Block>,
    base: Arc<WorldState>,
    env: BlockEnv,
    /// Set when a preparation-phase header check failed: the block skipped
    /// execution entirely and the applier reports this error.
    header_error: Option<ValidationError>,
    results: ResultSlots<TxOutcome>,
    remaining_jobs: AtomicUsize,
    /// Trips on the first footprint mismatch / replay rejection; remaining
    /// jobs of this block stop instead of executing to completion.
    cancelled: AtomicBool,
    abort: AtomicU64,
    executed: AtomicUsize,
    verdict: Sender<ValidationOutcome>,
    prepare: Duration,
    submitted: Instant,
    exec_start: OnceLock<Instant>,
    /// The pipeline-wide analysis cache plus its counter snapshot at
    /// preparation time (for the outcome's hit/miss delta).
    cache: Arc<AnalysisCache>,
    cache_base: CacheStats,
}

impl BlockTask {
    fn record_abort(&self, index: usize, kind: u64) {
        self.abort
            .fetch_min(((index as u64) << 1) | kind, Ordering::AcqRel);
        self.cancelled.store(true, Ordering::Release);
    }

    fn abort_error(&self) -> Option<ValidationError> {
        match self.abort.load(Ordering::Acquire) {
            ABORT_NONE => None,
            rec => {
                let index = (rec >> 1) as usize;
                Some(if rec & 1 == ABORT_KIND_PROFILE {
                    ValidationError::ProfileMismatch { index }
                } else {
                    ValidationError::TxRejected { index }
                })
            }
        }
    }
}

struct ExecJob {
    task: Arc<BlockTask>,
    /// Transaction indices, ascending (block order): one subgraph under
    /// [`DispatchPolicy::Subgraph`], one packed lane under
    /// [`DispatchPolicy::StaticLanes`].
    txs: Vec<usize>,
}

enum ApplierMsg {
    BlockDone(Arc<BlockTask>, Duration),
    Shutdown,
}

struct StateIndex {
    states: HashMap<BlockHash, Arc<WorldState>>,
    /// Each validated block's net effect on its parent state — the diff
    /// layer the persistence layer stacks into the snapshot tree.
    deltas: HashMap<BlockHash, Arc<StateDelta>>,
    waiting: HashMap<BlockHash, Vec<(Block, Sender<ValidationOutcome>)>>,
    invalid: std::collections::HashSet<BlockHash>,
    /// Deferred-root mode: each applied block's root verdict (`true` = root
    /// matched the header and every ancestor settled valid). A child's apply
    /// stage chains on its parent's latch; absence means the parent was a
    /// trusted registered state.
    latches: HashMap<BlockHash, Arc<RootLatch<bool>>>,
}

/// Everything needed to push a prepared block into the worker pool. Shared
/// by the public API and the appliers (which release parked children).
struct Starter {
    scheduler: Scheduler,
    workers: usize,
    dispatch: DispatchPolicy,
    job_tx: Sender<ExecJob>,
    applier_tx: Sender<ApplierMsg>,
    index: Arc<Mutex<StateIndex>>,
    /// Code-analysis cache shared by every exec worker across every block.
    cache: Arc<AnalysisCache>,
    /// See [`PipelineConfig::deferred_root`].
    deferred_root: bool,
}

/// The four-stage validator pipeline.
pub struct ValidatorPipeline {
    config: PipelineConfig,
    starter: Arc<Starter>,
    workers: Vec<std::thread::JoinHandle<()>>,
    appliers: Vec<std::thread::JoinHandle<()>>,
}

impl ValidatorPipeline {
    /// Spawns the worker and applier pools.
    pub fn new(config: PipelineConfig) -> Self {
        assert!(config.workers > 0);
        assert!(config.appliers > 0);
        let (job_tx, job_rx) = unbounded::<ExecJob>();
        let (applier_tx, applier_rx) = unbounded::<ApplierMsg>();
        let index = Arc::new(Mutex::new(StateIndex {
            states: HashMap::new(),
            deltas: HashMap::new(),
            waiting: HashMap::new(),
            invalid: std::collections::HashSet::new(),
            latches: HashMap::new(),
        }));
        let starter = Arc::new(Starter {
            scheduler: Scheduler::new(config.granularity),
            workers: config.workers,
            dispatch: config.dispatch,
            job_tx,
            applier_tx,
            index,
            cache: AnalysisCache::global(),
            deferred_root: config.deferred_root,
        });

        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let job_rx: Receiver<ExecJob> = job_rx.clone();
            let applier_tx = starter.applier_tx.clone();
            workers.push(std::thread::spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    run_job(&job);
                    if job.task.remaining_jobs.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let exec = job
                            .task
                            .exec_start
                            .get()
                            .map(|s| s.elapsed())
                            .unwrap_or_default();
                        let _ = applier_tx.send(ApplierMsg::BlockDone(job.task, exec));
                    }
                }
            }));
        }

        let mut appliers = Vec::with_capacity(config.appliers);
        for _ in 0..config.appliers {
            let starter = Arc::clone(&starter);
            let applier_rx = applier_rx.clone();
            appliers.push(std::thread::spawn(move || {
                while let Ok(msg) = applier_rx.recv() {
                    match msg {
                        ApplierMsg::BlockDone(task, exec) => apply_block(task, exec, &starter),
                        ApplierMsg::Shutdown => break,
                    }
                }
                // Dropping `starter` here closes the job channel (the
                // public handle replaced its copy at shutdown), which ends
                // the worker loops once every applier has exited.
            }));
        }

        ValidatorPipeline {
            config,
            starter,
            workers,
            appliers,
        }
    }

    /// Registers a trusted base state (e.g. the genesis post-state) so
    /// blocks naming `hash` as parent can start.
    pub fn register_state(&self, hash: BlockHash, state: Arc<WorldState>) {
        let ready = {
            let mut idx = self.starter.index.lock();
            idx.states.insert(hash, state);
            idx.waiting.remove(&hash).unwrap_or_default()
        };
        for (block, verdict) in ready {
            self.starter.start_block(block, verdict);
        }
    }

    /// Submits a block (preparation phase). Returns immediately; the
    /// outcome arrives through the handle. Blocks whose parent state is not
    /// yet known are parked until the parent validates — the paper's
    /// cross-height ordering rule. The execution environment is derived from
    /// the block header.
    pub fn submit(&self, block: Block) -> ValidationHandle {
        let (tx, rx) = unbounded();
        let parent = block.header.parent_hash;
        let parked = {
            let mut idx = self.starter.index.lock();
            if idx.invalid.contains(&parent) {
                None // fall through to immediate rejection below
            } else if idx.states.contains_key(&parent) {
                Some(false)
            } else {
                idx.waiting
                    .entry(parent)
                    .or_default()
                    .push((block.clone(), tx.clone()));
                Some(true)
            }
        };
        match parked {
            Some(false) => self.starter.start_block(block, tx),
            Some(true) => {}
            None => {
                let _ = tx.send(rejection_outcome(
                    block.hash(),
                    block.height(),
                    ValidationError::ParentInvalid,
                ));
            }
        }
        ValidationHandle { rx }
    }

    /// Convenience: submit and wait.
    pub fn validate_block(&self, block: Block) -> ValidationOutcome {
        self.submit(block).wait()
    }

    /// The committed post-state of `hash` — available once the block
    /// validated (or was registered as a trusted base state).
    pub fn state_of(&self, hash: &BlockHash) -> Option<Arc<WorldState>> {
        self.starter.index.lock().states.get(hash).cloned()
    }

    /// The validated block's net effect on its parent state (the diff layer
    /// for the snapshot tree). `None` for trusted base states registered via
    /// [`ValidatorPipeline::register_state`], which have no parent delta.
    pub fn delta_of(&self, hash: &BlockHash) -> Option<Arc<StateDelta>> {
        self.starter.index.lock().deltas.get(hash).cloned()
    }

    /// Number of execution jobs queued but not yet claimed by a worker.
    /// A feed gauge for the node loop: a persistently deep queue means the
    /// worker pool is the bottleneck stage.
    pub fn pending_jobs(&self) -> usize {
        self.starter.job_tx.len()
    }

    /// Number of applier messages queued but not yet processed. Deep here
    /// means commitment (state apply + root) is the bottleneck stage.
    pub fn pending_applies(&self) -> usize {
        self.starter.applier_tx.len()
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// The configured applier-pool size.
    pub fn appliers(&self) -> usize {
        self.config.appliers
    }

    /// Shuts the pipeline down, joining all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.appliers.is_empty() {
            return; // already shut down
        }
        // Ask every applier to stop, then drop this handle's channel senders
        // by swapping in a dead Starter. Each applier's own Arc<Starter>
        // (and with it the last job sender) dies when its thread exits,
        // which in turn ends the worker loops.
        let applier_tx = self.starter.applier_tx.clone();
        let (dead_job, _) = unbounded();
        let (dead_applier, _) = unbounded();
        self.starter = Arc::new(Starter {
            scheduler: self.starter.scheduler,
            workers: self.starter.workers,
            dispatch: self.starter.dispatch,
            job_tx: dead_job,
            applier_tx: dead_applier,
            index: Arc::clone(&self.starter.index),
            cache: Arc::clone(&self.starter.cache),
            deferred_root: self.starter.deferred_root,
        });
        for _ in 0..self.appliers.len() {
            let _ = applier_tx.send(ApplierMsg::Shutdown);
        }
        drop(applier_tx);
        for a in self.appliers.drain(..) {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ValidatorPipeline {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn rejection_outcome(
    block_hash: BlockHash,
    height: u64,
    error: ValidationError,
) -> ValidationOutcome {
    ValidationOutcome {
        block_hash,
        height,
        result: Err(error),
        post_state: None,
        receipts: vec![],
        timings: StageTimings::default(),
        executed_txs: 0,
        aborted_early: false,
        analysis_hits: 0,
        analysis_misses: 0,
    }
}

// ---------------------------------------------------------------------------
// Transaction-execution phase
// ---------------------------------------------------------------------------

/// A job's view: the pre-block world plus the writes of the job's already
/// executed transactions. Jobs (subgraphs or lanes) are conflict-free
/// against each other, so no other job's writes can be observed by these
/// transactions in a serial replay either.
struct JobView<'a> {
    base: &'a WorldState,
    overlay: HashMap<AccessKey, U256>,
    code_overlay: HashMap<Address, Arc<Vec<u8>>>,
}

impl StateView for JobView<'_> {
    fn read_key(&self, key: &AccessKey) -> (U256, u64) {
        match self.overlay.get(key) {
            Some(v) => (*v, 0),
            None => (self.base.read_key(key), 0),
        }
    }

    fn code(&self, addr: &Address) -> Arc<Vec<u8>> {
        self.code_overlay
            .get(addr)
            .cloned()
            .unwrap_or_else(|| self.base.code(addr))
    }
}

fn run_job(job: &ExecJob) {
    let task = &job.task;
    task.exec_start.get_or_init(Instant::now);
    let mut view = JobView {
        base: &task.base,
        overlay: HashMap::new(),
        code_overlay: HashMap::new(),
    };
    for &i in &job.txs {
        // Early abort: a sibling job (or an earlier transaction of this
        // one) found a mismatch — this block can never validate, stop
        // burning workers on it.
        if task.cancelled.load(Ordering::Acquire) {
            return;
        }
        let tx: &Transaction = &task.block.transactions[i];
        match execute_transaction_in(&task.cache, &view, &task.env, tx) {
            Ok(result) => {
                task.executed.fetch_add(1, Ordering::Relaxed);
                // Overlapped verification (Algorithm 2, moved out of the
                // applier): check the replayed footprint against the block
                // profile right here, while sibling jobs still execute.
                if !task.block.profile.matches(i, &result.rw) {
                    task.record_abort(i, ABORT_KIND_PROFILE);
                    return;
                }
                for (key, value) in &result.rw.writes {
                    view.overlay.insert(*key, *value);
                }
                for (addr, code) in &result.deployed {
                    view.code_overlay.insert(*addr, Arc::clone(code));
                }
                // Lock-free publication: this job is the slot's only writer.
                task.results.publish(
                    i,
                    TxOutcome {
                        rw: result.rw,
                        deployed: result.deployed.into_iter().collect(),
                        receipt: result.receipt,
                    },
                );
            }
            Err(TxError::BadNonce { .. })
            | Err(TxError::InsufficientFunds)
            | Err(TxError::IntrinsicGas) => {
                task.executed.fetch_add(1, Ordering::Relaxed);
                task.record_abort(i, ABORT_KIND_REJECTED);
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Block-validation + commitment phases (the applier pool)
// ---------------------------------------------------------------------------

impl Starter {
    /// Preparation phase for a block whose parent state is available:
    /// header checks first (a malformed block is rejected before any
    /// transaction executes), then scheduling and job dispatch.
    fn start_block(&self, block: Block, verdict: Sender<ValidationOutcome>) {
        let base = {
            let idx = self.index.lock();
            Arc::clone(
                idx.states
                    .get(&block.header.parent_hash)
                    .expect("start_block requires parent state"),
            )
        };
        let env = BlockEnv {
            coinbase: block.header.coinbase,
            number: block.header.height,
            timestamp: block.header.timestamp,
            gas_limit: block.header.gas_limit,
        };
        let t0 = Instant::now();
        // Cheap header commitments, checked before execution (fail fast):
        // a tampered transaction list or a profile of the wrong length can
        // never validate, so don't spend a single worker slot on it.
        let header_error = if block.header.tx_root != tx_root(&block.transactions) {
            Some(ValidationError::TxRootMismatch)
        } else if block.profile.len() != block.transactions.len() {
            Some(ValidationError::ProfileMismatch {
                index: block.profile.len().min(block.transactions.len()),
            })
        } else {
            None
        };
        let jobs: Vec<Vec<usize>> = if header_error.is_some() {
            Vec::new()
        } else {
            match self.dispatch {
                // Heaviest subgraph first: the pool drains big components
                // early, so stragglers don't trail the block's completion.
                DispatchPolicy::Subgraph => self
                    .scheduler
                    .subgraphs(&block.profile)
                    .into_iter()
                    .map(|sg| sg.txs)
                    .collect(),
                DispatchPolicy::StaticLanes => self
                    .scheduler
                    .schedule(&block.profile, self.workers)
                    .lanes
                    .into_iter()
                    .filter(|l| !l.is_empty())
                    .collect(),
            }
        };
        let prepare = t0.elapsed();
        let n = block.transactions.len();
        let rejected = header_error.is_some();
        let task = Arc::new(BlockTask {
            block: Arc::new(block),
            base,
            env,
            header_error,
            results: ResultSlots::new(n),
            remaining_jobs: AtomicUsize::new(jobs.len()),
            cancelled: AtomicBool::new(false),
            abort: AtomicU64::new(ABORT_NONE),
            executed: AtomicUsize::new(0),
            verdict,
            prepare,
            submitted: Instant::now(),
            exec_start: OnceLock::new(),
            cache_base: self.cache.stats(),
            cache: Arc::clone(&self.cache),
        });
        if rejected || jobs.is_empty() {
            // Header rejections and empty blocks go straight to the applier
            // pool so the commitment bookkeeping (invalid-set insert,
            // parked-children release) stays in one place.
            let _ = self
                .applier_tx
                .send(ApplierMsg::BlockDone(task, Duration::ZERO));
            return;
        }
        for txs in jobs {
            let _ = self.job_tx.send(ExecJob {
                task: Arc::clone(&task),
                txs,
            });
        }
    }
}

fn apply_block(task: Arc<BlockTask>, exec: Duration, starter: &Starter) {
    if starter.deferred_root {
        apply_block_deferred(task, exec, starter);
        return;
    }
    let t0 = Instant::now();
    let block = &task.block;
    let hash = block.hash();
    let result = validate_and_apply(&task, true);
    let validate = t0.elapsed();

    let queue_wait = task
        .exec_start
        .get()
        .map(|s| s.duration_since(task.submitted))
        .unwrap_or_default();
    let timings = StageTimings {
        prepare: task.prepare,
        queue_wait,
        execute: exec,
        validate,
    };
    let cache_delta = task.cache.stats().since(&task.cache_base);
    let (verdict_result, post_state, receipts, delta) = match result {
        Ok((state, receipts, delta)) => (Ok(()), Some(Arc::new(state)), receipts, Some(delta)),
        Err(e) => (Err(e), None, vec![], None),
    };

    // Commitment phase: index the post-state (and its diff layer) and
    // release parked children — or mark the subtree invalid.
    let ready = {
        let mut idx = starter.index.lock();
        match &post_state {
            Some(state) => {
                idx.states.insert(hash, Arc::clone(state));
                if let Some(delta) = delta {
                    idx.deltas.insert(hash, Arc::new(delta));
                }
            }
            None => {
                idx.invalid.insert(hash);
            }
        }
        idx.waiting.remove(&hash).unwrap_or_default()
    };
    for (child, child_verdict) in ready {
        if post_state.is_some() {
            starter.start_block(child, child_verdict);
        } else {
            let _ = child_verdict.send(rejection_outcome(
                child.hash(),
                child.height(),
                ValidationError::ParentInvalid,
            ));
        }
    }

    let _ = task.verdict.send(ValidationOutcome {
        block_hash: hash,
        height: block.height(),
        result: verdict_result,
        post_state,
        receipts,
        timings,
        executed_txs: task.executed.load(Ordering::Relaxed),
        aborted_early: task.cancelled.load(Ordering::Relaxed),
        analysis_hits: cache_delta.hits,
        analysis_misses: cache_delta.misses,
    });
}

/// Deferred-root apply: "publish writes + schedule root".
///
/// The block's writes are applied and all non-root checks run exactly as in
/// the serial path; the post-state is then indexed and parked children are
/// released *before* the state root is hashed, so execution of height N+1
/// overlaps the root of height N. The root check settles this block's
/// [`RootLatch`]; the verdict additionally chains on the parent's latch, so
/// an invalid ancestor still poisons every descendant.
///
/// Why this cannot deadlock or misorder: a block reaches the applier only
/// after its parent *published* (children are released at publish time), and
/// every publish-path call settles its own latch before returning. Latch
/// waits therefore only ever chain parent-ward, up a chain of already
/// published blocks, ending at a trusted registered state (no latch). The
/// earliest published-but-unsettled block waits only on settled latches, so
/// the chain always drains — and every verdict, commit publication, and
/// header check still happens after the roots it depends on are known.
fn apply_block_deferred(task: Arc<BlockTask>, exec: Duration, starter: &Starter) {
    let t0 = Instant::now();
    let block = &task.block;
    let hash = block.hash();
    let parent = block.header.parent_hash;
    let result = validate_and_apply(&task, false);
    let latch = Arc::new(RootLatch::<bool>::new());

    let queue_wait = task
        .exec_start
        .get()
        .map(|s| s.duration_since(task.submitted))
        .unwrap_or_default();
    let cache_delta = task.cache.stats().since(&task.cache_base);
    let outcome = |result: Result<(), ValidationError>,
                   post_state: Option<Arc<WorldState>>,
                   receipts: Vec<Receipt>,
                   validate: Duration| ValidationOutcome {
        block_hash: hash,
        height: block.height(),
        result,
        post_state,
        receipts,
        timings: StageTimings {
            prepare: task.prepare,
            queue_wait,
            execute: exec,
            validate,
        },
        executed_txs: task.executed.load(Ordering::Relaxed),
        aborted_early: task.cancelled.load(Ordering::Relaxed),
        analysis_hits: cache_delta.hits,
        analysis_misses: cache_delta.misses,
    };

    let (state, receipts, delta) = match result {
        Ok(parts) => parts,
        Err(e) => {
            // Failed before the root was even needed: settle the latch and
            // mark the subtree invalid exactly as the serial path does.
            let ready = {
                let mut idx = starter.index.lock();
                idx.invalid.insert(hash);
                idx.latches.insert(hash, Arc::clone(&latch));
                idx.waiting.remove(&hash).unwrap_or_default()
            };
            latch.set(false);
            for (child, child_verdict) in ready {
                let _ = child_verdict.send(rejection_outcome(
                    child.hash(),
                    child.height(),
                    ValidationError::ParentInvalid,
                ));
            }
            let _ = task
                .verdict
                .send(outcome(Err(e), None, vec![], t0.elapsed()));
            return;
        }
    };

    // Publish writes: index the post-state and release the next height into
    // execution. The root of this block is still unhashed — descendants
    // observe it only through the latch.
    let state = Arc::new(state);
    let (parent_latch, ready) = {
        let mut idx = starter.index.lock();
        idx.states.insert(hash, Arc::clone(&state));
        idx.deltas.insert(hash, Arc::new(delta));
        idx.latches.insert(hash, Arc::clone(&latch));
        (
            idx.latches.get(&parent).cloned(),
            idx.waiting.remove(&hash).unwrap_or_default(),
        )
    };
    for (child, child_verdict) in ready {
        starter.start_block(child, child_verdict);
    }

    // Schedule root: hash first (the expensive part, overlapped with the
    // children just released), then chain on the parent's verdict.
    let root_ok = state.state_root() == block.header.state_root;
    let parent_ok = parent_latch.map(|l| l.wait()).unwrap_or(true);
    let ok = root_ok && parent_ok;
    if !ok {
        // Un-publish: the optimistically indexed state never becomes
        // canonical. In-flight descendants fail through their own parent
        // latch; late submitters see the invalid mark.
        let ready = {
            let mut idx = starter.index.lock();
            idx.states.remove(&hash);
            idx.deltas.remove(&hash);
            idx.invalid.insert(hash);
            idx.waiting.remove(&hash).unwrap_or_default()
        };
        for (child, child_verdict) in ready {
            let _ = child_verdict.send(rejection_outcome(
                child.hash(),
                child.height(),
                ValidationError::ParentInvalid,
            ));
        }
    }
    latch.set(ok);
    let result = if !parent_ok {
        Err(ValidationError::ParentInvalid)
    } else if !root_ok {
        Err(ValidationError::StateRootMismatch)
    } else {
        Ok(())
    };
    let post_state = ok.then_some(state);
    let receipts = if ok { receipts } else { vec![] };
    let _ = task
        .verdict
        .send(outcome(result, post_state, receipts, t0.elapsed()));
}

/// Block validation: drain the execution results in block order, apply
/// writes, and check the block-level commitments. Per-transaction footprint
/// checks (Algorithm 2) already ran inside the workers; a recorded abort
/// short-circuits here. On success, the block's written keys are distilled
/// into a [`StateDelta`] — the diff layer the snapshot tree stacks over the
/// parent state. With `check_root: false` (the deferred-root apply stage)
/// the state-root comparison is skipped here and settled later against the
/// block's [`RootLatch`].
fn validate_and_apply(
    task: &BlockTask,
    check_root: bool,
) -> Result<(WorldState, Vec<Receipt>, StateDelta), ValidationError> {
    let block = &task.block;
    if let Some(err) = &task.header_error {
        return Err(err.clone());
    }
    if let Some(err) = task.abort_error() {
        return Err(err);
    }
    // Copy-on-write snapshot of the parent state: O(accounts) pointer bumps
    // instead of a deep copy of the whole world per block.
    let mut world = task.base.snapshot();
    let mut gas_total: Gas = 0;
    let mut fees = U256::ZERO;
    let mut receipts = Vec::with_capacity(block.transactions.len());
    let mut written: std::collections::HashSet<AccessKey> = std::collections::HashSet::new();
    for i in 0..block.transactions.len() {
        let outcome = task
            .results
            .take(i)
            .expect("uncancelled block executed every transaction");
        world.apply_writes(&outcome.rw.writes);
        written.extend(outcome.rw.writes.keys().copied());
        for (addr, code) in &outcome.deployed {
            world.set_code(*addr, (**code).clone());
            written.insert(AccessKey::Code(*addr));
        }
        gas_total += outcome.receipt.gas_used;
        fees += outcome.receipt.fee;
        receipts.push(outcome.receipt);
    }
    if gas_total != block.header.gas_used {
        return Err(ValidationError::GasMismatch {
            expected: block.header.gas_used,
            got: gas_total,
        });
    }
    if receipts_root(&receipts) != block.header.receipts_root {
        return Err(ValidationError::ReceiptsRootMismatch);
    }
    if !fees.is_zero() {
        let cb = world.balance(&block.header.coinbase);
        world.set_balance(block.header.coinbase, cb + fees);
        written.insert(AccessKey::Balance(block.header.coinbase));
    }
    if check_root && world.state_root() != block.header.state_root {
        return Err(ValidationError::StateRootMismatch);
    }
    let delta = world.delta_for_keys(written.iter());
    Ok((world, receipts, delta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occ_wsi::{OccWsiConfig, OccWsiProposer, Proposal};
    use bp_txpool::TxPool;
    use bp_types::Address;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn funded_world(n: u64) -> WorldState {
        let mut w = WorldState::new();
        for i in 1..=n {
            w.set_balance(addr(i), U256::from(1_000_000_000u64));
        }
        w
    }

    /// Proposes a block of simple transfers on top of `base`.
    fn propose_transfers(
        base: &Arc<WorldState>,
        parent: BlockHash,
        height: u64,
        senders: std::ops::Range<u64>,
        nonce: u64,
    ) -> Proposal {
        let pool = TxPool::new();
        for i in senders {
            pool.add(Transaction::transfer(
                addr(i),
                addr(i + 500),
                U256::from(7u64),
                nonce,
                i,
            ));
        }
        let proposer = OccWsiProposer::new(OccWsiConfig {
            threads: 2,
            env: BlockEnv {
                number: height,
                ..BlockEnv::default()
            },
            ..Default::default()
        });
        proposer.propose(&pool, Arc::clone(base), parent, height)
    }

    fn pipeline_with_genesis(
        workers: usize,
        world: &Arc<WorldState>,
    ) -> (ValidatorPipeline, BlockHash) {
        let pipeline = ValidatorPipeline::new(PipelineConfig {
            workers,
            granularity: ConflictGranularity::Account,
            ..PipelineConfig::default()
        });
        let genesis = BlockHash::from_low_u64(1);
        pipeline.register_state(genesis, Arc::clone(world));
        (pipeline, genesis)
    }

    #[test]
    fn validates_honest_block() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(4, &world);
        let proposal = propose_transfers(&world, genesis, 1, 1..9, 0);
        let outcome = pipeline.validate_block(proposal.block.clone());
        assert!(outcome.is_valid(), "{:?}", outcome.result);
        assert_eq!(
            outcome.post_state.unwrap().state_root(),
            proposal.post_state.state_root()
        );
        assert_eq!(outcome.receipts.len(), proposal.block.tx_count());
        assert_eq!(outcome.executed_txs, proposal.block.tx_count());
        assert!(!outcome.aborted_early);
        pipeline.shutdown();
    }

    #[test]
    fn validates_honest_block_on_static_lanes() {
        let world = Arc::new(funded_world(10));
        let pipeline = ValidatorPipeline::new(PipelineConfig {
            workers: 4,
            dispatch: DispatchPolicy::StaticLanes,
            ..PipelineConfig::default()
        });
        let genesis = BlockHash::from_low_u64(1);
        pipeline.register_state(genesis, Arc::clone(&world));
        let proposal = propose_transfers(&world, genesis, 1, 1..9, 0);
        let outcome = pipeline.validate_block(proposal.block.clone());
        assert!(outcome.is_valid(), "{:?}", outcome.result);
        assert_eq!(
            outcome.post_state.unwrap().state_root(),
            proposal.post_state.state_root()
        );
        pipeline.shutdown();
    }

    #[test]
    fn validates_honest_block_on_single_applier() {
        let world = Arc::new(funded_world(10));
        let pipeline = ValidatorPipeline::new(PipelineConfig {
            workers: 2,
            appliers: 1,
            ..PipelineConfig::default()
        });
        let genesis = BlockHash::from_low_u64(1);
        pipeline.register_state(genesis, Arc::clone(&world));
        let proposal = propose_transfers(&world, genesis, 1, 1..9, 0);
        let outcome = pipeline.validate_block(proposal.block);
        assert!(outcome.is_valid(), "{:?}", outcome.result);
        pipeline.shutdown();
    }

    #[test]
    fn rejects_tampered_state_root() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(2, &world);
        let mut proposal = propose_transfers(&world, genesis, 1, 1..5, 0);
        proposal.block.header.state_root = bp_types::H256::from_low_u64(0xBAD);
        let outcome = pipeline.validate_block(proposal.block);
        assert_eq!(outcome.result, Err(ValidationError::StateRootMismatch));
        pipeline.shutdown();
    }

    #[test]
    fn rejects_tampered_profile() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(2, &world);
        let mut proposal = propose_transfers(&world, genesis, 1, 1..5, 0);
        // Corrupt one profiled write value: the replayed footprint diverges.
        let entry = &mut proposal.block.profile.entries[0];
        let key = *entry.writes.keys().next().unwrap();
        entry.writes.insert(key, U256::from(123_456u64));
        let outcome = pipeline.validate_block(proposal.block);
        assert_eq!(
            outcome.result,
            Err(ValidationError::ProfileMismatch { index: 0 })
        );
        assert!(outcome.aborted_early);
        pipeline.shutdown();
    }

    #[test]
    fn rejects_tampered_tx_list_without_executing() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(2, &world);
        let mut proposal = propose_transfers(&world, genesis, 1, 1..5, 0);
        proposal.block.transactions.swap(0, 1);
        let outcome = pipeline.validate_block(proposal.block);
        assert_eq!(outcome.result, Err(ValidationError::TxRootMismatch));
        // Fail fast: the header check runs at preparation, so not a single
        // transaction of the doomed block reaches a worker.
        assert_eq!(outcome.executed_txs, 0);
        pipeline.shutdown();
    }

    #[test]
    fn rejects_truncated_profile_without_executing() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(2, &world);
        let mut proposal = propose_transfers(&world, genesis, 1, 1..5, 0);
        proposal.block.profile.entries.pop();
        let outcome = pipeline.validate_block(proposal.block);
        assert!(matches!(
            outcome.result,
            Err(ValidationError::ProfileMismatch { .. })
        ));
        assert_eq!(outcome.executed_txs, 0);
        pipeline.shutdown();
    }

    #[test]
    fn rejects_tampered_gas() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(2, &world);
        let mut proposal = propose_transfers(&world, genesis, 1, 1..5, 0);
        proposal.block.header.gas_used += 1;
        let outcome = pipeline.validate_block(proposal.block);
        assert!(matches!(
            outcome.result,
            Err(ValidationError::GasMismatch { .. })
        ));
        pipeline.shutdown();
    }

    #[test]
    fn early_abort_stops_remaining_subgraph_jobs() {
        // One worker drains the subgraph jobs sequentially; tampering the
        // first-dispatched subgraph's transaction must cancel the rest of
        // the block before it executes.
        let world = Arc::new(funded_world(10));
        let pipeline = ValidatorPipeline::new(PipelineConfig {
            workers: 1,
            ..PipelineConfig::default()
        });
        let genesis = BlockHash::from_low_u64(1);
        pipeline.register_state(genesis, Arc::clone(&world));
        let mut proposal = propose_transfers(&world, genesis, 1, 1..9, 0);
        let n = proposal.block.tx_count();
        // Equal-gas singleton subgraphs dispatch ascending by first member,
        // so tx 0 executes first on the single worker.
        let entry = &mut proposal.block.profile.entries[0];
        let key = *entry.writes.keys().next().unwrap();
        entry.writes.insert(key, U256::from(0xBAD_u64));
        let outcome = pipeline.validate_block(proposal.block);
        assert_eq!(
            outcome.result,
            Err(ValidationError::ProfileMismatch { index: 0 })
        );
        assert!(outcome.aborted_early);
        assert!(
            outcome.executed_txs < n,
            "abort should cut execution short: executed {} of {n}",
            outcome.executed_txs
        );
        pipeline.shutdown();
    }

    #[test]
    fn same_height_blocks_validate_concurrently() {
        let world = Arc::new(funded_world(20));
        let (pipeline, genesis) = pipeline_with_genesis(4, &world);
        // Two competing proposals at height 1 from different tx subsets.
        let block_a = propose_transfers(&world, genesis, 1, 1..10, 0).block;
        let mut b = propose_transfers(&world, genesis, 1, 10..20, 0);
        b.block.header.proposer_seed = 99;
        let block_b = b.block;
        assert_ne!(block_a.hash(), block_b.hash());
        let ha = pipeline.submit(block_a);
        let hb = pipeline.submit(block_b);
        let oa = ha.wait();
        let ob = hb.wait();
        assert!(oa.is_valid(), "{:?}", oa.result);
        assert!(ob.is_valid(), "{:?}", ob.result);
        pipeline.shutdown();
    }

    #[test]
    fn child_waits_for_parent_and_completes() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(4, &world);
        let parent = propose_transfers(&world, genesis, 1, 1..5, 0);
        let parent_hash = parent.block.hash();
        let child = propose_transfers(
            &Arc::new(parent.post_state.clone()),
            parent_hash,
            2,
            1..5,
            1, // next nonce
        );
        // Submit the child FIRST: it must park until the parent validates.
        let hc = pipeline.submit(child.block.clone());
        let hp = pipeline.submit(parent.block.clone());
        assert!(hp.wait().is_valid());
        let oc = hc.wait();
        assert!(oc.is_valid(), "{:?}", oc.result);
        assert_eq!(
            oc.post_state.unwrap().state_root(),
            child.post_state.state_root()
        );
        pipeline.shutdown();
    }

    #[test]
    fn child_of_invalid_parent_is_rejected() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(2, &world);
        let mut parent = propose_transfers(&world, genesis, 1, 1..5, 0);
        parent.block.header.state_root = bp_types::H256::from_low_u64(0xBAD);
        let parent_hash = parent.block.hash();
        let child = propose_transfers(
            &Arc::new(parent.post_state.clone()),
            parent_hash,
            2,
            1..5,
            1,
        );
        let hc = pipeline.submit(child.block);
        let hp = pipeline.submit(parent.block);
        assert!(!hp.wait().is_valid());
        assert_eq!(hc.wait().result, Err(ValidationError::ParentInvalid));
        pipeline.shutdown();
    }

    #[test]
    fn empty_block_validates() {
        let world = Arc::new(funded_world(2));
        let (pipeline, genesis) = pipeline_with_genesis(2, &world);
        let proposal = propose_transfers(&world, genesis, 1, 1..1, 0); // no txs
        assert_eq!(proposal.block.tx_count(), 0);
        let outcome = pipeline.validate_block(proposal.block);
        assert!(outcome.is_valid(), "{:?}", outcome.result);
        assert_eq!(outcome.executed_txs, 0);
        pipeline.shutdown();
    }

    #[test]
    fn chain_of_three_heights_validates_in_any_submit_order() {
        let world = Arc::new(funded_world(6));
        let (pipeline, genesis) = pipeline_with_genesis(3, &world);
        let b1 = propose_transfers(&world, genesis, 1, 1..4, 0);
        let s1 = Arc::new(b1.post_state.clone());
        let b2 = propose_transfers(&s1, b1.block.hash(), 2, 1..4, 1);
        let s2 = Arc::new(b2.post_state.clone());
        let b3 = propose_transfers(&s2, b2.block.hash(), 3, 1..4, 2);
        // Reverse submit order: deepest first.
        let h3 = pipeline.submit(b3.block.clone());
        let h2 = pipeline.submit(b2.block.clone());
        let h1 = pipeline.submit(b1.block.clone());
        assert!(h1.wait().is_valid());
        assert!(h2.wait().is_valid());
        let o3 = h3.wait();
        assert!(o3.is_valid(), "{:?}", o3.result);
        assert_eq!(
            o3.post_state.unwrap().state_root(),
            b3.post_state.state_root()
        );
        pipeline.shutdown();
    }

    fn deferred_pipeline(
        workers: usize,
        world: &Arc<WorldState>,
    ) -> (ValidatorPipeline, BlockHash) {
        let pipeline = ValidatorPipeline::new(PipelineConfig {
            workers,
            deferred_root: true,
            ..PipelineConfig::default()
        });
        let genesis = BlockHash::from_low_u64(1);
        pipeline.register_state(genesis, Arc::clone(world));
        (pipeline, genesis)
    }

    #[test]
    fn deferred_root_validates_honest_chain() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = deferred_pipeline(4, &world);
        let b1 = propose_transfers(&world, genesis, 1, 1..8, 0);
        let s1 = Arc::new(b1.post_state.clone());
        let b2 = propose_transfers(&s1, b1.block.hash(), 2, 1..8, 1);
        let s2 = Arc::new(b2.post_state.clone());
        let b3 = propose_transfers(&s2, b2.block.hash(), 3, 1..8, 2);
        let h3 = pipeline.submit(b3.block.clone());
        let h1 = pipeline.submit(b1.block.clone());
        let h2 = pipeline.submit(b2.block.clone());
        assert!(h1.wait().is_valid());
        assert!(h2.wait().is_valid());
        let o3 = h3.wait();
        assert!(o3.is_valid(), "{:?}", o3.result);
        assert_eq!(
            o3.post_state.unwrap().state_root(),
            b3.post_state.state_root()
        );
        pipeline.shutdown();
    }

    #[test]
    fn deferred_root_rejects_tampered_root_and_descendants() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = deferred_pipeline(2, &world);
        let mut b1 = propose_transfers(&world, genesis, 1, 1..5, 0);
        b1.block.header.state_root = bp_types::H256::from_low_u64(0xBAD);
        let s1 = Arc::new(b1.post_state.clone());
        let b2 = propose_transfers(&s1, b1.block.hash(), 2, 1..5, 1);
        let s2 = Arc::new(b2.post_state.clone());
        let b3 = propose_transfers(&s2, b2.block.hash(), 3, 1..5, 2);
        let h2 = pipeline.submit(b2.block.clone());
        let h3 = pipeline.submit(b3.block.clone());
        let h1 = pipeline.submit(b1.block.clone());
        assert_eq!(h1.wait().result, Err(ValidationError::StateRootMismatch));
        // The child may have been released optimistically before the parent's
        // root settled — its verdict must still be ParentInvalid, and the
        // grandchild's too, whether it executed or parked.
        assert_eq!(h2.wait().result, Err(ValidationError::ParentInvalid));
        assert_eq!(h3.wait().result, Err(ValidationError::ParentInvalid));
        // The tampered subtree never becomes visible state.
        assert!(pipeline.state_of(&b1.block.hash()).is_none());
        assert!(pipeline.state_of(&b2.block.hash()).is_none());
        pipeline.shutdown();
    }

    #[test]
    fn deferred_root_matches_serial_verdicts_and_roots() {
        // A/B the two apply modes over the same 4-block chain.
        let world = Arc::new(funded_world(12));
        let mut blocks = Vec::new();
        let mut base = Arc::clone(&world);
        let mut parent = BlockHash::from_low_u64(1);
        for height in 1..=4 {
            let p = propose_transfers(&base, parent, height, 1..10, height - 1);
            parent = p.block.hash();
            base = Arc::new(p.post_state.clone());
            blocks.push(p);
        }
        for deferred in [false, true] {
            let pipeline = ValidatorPipeline::new(PipelineConfig {
                workers: 3,
                deferred_root: deferred,
                ..PipelineConfig::default()
            });
            pipeline.register_state(BlockHash::from_low_u64(1), Arc::clone(&world));
            let handles: Vec<_> = blocks
                .iter()
                .map(|p| pipeline.submit(p.block.clone()))
                .collect();
            for (handle, proposal) in handles.into_iter().zip(&blocks) {
                let outcome = handle.wait();
                assert!(
                    outcome.is_valid(),
                    "deferred={deferred}: {:?}",
                    outcome.result
                );
                assert_eq!(
                    outcome.post_state.unwrap().state_root(),
                    proposal.post_state.state_root(),
                    "deferred={deferred}"
                );
            }
            pipeline.shutdown();
        }
    }

    #[test]
    fn deferred_root_single_applier_does_not_deadlock() {
        let world = Arc::new(funded_world(8));
        let pipeline = ValidatorPipeline::new(PipelineConfig {
            workers: 2,
            appliers: 1,
            deferred_root: true,
            ..PipelineConfig::default()
        });
        let genesis = BlockHash::from_low_u64(1);
        pipeline.register_state(genesis, Arc::clone(&world));
        let b1 = propose_transfers(&world, genesis, 1, 1..6, 0);
        let s1 = Arc::new(b1.post_state.clone());
        let b2 = propose_transfers(&s1, b1.block.hash(), 2, 1..6, 1);
        let h1 = pipeline.submit(b1.block.clone());
        let h2 = pipeline.submit(b2.block.clone());
        assert!(h1.wait().is_valid());
        assert!(h2.wait().is_valid());
        pipeline.shutdown();
    }

    #[test]
    fn timings_are_recorded() {
        let world = Arc::new(funded_world(10));
        let (pipeline, genesis) = pipeline_with_genesis(2, &world);
        let proposal = propose_transfers(&world, genesis, 1, 1..9, 0);
        let outcome = pipeline.validate_block(proposal.block);
        assert!(outcome.is_valid());
        // Execution of 8 transfers takes nonzero wall time.
        assert!(outcome.timings.execute > Duration::ZERO);
        pipeline.shutdown();
    }
}
