//! High-level proposer node: a pending pool plus the OCC-WSI engine.

use std::sync::Arc;

use bp_evm::Transaction;
use bp_state::WorldState;
use bp_txpool::TxPool;
use bp_types::{BlockHash, Height};

use crate::occ_wsi::{OccWsiConfig, OccWsiProposer, Proposal};

/// A proposer node: clients submit transactions, the node packs blocks.
pub struct Proposer {
    engine: OccWsiProposer,
    pool: Arc<TxPool>,
}

impl Proposer {
    /// A proposer with a fresh pending pool.
    pub fn new(config: OccWsiConfig) -> Self {
        Proposer {
            engine: OccWsiProposer::new(config),
            pool: Arc::new(TxPool::new()),
        }
    }

    /// The pending pool (e.g. for mempool inspection).
    pub fn pool(&self) -> &TxPool {
        &self.pool
    }

    /// Accepts a client transaction into the pending pool.
    pub fn submit_transaction(&self, tx: Transaction) {
        self.pool.add(tx);
    }

    /// Accepts a batch of transactions.
    pub fn submit_transactions(&self, txs: impl IntoIterator<Item = Transaction>) {
        for tx in txs {
            self.pool.add(tx);
        }
    }

    /// Packs and seals the next block on top of `parent` (Algorithm 1).
    pub fn propose_block(
        &self,
        parent_state: Arc<WorldState>,
        parent: BlockHash,
        height: Height,
    ) -> Proposal {
        self.engine
            .propose(&self.pool, parent_state, parent, height)
    }

    /// The underlying OCC-WSI engine (for custom pools).
    pub fn engine(&self) -> &OccWsiProposer {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_types::{Address, U256};

    #[test]
    fn proposer_drains_pool_into_blocks() {
        let mut world = WorldState::new();
        for i in 1..=10u64 {
            world.set_balance(Address::from_index(i), U256::from(1_000_000u64));
        }
        let world = Arc::new(world);
        let proposer = Proposer::new(OccWsiConfig {
            threads: 2,
            ..Default::default()
        });
        proposer.submit_transactions((1..=10u64).map(|i| {
            Transaction::transfer(
                Address::from_index(i),
                Address::from_index(99),
                U256::ONE,
                0,
                i,
            )
        }));
        assert_eq!(proposer.pool().len(), 10);
        let proposal = proposer.propose_block(world, BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), 10);
        assert!(proposer.pool().is_empty());
    }
}
