//! High-level proposer node: a pending pool plus the selected execution
//! engine ([`ProposerAlgo`]).

use std::sync::Arc;

use bp_evm::Transaction;
use bp_state::WorldState;
use bp_txpool::TxPool;
use bp_types::{BlockHash, Height};

use crate::block_stm::{BlockStmProposer, ProposerAlgo};
use crate::occ_wsi::{OccWsiConfig, OccWsiProposer, Proposal};

/// The engine behind a [`Proposer`], chosen by [`OccWsiConfig::algo`].
enum Engine {
    Occ(OccWsiProposer),
    Stm(BlockStmProposer),
}

/// A proposer node: clients submit transactions, the node packs blocks
/// through the configured engine (OCC-WSI or Block-STM).
pub struct Proposer {
    engine: Engine,
    pool: Arc<TxPool>,
}

impl Proposer {
    /// A proposer with a fresh pending pool, running the engine named by
    /// `config.algo`.
    pub fn new(config: OccWsiConfig) -> Self {
        let engine = match config.algo {
            ProposerAlgo::OccWsi => Engine::Occ(OccWsiProposer::new(config)),
            ProposerAlgo::BlockStm => Engine::Stm(BlockStmProposer::new(config)),
        };
        Proposer {
            engine,
            pool: Arc::new(TxPool::new()),
        }
    }

    /// The pending pool (e.g. for mempool inspection).
    pub fn pool(&self) -> &TxPool {
        &self.pool
    }

    /// The configuration the engine runs with.
    pub fn config(&self) -> &OccWsiConfig {
        match &self.engine {
            Engine::Occ(e) => e.config(),
            Engine::Stm(e) => e.config(),
        }
    }

    /// Which engine this proposer packs blocks with.
    pub fn algo(&self) -> ProposerAlgo {
        match &self.engine {
            Engine::Occ(_) => ProposerAlgo::OccWsi,
            Engine::Stm(_) => ProposerAlgo::BlockStm,
        }
    }

    /// Accepts a client transaction into the pending pool.
    pub fn submit_transaction(&self, tx: Transaction) {
        self.pool.add(tx);
    }

    /// Accepts a batch of transactions.
    pub fn submit_transactions(&self, txs: impl IntoIterator<Item = Transaction>) {
        for tx in txs {
            self.pool.add(tx);
        }
    }

    /// Packs and seals the next block on top of `parent`.
    pub fn propose_block(
        &self,
        parent_state: Arc<WorldState>,
        parent: BlockHash,
        height: Height,
    ) -> Proposal {
        match &self.engine {
            Engine::Occ(e) => e.propose(&self.pool, parent_state, parent, height),
            Engine::Stm(e) => e.propose(&self.pool, parent_state, parent, height),
        }
    }

    /// The underlying OCC-WSI engine, when that is the configured algorithm
    /// (for custom pools; `None` under Block-STM).
    pub fn engine(&self) -> Option<&OccWsiProposer> {
        match &self.engine {
            Engine::Occ(e) => Some(e),
            Engine::Stm(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_types::{Address, U256};

    #[test]
    fn proposer_drains_pool_into_blocks() {
        for algo in [ProposerAlgo::OccWsi, ProposerAlgo::BlockStm] {
            let mut world = WorldState::new();
            for i in 1..=10u64 {
                world.set_balance(Address::from_index(i), U256::from(1_000_000u64));
            }
            let world = Arc::new(world);
            let proposer = Proposer::new(OccWsiConfig {
                threads: 2,
                algo,
                ..Default::default()
            });
            assert_eq!(proposer.algo(), algo);
            proposer.submit_transactions((1..=10u64).map(|i| {
                Transaction::transfer(
                    Address::from_index(i),
                    Address::from_index(99),
                    U256::ONE,
                    0,
                    i,
                )
            }));
            assert_eq!(proposer.pool().len(), 10);
            let proposal = proposer.propose_block(world, BlockHash::ZERO, 1);
            assert_eq!(proposal.block.tx_count(), 10);
            assert!(proposer.pool().is_empty());
        }
    }

    #[test]
    fn engines_agree_on_the_state_root_for_the_same_pool() {
        let mut world = WorldState::new();
        for i in 1..=16u64 {
            world.set_balance(Address::from_index(i), U256::from(1_000_000u64));
        }
        let world = Arc::new(world);
        let mut roots = Vec::new();
        for algo in [ProposerAlgo::OccWsi, ProposerAlgo::BlockStm] {
            let proposer = Proposer::new(OccWsiConfig {
                threads: 4,
                algo,
                ..Default::default()
            });
            // Distinct gas prices pin a deterministic priority order, and
            // disjoint transfers make every serializable schedule converge
            // to the same state.
            proposer.submit_transactions((1..=16u64).map(|i| {
                Transaction::transfer(
                    Address::from_index(i),
                    Address::from_index(100 + i),
                    U256::ONE,
                    0,
                    i,
                )
            }));
            let proposal = proposer.propose_block(Arc::clone(&world), BlockHash::ZERO, 1);
            assert_eq!(proposal.block.tx_count(), 16);
            roots.push(proposal.post_state.state_root());
        }
        assert_eq!(roots[0], roots[1]);
    }
}
