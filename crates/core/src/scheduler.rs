//! The validator's transaction scheduler (§4.3, preparation phase).
//!
//! From the block profile's read/write sets the scheduler builds a
//! dependency graph, groups conflicting transactions into **subgraphs**
//! (connected components — any two transactions in different components are
//! conflict-free), and assigns subgraphs to worker lanes by gas-weighted
//! longest-processing-time: heaviest subgraph first onto the least-loaded
//! lane, gas being the paper's execution-time proxy.
//!
//! Transactions inside one lane run serially **in block order**; lanes run in
//! parallel. Because every pair of conflicting transactions shares a lane,
//! replaying a lane serially observes exactly the same values a full serial
//! replay of the block would — this is the invariant the property tests pin
//! down.

use std::collections::HashMap;

use bp_block::BlockProfile;
use bp_types::{AccessKey, Gas, RwSet};
use serde::{Deserialize, Serialize};

/// Granularity at which two transactions are considered conflicting.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ConflictGranularity {
    /// The paper's choice: any two touches of the same **account** conflict
    /// (balances change every transaction; storage writes update the
    /// account's storage root). Coarse but cheap.
    Account,
    /// Exact storage-slot granularity: finer subgraphs, more parallelism,
    /// higher analysis cost. Used by the ablation benches.
    Slot,
}

/// One connected component of the dependency graph.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subgraph {
    /// Member transaction indices, ascending (block order).
    pub txs: Vec<usize>,
    /// Total gas — the scheduler's time estimate for the component.
    pub gas: Gas,
}

/// A complete lane assignment for one block.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// `lanes[t]` lists the transaction indices lane `t` executes, in block
    /// order. Every index appears in exactly one lane.
    pub lanes: Vec<Vec<usize>>,
    /// The subgraphs the lanes were packed from, heaviest first.
    pub subgraphs: Vec<Subgraph>,
    /// Total gas of the block.
    pub total_gas: Gas,
}

impl Schedule {
    /// Gas load of each lane.
    pub fn lane_gas(&self, profile: &BlockProfile) -> Vec<Gas> {
        self.lanes
            .iter()
            .map(|lane| lane.iter().map(|&i| profile.entries[i].gas_used).sum())
            .collect()
    }

    /// The virtual-time makespan: the heaviest lane's gas. With zero
    /// scheduling overhead a validator with enough workers finishes the
    /// block in this much gas-time.
    pub fn makespan_gas(&self, profile: &BlockProfile) -> Gas {
        self.lane_gas(profile).into_iter().max().unwrap_or(0)
    }

    /// Fraction of the block's transactions in the largest subgraph — the
    /// x-axis of the paper's Figure 8 (hotspot analysis).
    pub fn largest_subgraph_ratio(&self) -> f64 {
        let n: usize = self.lanes.iter().map(Vec::len).sum();
        if n == 0 {
            return 0.0;
        }
        let largest = self
            .subgraphs
            .iter()
            .map(|s| s.txs.len())
            .max()
            .unwrap_or(0);
        largest as f64 / n as f64
    }

    /// Number of non-empty lanes.
    pub fn active_lanes(&self) -> usize {
        self.lanes.iter().filter(|l| !l.is_empty()).count()
    }
}

/// How subgraphs are packed onto lanes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum AssignPolicy {
    /// The paper's choice: heaviest subgraph (by gas) first onto the
    /// least-loaded lane (longest-processing-time).
    #[default]
    GasLpt,
    /// LPT by transaction *count* instead of gas (ablation: ignores the
    /// gas-as-time estimate).
    CountLpt,
    /// Round-robin regardless of weight (ablation: no load balancing).
    RoundRobin,
}

/// Builds schedules from block profiles.
#[derive(Clone, Copy, Debug)]
pub struct Scheduler {
    granularity: ConflictGranularity,
    policy: AssignPolicy,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler {
            granularity: ConflictGranularity::Account,
            policy: AssignPolicy::GasLpt,
        }
    }
}

impl Scheduler {
    /// A scheduler using `granularity` for conflict detection and the
    /// paper's gas-LPT lane assignment.
    pub fn new(granularity: ConflictGranularity) -> Self {
        Scheduler {
            granularity,
            policy: AssignPolicy::GasLpt,
        }
    }

    /// A scheduler with an explicit lane-assignment policy (ablations).
    pub fn with_policy(granularity: ConflictGranularity, policy: AssignPolicy) -> Self {
        Scheduler {
            granularity,
            policy,
        }
    }

    /// The configured granularity.
    pub fn granularity(&self) -> ConflictGranularity {
        self.granularity
    }

    /// The configured lane-assignment policy.
    pub fn policy(&self) -> AssignPolicy {
        self.policy
    }

    /// Builds the dependency subgraphs and packs them into `lanes` lanes.
    ///
    /// Schedules directly off the profile's borrowed key maps — no
    /// per-transaction [`RwSet`] clones.
    pub fn schedule(&self, profile: &BlockProfile, lanes: usize) -> Schedule {
        let gas: Vec<Gas> = profile.entries.iter().map(|e| e.gas_used).collect();
        let subgraphs = self.subgraphs_with_gas(profile, &gas);
        self.pack(subgraphs, &gas, lanes)
    }

    /// Builds the policy-ordered dependency subgraphs of a block without
    /// packing them into lanes — the unit of work for subgraph-granular
    /// dispatch, where every component becomes its own pool job.
    pub fn subgraphs(&self, profile: &BlockProfile) -> Vec<Subgraph> {
        let gas: Vec<Gas> = profile.entries.iter().map(|e| e.gas_used).collect();
        self.subgraphs_with_gas(profile, &gas)
    }

    fn subgraphs_with_gas(&self, profile: &BlockProfile, gas: &[Gas]) -> Vec<Subgraph> {
        let key_count: usize = profile
            .entries
            .iter()
            .map(|e| e.reads.len() + e.writes.len())
            .sum();
        self.components(profile.entries.len(), gas, key_count, |i, visit| {
            let entry = &profile.entries[i];
            for key in entry.reads.keys() {
                visit(key, false);
            }
            for key in entry.writes.keys() {
                visit(key, true);
            }
        })
    }

    /// Like [`Scheduler::schedule`] but from raw footprints (used when no
    /// profile is available and the validator collected its own traces).
    pub fn schedule_footprints(&self, footprints: &[RwSet], gas: &[Gas], lanes: usize) -> Schedule {
        assert_eq!(footprints.len(), gas.len());
        let key_count: usize = footprints
            .iter()
            .map(|rw| rw.reads.len() + rw.writes.len())
            .sum();
        let subgraphs = self.components(footprints.len(), gas, key_count, |i, visit| {
            for key in footprints[i].reads.keys() {
                visit(key, false);
            }
            for key in footprints[i].writes.keys() {
                visit(key, true);
            }
        });
        self.pack(subgraphs, gas, lanes)
    }

    /// Union-find over the conflict graph, visiting each transaction's keys
    /// through a borrowed-key visitor (`visit(key, is_write)`), then collects
    /// connected components and sorts them by the configured policy.
    fn components(
        &self,
        n: usize,
        gas: &[Gas],
        key_count: usize,
        for_each_key: impl Fn(usize, &mut dyn FnMut(&AccessKey, bool)),
    ) -> Vec<Subgraph> {
        let mut uf = UnionFind::new(n);

        // Union transactions key by key: every toucher of a key with at
        // least one writer joins that key's component. Read-only keys create
        // no edges. Capacity from the profile's total key count bounds the
        // distinct-key count from above, so the map never rehashes.
        let mut touchers: HashMap<KeyRepr, (Vec<usize>, bool)> = HashMap::with_capacity(key_count);
        for i in 0..n {
            for_each_key(i, &mut |key, is_write| {
                let entry = touchers.entry(self.repr(key)).or_default();
                entry.0.push(i);
                entry.1 |= is_write;
            });
        }
        for (txs, has_writer) in touchers.into_values() {
            if !has_writer {
                continue;
            }
            for pair in txs.windows(2) {
                uf.union(pair[0], pair[1]);
            }
        }

        // Collect components into subgraphs.
        let mut members: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            members.entry(uf.find(i)).or_default().push(i);
        }
        let mut subgraphs: Vec<Subgraph> = members
            .into_values()
            .map(|mut txs| {
                txs.sort_unstable();
                let g = txs.iter().map(|&i| gas[i]).sum();
                Subgraph { txs, gas: g }
            })
            .collect();
        // Heaviest-path-first (deterministic tiebreak on first member).
        match self.policy {
            AssignPolicy::GasLpt => {
                subgraphs.sort_by(|a, b| b.gas.cmp(&a.gas).then(a.txs[0].cmp(&b.txs[0])))
            }
            AssignPolicy::CountLpt => subgraphs
                .sort_by(|a, b| b.txs.len().cmp(&a.txs.len()).then(a.txs[0].cmp(&b.txs[0]))),
            AssignPolicy::RoundRobin => subgraphs.sort_by_key(|s| s.txs[0]),
        }
        subgraphs
    }

    /// LPT-packs policy-ordered subgraphs onto `lanes` lanes.
    fn pack(&self, subgraphs: Vec<Subgraph>, gas: &[Gas], lanes: usize) -> Schedule {
        assert!(lanes > 0, "need at least one lane");
        let mut lane_txs: Vec<Vec<usize>> = vec![Vec::new(); lanes];
        let mut lane_load: Vec<Gas> = vec![0; lanes];
        let mut lane_count: Vec<usize> = vec![0; lanes];
        for (i, sg) in subgraphs.iter().enumerate() {
            let target = match self.policy {
                AssignPolicy::GasLpt => (0..lanes)
                    .min_by_key(|&t| (lane_load[t], t))
                    .expect("lanes > 0"),
                AssignPolicy::CountLpt => (0..lanes)
                    .min_by_key(|&t| (lane_count[t], t))
                    .expect("lanes > 0"),
                AssignPolicy::RoundRobin => i % lanes,
            };
            lane_load[target] += sg.gas;
            lane_count[target] += sg.txs.len();
            lane_txs[target].extend_from_slice(&sg.txs);
        }
        for lane in &mut lane_txs {
            lane.sort_unstable(); // block order within the lane
        }

        Schedule {
            lanes: lane_txs,
            subgraphs,
            total_gas: gas.iter().sum(),
        }
    }

    fn repr(&self, key: &AccessKey) -> KeyRepr {
        match self.granularity {
            ConflictGranularity::Account => KeyRepr::Account(key.address()),
            ConflictGranularity::Slot => KeyRepr::Exact(*key),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum KeyRepr {
    Account(bp_types::Address),
    Exact(AccessKey),
}

/// Path-halving union-find.
struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_block::TxProfile;
    use bp_types::{Address, H256, U256};

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    /// Builds a profile entry reading `reads` and writing `writes` (balance
    /// keys of the given account indices), with `gas`.
    fn entry(reads: &[u64], writes: &[u64], gas: Gas) -> TxProfile {
        let mut rw = RwSet::new();
        for &r in reads {
            rw.record_read(AccessKey::Balance(addr(r)), 0);
        }
        for &w in writes {
            rw.record_write(AccessKey::Balance(addr(w)), U256::ONE);
        }
        TxProfile::from_rw(&rw, gas)
    }

    fn profile(entries: Vec<TxProfile>) -> BlockProfile {
        BlockProfile { entries }
    }

    #[test]
    fn independent_txs_spread_over_lanes() {
        let p = profile(vec![
            entry(&[], &[1], 10),
            entry(&[], &[2], 10),
            entry(&[], &[3], 10),
            entry(&[], &[4], 10),
        ]);
        let s = Scheduler::default().schedule(&p, 4);
        assert_eq!(s.subgraphs.len(), 4);
        assert_eq!(s.active_lanes(), 4);
        assert_eq!(s.makespan_gas(&p), 10);
        assert!((s.largest_subgraph_ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn conflicting_txs_share_a_lane() {
        // 0 writes A; 1 reads A; 2 writes B — {0,1} conflict, 2 is free.
        let p = profile(vec![
            entry(&[], &[1], 10),
            entry(&[1], &[2], 10),
            entry(&[], &[3], 10),
        ]);
        let s = Scheduler::default().schedule(&p, 4);
        assert_eq!(s.subgraphs.len(), 2);
        let lane_of = |i: usize| s.lanes.iter().position(|l| l.contains(&i)).unwrap();
        assert_eq!(lane_of(0), lane_of(1));
        assert_ne!(lane_of(0), lane_of(2));
    }

    #[test]
    fn read_read_sharing_is_not_a_conflict() {
        let p = profile(vec![entry(&[9], &[1], 10), entry(&[9], &[2], 10)]);
        let s = Scheduler::default().schedule(&p, 2);
        assert_eq!(s.subgraphs.len(), 2);
    }

    #[test]
    fn transitive_conflicts_merge() {
        // 0-1 share A, 1-2 share B: one subgraph of 3.
        let p = profile(vec![
            entry(&[], &[1], 10),
            entry(&[1], &[2], 10),
            entry(&[2], &[3], 10),
        ]);
        let s = Scheduler::default().schedule(&p, 4);
        assert_eq!(s.subgraphs.len(), 1);
        assert_eq!(s.subgraphs[0].txs, vec![0, 1, 2]);
        assert!((s.largest_subgraph_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lanes_preserve_block_order() {
        // All conflict: one lane must hold 0..5 ascending.
        let p = profile((0..5).map(|_| entry(&[], &[1], 10)).collect());
        let s = Scheduler::default().schedule(&p, 3);
        let lane = s.lanes.iter().find(|l| !l.is_empty()).unwrap();
        assert_eq!(lane, &vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn lpt_balances_by_gas_not_count() {
        // One heavy subgraph (gas 100) and four light ones (gas 10): with two
        // lanes, LPT puts the heavy one alone and the light ones together.
        let p = profile(vec![
            entry(&[], &[1], 100),
            entry(&[], &[2], 10),
            entry(&[], &[3], 10),
            entry(&[], &[4], 10),
            entry(&[], &[5], 10),
        ]);
        let s = Scheduler::default().schedule(&p, 2);
        let loads = s.lane_gas(&p);
        assert_eq!(loads.iter().max(), Some(&100));
        assert_eq!(loads.iter().sum::<u64>(), 140);
        assert_eq!(s.makespan_gas(&p), 100);
    }

    #[test]
    fn slot_granularity_is_finer_than_account() {
        // Two txs write different storage slots of the same contract.
        let c = addr(50);
        let mk = |slot: u64| {
            let mut rw = RwSet::new();
            rw.record_write(AccessKey::Storage(c, H256::from_low_u64(slot)), U256::ONE);
            TxProfile::from_rw(&rw, 10)
        };
        let p = profile(vec![mk(1), mk(2)]);
        let account = Scheduler::new(ConflictGranularity::Account).schedule(&p, 2);
        let slot = Scheduler::new(ConflictGranularity::Slot).schedule(&p, 2);
        assert_eq!(account.subgraphs.len(), 1);
        assert_eq!(slot.subgraphs.len(), 2);
    }

    #[test]
    fn every_tx_in_exactly_one_lane() {
        let p = profile(
            (0..20)
                .map(|i| entry(&[i % 5], &[i % 3 + 10], 10 + i))
                .collect(),
        );
        let s = Scheduler::default().schedule(&p, 4);
        let mut seen = vec![false; 20];
        for lane in &s.lanes {
            for &i in lane {
                assert!(!seen[i], "tx {i} scheduled twice");
                seen[i] = true;
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn empty_profile_schedules_cleanly() {
        let p = profile(vec![]);
        let s = Scheduler::default().schedule(&p, 4);
        assert_eq!(s.active_lanes(), 0);
        assert_eq!(s.total_gas, 0);
        assert_eq!(s.largest_subgraph_ratio(), 0.0);
        assert_eq!(s.makespan_gas(&p), 0);
    }

    #[test]
    fn single_lane_degenerates_to_serial() {
        let p = profile((0..6).map(|i| entry(&[], &[i + 1], 10)).collect());
        let s = Scheduler::default().schedule(&p, 1);
        assert_eq!(s.lanes.len(), 1);
        assert_eq!(s.lanes[0], (0..6).collect::<Vec<_>>());
        assert_eq!(s.makespan_gas(&p), 60);
    }
}
