//! High-level validator node: the pipeline plus a fork-aware chain store,
//! optionally backed by a persistent [`bp_store::Store`].

use std::collections::{HashSet, VecDeque};
use std::path::Path;
use std::sync::Arc;

use bp_block::{genesis_header, Block, BlockProfile, ChainStore};
use bp_state::WorldState;
use bp_store::{GroupCommitConfig, Store, StoreConfig, StoreError};
use bp_types::{BlockHash, Height, H256};
use parking_lot::Mutex;

use crate::pipeline::{PipelineConfig, ValidationHandle, ValidationOutcome, ValidatorPipeline};

/// How many recently committed state roots a persistent validator retains on
/// disk. Older roots are pruned as new heads commit; the window is deep
/// enough that a reorg within it never loses a needed state.
pub const ROOT_RETENTION: usize = 8;

/// Persistence context for a store-backed validator.
struct StoreCtx {
    store: Store,
    /// Canonical blocks already durable — persisting them again would
    /// double-retain their roots.
    persisted: HashSet<BlockHash>,
    /// Persisted roots in commit order, pruned beyond [`ROOT_RETENTION`].
    recent_roots: VecDeque<(Height, H256)>,
}

/// A validator node.
///
/// Receives blocks from the network (possibly several per height), validates
/// them through the four-stage pipeline, tracks every fork in a
/// [`ChainStore`], and commits the canonical chain. With
/// [`Validator::with_store`] every canonical commit is additionally made
/// durable, and a restarted node rebuilds its chain and state by replaying
/// the stored canonical chain from the genesis snapshot.
pub struct Validator {
    pipeline: ValidatorPipeline,
    chain: Mutex<ChainStore>,
    genesis: BlockHash,
    store: Option<Mutex<StoreCtx>>,
}

impl Validator {
    /// Boots a validator from a genesis state (in-memory only).
    pub fn new(config: PipelineConfig, genesis_state: WorldState) -> Self {
        let (validator, _) = Self::build(config, genesis_state);
        validator
    }

    /// Opens (or creates) a store at `dir` with the validator's standard
    /// persistence profile — a [`ROOT_RETENTION`]-deep retention window and
    /// the layered flat-state snapshot tree — and boots on it. Retention and
    /// flattening then run inside [`Store::commit`]; see
    /// [`Validator::with_store`] for the recovery semantics.
    pub fn with_store_at(
        config: PipelineConfig,
        genesis_state: WorldState,
        dir: impl AsRef<Path>,
    ) -> Result<Self, StoreError> {
        Self::with_store_profile(config, genesis_state, dir, None)
    }

    /// Like [`Validator::with_store_at`], additionally coalescing durable
    /// commits into fsync batches when `group_commit` is set (see
    /// [`bp_store::GroupCommitConfig`]). Deferred commits are flushed by
    /// [`Validator::into_store`]; a crash mid-batch rolls the store back to
    /// the last batch boundary, from which recovery replays as usual.
    pub fn with_store_profile(
        config: PipelineConfig,
        genesis_state: WorldState,
        dir: impl AsRef<Path>,
        group_commit: Option<GroupCommitConfig>,
    ) -> Result<Self, StoreError> {
        let store = Store::open_with(
            dir,
            StoreConfig {
                retention_window: Some(ROOT_RETENTION),
                snapshots: true,
                group_commit,
            },
        )?;
        Self::with_store(config, genesis_state, store)
    }

    /// Boots a validator bound to a persistent store.
    ///
    /// * A fresh store is initialized from `genesis_state` (durable genesis
    ///   snapshot + genesis block).
    /// * An initialized store triggers **cold-start replay**: the genesis
    ///   snapshot anchors the pipeline and every stored canonical block is
    ///   re-validated in order, leaving the validator exactly where the last
    ///   durable commit left it — the stored head, with its state resolvable
    ///   from disk. `genesis_state` must match the stored snapshot.
    pub fn with_store(
        config: PipelineConfig,
        genesis_state: WorldState,
        store: Store,
    ) -> Result<Self, StoreError> {
        let mut store = store;
        let recovering = store.is_initialized();
        let genesis_state = if recovering {
            let snapshot = store.genesis_state().expect("initialized store").clone();
            if snapshot.state_root() != genesis_state.state_root() {
                return Err(StoreError::Corrupt(
                    "genesis state does not match the stored snapshot".into(),
                ));
            }
            snapshot
        } else {
            genesis_state
        };
        let (mut validator, genesis_block) = Self::build(config, genesis_state.clone());

        if !recovering {
            store.initialize(&genesis_state, &genesis_block)?;
        } else if store.head() == Some(genesis_block.hash()) {
            // Stored chain is just the genesis: nothing to replay.
        } else if !store.has_block(&genesis_block.hash()) {
            return Err(StoreError::Corrupt(
                "stored chain was built from a different genesis block".into(),
            ));
        }

        let chain_blocks = store.canonical_chain()?;
        let persisted: HashSet<BlockHash> = chain_blocks.iter().map(|b| b.hash()).collect();
        let recent_roots: VecDeque<(Height, H256)> = chain_blocks
            .iter()
            .rev()
            .take(ROOT_RETENTION)
            .rev()
            .map(|b| (b.height(), b.header.state_root))
            .collect();
        validator.store = Some(Mutex::new(StoreCtx {
            store,
            persisted,
            recent_roots,
        }));

        // Cold-start replay: re-execute the stored canonical chain through
        // the pipeline. Persistence is skipped (every hash is in
        // `persisted`), so replay only rebuilds the in-memory view.
        for block in chain_blocks.into_iter().filter(|b| b.height() > 0) {
            let hash = block.hash();
            let height = block.height();
            let outcome = validator.receive_block(block).wait();
            if !outcome.is_valid() {
                return Err(StoreError::Corrupt(format!(
                    "stored block {hash:?} at height {height} failed replay: {:?}",
                    outcome.result
                )));
            }
            if !validator.commit_canonical(hash) {
                return Err(StoreError::Corrupt(format!(
                    "stored block {hash:?} at height {height} does not extend the canonical chain"
                )));
            }
        }

        // Layered flat-state catch-up: if the snapshot tree cannot resolve
        // the recovered head (snapshots were just enabled on an older store,
        // or the snap files were lost), rebuild it wholesale from the
        // replayed head state. Replayed flattens must move forward in
        // height, which a fresh base guarantees.
        let (head_hash, head_height) = validator.head().expect("canonical head exists");
        let head_root = validator
            .head_state_root()
            .expect("canonical head has a state root");
        {
            let mut ctx = validator
                .store
                .as_ref()
                .expect("store attached above")
                .lock();
            let needs_reset = ctx
                .store
                .snapshots()
                .map(|snaps| !snaps.has_root(head_root))
                .unwrap_or(false);
            if needs_reset {
                let state = validator
                    .pipeline
                    .state_of(&head_hash)
                    .expect("recovered head has a validated state");
                ctx.store
                    .reset_snapshots(&state.full_delta(), head_root, head_height)?;
            }
        }
        Ok(validator)
    }

    /// Shared construction: genesis block, chain store, pipeline.
    fn build(config: PipelineConfig, genesis_state: WorldState) -> (Self, Block) {
        let header = genesis_header(genesis_state.state_root());
        let genesis_block = Block {
            header,
            transactions: vec![],
            profile: BlockProfile::new(),
        };
        let genesis = genesis_block.hash();
        let mut chain = ChainStore::new();
        chain.insert(genesis_block.clone());
        chain.set_canonical(genesis);
        let pipeline = ValidatorPipeline::new(config);
        pipeline.register_state(genesis, Arc::new(genesis_state));
        (
            Validator {
                pipeline,
                chain: Mutex::new(chain),
                genesis,
                store: None,
            },
            genesis_block,
        )
    }

    /// Hash of the genesis block.
    pub fn genesis_hash(&self) -> BlockHash {
        self.genesis
    }

    /// Receives a block from the network: stores it (fork-aware) and starts
    /// pipeline validation. Multiple blocks at the same height validate
    /// concurrently.
    pub fn receive_block(&self, block: Block) -> ValidationHandle {
        self.chain.lock().insert(block.clone());
        self.pipeline.submit(block)
    }

    /// Validates a block and, when valid, marks it canonical at its height
    /// (the block-commitment phase from the chain's perspective).
    pub fn validate_and_commit(&self, block: Block) -> ValidationOutcome {
        let hash = block.hash();
        let outcome = self.receive_block(block).wait();
        if outcome.is_valid() {
            self.commit_canonical(hash);
        }
        outcome
    }

    /// The canonical head block hash and height.
    pub fn head(&self) -> Option<(BlockHash, Height)> {
        let chain = self.chain.lock();
        chain.head().map(|b| (b.hash(), b.height()))
    }

    /// The state root of the canonical head.
    pub fn head_state_root(&self) -> Option<H256> {
        self.chain.lock().head().map(|b| b.header.state_root)
    }

    /// Number of blocks known at `height` (canonical + uncles).
    pub fn blocks_at(&self, height: Height) -> usize {
        self.chain.lock().at_height(height).len()
    }

    /// Number of uncle blocks at a decided height.
    pub fn uncles_at(&self, height: Height) -> usize {
        self.chain.lock().uncles_at(height).len()
    }

    /// Marks an already-validated block canonical at its height (the local
    /// effect of a fork-choice decision arriving from consensus) and, on a
    /// store-backed validator, durably persists it. Returns false if the
    /// block is unknown or does not extend the canonical chain.
    pub fn commit_canonical(&self, hash: BlockHash) -> bool {
        let accepted = self.chain.lock().set_canonical(hash);
        if accepted {
            self.persist(hash);
        }
        accepted
    }

    /// The canonical block hash at `height`, if decided.
    pub fn canonical_at(&self, height: Height) -> Option<BlockHash> {
        self.chain.lock().canonical_at(height).map(|b| b.hash())
    }

    /// A clone of the canonical block at `height`. The node loop's
    /// equivalence gate uses this to replay the committed chain serially
    /// from genesis and compare final state roots.
    pub fn canonical_block(&self, height: Height) -> Option<Block> {
        self.chain.lock().canonical_at(height).cloned()
    }

    /// Direct access to the pipeline (e.g. for multi-block benchmarks).
    pub fn pipeline(&self) -> &ValidatorPipeline {
        &self.pipeline
    }

    /// Runs `f` against the persistent store, if this validator has one.
    pub fn with_store_ref<R>(&self, f: impl FnOnce(&Store) -> R) -> Option<R> {
        self.store.as_ref().map(|ctx| f(&ctx.lock().store))
    }

    /// Tears the validator down, returning its store (if any) with all
    /// committed state durable — the handle a restarted node reopens from.
    /// Under group commit this closes the open batch first, so deferred
    /// commits land before the handle changes hands.
    pub fn into_store(self) -> Option<Store> {
        self.store.map(|ctx| {
            let mut store = ctx.into_inner().store;
            store.flush().expect("final store flush failed");
            store
        })
    }

    /// Durably records a newly canonical block: block bytes, its post-state
    /// trie nodes, its snapshot diff layer, a retention-window prune, then
    /// the manifest swap. A storage failure here is unrecoverable by design
    /// (the durable view would silently diverge), so it panics like
    /// fsync-gated databases do.
    fn persist(&self, hash: BlockHash) {
        let Some(ctx) = &self.store else {
            return;
        };
        let mut ctx = ctx.lock();
        if ctx.persisted.contains(&hash) {
            return;
        }
        let (block, parent_root) = {
            let chain = self.chain.lock();
            let block = chain
                .get(&hash)
                .cloned()
                .expect("canonical block is in the chain store");
            let parent_root = chain
                .get(&block.header.parent_hash)
                .map(|p| p.header.state_root);
            (block, parent_root)
        };
        let state = self
            .pipeline
            .state_of(&hash)
            .expect("canonical block has a validated post-state");
        let (root, nodes) = state.commit_tries();
        debug_assert_eq!(root, block.header.state_root);
        let height = block.height();
        let result: Result<(), StoreError> = (|| {
            ctx.store.put_block(&block)?;
            ctx.store.commit_root(root, &nodes)?;
            if ctx.store.snapshots().is_some() {
                // Stack the block's diff layer on its parent's root. The
                // delta was distilled during validation; an empty block
                // (root == parent root) no-ops inside the tree.
                let parent_root =
                    parent_root.expect("persisted non-genesis block has a stored parent");
                let delta = self
                    .pipeline
                    .delta_of(&hash)
                    .map(|d| (*d).clone())
                    .unwrap_or_default();
                ctx.store.snap_add_layer(root, parent_root, height, delta)?;
            }
            if ctx.store.config().retention_window.is_none() {
                // Legacy path for stores opened without a window: the
                // validator prunes manually. Configured stores prune (and
                // flatten snapshots) inside `commit` instead.
                ctx.recent_roots.push_back((height, root));
                while ctx.recent_roots.len() > ROOT_RETENTION {
                    let (_, old) = ctx.recent_roots.pop_front().expect("len checked");
                    ctx.store.prune(old)?;
                }
            }
            ctx.store.commit(hash)
        })();
        result.expect("persistent store commit failed");
        ctx.persisted.insert(hash);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occ_wsi::{OccWsiConfig, OccWsiProposer};
    use bp_evm::{BlockEnv, Transaction};
    use bp_state::StateReader;
    use bp_store::store::test_dir;
    use bp_txpool::TxPool;
    use bp_types::{Address, U256};

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn genesis_world(n: u64) -> WorldState {
        let mut w = WorldState::new();
        for i in 1..=n {
            w.set_balance(addr(i), U256::from(1_000_000_000u64));
        }
        w
    }

    fn config() -> PipelineConfig {
        PipelineConfig {
            workers: 2,
            ..Default::default()
        }
    }

    /// Proposes and commits `heights` blocks of transfers on `validator`.
    fn grow_chain(validator: &Validator, heights: u64, start_nonce: u64) {
        for h in 1..=heights {
            let (parent, parent_height) = validator.head().expect("head exists");
            let base = validator.pipeline().state_of(&parent).expect("head state");
            let pool = TxPool::new();
            for i in 1..=6u64 {
                pool.add(Transaction::transfer(
                    addr(i),
                    addr(i + 50),
                    U256::from(5u64),
                    start_nonce + h - 1,
                    i,
                ));
            }
            let proposer = OccWsiProposer::new(OccWsiConfig {
                threads: 2,
                env: BlockEnv {
                    number: parent_height + 1,
                    ..BlockEnv::default()
                },
                ..Default::default()
            });
            let proposal = proposer.propose(&pool, base, parent, parent_height + 1);
            let outcome = validator.validate_and_commit(proposal.block);
            assert!(outcome.is_valid(), "{:?}", outcome.result);
        }
    }

    #[test]
    fn store_backed_validator_recovers_head_and_state() {
        let dir = test_dir("validator-recovery");
        let world = genesis_world(60);
        let (head, height, root) = {
            let validator =
                Validator::with_store(config(), world.clone(), Store::open(&dir).unwrap()).unwrap();
            grow_chain(&validator, 3, 0);
            let (head, height) = validator.head().unwrap();
            let root = validator.head_state_root().unwrap();
            // All committed state is durable; drop the validator (crash-like
            // from the chain's perspective — nothing extra flushed on drop).
            (head, height, root)
        };
        let recovered =
            Validator::with_store(config(), world.clone(), Store::open(&dir).unwrap()).unwrap();
        assert_eq!(recovered.head(), Some((head, height)));
        assert_eq!(recovered.head_state_root(), Some(root));
        // The recovered head state is resolvable from disk and the pipeline
        // can keep extending the chain.
        recovered
            .with_store_ref(|s| {
                assert_eq!(s.open_trie(root).unwrap().root_hash(), root);
            })
            .unwrap();
        grow_chain(&recovered, 1, 3);
        assert_eq!(recovered.head().unwrap().1, height + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_genesis_is_rejected_on_recovery() {
        let dir = test_dir("validator-genesis-mismatch");
        {
            let validator =
                Validator::with_store(config(), genesis_world(10), Store::open(&dir).unwrap())
                    .unwrap();
            grow_chain(&validator, 1, 0);
        }
        let err =
            match Validator::with_store(config(), genesis_world(11), Store::open(&dir).unwrap()) {
                Ok(_) => panic!("mismatched genesis must be rejected"),
                Err(e) => e,
            };
        assert!(matches!(err, StoreError::Corrupt(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_store_tracks_head_and_recovers() {
        let dir = test_dir("validator-snap");
        let world = genesis_world(60);
        let (head_root, height) = {
            let validator = Validator::with_store_at(config(), world.clone(), &dir).unwrap();
            grow_chain(&validator, ROOT_RETENTION as u64 + 3, 0);
            let (head, height) = validator.head().unwrap();
            let root = validator.head_state_root().unwrap();
            let head_state = validator.pipeline().state_of(&head).unwrap();
            validator
                .with_store_ref(|s| {
                    // Windowed retention bounds the trie roots; the snapshot
                    // tree follows the head, flattening old diff layers into
                    // its base as blocks leave the window.
                    assert!(s.roots().len() <= ROOT_RETENTION);
                    let snaps = s.snapshots().expect("snapshots enabled");
                    assert!(snaps.has_root(root));
                    assert!(snaps.layer_count() <= ROOT_RETENTION);
                    assert!(snaps.base_height() >= height - ROOT_RETENTION as u64);
                    let reader = snaps.reader(root).unwrap();
                    for i in [1u64, 6, 51, 56] {
                        let snap_balance = reader
                            .base_account(&addr(i))
                            .map(|a| a.balance)
                            .unwrap_or(U256::ZERO);
                        assert_eq!(snap_balance, head_state.balance(&addr(i)));
                    }
                })
                .unwrap();
            (root, height)
        };
        // Reopen: replay restores the pipeline and the snapshot tree resumes
        // at the durable head it journalled before the manifest swap.
        let recovered = Validator::with_store_at(config(), world, &dir).unwrap();
        assert_eq!(recovered.head_state_root(), Some(head_root));
        recovered
            .with_store_ref(|s| {
                assert!(s
                    .snapshots()
                    .expect("snapshots enabled")
                    .has_root(head_root));
            })
            .unwrap();
        grow_chain(&recovered, 1, ROOT_RETENTION as u64 + 3);
        assert_eq!(recovered.head().unwrap().1, height + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn root_retention_prunes_old_roots() {
        let dir = test_dir("validator-retention");
        let world = genesis_world(60);
        let validator =
            Validator::with_store(config(), world.clone(), Store::open(&dir).unwrap()).unwrap();
        let genesis_root = world.state_root();
        grow_chain(&validator, ROOT_RETENTION as u64 + 2, 0);
        validator
            .with_store_ref(|s| {
                assert_eq!(s.roots().len(), ROOT_RETENTION);
                assert!(!s.contains_root(&genesis_root));
            })
            .unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
