//! High-level validator node: the pipeline plus a fork-aware chain store.

use std::sync::Arc;

use bp_block::{genesis_header, Block, BlockProfile, ChainStore};
use bp_state::WorldState;
use bp_types::{BlockHash, Height};
use parking_lot::Mutex;

use crate::pipeline::{PipelineConfig, ValidationHandle, ValidationOutcome, ValidatorPipeline};

/// A validator node.
///
/// Receives blocks from the network (possibly several per height), validates
/// them through the four-stage pipeline, tracks every fork in a
/// [`ChainStore`], and commits the canonical chain.
pub struct Validator {
    pipeline: ValidatorPipeline,
    chain: Mutex<ChainStore>,
    genesis: BlockHash,
}

impl Validator {
    /// Boots a validator from a genesis state.
    pub fn new(config: PipelineConfig, genesis_state: WorldState) -> Self {
        let header = genesis_header(genesis_state.state_root());
        let genesis_block = Block {
            header,
            transactions: vec![],
            profile: BlockProfile::new(),
        };
        let genesis = genesis_block.hash();
        let mut chain = ChainStore::new();
        chain.insert(genesis_block);
        chain.set_canonical(genesis);
        let pipeline = ValidatorPipeline::new(config);
        pipeline.register_state(genesis, Arc::new(genesis_state));
        Validator {
            pipeline,
            chain: Mutex::new(chain),
            genesis,
        }
    }

    /// Hash of the genesis block.
    pub fn genesis_hash(&self) -> BlockHash {
        self.genesis
    }

    /// Receives a block from the network: stores it (fork-aware) and starts
    /// pipeline validation. Multiple blocks at the same height validate
    /// concurrently.
    pub fn receive_block(&self, block: Block) -> ValidationHandle {
        self.chain.lock().insert(block.clone());
        self.pipeline.submit(block)
    }

    /// Validates a block and, when valid, marks it canonical at its height
    /// (the block-commitment phase from the chain's perspective).
    pub fn validate_and_commit(&self, block: Block) -> ValidationOutcome {
        let hash = block.hash();
        let outcome = self.receive_block(block).wait();
        if outcome.is_valid() {
            self.chain.lock().set_canonical(hash);
        }
        outcome
    }

    /// The canonical head block hash and height.
    pub fn head(&self) -> Option<(BlockHash, Height)> {
        let chain = self.chain.lock();
        chain.head().map(|b| (b.hash(), b.height()))
    }

    /// Number of blocks known at `height` (canonical + uncles).
    pub fn blocks_at(&self, height: Height) -> usize {
        self.chain.lock().at_height(height).len()
    }

    /// Number of uncle blocks at a decided height.
    pub fn uncles_at(&self, height: Height) -> usize {
        self.chain.lock().uncles_at(height).len()
    }

    /// Marks an already-validated block canonical at its height (the local
    /// effect of a fork-choice decision arriving from consensus). Returns
    /// false if the block is unknown or does not extend the canonical chain.
    pub fn commit_canonical(&self, hash: BlockHash) -> bool {
        self.chain.lock().set_canonical(hash)
    }

    /// The canonical block hash at `height`, if decided.
    pub fn canonical_at(&self, height: Height) -> Option<BlockHash> {
        self.chain.lock().canonical_at(height).map(|b| b.hash())
    }

    /// Direct access to the pipeline (e.g. for multi-block benchmarks).
    pub fn pipeline(&self) -> &ValidatorPipeline {
        &self.pipeline
    }
}
