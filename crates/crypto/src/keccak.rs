//! Keccak-256 as used by Ethereum.
//!
//! This is the original Keccak submission (domain-separation byte `0x01`),
//! *not* the NIST-standardized SHA3-256 (`0x06`). Ethereum froze on the
//! pre-standard padding, so `keccak256("")` is
//! `c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470`.
//!
//! The implementation is a straightforward keccak-f[1600] over a 5×5 lane
//! state with the rate/capacity split of a 256-bit output (rate = 136 bytes).
//! It supports incremental hashing via [`Keccak256::update`].

use bp_types::H256;

const RATE: usize = 136; // 1600/8 - 2*32
const ROUNDS: usize = 24;

const RC: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets, indexed `[x][y]` for lane (x, y).
const ROTC: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

#[inline]
fn keccak_f(state: &mut [[u64; 5]; 5]) {
    for &rc in RC.iter() {
        // θ
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = state[x][0] ^ state[x][1] ^ state[x][2] ^ state[x][3] ^ state[x][4];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for lane in &mut state[x] {
                *lane ^= d;
            }
        }
        // ρ and π
        let mut b = [[0u64; 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = state[x][y].rotate_left(ROTC[x][y]);
            }
        }
        // χ
        for x in 0..5 {
            for y in 0..5 {
                state[x][y] = b[x][y] ^ ((!b[(x + 1) % 5][y]) & b[(x + 2) % 5][y]);
            }
        }
        // ι
        state[0][0] ^= rc;
    }
}

/// Incremental Keccak-256 hasher.
#[derive(Clone)]
pub struct Keccak256 {
    state: [[u64; 5]; 5],
    buf: [u8; RATE],
    buf_len: usize,
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Keccak256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Keccak256 {
            state: [[0u64; 5]; 5],
            buf: [0u8; RATE],
            buf_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut input = data;
        if self.buf_len > 0 {
            let take = (RATE - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == RATE {
                let block = self.buf;
                self.absorb_block(&block);
                self.buf_len = 0;
            }
        }
        while input.len() >= RATE {
            let (block, rest) = input.split_at(RATE);
            let mut tmp = [0u8; RATE];
            tmp.copy_from_slice(block);
            self.absorb_block(&tmp);
            input = rest;
        }
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    fn absorb_block(&mut self, block: &[u8; RATE]) {
        for i in 0..RATE / 8 {
            let mut lane = [0u8; 8];
            lane.copy_from_slice(&block[i * 8..(i + 1) * 8]);
            let v = u64::from_le_bytes(lane);
            self.state[i % 5][i / 5] ^= v;
        }
        keccak_f(&mut self.state);
    }

    /// Finalizes and returns the 32-byte digest.
    pub fn finalize(mut self) -> H256 {
        // Keccak (pre-NIST) padding: 0x01 ... 0x80.
        let mut block = [0u8; RATE];
        block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        block[self.buf_len] = 0x01;
        block[RATE - 1] |= 0x80;
        self.absorb_block(&block);
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..(i + 1) * 8].copy_from_slice(&self.state[i % 5][i / 5].to_le_bytes());
        }
        H256(out)
    }
}

/// One-shot Keccak-256.
pub fn keccak256(data: &[u8]) -> H256 {
    let mut h = Keccak256::new();
    h.update(data);
    h.finalize()
}

/// Keccak-256 over the concatenation of two slices, without allocating.
pub fn keccak256_concat(a: &[u8], b: &[u8]) -> H256 {
    let mut h = Keccak256::new();
    h.update(a);
    h.update(b);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(h: &H256) -> String {
        h.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_input_vector() {
        assert_eq!(
            hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn ethereum_hello_vector() {
        // Widely-published Ethereum test value.
        assert_eq!(
            hex(&keccak256(b"hello")),
            "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8"
        );
    }

    #[test]
    fn rate_boundary_inputs() {
        // Exercise lengths around the 136-byte rate: the padded block layout
        // differs at len == RATE-1, RATE, RATE+1.
        for len in [0usize, 1, 135, 136, 137, 271, 272, 273, 1000] {
            let data = vec![0xAAu8; len];
            let one_shot = keccak256(&data);
            // Incremental with odd chunk sizes must match.
            let mut h = Keccak256::new();
            for chunk in data.chunks(7) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), one_shot, "mismatch at len {len}");
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..500u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut h = Keccak256::new();
        h.update(&data[..100]);
        h.update(&data[100..137]);
        h.update(&data[137..]);
        assert_eq!(h.finalize(), keccak256(&data));
    }

    #[test]
    fn concat_helper_matches_manual() {
        let a = b"foo";
        let b = b"barbaz";
        let mut joined = a.to_vec();
        joined.extend_from_slice(b);
        assert_eq!(keccak256_concat(a, b), keccak256(&joined));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(keccak256(b"a"), keccak256(b"b"));
        assert_ne!(keccak256(b""), keccak256(b"\x00"));
    }
}
