//! Cryptographic substrate for BlockPilot: Keccak-256 and RLP.
//!
//! Ethereum's state commitment (the Merkle Patricia Trie in `bp-state`),
//! transaction hashes and block hashes are all defined in terms of these two
//! primitives, so they are implemented from scratch here with the exact
//! Ethereum semantics:
//!
//! * [`keccak::keccak256`] — original Keccak padding (not SHA3-256);
//! * [`rlp`] — strict, canonical Recursive Length Prefix coding.

#![warn(missing_docs)]

pub mod keccak;
pub mod rlp;

pub use keccak::{keccak256, keccak256_concat, Keccak256};
pub use rlp::{decode as rlp_decode, encode_bytes as rlp_encode_bytes, Item as RlpItem, RlpStream};
