//! Recursive Length Prefix (RLP) encoding and decoding.
//!
//! RLP is Ethereum's canonical serialization for accounts, transactions,
//! block headers and trie nodes. We implement the full spec:
//!
//! * a single byte in `[0x00, 0x7f]` is its own encoding;
//! * a string of 0–55 bytes: `0x80 + len` followed by the bytes;
//! * a longer string: `0xb7 + len_of_len`, the big-endian length, the bytes;
//! * a list whose payload is 0–55 bytes: `0xc0 + len` followed by the items;
//! * a longer list: `0xf7 + len_of_len`, the big-endian length, the items.
//!
//! Decoding is strict: non-minimal length encodings and trailing bytes are
//! rejected, which is required when validating data received from proposers.

use bp_types::{Address, H256, U256};
use core::fmt;

/// An RLP item: either a byte string or a list of items.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Item {
    /// A byte string.
    Bytes(Vec<u8>),
    /// A heterogeneous list.
    List(Vec<Item>),
}

/// Errors produced by the strict decoder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Input ended before the announced payload.
    UnexpectedEof,
    /// A long-form length had leading zeros or encoded a short value.
    NonMinimalLength,
    /// A single byte below 0x80 was wrapped in a string header.
    NonMinimalByte,
    /// Extra bytes remained after the top-level item.
    TrailingBytes,
    /// The announced length overflows usize.
    LengthOverflow,
    /// Expected a string, found a list (or vice versa).
    TypeMismatch,
    /// An integer field had a leading zero byte or was too large.
    BadInteger,
    /// A fixed-size field (hash, address) had the wrong length.
    BadFixedLen,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            DecodeError::UnexpectedEof => "unexpected end of input",
            DecodeError::NonMinimalLength => "non-minimal length encoding",
            DecodeError::NonMinimalByte => "single byte should be encoded directly",
            DecodeError::TrailingBytes => "trailing bytes after item",
            DecodeError::LengthOverflow => "length overflows usize",
            DecodeError::TypeMismatch => "unexpected item type",
            DecodeError::BadInteger => "invalid integer encoding",
            DecodeError::BadFixedLen => "wrong length for fixed-size field",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Streaming RLP encoder.
///
/// Typical use builds nested lists with [`RlpStream::begin_list`]:
///
/// ```
/// use bp_crypto::rlp::RlpStream;
/// let mut s = RlpStream::new();
/// s.begin_list(2);
/// s.append_bytes(b"cat");
/// s.append_bytes(b"dog");
/// assert_eq!(s.out()[0], 0xc8);
/// ```
#[derive(Default)]
pub struct RlpStream {
    out: Vec<u8>,
    // Stack of (start offset in `out`, items remaining) for open lists.
    open: Vec<(usize, usize)>,
}

impl RlpStream {
    /// A fresh encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh encoder whose output buffer starts at `capacity` bytes, for
    /// callers that can bound the encoded size up front.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            out: Vec::with_capacity(capacity),
            open: Vec::new(),
        }
    }

    /// An encoder that reuses `buf` as its output buffer (cleared first), so
    /// steady-state encoding loops pay no allocation after warm-up. Recover
    /// the buffer with [`RlpStream::out`] and pass it back in.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self {
            out: buf,
            open: Vec::new(),
        }
    }

    /// Reserves room for at least `additional` more output bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.out.reserve(additional);
    }

    /// Opens a list of exactly `len` items. The header is patched in when the
    /// final item is appended.
    pub fn begin_list(&mut self, len: usize) {
        if len == 0 {
            self.append_raw_item(&[0xc0]);
            return;
        }
        self.open.push((self.out.len(), len));
    }

    /// Appends a byte-string item.
    pub fn append_bytes(&mut self, bytes: &[u8]) {
        self.out.reserve(bytes.len() + 9);
        encode_str_header(bytes.len(), bytes.first().copied(), &mut self.out);
        self.out.extend_from_slice(bytes);
        self.close_lists();
    }

    /// Appends an integer in minimal big-endian form.
    pub fn append_u64(&mut self, v: u64) {
        self.append_u256(&U256::from(v));
    }

    /// Appends a 256-bit integer in minimal big-endian form.
    pub fn append_u256(&mut self, v: &U256) {
        let bytes = v.to_be_bytes_trimmed();
        self.append_bytes(&bytes);
    }

    /// Appends a 32-byte hash.
    pub fn append_h256(&mut self, h: &H256) {
        self.append_bytes(&h.0);
    }

    /// Appends a 20-byte address.
    pub fn append_address(&mut self, a: &Address) {
        self.append_bytes(&a.0);
    }

    /// Appends bytes that are *already* a complete RLP item (used by the MPT
    /// to embed either a 32-byte hash string or an inlined short node).
    pub fn append_raw(&mut self, raw: &[u8]) {
        self.append_raw_item(raw);
    }

    fn append_raw_item(&mut self, raw: &[u8]) {
        self.out.extend_from_slice(raw);
        self.close_lists();
    }

    fn close_lists(&mut self) {
        while let Some(top) = self.open.last_mut() {
            top.1 -= 1;
            if top.1 > 0 {
                return;
            }
            let (start, _) = self.open.pop().expect("stack non-empty");
            let payload_len = self.out.len() - start;
            let (header, header_len) = list_header(payload_len);
            // splice header before payload
            self.out
                .splice(start..start, header[..header_len].iter().copied());
        }
    }

    /// Finishes encoding and returns the bytes. Panics if a list is still
    /// open (that is a programming error, not a data error).
    pub fn out(self) -> Vec<u8> {
        assert!(self.open.is_empty(), "RlpStream finished with open list");
        self.out
    }
}

fn encode_str_header(len: usize, first: Option<u8>, out: &mut Vec<u8>) {
    if len == 1 && first.expect("len 1 has a byte") < 0x80 {
        return; // the byte itself is the encoding
    }
    if len <= 55 {
        out.push(0x80 + len as u8);
    } else {
        let len_bytes = minimal_be(len as u64);
        out.push(0xb7 + len_bytes.len() as u8);
        out.extend_from_slice(&len_bytes);
    }
}

fn encode_list_header(payload_len: usize, out: &mut Vec<u8>) {
    let (header, header_len) = list_header(payload_len);
    out.extend_from_slice(&header[..header_len]);
}

/// A list header on the stack: (bytes, length used). At most 1 prefix byte
/// plus 8 big-endian length bytes.
fn list_header(payload_len: usize) -> ([u8; 9], usize) {
    let mut header = [0u8; 9];
    if payload_len <= 55 {
        header[0] = 0xc0 + payload_len as u8;
        (header, 1)
    } else {
        let b = (payload_len as u64).to_be_bytes();
        let first = b.iter().position(|&x| x != 0).unwrap_or(7);
        let n = 8 - first;
        header[0] = 0xf7 + n as u8;
        header[1..1 + n].copy_from_slice(&b[first..]);
        (header, 1 + n)
    }
}

fn minimal_be(v: u64) -> Vec<u8> {
    let b = v.to_be_bytes();
    let first = b.iter().position(|&x| x != 0).unwrap_or(7);
    b[first..].to_vec()
}

/// Encodes a byte string as a standalone item.
pub fn encode_bytes(bytes: &[u8]) -> Vec<u8> {
    let mut s = RlpStream::new();
    s.append_bytes(bytes);
    s.out()
}

/// Encodes an [`Item`] tree.
pub fn encode_item(item: &Item) -> Vec<u8> {
    match item {
        Item::Bytes(b) => encode_bytes(b),
        Item::List(items) => {
            let mut payload = Vec::new();
            for it in items {
                payload.extend_from_slice(&encode_item(it));
            }
            let mut out = Vec::with_capacity(payload.len() + 9);
            encode_list_header(payload.len(), &mut out);
            out.extend_from_slice(&payload);
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Decodes a complete top-level item; rejects trailing bytes.
pub fn decode(data: &[u8]) -> Result<Item, DecodeError> {
    let (item, used) = decode_at(data)?;
    if used != data.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(item)
}

/// Decodes one item at the front of `data`, returning it and the bytes
/// consumed.
pub fn decode_at(data: &[u8]) -> Result<(Item, usize), DecodeError> {
    let (&prefix, rest) = data.split_first().ok_or(DecodeError::UnexpectedEof)?;
    match prefix {
        0x00..=0x7f => Ok((Item::Bytes(vec![prefix]), 1)),
        0x80..=0xb7 => {
            let len = (prefix - 0x80) as usize;
            let payload = rest.get(..len).ok_or(DecodeError::UnexpectedEof)?;
            if len == 1 && payload[0] < 0x80 {
                return Err(DecodeError::NonMinimalByte);
            }
            Ok((Item::Bytes(payload.to_vec()), 1 + len))
        }
        0xb8..=0xbf => {
            let len_of_len = (prefix - 0xb7) as usize;
            let len = read_long_len(rest, len_of_len, 55)?;
            let payload = rest
                .get(len_of_len..len_of_len + len)
                .ok_or(DecodeError::UnexpectedEof)?;
            Ok((Item::Bytes(payload.to_vec()), 1 + len_of_len + len))
        }
        0xc0..=0xf7 => {
            let len = (prefix - 0xc0) as usize;
            let payload = rest.get(..len).ok_or(DecodeError::UnexpectedEof)?;
            Ok((Item::List(decode_list_payload(payload)?), 1 + len))
        }
        0xf8..=0xff => {
            let len_of_len = (prefix - 0xf7) as usize;
            let len = read_long_len(rest, len_of_len, 55)?;
            let payload = rest
                .get(len_of_len..len_of_len + len)
                .ok_or(DecodeError::UnexpectedEof)?;
            Ok((
                Item::List(decode_list_payload(payload)?),
                1 + len_of_len + len,
            ))
        }
    }
}

fn read_long_len(rest: &[u8], len_of_len: usize, min: usize) -> Result<usize, DecodeError> {
    let len_bytes = rest.get(..len_of_len).ok_or(DecodeError::UnexpectedEof)?;
    if len_bytes.first() == Some(&0) {
        return Err(DecodeError::NonMinimalLength);
    }
    if len_of_len > core::mem::size_of::<usize>() {
        return Err(DecodeError::LengthOverflow);
    }
    let mut len = 0usize;
    for &b in len_bytes {
        len = len
            .checked_mul(256)
            .and_then(|l| l.checked_add(b as usize))
            .ok_or(DecodeError::LengthOverflow)?;
    }
    if len <= min {
        return Err(DecodeError::NonMinimalLength);
    }
    Ok(len)
}

fn decode_list_payload(mut payload: &[u8]) -> Result<Vec<Item>, DecodeError> {
    let mut items = Vec::new();
    while !payload.is_empty() {
        let (item, used) = decode_at(payload)?;
        items.push(item);
        payload = &payload[used..];
    }
    Ok(items)
}

impl Item {
    /// Extracts a byte string, rejecting lists.
    pub fn as_bytes(&self) -> Result<&[u8], DecodeError> {
        match self {
            Item::Bytes(b) => Ok(b),
            Item::List(_) => Err(DecodeError::TypeMismatch),
        }
    }

    /// Extracts a list, rejecting strings.
    pub fn as_list(&self) -> Result<&[Item], DecodeError> {
        match self {
            Item::List(l) => Ok(l),
            Item::Bytes(_) => Err(DecodeError::TypeMismatch),
        }
    }

    /// Decodes a minimal big-endian `u64`.
    pub fn as_u64(&self) -> Result<u64, DecodeError> {
        let b = self.as_bytes()?;
        if b.len() > 8 || b.first() == Some(&0) {
            return Err(DecodeError::BadInteger);
        }
        let mut v = 0u64;
        for &byte in b {
            v = v << 8 | byte as u64;
        }
        Ok(v)
    }

    /// Decodes a minimal big-endian [`U256`].
    pub fn as_u256(&self) -> Result<U256, DecodeError> {
        let b = self.as_bytes()?;
        if b.len() > 32 || b.first() == Some(&0) {
            return Err(DecodeError::BadInteger);
        }
        Ok(U256::from_be_slice(b))
    }

    /// Decodes a 32-byte hash.
    pub fn as_h256(&self) -> Result<H256, DecodeError> {
        let b = self.as_bytes()?;
        let arr: [u8; 32] = b.try_into().map_err(|_| DecodeError::BadFixedLen)?;
        Ok(H256(arr))
    }

    /// Decodes a 20-byte address.
    pub fn as_address(&self) -> Result<Address, DecodeError> {
        let b = self.as_bytes()?;
        let arr: [u8; 20] = b.try_into().map_err(|_| DecodeError::BadFixedLen)?;
        Ok(Address(arr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_vectors() {
        // From the Ethereum wiki RLP test vectors.
        assert_eq!(encode_bytes(b"dog"), vec![0x83, b'd', b'o', b'g']);
        assert_eq!(encode_bytes(b""), vec![0x80]);
        assert_eq!(encode_bytes(&[0x0f]), vec![0x0f]);
        assert_eq!(encode_bytes(&[0x04, 0x00]), vec![0x82, 0x04, 0x00]);
        let cat_dog = Item::List(vec![
            Item::Bytes(b"cat".to_vec()),
            Item::Bytes(b"dog".to_vec()),
        ]);
        assert_eq!(
            encode_item(&cat_dog),
            vec![0xc8, 0x83, b'c', b'a', b't', 0x83, b'd', b'o', b'g']
        );
        assert_eq!(encode_item(&Item::List(vec![])), vec![0xc0]);
    }

    #[test]
    fn set_theoretical_representation_of_three() {
        // [ [], [[]], [ [], [[]] ] ]
        let empty = Item::List(vec![]);
        let one = Item::List(vec![empty.clone()]);
        let three = Item::List(vec![
            empty.clone(),
            one.clone(),
            Item::List(vec![empty, one]),
        ]);
        assert_eq!(
            encode_item(&three),
            vec![0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0]
        );
    }

    #[test]
    fn long_string_header() {
        // The canonical >55-byte test string from the Ethereum wiki.
        let s = b"Lorem ipsum dolor sit amet, consectetur adipisicing elit";
        assert_eq!(s.len(), 56);
        let enc = encode_bytes(s);
        assert_eq!(enc[0], 0xb8);
        assert_eq!(enc[1], 56);
        assert_eq!(&enc[2..], s);
    }

    #[test]
    fn integer_encoding() {
        let mut s = RlpStream::new();
        s.append_u64(0);
        assert_eq!(s.out(), vec![0x80]);
        let mut s = RlpStream::new();
        s.append_u64(15);
        assert_eq!(s.out(), vec![0x0f]);
        let mut s = RlpStream::new();
        s.append_u64(1024);
        assert_eq!(s.out(), vec![0x82, 0x04, 0x00]);
    }

    #[test]
    fn stream_nested_lists() {
        // ["cat", ["puppy", "cow"], "horse"]
        let mut s = RlpStream::new();
        s.begin_list(3);
        s.append_bytes(b"cat");
        s.begin_list(2);
        s.append_bytes(b"puppy");
        s.append_bytes(b"cow");
        s.append_bytes(b"horse");
        let enc = s.out();
        let dec = decode(&enc).unwrap();
        let l = dec.as_list().unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l[0].as_bytes().unwrap(), b"cat");
        assert_eq!(l[1].as_list().unwrap()[0].as_bytes().unwrap(), b"puppy");
        assert_eq!(l[2].as_bytes().unwrap(), b"horse");
    }

    #[test]
    fn decode_rejects_trailing() {
        let mut enc = encode_bytes(b"dog");
        enc.push(0x00);
        assert_eq!(decode(&enc), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = encode_bytes(b"dog");
        assert_eq!(decode(&enc[..2]), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn decode_rejects_non_minimal_byte() {
        // 0x81 0x05 should have been just 0x05.
        assert_eq!(decode(&[0x81, 0x05]), Err(DecodeError::NonMinimalByte));
        // 0x81 0x80 is fine (0x80 needs the header).
        assert_eq!(decode(&[0x81, 0x80]).unwrap(), Item::Bytes(vec![0x80]));
    }

    #[test]
    fn decode_rejects_non_minimal_long_length() {
        // Long form used for a 3-byte string.
        assert_eq!(
            decode(&[0xb8, 0x03, b'd', b'o', b'g']),
            Err(DecodeError::NonMinimalLength)
        );
        // Leading zero in the length-of-length bytes.
        let mut bad = vec![0xb9, 0x00, 0x38];
        bad.extend_from_slice(&[0u8; 56]);
        assert_eq!(decode(&bad), Err(DecodeError::NonMinimalLength));
    }

    #[test]
    fn typed_accessors() {
        let mut s = RlpStream::new();
        s.begin_list(4);
        s.append_u64(42);
        s.append_u256(&(U256::ONE << 128));
        s.append_h256(&H256::from_low_u64(9));
        s.append_address(&Address::from_index(7));
        let dec = decode(&s.out()).unwrap();
        let l = dec.as_list().unwrap();
        assert_eq!(l[0].as_u64().unwrap(), 42);
        assert_eq!(l[1].as_u256().unwrap(), U256::ONE << 128);
        assert_eq!(l[2].as_h256().unwrap(), H256::from_low_u64(9));
        assert_eq!(l[3].as_address().unwrap(), Address::from_index(7));
        // Wrong type access fails.
        assert!(l[0].as_list().is_err());
        assert!(dec.as_bytes().is_err());
    }

    #[test]
    fn integer_with_leading_zero_rejected() {
        // 0x82 0x00 0x01 is a valid string but not a valid integer.
        let item = decode(&[0x82, 0x00, 0x01]).unwrap();
        assert_eq!(item.as_u64(), Err(DecodeError::BadInteger));
        assert_eq!(item.as_u256(), Err(DecodeError::BadInteger));
    }

    #[test]
    fn empty_list_in_stream() {
        let mut s = RlpStream::new();
        s.begin_list(2);
        s.begin_list(0);
        s.append_bytes(b"x");
        let enc = s.out();
        assert_eq!(enc, vec![0xc2, 0xc0, b'x']);
    }

    #[test]
    fn buffer_reuse_matches_fresh_encoder() {
        let encode = |mut s: RlpStream| {
            s.begin_list(2);
            s.append_bytes(&[0x7Eu8; 100]);
            s.append_u64(77);
            s.out()
        };
        let fresh = encode(RlpStream::new());
        let seeded = encode(RlpStream::with_capacity(256));
        // Reuse a dirty buffer: contents must not leak into the output.
        let reused = encode(RlpStream::from_vec(vec![0xFF; 512]));
        assert_eq!(fresh, seeded);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn large_payload_roundtrip() {
        let big = vec![0x7Eu8; 10_000];
        let enc = encode_bytes(&big);
        assert_eq!(enc[0], 0xb9); // 2-byte length
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.as_bytes().unwrap(), &big[..]);
    }
}
