//! Property tests: RLP encode/decode roundtrip and canonicality; Keccak
//! incremental hashing.

use bp_crypto::rlp::{decode, encode_item, Item};
use bp_crypto::{keccak256, Keccak256};
use proptest::prelude::*;

fn arb_item() -> impl Strategy<Value = Item> {
    let leaf = prop::collection::vec(any::<u8>(), 0..200).prop_map(Item::Bytes);
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop::collection::vec(inner, 0..8).prop_map(Item::List)
    })
}

proptest! {
    #[test]
    fn rlp_roundtrip(item in arb_item()) {
        let enc = encode_item(&item);
        let dec = decode(&enc).unwrap();
        prop_assert_eq!(dec, item);
    }

    #[test]
    fn rlp_encoding_is_canonical(item in arb_item()) {
        // Re-encoding a decoded item reproduces the identical bytes: there is
        // exactly one valid encoding per item.
        let enc = encode_item(&item);
        let dec = decode(&enc).unwrap();
        prop_assert_eq!(encode_item(&dec), enc);
    }

    #[test]
    fn rlp_prefix_of_encoding_fails(item in arb_item()) {
        let enc = encode_item(&item);
        if enc.len() > 1 {
            prop_assert!(decode(&enc[..enc.len() - 1]).is_err());
        }
    }

    #[test]
    fn rlp_extended_encoding_fails(item in arb_item(), extra in 0u8..255) {
        let mut enc = encode_item(&item);
        enc.push(extra);
        prop_assert!(decode(&enc).is_err());
    }

    #[test]
    fn keccak_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..2000),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..5),
    ) {
        let mut offsets: Vec<usize> = cuts.iter().map(|i| i.index(data.len() + 1)).collect();
        offsets.push(0);
        offsets.push(data.len());
        offsets.sort_unstable();
        let mut h = Keccak256::new();
        for w in offsets.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(h.finalize(), keccak256(&data));
    }

    #[test]
    fn keccak_no_trivial_collisions(a in prop::collection::vec(any::<u8>(), 0..100),
                                    b in prop::collection::vec(any::<u8>(), 0..100)) {
        if a != b {
            prop_assert_ne!(keccak256(&a), keccak256(&b));
        }
    }
}
