//! Per-contract code analysis and the shared analysis cache.
//!
//! The interpreter used to recompute the valid-jumpdest set on every frame
//! and charge gas one opcode at a time. This module computes everything that
//! is a pure function of the bytecode **once** per code blob:
//!
//! * the instruction stream, pre-decoded into fixed-size [`Inst`] records
//!   (PUSH immediates resolved, including end-of-code truncation);
//! * basic-block boundaries with, per block, the summed **static gas** and
//!   the stack-height preconditions (`need`, `max_growth`) that let the hot
//!   loop precharge gas and pre-validate the stack once per block instead of
//!   once per opcode;
//! * the valid-jumpdest map (`pc → block index`), with PUSH immediates —
//!   including a PUSH whose immediate is truncated by the end of code —
//!   never contributing phantom destinations;
//! * fused superinstructions for the hottest opcode pairs
//!   (`PUSH+JUMP`/`PUSH+JUMPI` with the target resolved at analysis time,
//!   `PUSH+PUSH`, `DUP+MSTORE`).
//!
//! Block boundaries are chosen so the rewrite is *observationally identical*
//! to per-opcode metering for every completed frame: a block ends not only
//! at control flow (`JUMP`, `JUMPI`, `JUMPDEST`, halts) but also right after
//! `GAS` and right before the gas-forwarding instructions (`CALL` family,
//! `CREATE` — which terminate their block), so every instruction that
//! *observes* `gas_left` sees exactly the per-opcode value. Within a block
//! execution is straight-line: it either runs to the end or faults, so
//! precharging the whole block never overcharges a successful path. The only
//! permitted divergence is the *error kind* inside an already-doomed frame
//! (e.g. out-of-gas reported where the old loop would first hit a stack
//! underflow); receipts, gas accounting, state deltas and logs are
//! unaffected because every `VmError` consumes the frame's full gas.
//!
//! [`AnalysisCache`] shares the artifacts across proposer workers and the
//! validator pipeline: a bounded, sharded, code-hash-keyed map with a
//! pointer-keyed fast path (the world state hands out the same `Arc` per
//! contract, so the common case never rehashes the code).

use std::collections::VecDeque;

// Shard maps are keyed by code hash / code pointer — fixed-size,
// non-attacker-growable keys, so the fast Fx hash applies.
use bp_types::FxHashMap as HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use bp_crypto::keccak256;
use bp_types::{Gas, H256, U256};

use crate::gas;
use crate::opcode::{Op, DUP1, DUP16, PUSH1, PUSH32, SWAP1, SWAP16};

/// Sentinel block index for "not a valid jump destination".
pub const INVALID_BLOCK: u32 = u32::MAX;

/// Decoded instruction kinds: one per opcode family the interpreter
/// dispatches on, plus the fused superinstructions. The discriminants index
/// the interpreter's handler table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Kind {
    Stop = 0,
    Add,
    Mul,
    Sub,
    Div,
    SDiv,
    Mod,
    SMod,
    AddMod,
    MulMod,
    Exp,
    SignExtend,
    Lt,
    Gt,
    Slt,
    Sgt,
    Eq,
    IsZero,
    And,
    Or,
    Xor,
    Not,
    Byte,
    Shl,
    Shr,
    Sar,
    Sha3,
    Address,
    Balance,
    Origin,
    Caller,
    CallValue,
    CallDataLoad,
    CallDataSize,
    CallDataCopy,
    CodeSize,
    CodeCopy,
    GasPrice,
    ExtCodeSize,
    ExtCodeCopy,
    ReturnDataSize,
    ReturnDataCopy,
    Coinbase,
    Timestamp,
    Number,
    GasLimit,
    SelfBalance,
    Pop,
    MLoad,
    MStore,
    MStore8,
    SLoad,
    SStore,
    Jump,
    JumpI,
    Pc,
    MSize,
    Gas,
    JumpDest,
    Log,
    Create,
    Call,
    DelegateCall,
    StaticCall,
    Return,
    Revert,
    /// Undefined or explicitly invalid opcode; `a` carries the byte.
    Abort,
    /// PUSH1..32 with the immediate pre-resolved; `a` indexes [`CodeAnalysis`]'s
    /// immediate pool.
    Push,
    /// Fused PUSH+PUSH; `a` and `b` index the immediate pool.
    Push2,
    /// DUPn; `a` = n.
    Dup,
    /// SWAPn; `a` = n.
    Swap,
    /// Fused PUSH+JUMP; `a` = target block index or [`INVALID_BLOCK`].
    JumpImm,
    /// Fused PUSH+JUMPI; `a` = target block index or [`INVALID_BLOCK`].
    JumpIImm,
    /// Fused DUPn+MSTORE; `a` = n.
    DupMStore,
}

/// Number of instruction kinds (the handler-table length).
pub const KIND_COUNT: usize = Kind::DupMStore as usize + 1;

/// One pre-decoded instruction: 16 bytes, immediates out-of-line.
#[derive(Clone, Copy, Debug)]
pub struct Inst {
    /// Dispatch kind.
    pub kind: Kind,
    /// Kind-specific operand (immediate-pool index, DUP/SWAP depth, LOG
    /// topic count, abort byte, fused-jump target block).
    pub a: u32,
    /// Second operand ([`Kind::Push2`]'s second immediate-pool index).
    pub b: u32,
    /// Bytecode offset of the (first) source opcode, for `PC`.
    pub pc: u32,
}

/// One basic block: a straight-line run of instructions with precomputed
/// entry preconditions.
#[derive(Clone, Copy, Debug)]
pub struct BlockInfo {
    /// First instruction index.
    pub first: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Sum of the static gas of every source opcode in the block, charged
    /// once at block entry.
    pub static_gas: Gas,
    /// Minimum stack depth at entry (computed from the *unfused* opcode
    /// sequence, so fused pairs keep per-opcode underflow behavior).
    pub need: u32,
    /// Maximum stack growth over the block relative to entry (again from the
    /// unfused sequence, preserving per-opcode overflow behavior).
    pub max_growth: u32,
}

/// Everything the interpreter needs to run one code blob, computed once.
pub struct CodeAnalysis {
    /// The analyzed code (pinned so pointer-keyed cache entries stay valid).
    code: Arc<Vec<u8>>,
    /// The decoded (and fused) instruction stream.
    pub(crate) insts: Vec<Inst>,
    /// Basic blocks over `insts`; the last block is a synthetic `STOP` so a
    /// fall-through off the end of any block is always well-defined.
    pub(crate) blocks: Vec<BlockInfo>,
    /// PUSH immediate pool.
    pub(crate) imms: Vec<U256>,
    /// `pc → block index` for valid JUMPDESTs, [`INVALID_BLOCK`] elsewhere.
    pub(crate) pc_block: Vec<u32>,
}

/// Raw per-opcode decode record, before fusion.
struct RawInst {
    pc: u32,
    kind: Kind,
    a: u32,
    pops: u16,
    pushes: u16,
    static_gas: Gas,
    term: bool,
}

impl CodeAnalysis {
    /// Analyzes `code`: decode, block partition, stack/gas summaries, fusion.
    pub fn analyze(code: Arc<Vec<u8>>) -> CodeAnalysis {
        let bytes: &[u8] = &code;
        let mut imms: Vec<U256> = Vec::new();
        let mut raws: Vec<RawInst> = Vec::with_capacity(bytes.len());

        // Pass 1: linear decode, skipping PUSH immediates. A PUSH whose
        // immediate runs past the end of code consumes exactly the bytes
        // that exist (zero-padding the value on the right, per spec) and
        // never lets trailing 0x5B bytes inside the immediate window become
        // jump destinations — the walk simply ends.
        let mut i = 0usize;
        while i < bytes.len() {
            let b = bytes[i];
            if (PUSH1..=PUSH32).contains(&b) {
                let n = (b - PUSH1) as usize + 1;
                let end = (i + 1 + n).min(bytes.len());
                let v = U256::from_be_slice(&bytes[i + 1..end]);
                let missing = (i + 1 + n - end) as u32;
                imms.push(v << (8 * missing));
                raws.push(RawInst {
                    pc: i as u32,
                    kind: Kind::Push,
                    a: (imms.len() - 1) as u32,
                    pops: 0,
                    pushes: 1,
                    static_gas: gas::VERYLOW,
                    term: false,
                });
                i += 1 + n;
                continue;
            }
            if (DUP1..=DUP16).contains(&b) {
                let n = (b - DUP1) as u16 + 1;
                raws.push(RawInst {
                    pc: i as u32,
                    kind: Kind::Dup,
                    a: n as u32,
                    // Modeled as "needs n, nets +1" for the block summary.
                    pops: n,
                    pushes: n + 1,
                    static_gas: gas::VERYLOW,
                    term: false,
                });
                i += 1;
                continue;
            }
            if (SWAP1..=SWAP16).contains(&b) {
                let n = (b - SWAP1) as u16 + 1;
                raws.push(RawInst {
                    pc: i as u32,
                    kind: Kind::Swap,
                    a: n as u32,
                    pops: n + 1,
                    pushes: n + 1,
                    static_gas: gas::VERYLOW,
                    term: false,
                });
                i += 1;
                continue;
            }
            raws.push(decode_simple(i as u32, b));
            i += 1;
        }

        // Pass 2: block partition. A block starts at instruction 0, at every
        // JUMPDEST (always a valid destination here: immediates were skipped
        // above) and after every terminator (control flow, halts, GAS and
        // the gas-forwarding CALL/CREATE family).
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut start = 0usize;
        for j in 0..raws.len() {
            if j > start && (raws[j].kind == Kind::JumpDest || raws[j - 1].term) {
                ranges.push((start, j));
                start = j;
            }
        }
        if start < raws.len() {
            ranges.push((start, raws.len()));
        }

        let mut pc_block = vec![INVALID_BLOCK; bytes.len()];
        for (bi, &(s, _)) in ranges.iter().enumerate() {
            if raws[s].kind == Kind::JumpDest {
                pc_block[raws[s].pc as usize] = bi as u32;
            }
        }

        // Pass 3: per-block summaries (from the raw sequence) and fusion
        // (into the final stream).
        let mut insts: Vec<Inst> = Vec::with_capacity(raws.len() + 1);
        let mut blocks: Vec<BlockInfo> = Vec::with_capacity(ranges.len() + 1);
        for &(s, e) in &ranges {
            let mut static_gas: Gas = 0;
            let mut h: i64 = 0;
            let mut need: i64 = 0;
            let mut maxh: i64 = 0;
            for r in &raws[s..e] {
                static_gas += r.static_gas;
                let deficit = r.pops as i64 - h;
                if deficit > need {
                    need = deficit;
                }
                h = h - r.pops as i64 + r.pushes as i64;
                if h > maxh {
                    maxh = h;
                }
            }

            let first = insts.len() as u32;
            let mut j = s;
            while j < e {
                let r = &raws[j];
                let next = raws.get(j + 1).filter(|_| j + 1 < e);
                let fused = match (r.kind, next.map(|n| n.kind)) {
                    (Kind::Push, Some(Kind::Jump)) => Some(Inst {
                        kind: Kind::JumpImm,
                        a: resolve_dest(imms[r.a as usize], &pc_block),
                        b: 0,
                        pc: r.pc,
                    }),
                    (Kind::Push, Some(Kind::JumpI)) => Some(Inst {
                        kind: Kind::JumpIImm,
                        a: resolve_dest(imms[r.a as usize], &pc_block),
                        b: 0,
                        pc: r.pc,
                    }),
                    (Kind::Push, Some(Kind::Push)) => {
                        // Leave the second push free to fuse with a
                        // following JUMP/JUMPI — that pair is worth more.
                        let after = raws.get(j + 2).filter(|_| j + 2 < e).map(|n| n.kind);
                        if matches!(after, Some(Kind::Jump) | Some(Kind::JumpI)) {
                            None
                        } else {
                            Some(Inst {
                                kind: Kind::Push2,
                                a: r.a,
                                b: next.unwrap().a,
                                pc: r.pc,
                            })
                        }
                    }
                    (Kind::Dup, Some(Kind::MStore)) => Some(Inst {
                        kind: Kind::DupMStore,
                        a: r.a,
                        b: 0,
                        pc: r.pc,
                    }),
                    _ => None,
                };
                match fused {
                    Some(inst) => {
                        insts.push(inst);
                        j += 2;
                    }
                    None => {
                        insts.push(Inst {
                            kind: r.kind,
                            a: r.a,
                            b: 0,
                            pc: r.pc,
                        });
                        j += 1;
                    }
                }
            }
            blocks.push(BlockInfo {
                first,
                end: insts.len() as u32,
                static_gas,
                need: need as u32,
                max_growth: maxh as u32,
            });
        }

        // Synthetic halt: running off the end of code (or of any
        // falls-through block at the end of the stream) is an implicit STOP.
        let first = insts.len() as u32;
        insts.push(Inst {
            kind: Kind::Stop,
            a: 0,
            b: 0,
            pc: bytes.len() as u32,
        });
        blocks.push(BlockInfo {
            first,
            end: first + 1,
            static_gas: 0,
            need: 0,
            max_growth: 0,
        });

        CodeAnalysis {
            code,
            insts,
            blocks,
            imms,
            pc_block,
        }
    }

    /// The analyzed code.
    pub fn code(&self) -> &Arc<Vec<u8>> {
        &self.code
    }

    /// True when `pc` is a valid jump destination.
    pub fn is_jumpdest(&self, pc: usize) -> bool {
        self.pc_block.get(pc).is_some_and(|&b| b != INVALID_BLOCK)
    }

    /// Number of basic blocks (including the synthetic trailing STOP).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of decoded (post-fusion) instructions.
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }
}

/// Decodes a non-PUSH/DUP/SWAP byte into its raw record.
fn decode_simple(pc: u32, b: u8) -> RawInst {
    use Kind as K;
    let (kind, a, pops, pushes, static_gas, term) = match Op::from_byte(b) {
        Some(Op::Stop) => (K::Stop, 0, 0, 0, 0, true),
        Some(Op::Add) => (K::Add, 0, 2, 1, gas::VERYLOW, false),
        Some(Op::Mul) => (K::Mul, 0, 2, 1, gas::LOW, false),
        Some(Op::Sub) => (K::Sub, 0, 2, 1, gas::VERYLOW, false),
        Some(Op::Div) => (K::Div, 0, 2, 1, gas::LOW, false),
        Some(Op::SDiv) => (K::SDiv, 0, 2, 1, gas::LOW, false),
        Some(Op::Mod) => (K::Mod, 0, 2, 1, gas::LOW, false),
        Some(Op::SMod) => (K::SMod, 0, 2, 1, gas::LOW, false),
        Some(Op::AddMod) => (K::AddMod, 0, 3, 1, gas::MID, false),
        Some(Op::MulMod) => (K::MulMod, 0, 3, 1, gas::MID, false),
        Some(Op::Exp) => (K::Exp, 0, 2, 1, gas::EXP, false),
        Some(Op::SignExtend) => (K::SignExtend, 0, 2, 1, gas::LOW, false),
        Some(Op::Lt) => (K::Lt, 0, 2, 1, gas::VERYLOW, false),
        Some(Op::Gt) => (K::Gt, 0, 2, 1, gas::VERYLOW, false),
        Some(Op::Slt) => (K::Slt, 0, 2, 1, gas::VERYLOW, false),
        Some(Op::Sgt) => (K::Sgt, 0, 2, 1, gas::VERYLOW, false),
        Some(Op::Eq) => (K::Eq, 0, 2, 1, gas::VERYLOW, false),
        Some(Op::IsZero) => (K::IsZero, 0, 1, 1, gas::VERYLOW, false),
        Some(Op::And) => (K::And, 0, 2, 1, gas::VERYLOW, false),
        Some(Op::Or) => (K::Or, 0, 2, 1, gas::VERYLOW, false),
        Some(Op::Xor) => (K::Xor, 0, 2, 1, gas::VERYLOW, false),
        Some(Op::Not) => (K::Not, 0, 1, 1, gas::VERYLOW, false),
        Some(Op::Byte) => (K::Byte, 0, 2, 1, gas::VERYLOW, false),
        Some(Op::Shl) => (K::Shl, 0, 2, 1, gas::VERYLOW, false),
        Some(Op::Shr) => (K::Shr, 0, 2, 1, gas::VERYLOW, false),
        Some(Op::Sar) => (K::Sar, 0, 2, 1, gas::VERYLOW, false),
        Some(Op::Sha3) => (K::Sha3, 0, 2, 1, gas::SHA3, false),
        Some(Op::Address) => (K::Address, 0, 0, 1, gas::BASE, false),
        Some(Op::Balance) => (K::Balance, 0, 1, 1, gas::BALANCE, false),
        Some(Op::Origin) => (K::Origin, 0, 0, 1, gas::BASE, false),
        Some(Op::Caller) => (K::Caller, 0, 0, 1, gas::BASE, false),
        Some(Op::CallValue) => (K::CallValue, 0, 0, 1, gas::BASE, false),
        Some(Op::CallDataLoad) => (K::CallDataLoad, 0, 1, 1, gas::VERYLOW, false),
        Some(Op::CallDataSize) => (K::CallDataSize, 0, 0, 1, gas::BASE, false),
        Some(Op::CallDataCopy) => (K::CallDataCopy, 0, 3, 0, gas::VERYLOW, false),
        Some(Op::CodeSize) => (K::CodeSize, 0, 0, 1, gas::BASE, false),
        Some(Op::CodeCopy) => (K::CodeCopy, 0, 3, 0, gas::VERYLOW, false),
        Some(Op::GasPrice) => (K::GasPrice, 0, 0, 1, gas::BASE, false),
        Some(Op::ExtCodeSize) => (K::ExtCodeSize, 0, 1, 1, gas::BALANCE, false),
        Some(Op::ExtCodeCopy) => (K::ExtCodeCopy, 0, 4, 0, gas::BALANCE, false),
        Some(Op::ReturnDataSize) => (K::ReturnDataSize, 0, 0, 1, gas::BASE, false),
        Some(Op::ReturnDataCopy) => (K::ReturnDataCopy, 0, 3, 0, gas::VERYLOW, false),
        Some(Op::Coinbase) => (K::Coinbase, 0, 0, 1, gas::BASE, false),
        Some(Op::Timestamp) => (K::Timestamp, 0, 0, 1, gas::BASE, false),
        Some(Op::Number) => (K::Number, 0, 0, 1, gas::BASE, false),
        Some(Op::GasLimit) => (K::GasLimit, 0, 0, 1, gas::BASE, false),
        Some(Op::SelfBalance) => (K::SelfBalance, 0, 0, 1, gas::SELFBALANCE, false),
        Some(Op::Pop) => (K::Pop, 0, 1, 0, gas::BASE, false),
        Some(Op::MLoad) => (K::MLoad, 0, 1, 1, gas::VERYLOW, false),
        Some(Op::MStore) => (K::MStore, 0, 2, 0, gas::VERYLOW, false),
        Some(Op::MStore8) => (K::MStore8, 0, 2, 0, gas::VERYLOW, false),
        Some(Op::SLoad) => (K::SLoad, 0, 1, 1, gas::SLOAD, false),
        // SSTORE's cost is entirely value-dependent (set vs reset): nothing
        // static to precharge.
        Some(Op::SStore) => (K::SStore, 0, 2, 0, 0, false),
        Some(Op::Jump) => (K::Jump, 0, 1, 0, gas::MID, true),
        Some(Op::JumpI) => (K::JumpI, 0, 2, 0, gas::HIGH, true),
        Some(Op::Pc) => (K::Pc, 0, 0, 1, gas::BASE, false),
        Some(Op::MSize) => (K::MSize, 0, 0, 1, gas::BASE, false),
        // GAS observes gas_left, so it must be the last instruction of its
        // block: everything up to and including its own BASE cost is then
        // precharged, and nothing after it is.
        Some(Op::Gas) => (K::Gas, 0, 0, 1, gas::BASE, true),
        Some(Op::JumpDest) => (K::JumpDest, 0, 0, 0, gas::JUMPDEST, false),
        Some(Op::Log0) => (K::Log, 0, 2, 0, gas::LOG, false),
        Some(op @ (Op::Log1 | Op::Log2 | Op::Log3 | Op::Log4)) => {
            let t = (op as u8 - Op::Log0 as u8) as u32;
            (
                K::Log,
                t,
                2 + t as u16,
                0,
                gas::LOG + gas::LOG_TOPIC * t as u64,
                false,
            )
        }
        // The gas-forwarding family terminates its block so the 63/64 cap
        // observes exactly the per-opcode gas_left; their static base is
        // part of the block precharge, dynamic parts are charged inline.
        Some(Op::Create) => (K::Create, 0, 3, 1, gas::CREATE, true),
        Some(Op::Call) => (K::Call, 0, 7, 1, gas::CALL, true),
        Some(Op::DelegateCall) => (K::DelegateCall, 0, 6, 1, gas::CALL, true),
        Some(Op::StaticCall) => (K::StaticCall, 0, 6, 1, gas::CALL, true),
        Some(Op::Return) => (K::Return, 0, 2, 0, 0, true),
        Some(Op::Revert) => (K::Revert, 0, 2, 0, 0, true),
        Some(Op::Invalid) | None => (K::Abort, b as u32, 0, 0, 0, true),
    };
    RawInst {
        pc,
        kind,
        a,
        pops,
        pushes,
        static_gas,
        term,
    }
}

/// Maps a fused jump immediate to its target block, or [`INVALID_BLOCK`].
fn resolve_dest(dest: U256, pc_block: &[u32]) -> u32 {
    match dest.to_usize() {
        Some(d) if d < pc_block.len() => pc_block[d],
        _ => INVALID_BLOCK,
    }
}

/// Point-in-time cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (pointer or hash level).
    pub hits: u64,
    /// Lookups that had to run the analysis.
    pub misses: u64,
    /// Entries dropped by the bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Counter-wise difference since `earlier` (for per-run reporting
    /// against a long-lived cache).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

const SHARDS: usize = 16;
/// Default total entry bound of the global cache.
const DEFAULT_CAPACITY: usize = 4096;

/// Hash-keyed (authoritative) shard.
#[derive(Default)]
struct HashShard {
    map: HashMap<H256, Arc<CodeAnalysis>>,
    order: VecDeque<H256>,
}

/// Pointer-keyed fast-path entry. Holding the looked-up `Arc` pins the
/// allocation, so the pointer can never be reused for different bytes while
/// the entry lives — the mapping stays correct for the entry's lifetime.
struct PtrEntry {
    _pin: Arc<Vec<u8>>,
    analysis: Arc<CodeAnalysis>,
}

#[derive(Default)]
struct PtrShard {
    map: HashMap<usize, PtrEntry>,
    order: VecDeque<usize>,
}

/// A bounded, concurrent, code-hash-keyed cache of [`CodeAnalysis`]
/// artifacts, shared by every executor (proposer workers, validator lanes,
/// serial baselines).
///
/// Two levels: a pointer-keyed fast path (no hashing of the code at all —
/// the state layer hands out one `Arc` per contract) over a keccak-keyed
/// authoritative map (so equal bytes behind different `Arc`s still share one
/// analysis). Both levels are sharded, mutex-protected and FIFO-bounded.
pub struct AnalysisCache {
    hash_shards: Vec<Mutex<HashShard>>,
    ptr_shards: Vec<Mutex<PtrShard>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl AnalysisCache {
    /// A cache bounded to at most `capacity` entries (per level).
    pub fn with_capacity(capacity: usize) -> AnalysisCache {
        AnalysisCache {
            hash_shards: (0..SHARDS)
                .map(|_| Mutex::new(HashShard::default()))
                .collect(),
            ptr_shards: (0..SHARDS)
                .map(|_| Mutex::new(PtrShard::default()))
                .collect(),
            per_shard_cap: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The process-wide default cache (what [`crate::execute_transaction`]
    /// uses when no explicit cache is threaded in).
    pub fn global() -> Arc<AnalysisCache> {
        static GLOBAL: OnceLock<Arc<AnalysisCache>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| Arc::new(AnalysisCache::with_capacity(DEFAULT_CAPACITY)))
            .clone()
    }

    /// The analysis for `code`, computed at most once per distinct blob.
    pub fn get(&self, code: &Arc<Vec<u8>>) -> Arc<CodeAnalysis> {
        let ptr = Arc::as_ptr(code) as *const u8 as usize;
        let pshard = &self.ptr_shards[mix(ptr) % SHARDS];
        if let Some(e) = pshard.lock().map.get(&ptr) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&e.analysis);
        }

        // Pointer miss: fall back to the content hash.
        let hash = keccak256(code);
        let hshard = &self.hash_shards[hash.0[0] as usize % SHARDS];
        let (analysis, fresh) = {
            let guard = hshard.lock();
            match guard.map.get(&hash) {
                Some(a) => (Arc::clone(a), false),
                None => {
                    // Analyze outside the lock; a racing duplicate analysis
                    // is possible and harmless (first insert wins).
                    drop(guard);
                    (Arc::new(CodeAnalysis::analyze(Arc::clone(code))), true)
                }
            }
        };
        if fresh {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let mut guard = hshard.lock();
            if let Some(existing) = guard.map.get(&hash) {
                // Lost the race: adopt the winner so both levels agree.
                let existing = Arc::clone(existing);
                drop(guard);
                self.insert_ptr(pshard, ptr, code, &existing);
                return existing;
            }
            guard.map.insert(hash, Arc::clone(&analysis));
            guard.order.push_back(hash);
            while guard.map.len() > self.per_shard_cap {
                if let Some(old) = guard.order.pop_front() {
                    guard.map.remove(&old);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                } else {
                    break;
                }
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        self.insert_ptr(pshard, ptr, code, &analysis);
        analysis
    }

    fn insert_ptr(
        &self,
        shard: &Mutex<PtrShard>,
        ptr: usize,
        code: &Arc<Vec<u8>>,
        analysis: &Arc<CodeAnalysis>,
    ) {
        let mut guard = shard.lock();
        if guard
            .map
            .insert(
                ptr,
                PtrEntry {
                    _pin: Arc::clone(code),
                    analysis: Arc::clone(analysis),
                },
            )
            .is_none()
        {
            guard.order.push_back(ptr);
        }
        while guard.map.len() > self.per_shard_cap {
            if let Some(old) = guard.order.pop_front() {
                guard.map.remove(&old);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break;
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Total live entries in the authoritative (hash) level.
    pub fn len(&self) -> usize {
        self.hash_shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when the authoritative level holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Cheap pointer-to-shard mixer (Fibonacci hashing on the high bits).
fn mix(ptr: usize) -> usize {
    ptr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn analyze(code: Vec<u8>) -> CodeAnalysis {
        CodeAnalysis::analyze(Arc::new(code))
    }

    #[test]
    fn truncated_push_marks_no_phantom_jumpdests() {
        // PUSH32 with only two immediate bytes present, both 0x5B: the walk
        // must not treat the truncated immediate as code.
        let an = analyze(vec![0x7F, 0x5B, 0x5B]);
        assert!(!an.is_jumpdest(0));
        assert!(!an.is_jumpdest(1));
        assert!(!an.is_jumpdest(2));
        // Same with PUSH2 exactly at the boundary.
        let an = analyze(vec![0x61, 0x5B]);
        assert!(!an.is_jumpdest(1));
    }

    #[test]
    fn jumpdest_in_push_immediate_is_invalid_but_real_one_is_valid() {
        // PUSH2 0x005B | JUMPDEST
        let an = analyze(vec![0x61, 0x00, 0x5B, 0x5B]);
        assert!(!an.is_jumpdest(2));
        assert!(an.is_jumpdest(3));
    }

    #[test]
    fn blocks_split_at_control_flow_and_gas_observers() {
        // PUSH1 0 | GAS | PUSH1 1 | JUMPDEST — GAS ends a block, JUMPDEST
        // starts one, plus the synthetic trailing STOP.
        let code = Asm::new()
            .push_u64(0)
            .op(Op::Gas)
            .push_u64(1)
            .label("x")
            .build();
        let an = analyze(code);
        // [PUSH GAS] [PUSH] [JUMPDEST] [synthetic STOP]
        assert_eq!(an.block_count(), 4);
        let b0 = an.blocks[0];
        assert_eq!(b0.static_gas, gas::VERYLOW + gas::BASE);
        assert_eq!(b0.need, 0);
        assert_eq!(b0.max_growth, 2);
    }

    #[test]
    fn block_stack_summary_matches_per_op_simulation() {
        // ADD needs two, nets -1; then PUSH grows by one.
        let code = Asm::new().op(Op::Add).push_u64(1).op(Op::Stop).build();
        let an = analyze(code);
        let b0 = an.blocks[0];
        assert_eq!(b0.need, 2);
        // After ADD: -1; after PUSH: 0 → growth never exceeds 0.
        assert_eq!(b0.max_growth, 0);
    }

    #[test]
    fn fusion_produces_superinstructions() {
        let code = Asm::new()
            .push_u64(1)
            .push_u64(2)
            .op(Op::Add)
            .label("loop")
            .push_label("loop")
            .op(Op::Jump)
            .build();
        let an = analyze(code);
        let kinds: Vec<Kind> = an.insts.iter().map(|i| i.kind).collect();
        assert!(kinds.contains(&Kind::Push2), "{kinds:?}");
        assert!(kinds.contains(&Kind::JumpImm), "{kinds:?}");
        // The fused jump resolved its target block.
        let ji = an.insts.iter().find(|i| i.kind == Kind::JumpImm).unwrap();
        assert_ne!(ji.a, INVALID_BLOCK);
        assert_eq!(an.blocks[ji.a as usize].first, {
            // Target block starts at the JUMPDEST instruction.
            let jd = an
                .insts
                .iter()
                .position(|i| i.kind == Kind::JumpDest)
                .unwrap();
            jd as u32
        });
    }

    #[test]
    fn fused_jump_to_invalid_target_is_marked() {
        let code = Asm::new().push_u64(1).op(Op::Jump).build();
        let an = analyze(code);
        let ji = an.insts.iter().find(|i| i.kind == Kind::JumpImm).unwrap();
        assert_eq!(ji.a, INVALID_BLOCK);
    }

    #[test]
    fn push_before_jump_is_not_stolen_by_push2() {
        // PUSH PUSH JUMP: the first push stays single so PUSH+JUMP fuses.
        let code = Asm::new()
            .push_u64(7)
            .push_u64(0)
            .op(Op::Jump)
            .label("x")
            .build();
        let an = analyze(code);
        let kinds: Vec<Kind> = an.insts.iter().map(|i| i.kind).collect();
        assert!(!kinds.contains(&Kind::Push2), "{kinds:?}");
        assert!(kinds.contains(&Kind::JumpImm), "{kinds:?}");
    }

    #[test]
    fn dup_mstore_fuses() {
        let code = Asm::new()
            .push_u64(64)
            .push_u64(5)
            .dup(2)
            .op(Op::MStore)
            .op(Op::Stop)
            .build();
        let an = analyze(code);
        assert!(an.insts.iter().any(|i| i.kind == Kind::DupMStore));
    }

    #[test]
    fn empty_code_is_single_synthetic_stop() {
        let an = analyze(Vec::new());
        assert_eq!(an.block_count(), 1);
        assert_eq!(an.insts[0].kind, Kind::Stop);
    }

    #[test]
    fn cache_hits_by_pointer_and_by_content() {
        let cache = AnalysisCache::with_capacity(64);
        let code = Arc::new(Asm::new().push_u64(1).op(Op::Stop).build());
        let a1 = cache.get(&code);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                evictions: 0
            }
        );
        // Same Arc: pointer hit.
        let a2 = cache.get(&code);
        assert!(Arc::ptr_eq(&a1, &a2));
        // Different Arc, same bytes: content hit, no re-analysis.
        let copy = Arc::new((*code).clone());
        let a3 = cache.get(&copy);
        assert!(Arc::ptr_eq(&a1, &a3));
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn cache_bound_evicts_fifo() {
        let cache = AnalysisCache::with_capacity(16); // 1 entry per shard
        let blobs: Vec<Arc<Vec<u8>>> = (0..200u64)
            .map(|i| Arc::new(Asm::new().push_u64(i).op(Op::Stop).build()))
            .collect();
        for b in &blobs {
            cache.get(b);
        }
        assert!(cache.len() <= 16);
        assert!(cache.stats().evictions > 0);
        // Still correct after eviction: re-fetch recomputes.
        let again = cache.get(&blobs[0]);
        assert_eq!(again.inst_count(), 3); // PUSH, STOP, synthetic STOP
    }

    #[test]
    fn cache_is_shared_across_threads() {
        let cache = Arc::new(AnalysisCache::with_capacity(256));
        let code = Arc::new(crate::contracts::token());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let code = Arc::clone(&code);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let an = cache.get(&code);
                    assert!(an.block_count() > 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        // Every thread resolved the same blob; at most a few racing misses.
        assert!(s.hits >= 8 * 50 - 8, "{s:?}");
    }
}
