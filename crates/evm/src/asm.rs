//! A tiny EVM assembler.
//!
//! Contracts in tests and in the synthetic workload generator are written as
//! readable instruction streams rather than raw hex. The assembler supports
//! labels for jump targets:
//!
//! ```
//! use bp_evm::asm::Asm;
//! use bp_types::U256;
//! let code = Asm::new()
//!     .push(U256::ONE)
//!     .push(U256::from(2u64))
//!     .op(bp_evm::opcode::Op::Add)
//!     .op(bp_evm::opcode::Op::Stop)
//!     .build();
//! assert_eq!(code[0], 0x60);
//! ```

use bp_types::U256;

use crate::opcode::{Op, DUP1, PUSH1, SWAP1};

enum Chunk {
    Bytes(Vec<u8>),
    // A PUSH2 whose operand is the offset of a label, patched at build time.
    PushLabel(String),
    Label(String),
}

/// Incremental assembler with label support.
#[derive(Default)]
pub struct Asm {
    chunks: Vec<Chunk>,
}

impl Asm {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one opcode.
    pub fn op(mut self, op: Op) -> Self {
        self.push_byte(op as u8);
        self
    }

    /// Appends a minimal-width PUSH of `value` (PUSH1 for zero).
    pub fn push(mut self, value: U256) -> Self {
        let bytes = value.to_be_bytes_trimmed();
        let bytes = if bytes.is_empty() { vec![0u8] } else { bytes };
        let mut chunk = vec![PUSH1 + (bytes.len() as u8 - 1)];
        chunk.extend_from_slice(&bytes);
        self.chunks.push(Chunk::Bytes(chunk));
        self
    }

    /// `push` from a u64.
    pub fn push_u64(self, v: u64) -> Self {
        self.push(U256::from(v))
    }

    /// Appends `DUPn` (1-based).
    pub fn dup(mut self, n: u8) -> Self {
        assert!((1..=16).contains(&n));
        self.push_byte(DUP1 + n - 1);
        self
    }

    /// Appends `SWAPn` (1-based).
    pub fn swap(mut self, n: u8) -> Self {
        assert!((1..=16).contains(&n));
        self.push_byte(SWAP1 + n - 1);
        self
    }

    /// Defines a jump label at the current position (emits `JUMPDEST`).
    pub fn label(mut self, name: &str) -> Self {
        self.chunks.push(Chunk::Label(name.to_string()));
        self.push_byte(Op::JumpDest as u8);
        self
    }

    /// Pushes the 2-byte offset of `name` (for a later JUMP/JUMPI).
    pub fn push_label(mut self, name: &str) -> Self {
        self.chunks.push(Chunk::PushLabel(name.to_string()));
        self
    }

    /// Appends raw bytes verbatim (e.g. embedded init payloads).
    pub fn raw(mut self, bytes: &[u8]) -> Self {
        self.chunks.push(Chunk::Bytes(bytes.to_vec()));
        self
    }

    fn push_byte(&mut self, b: u8) {
        if let Some(Chunk::Bytes(v)) = self.chunks.last_mut() {
            v.push(b);
        } else {
            self.chunks.push(Chunk::Bytes(vec![b]));
        }
    }

    /// Resolves labels and returns the bytecode.
    ///
    /// Panics on undefined labels or programs larger than 64 KiB (labels are
    /// 2 bytes wide) — both are authoring bugs, not runtime conditions.
    pub fn build(self) -> Vec<u8> {
        // First pass: compute offsets. PushLabel occupies 3 bytes (PUSH2 hi lo).
        let mut offsets = std::collections::HashMap::new();
        let mut pc = 0usize;
        for chunk in &self.chunks {
            match chunk {
                Chunk::Bytes(b) => pc += b.len(),
                Chunk::PushLabel(_) => pc += 3,
                Chunk::Label(name) => {
                    let prev = offsets.insert(name.clone(), pc);
                    assert!(prev.is_none(), "duplicate label {name}");
                    // The JUMPDEST byte itself is emitted by `label` as a
                    // following Bytes chunk.
                }
            }
        }
        assert!(
            pc <= u16::MAX as usize,
            "program too large for 2-byte labels"
        );
        let mut out = Vec::with_capacity(pc);
        for chunk in &self.chunks {
            match chunk {
                Chunk::Bytes(b) => out.extend_from_slice(b),
                Chunk::PushLabel(name) => {
                    let off = *offsets
                        .get(name)
                        .unwrap_or_else(|| panic!("undefined label {name}"));
                    out.push(PUSH1 + 1); // PUSH2
                    out.push((off >> 8) as u8);
                    out.push(off as u8);
                }
                Chunk::Label(_) => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_widths_are_minimal() {
        let code = Asm::new()
            .push(U256::ZERO)
            .push(U256::from(0xFFu64))
            .push(U256::from(0x1234u64))
            .build();
        assert_eq!(code, vec![0x60, 0x00, 0x60, 0xFF, 0x61, 0x12, 0x34]);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let code = Asm::new()
            .push_label("end") // 3 bytes
            .op(Op::Jump) // 1 byte
            .op(Op::Invalid)
            .label("end") // JUMPDEST at offset 5
            .op(Op::Stop)
            .build();
        assert_eq!(code, vec![0x61, 0x00, 0x05, 0x56, 0xFE, 0x5B, 0x00]);
    }

    #[test]
    fn dup_swap_encode() {
        let code = Asm::new().dup(1).dup(16).swap(1).swap(16).build();
        assert_eq!(code, vec![0x80, 0x8F, 0x90, 0x9F]);
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        Asm::new().push_label("nowhere").build();
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        Asm::new().label("a").label("a").build();
    }
}
