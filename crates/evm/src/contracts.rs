//! Canned contracts for tests and for the synthetic mainnet-like workload.
//!
//! Three contracts cover the paper's conflict taxonomy (§2.3: conflicts come
//! from *counters* and *storage*, with hotspot contracts like Uniswap causing
//! block-wide storage contention):
//!
//! * [`counter`] — one global slot every caller increments: the worst-case
//!   hotspot, every transaction conflicts;
//! * [`token`] — per-holder balance slots: transactions conflict only when
//!   they share a holder (Zipf-distributed sharing in the workload);
//! * [`amm_pair`] — a constant-product swap over two global reserve slots:
//!   the Uniswap-style hotspot where all swaps serialize.

use bp_types::{Address, H256, U256};

use crate::asm::Asm;
use crate::interpreter::address_word;
use crate::opcode::Op;

/// A counter contract: `slot0 += 1` on every call.
pub fn counter() -> Vec<u8> {
    Asm::new()
        .push_u64(0)
        .op(Op::SLoad)
        .push_u64(1)
        .op(Op::Add)
        .push_u64(0)
        .op(Op::SStore)
        .op(Op::Stop)
        .build()
}

/// A token contract holding one balance slot per holder (the slot index is
/// the holder's address). Calldata: `to` word at 0, `amount` word at 32.
/// Reverts on insufficient balance.
pub fn token() -> Vec<u8> {
    Asm::new()
        // amount, bal_from
        .push_u64(32)
        .op(Op::CallDataLoad) // amount
        .op(Op::Caller)
        .op(Op::SLoad) // amount bal_from
        .dup(2)
        .dup(2)
        .op(Op::Lt) // amount bal_from (bal_from < amount)
        .push_label("insufficient")
        .op(Op::JumpI)
        // SSTORE(caller, bal_from - amount)
        .dup(2)
        .dup(2)
        .op(Op::Sub) // amount bal_from new_from
        .op(Op::Caller)
        .op(Op::SStore) // amount bal_from
        // SSTORE(to, SLOAD(to) + amount)
        .push_u64(0)
        .op(Op::CallDataLoad)
        .op(Op::SLoad) // amount bal_from bal_to
        .dup(3)
        .op(Op::Add) // amount bal_from new_to
        .push_u64(0)
        .op(Op::CallDataLoad)
        .op(Op::SStore)
        .op(Op::Stop)
        .label("insufficient")
        .push_u64(0)
        .push_u64(0)
        .op(Op::Revert)
        .build()
}

/// Calldata for [`token`]: transfer `amount` to `to`.
pub fn token_transfer_calldata(to: &Address, amount: U256) -> Vec<u8> {
    let mut data = Vec::with_capacity(64);
    data.extend_from_slice(&address_word(to).to_be_bytes());
    data.extend_from_slice(&amount.to_be_bytes());
    data
}

/// The storage slot holding `holder`'s token balance.
pub fn token_balance_slot(holder: &Address) -> H256 {
    H256::from_u256(address_word(holder))
}

/// A constant-product AMM pair over reserve slots 0 and 1.
/// Calldata: `direction` word at 0 (0 = token0 in, 1 = token1 in),
/// `amount_in` word at 32. Computes
/// `out = reserve_out * in / (reserve_in + in)` and updates both reserves.
pub fn amm_pair() -> Vec<u8> {
    Asm::new()
        .push_u64(0)
        .op(Op::CallDataLoad) // dir
        .push_u64(32)
        .op(Op::CallDataLoad) // dir amt
        .dup(2)
        .op(Op::SLoad) // dir amt r_in
        .dup(3)
        .push_u64(1)
        .op(Op::Sub) // dir amt r_in (1-dir)
        .op(Op::SLoad) // dir amt r_in r_out
        // out = r_out*amt / (r_in+amt)
        .dup(3) // .. amt
        .dup(2) // .. amt r_out
        .op(Op::Mul) // dir amt r_in r_out prod
        .dup(4) // .. amt
        .dup(4) // .. amt r_in
        .op(Op::Add) // dir amt r_in r_out prod (r_in+amt)
        .swap(1) // dir amt r_in r_out (r_in+amt) prod
        .op(Op::Div) // dir amt r_in r_out out
        // reserve_in += amt
        .dup(4)
        .dup(4)
        .op(Op::Add) // dir amt r_in r_out out (r_in+amt)
        .dup(6) // .. dir
        .op(Op::SStore) // dir amt r_in r_out out
        // reserve_out -= out
        .dup(1)
        .dup(3)
        .op(Op::Sub) // dir amt r_in r_out out (r_out-out)
        .dup(6)
        .push_u64(1)
        .op(Op::Sub) // .. (1-dir)
        .op(Op::SStore)
        .op(Op::Stop)
        .build()
}

/// An NFT mint contract: slot 0 is the *supply counter* (the next token
/// id), and minting assigns the caller as owner of the next id. Every mint
/// reads **and** writes slot 0 — a mint storm is therefore the worst-case
/// single-hot-key regime (stronger than [`counter`], which only carries one
/// write per transaction: here the freshly-assigned owner slot rides along,
/// so aborted mints waste more work).
///
/// Storage layout: slot 0 = next id; slot `2*id + 1` = owner of `id` (odd
/// slots so owners never collide with the counter). Calldata: none.
pub fn nft() -> Vec<u8> {
    Asm::new()
        .push_u64(0)
        .op(Op::SLoad) // id
        .op(Op::Caller) // id caller
        .dup(2)
        .push_u64(2)
        .op(Op::Mul)
        .push_u64(1)
        .op(Op::Add) // id caller slot
        .op(Op::SStore) // id          (owner[id] = caller)
        .push_u64(1)
        .op(Op::Add)
        .push_u64(0)
        .op(Op::SStore) // (supply = id+1)
        .op(Op::Stop)
        .build()
}

/// The supply-counter slot of [`nft`] (the single hot key).
pub fn nft_supply_slot() -> H256 {
    H256::from_low_u64(0)
}

/// The owner slot of token `id` in [`nft`].
pub fn nft_owner_slot(id: u64) -> H256 {
    H256::from_low_u64(2 * id + 1)
}

/// A registry contract that writes its slot 0 with the first calldata word
/// and never *semantically* reads it — the closest an EVM contract can get
/// to a blind write.
///
/// Note the reproduction finding this contract demonstrates (see the
/// `ablation_wsi_vs_occ` bench): even here the slot still lands in the read
/// set, because the EVM's value-dependent `SSTORE` pricing (set vs reset)
/// must observe the old value, and that observation affects gas — which
/// validators verify. In an account-model EVM with Ethereum gas rules there
/// are therefore **no** blind writes, and OCC-WSI's write-write tolerance
/// degenerates to classic backward (read-set) validation.
pub fn registry() -> Vec<u8> {
    Asm::new()
        .push_u64(0)
        .op(Op::CallDataLoad) // value
        .push_u64(0) // slot
        .op(Op::SStore)
        .op(Op::Stop)
        .build()
}

/// Calldata for [`registry`]: blindly store `value` in slot 0.
pub fn registry_calldata(value: U256) -> Vec<u8> {
    value.to_be_bytes().to_vec()
}

/// Calldata for [`amm_pair`]: swap `amount_in` in `direction` (0 or 1).
pub fn amm_swap_calldata(direction: u8, amount_in: U256) -> Vec<u8> {
    let mut data = Vec::with_capacity(64);
    data.extend_from_slice(&U256::from(direction as u64).to_be_bytes());
    data.extend_from_slice(&amount_in.to_be_bytes());
    data
}

/// Reserve slot for direction `dir` of [`amm_pair`].
pub fn amm_reserve_slot(dir: u8) -> H256 {
    H256::from_low_u64(dir as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::WorldView;
    use crate::interpreter::BlockEnv;
    use crate::tx::{execute_transaction, Transaction};
    use bp_state::WorldState;
    use bp_types::AccessKey;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn call_tx(sender: Address, to: Address, data: Vec<u8>, nonce: u64) -> Transaction {
        Transaction {
            sender,
            to: Some(to),
            value: U256::ZERO,
            nonce,
            gas_limit: 500_000,
            gas_price: 1,
            data,
        }
    }

    fn base_world() -> WorldState {
        let mut w = WorldState::new();
        for i in 1..=4 {
            w.set_balance(addr(i), U256::from(100_000_000u64));
        }
        w
    }

    #[test]
    fn counter_increments() {
        let mut w = base_world();
        let c = addr(100);
        w.set_code(c, counter());
        let view = WorldView::new(&w);
        let res = execute_transaction(&view, &BlockEnv::default(), &call_tx(addr(1), c, vec![], 0))
            .unwrap();
        assert!(res.receipt.success);
        assert_eq!(
            res.rw.writes[&AccessKey::Storage(c, H256::from_low_u64(0))],
            U256::ONE
        );
        // Apply and increment again.
        w.apply_writes(&res.rw.writes);
        let view = WorldView::new(&w);
        let res2 =
            execute_transaction(&view, &BlockEnv::default(), &call_tx(addr(2), c, vec![], 0))
                .unwrap();
        assert_eq!(
            res2.rw.writes[&AccessKey::Storage(c, H256::from_low_u64(0))],
            U256::from(2u64)
        );
    }

    #[test]
    fn token_transfer_moves_balances() {
        let mut w = base_world();
        let t = addr(100);
        w.set_code(t, token());
        w.set_storage(t, token_balance_slot(&addr(1)), U256::from(1000u64));
        let view = WorldView::new(&w);
        let data = token_transfer_calldata(&addr(2), U256::from(300u64));
        let res = execute_transaction(&view, &BlockEnv::default(), &call_tx(addr(1), t, data, 0))
            .unwrap();
        assert!(res.receipt.success, "transfer should succeed");
        assert_eq!(
            res.rw.writes[&AccessKey::Storage(t, token_balance_slot(&addr(1)))],
            U256::from(700u64)
        );
        assert_eq!(
            res.rw.writes[&AccessKey::Storage(t, token_balance_slot(&addr(2)))],
            U256::from(300u64)
        );
    }

    #[test]
    fn token_transfer_insufficient_reverts() {
        let mut w = base_world();
        let t = addr(100);
        w.set_code(t, token());
        w.set_storage(t, token_balance_slot(&addr(1)), U256::from(10u64));
        let view = WorldView::new(&w);
        let data = token_transfer_calldata(&addr(2), U256::from(300u64));
        let res = execute_transaction(&view, &BlockEnv::default(), &call_tx(addr(1), t, data, 0))
            .unwrap();
        assert!(!res.receipt.success);
        // No token slots written.
        assert!(!res
            .rw
            .writes
            .keys()
            .any(|k| matches!(k, AccessKey::Storage(a, _) if *a == t)));
    }

    #[test]
    fn token_transfers_to_distinct_holders_do_not_conflict_on_storage() {
        let mut w = base_world();
        let t = addr(100);
        w.set_code(t, token());
        w.set_storage(t, token_balance_slot(&addr(1)), U256::from(1000u64));
        w.set_storage(t, token_balance_slot(&addr(2)), U256::from(1000u64));
        let view = WorldView::new(&w);
        let tx_a = call_tx(addr(1), t, token_transfer_calldata(&addr(3), U256::ONE), 0);
        let tx_b = call_tx(addr(2), t, token_transfer_calldata(&addr(4), U256::ONE), 0);
        let ra = execute_transaction(&view, &BlockEnv::default(), &tx_a).unwrap();
        let rb = execute_transaction(&view, &BlockEnv::default(), &tx_b).unwrap();
        assert!(ra.receipt.success && rb.receipt.success);
        // Slot-level footprints are disjoint.
        assert!(!ra.rw.conflicts_with(&rb.rw));
        // But the account-level view sees both touching the token contract.
        assert!(ra.rw.conflicts_with_account_level(&rb.rw));
    }

    #[test]
    fn amm_swap_updates_reserves() {
        let mut w = base_world();
        let p = addr(100);
        w.set_code(p, amm_pair());
        w.set_storage(p, amm_reserve_slot(0), U256::from(1_000_000u64));
        w.set_storage(p, amm_reserve_slot(1), U256::from(1_000_000u64));
        let view = WorldView::new(&w);
        let data = amm_swap_calldata(0, U256::from(10_000u64));
        let res = execute_transaction(&view, &BlockEnv::default(), &call_tx(addr(1), p, data, 0))
            .unwrap();
        assert!(res.receipt.success);
        let r0 = res.rw.writes[&AccessKey::Storage(p, amm_reserve_slot(0))];
        let r1 = res.rw.writes[&AccessKey::Storage(p, amm_reserve_slot(1))];
        assert_eq!(r0, U256::from(1_010_000u64));
        // out = 1_000_000 * 10_000 / 1_010_000 = 9900 (floor)
        assert_eq!(r1, U256::from(1_000_000u64 - 9_900));
        // Product does not decrease below initial k (AMM invariant).
        assert!(r0 * r1 >= U256::from(1_000_000u64) * U256::from(1_000_000u64));
    }

    #[test]
    fn all_amm_swaps_conflict() {
        let mut w = base_world();
        let p = addr(100);
        w.set_code(p, amm_pair());
        w.set_storage(p, amm_reserve_slot(0), U256::from(1_000_000u64));
        w.set_storage(p, amm_reserve_slot(1), U256::from(1_000_000u64));
        let view = WorldView::new(&w);
        let ra = execute_transaction(
            &view,
            &BlockEnv::default(),
            &call_tx(addr(1), p, amm_swap_calldata(0, U256::from(5u64)), 0),
        )
        .unwrap();
        let rb = execute_transaction(
            &view,
            &BlockEnv::default(),
            &call_tx(addr(2), p, amm_swap_calldata(1, U256::from(7u64)), 0),
        )
        .unwrap();
        assert!(ra.rw.conflicts_with(&rb.rw), "AMM swaps must conflict");
    }

    #[test]
    fn nft_mint_assigns_sequential_ids() {
        let mut w = base_world();
        let n = addr(100);
        w.set_code(n, nft());
        for (i, minter) in [addr(1), addr(2)].into_iter().enumerate() {
            let view = WorldView::new(&w);
            let res =
                execute_transaction(&view, &BlockEnv::default(), &call_tx(minter, n, vec![], 0))
                    .unwrap();
            assert!(res.receipt.success);
            let id = i as u64;
            assert_eq!(
                res.rw.writes[&AccessKey::Storage(n, nft_owner_slot(id))],
                address_word(&minter)
            );
            assert_eq!(
                res.rw.writes[&AccessKey::Storage(n, nft_supply_slot())],
                U256::from(id + 1)
            );
            // Every mint reads the supply counter: two mints always conflict.
            assert!(res
                .rw
                .reads
                .contains_key(&AccessKey::Storage(n, nft_supply_slot())));
            w.apply_writes(&res.rw.writes);
        }
    }

    #[test]
    fn concurrent_mints_conflict_on_the_supply_counter() {
        let mut w = base_world();
        let n = addr(100);
        w.set_code(n, nft());
        let view = WorldView::new(&w);
        let a = execute_transaction(&view, &BlockEnv::default(), &call_tx(addr(1), n, vec![], 0))
            .unwrap();
        let b = execute_transaction(&view, &BlockEnv::default(), &call_tx(addr(2), n, vec![], 0))
            .unwrap();
        assert!(a.rw.conflicts_with(&b.rw), "mints must conflict");
    }

    #[test]
    fn registry_write_still_records_a_gas_metering_read() {
        let mut w = base_world();
        let r = addr(100);
        w.set_code(r, registry());
        let view = WorldView::new(&w);
        let tx = call_tx(addr(1), r, registry_calldata(U256::from(77u64)), 0);
        let res = execute_transaction(&view, &BlockEnv::default(), &tx).unwrap();
        assert!(res.receipt.success);
        let slot = AccessKey::Storage(r, H256::from_low_u64(0));
        assert_eq!(res.rw.writes[&slot], U256::from(77u64));
        // The reproduction finding: the contract never SLOADs slot 0, yet
        // the slot appears in the read set because SSTORE's set-vs-reset
        // pricing observes the old value. EVM storage writes are never
        // blind, so WSI's write-write tolerance cannot fire on them.
        assert!(res.rw.reads.contains_key(&slot));
    }

    #[test]
    fn concurrent_registry_writes_conflict_via_the_metering_read() {
        let mut w = base_world();
        let r = addr(100);
        w.set_code(r, registry());
        let view = WorldView::new(&w);
        let a = execute_transaction(
            &view,
            &BlockEnv::default(),
            &call_tx(addr(1), r, registry_calldata(U256::ONE), 0),
        )
        .unwrap();
        let b = execute_transaction(
            &view,
            &BlockEnv::default(),
            &call_tx(addr(2), r, registry_calldata(U256::from(2u64)), 0),
        )
        .unwrap();
        let slot = AccessKey::Storage(r, H256::from_low_u64(0));
        assert!(a.rw.conflicts_with(&b.rw));
        // Both footprints carry a read of the written slot (gas metering),
        // which is what turns the would-be WAW into RAW/WAR under WSI.
        assert!(a.rw.reads.contains_key(&slot) && b.rw.reads.contains_key(&slot));
    }

    #[test]
    fn counter_gas_is_storage_dominated() {
        let mut w = base_world();
        let c = addr(100);
        w.set_code(c, counter());
        let view = WorldView::new(&w);
        let res = execute_transaction(&view, &BlockEnv::default(), &call_tx(addr(1), c, vec![], 0))
            .unwrap();
        // 21000 intrinsic + SLOAD + SSTORE_SET dominate.
        assert!(res.receipt.gas_used > 21_000 + crate::gas::SLOAD + crate::gas::SSTORE_SET - 100);
    }
}
