//! The gas schedule (Istanbul-flavoured).
//!
//! Gas matters twice in BlockPilot: it meters execution as in Ethereum, and
//! §4.3 of the paper uses it as the *execution-time estimate* the validator
//! scheduler balances threads with ("the most time-consuming operations
//! (namely, SLOAD and SSTORE) have very high gas costs"). The constants below
//! keep that property: storage operations dominate.

use bp_types::Gas;

/// Base cost charged for every transaction.
pub const TX_BASE: Gas = 21_000;
/// Per non-zero calldata byte.
pub const TX_DATA_NONZERO: Gas = 16;
/// Per zero calldata byte.
pub const TX_DATA_ZERO: Gas = 4;
/// Extra base cost for contract creation.
pub const TX_CREATE: Gas = 32_000;

/// Cheap ALU/stack ops.
pub const VERYLOW: Gas = 3;
/// MUL/DIV-class ops.
pub const LOW: Gas = 5;
/// ADDMOD/MULMOD-class ops.
pub const MID: Gas = 8;
/// JUMPI.
pub const HIGH: Gas = 10;
/// JUMPDEST.
pub const JUMPDEST: Gas = 1;
/// Quick context reads (ADDRESS, CALLER, ...).
pub const BASE: Gas = 2;
/// EXP static part.
pub const EXP: Gas = 10;
/// EXP per exponent byte.
pub const EXP_BYTE: Gas = 50;
/// SHA3 static part.
pub const SHA3: Gas = 30;
/// SHA3 per 32-byte word.
pub const SHA3_WORD: Gas = 6;
/// SLOAD (Istanbul).
pub const SLOAD: Gas = 800;
/// SSTORE when a zero slot becomes non-zero.
pub const SSTORE_SET: Gas = 20_000;
/// SSTORE otherwise.
pub const SSTORE_RESET: Gas = 5_000;
/// BALANCE / EXTCODESIZE.
pub const BALANCE: Gas = 700;
/// SELFBALANCE.
pub const SELFBALANCE: Gas = 5;
/// CALL base.
pub const CALL: Gas = 700;
/// Surcharge for value-transferring calls.
pub const CALL_VALUE: Gas = 9_000;
/// Gas stipend forwarded to the callee of a value transfer.
pub const CALL_STIPEND: Gas = 2_300;
/// CREATE base.
pub const CREATE: Gas = 32_000;
/// LOG base.
pub const LOG: Gas = 375;
/// LOG per topic.
pub const LOG_TOPIC: Gas = 375;
/// LOG per data byte.
pub const LOG_DATA: Gas = 8;
/// Per-byte cost of storing created contract code.
pub const CODE_DEPOSIT: Gas = 200;
/// Memory expansion: linear coefficient per 32-byte word.
pub const MEMORY_WORD: Gas = 3;
/// Memory expansion: quadratic divisor.
pub const MEMORY_QUAD_DIVISOR: Gas = 512;
/// COPY operations per word.
pub const COPY_WORD: Gas = 3;

/// Total memory cost for `words` 32-byte words.
#[inline]
pub fn memory_cost(words: u64) -> Gas {
    MEMORY_WORD
        .saturating_mul(words)
        .saturating_add(words.saturating_mul(words) / MEMORY_QUAD_DIVISOR)
}

/// Marginal gas to grow memory from `from_words` to `to_words`.
#[inline]
pub fn memory_expansion(from_words: u64, to_words: u64) -> Gas {
    if to_words <= from_words {
        0
    } else {
        memory_cost(to_words) - memory_cost(from_words)
    }
}

/// Intrinsic gas of a transaction: base, calldata, creation surcharge.
pub fn intrinsic_gas(data: &[u8], is_create: bool) -> Gas {
    let data_gas: Gas = data
        .iter()
        .map(|&b| {
            if b == 0 {
                TX_DATA_ZERO
            } else {
                TX_DATA_NONZERO
            }
        })
        .sum();
    TX_BASE + data_gas + if is_create { TX_CREATE } else { 0 }
}

// The scheduler's gas-as-time proxy relies on storage ops dominating ALU
// work; checked at compile time.
const _: () = {
    assert!(SLOAD > 100 * VERYLOW);
    assert!(SSTORE_SET > SLOAD);
    assert!(SSTORE_RESET > SLOAD);
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_base_only() {
        assert_eq!(intrinsic_gas(&[], false), 21_000);
        assert_eq!(intrinsic_gas(&[], true), 53_000);
    }

    #[test]
    fn intrinsic_counts_data_bytes() {
        assert_eq!(
            intrinsic_gas(&[0, 0, 1, 2], false),
            21_000 + 4 + 4 + 16 + 16
        );
    }

    #[test]
    fn memory_cost_is_quadratic() {
        assert_eq!(memory_cost(0), 0);
        assert_eq!(memory_cost(1), 3);
        assert_eq!(memory_cost(32), 32 * 3 + 2);
        // Expansion is the marginal cost.
        assert_eq!(memory_expansion(0, 10), memory_cost(10));
        assert_eq!(memory_expansion(10, 10), 0);
        assert_eq!(memory_expansion(10, 5), 0);
        assert_eq!(
            memory_expansion(5, 10) + memory_expansion(0, 5),
            memory_cost(10)
        );
    }
}
