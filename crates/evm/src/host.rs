//! The interpreter's window onto state: snapshot views plus a buffered,
//! footprint-recording host.
//!
//! The EVM never touches `WorldState` directly. It reads through a
//! [`StateView`] (either the flat world for serial execution, or an OCC-WSI
//! snapshot of the [`MultiVersionState`]) and writes into the
//! [`BufferedHost`]'s private buffer. When the transaction finishes, the
//! buffer *is* its write set and the recorded reads *are* its read set — the
//! `rs`/`ws` of Algorithm 1 — with zero extra instrumentation cost.
//!
//! The buffers are [`FxHashMap`]s (SipHash was the single largest per-tx
//! cost) and nested-call checkpoints are *journaled*: every buffered write
//! pushes an undo entry, so a [`Checkpoint`] is three integers and a revert
//! pops the journal tail instead of cloning whole maps. Keys here are
//! transaction-local and bounded by the gas limit, so the non-DoS-resistant
//! hash is safe.

use std::sync::Arc;

use bp_state::{MultiVersionState, WorldState};
use bp_types::FxBuildHasher;
use bp_types::{AccessKey, Address, FxHashMap, RwSet, H256, U256};
use serde::{Deserialize, Serialize};

use crate::analysis::{AnalysisCache, CodeAnalysis};

/// A read-only, versioned view of some state.
pub trait StateView {
    /// The value of `key` and the version it was committed at (0 = pre-block
    /// state).
    fn read_key(&self, key: &AccessKey) -> (U256, u64);
    /// The code of `addr` in this view.
    fn code(&self, addr: &Address) -> Arc<Vec<u8>>;
}

/// Direct view of a flat world (serial execution; validators' lane
/// executors). Everything reads at version 0.
///
/// Carries a one-account memo (see [`WorldState::read_key_memo`]): a
/// transaction's reads cluster on a couple of accounts, and skipping the
/// repeat account-map probes is a measurable share of per-transaction time
/// on mainnet-sized states. The memo borrows from the world, so a live view
/// keeps the world immutable — create one per transaction, drop it before
/// applying writes.
pub struct WorldView<'a> {
    world: &'a WorldState,
    memo: std::cell::Cell<Option<(Address, &'a bp_state::AccountState)>>,
}

impl<'a> WorldView<'a> {
    /// A fresh view of `world` with an empty memo.
    pub fn new(world: &'a WorldState) -> Self {
        WorldView {
            world,
            memo: std::cell::Cell::new(None),
        }
    }

    /// The world this view reads.
    pub fn world(&self) -> &'a WorldState {
        self.world
    }
}

impl StateView for WorldView<'_> {
    fn read_key(&self, key: &AccessKey) -> (U256, u64) {
        let mut memo = self.memo.take();
        let value = self.world.read_key_memo(key, &mut memo);
        self.memo.set(memo);
        (value, 0)
    }

    fn code(&self, addr: &Address) -> Arc<Vec<u8>> {
        if let Some((cached, acct)) = self.memo.get() {
            if cached == *addr {
                return Arc::clone(&acct.code);
            }
        }
        self.world.code(addr)
    }
}

/// An OCC-WSI snapshot: the multi-version state as of `version`.
pub struct MvSnapshot<'a> {
    mv: &'a MultiVersionState,
    version: u64,
}

impl<'a> MvSnapshot<'a> {
    /// Snapshot of `mv` at `version`.
    ///
    /// Under the two-phase proposer commit, `version` may still be pending
    /// publication; taking the snapshot waits on the multi-version state's
    /// visibility gate so every subsequent read is serialized against a
    /// fully published prefix. Without a gate this is free.
    pub fn new(mv: &'a MultiVersionState, version: u64) -> Self {
        mv.wait_visible(version);
        MvSnapshot { mv, version }
    }

    /// The snapshot version.
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl StateView for MvSnapshot<'_> {
    fn read_key(&self, key: &AccessKey) -> (U256, u64) {
        self.mv.read_at(key, self.version)
    }

    fn code(&self, addr: &Address) -> Arc<Vec<u8>> {
        self.mv.code(addr)
    }
}

/// One EVM log record.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log {
    /// Emitting contract.
    pub address: Address,
    /// Indexed topics (0..=4).
    pub topics: Vec<H256>,
    /// Opaque payload.
    pub data: Vec<u8>,
}

/// One buffer undo-log entry: the key and its previous value (`None` =
/// absent before the write).
type JournalEntry = (AccessKey, Option<U256>);

/// A checkpoint for nested-frame revert: journal watermarks, not clones.
#[derive(Clone, Copy, Debug)]
pub struct Checkpoint {
    journal_len: usize,
    code_journal_len: usize,
    log_len: usize,
}

/// Buffered, footprint-recording state access for one transaction.
pub struct BufferedHost<'a, V: StateView> {
    view: &'a V,
    cache: Arc<AnalysisCache>,
    rw: RwSet,
    buffer: FxHashMap<AccessKey, U256>,
    code_buffer: FxHashMap<Address, Arc<Vec<u8>>>,
    /// Undo log for `buffer`: the key and its previous value (`None` =
    /// absent). Reverting pops entries above a checkpoint's watermark in
    /// reverse, which restores the exact pre-checkpoint buffer.
    journal: Vec<JournalEntry>,
    /// Undo log for `code_buffer`.
    code_journal: Vec<(Address, Option<Arc<Vec<u8>>>)>,
    logs: Vec<Log>,
    /// The most recent `read` result, cleared by any write or revert. A hit
    /// implies no intervening write, so the full path would return the same
    /// value and the footprint already holds the key — the whole
    /// buffer-probe/record/view-read sequence can be skipped. This pays off
    /// on the ubiquitous `SLOAD slot … SSTORE slot` pattern, where the
    /// store's current-value read (for the set-vs-reset gas split) repeats
    /// the load that computed the new value.
    last_read: Option<(AccessKey, U256)>,
}

impl<'a, V: StateView> BufferedHost<'a, V> {
    /// A fresh host over `view`, using the process-wide analysis cache.
    pub fn new(view: &'a V) -> Self {
        Self::with_cache(view, AnalysisCache::global())
    }

    /// A fresh host over `view` with an explicit analysis cache (proposer
    /// workers and validator lanes thread a shared per-node cache here so
    /// hit rates are observable per run).
    pub fn with_cache(view: &'a V, cache: Arc<AnalysisCache>) -> Self {
        // Pre-size for a typical transaction footprint (a handful of
        // balance/nonce/storage keys) so the hot path never reallocates.
        let mut rw = RwSet::new();
        rw.reads.reserve(8);
        // The journal never escapes the host (unlike the buffer and read
        // set, which move into the result), so its backing allocation is
        // recycled per-thread across transactions.
        let journal = JOURNAL_POOL
            .with(|p| p.borrow_mut().pop())
            .unwrap_or_else(|| Vec::with_capacity(32));
        BufferedHost {
            view,
            cache,
            rw,
            buffer: FxHashMap::with_capacity_and_hasher(8, FxBuildHasher::default()),
            code_buffer: FxHashMap::default(),
            journal,
            code_journal: Vec::new(),
            logs: Vec::new(),
            last_read: None,
        }
    }

    /// The cached [`CodeAnalysis`] for `code` (computed on first sight).
    pub fn analysis(&self, code: &Arc<Vec<u8>>) -> Arc<CodeAnalysis> {
        self.cache.get(code)
    }

    /// The analysis cache this host resolves code through.
    pub fn analysis_cache(&self) -> &Arc<AnalysisCache> {
        &self.cache
    }

    /// Reads `key`: the transaction's own pending write if any, otherwise the
    /// underlying view (recording the read and its version).
    pub fn read(&mut self, key: AccessKey) -> U256 {
        if let Some((k, v)) = self.last_read {
            if k == key {
                return v;
            }
        }
        let value = if let Some(v) = self.buffer.get(&key) {
            *v
        } else {
            let (value, version) = self.view.read_key(&key);
            self.rw.record_read(key, version);
            value
        };
        self.last_read = Some((key, value));
        value
    }

    /// Buffers a write to `key`, journaling the displaced value so nested
    /// frames can revert without cloning the buffer.
    pub fn write(&mut self, key: AccessKey, value: U256) {
        self.last_read = None;
        let old = self.buffer.insert(key, value);
        self.journal.push((key, old));
    }

    /// The code of `addr`, respecting in-transaction deployments.
    pub fn code(&mut self, addr: &Address) -> Arc<Vec<u8>> {
        if let Some(c) = self.code_buffer.get(addr) {
            return Arc::clone(c);
        }
        // Code identity participates in conflict detection: a creation at
        // this address by a concurrent transaction must abort us.
        let (_, version) = self.view.read_key(&AccessKey::Code(*addr));
        self.rw.record_read(AccessKey::Code(*addr), version);
        self.view.code(addr)
    }

    /// Deploys code at `addr` within this transaction.
    pub fn set_code(&mut self, addr: Address, code: Vec<u8>) {
        let hash = bp_crypto::keccak256(&code).to_u256();
        let old = self.code_buffer.insert(addr, Arc::new(code));
        self.code_journal.push((addr, old));
        self.write(AccessKey::Code(addr), hash);
    }

    /// Convenience balance read.
    pub fn balance(&mut self, addr: &Address) -> U256 {
        self.read(AccessKey::Balance(*addr))
    }

    /// Convenience balance write.
    pub fn set_balance(&mut self, addr: Address, value: U256) {
        self.write(AccessKey::Balance(addr), value);
    }

    /// Moves `value` from `from` to `to`; fails (and writes nothing) on
    /// insufficient balance.
    pub fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        if value.is_zero() {
            return true;
        }
        let from_bal = self.balance(&from);
        match from_bal.checked_sub(value) {
            Some(rest) => {
                self.set_balance(from, rest);
                let to_bal = self.balance(&to);
                self.set_balance(to, to_bal + value);
                true
            }
            None => false,
        }
    }

    /// Appends a log.
    pub fn log(&mut self, log: Log) {
        self.logs.push(log);
    }

    /// Snapshot for nested-call revert: O(1), just journal watermarks.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            journal_len: self.journal.len(),
            code_journal_len: self.code_journal.len(),
            log_len: self.logs.len(),
        }
    }

    /// Rolls writes, deployments and logs back to `cp` by unwinding the
    /// journals in reverse. Reads stay recorded: a reverted frame still
    /// *observed* those keys, and OCC validation must cover them.
    pub fn revert_to(&mut self, cp: Checkpoint) {
        self.last_read = None;
        while self.journal.len() > cp.journal_len {
            let (key, old) = self.journal.pop().expect("len checked");
            match old {
                Some(v) => self.buffer.insert(key, v),
                None => self.buffer.remove(&key),
            };
        }
        while self.code_journal.len() > cp.code_journal_len {
            let (addr, old) = self.code_journal.pop().expect("len checked");
            match old {
                Some(c) => self.code_buffer.insert(addr, c),
                None => self.code_buffer.remove(&addr),
            };
        }
        self.logs.truncate(cp.log_len);
    }

    /// Finishes the transaction: the recorded footprint (reads as observed,
    /// writes = final buffer), logs, and deployed code. The buffer *is* the
    /// write set (same map type), so this is a move, not a conversion.
    pub fn finish(mut self) -> (RwSet, Vec<Log>, FxHashMap<Address, Arc<Vec<u8>>>) {
        debug_assert!(self.rw.writes.is_empty());
        self.rw.writes = self.buffer;
        let mut journal = std::mem::take(&mut self.journal);
        journal.clear();
        JOURNAL_POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < 8 {
                pool.push(journal);
            }
        });
        (self.rw, self.logs, self.code_buffer)
    }
}

thread_local! {
    /// Recycled undo-log buffers (see [`BufferedHost::with_cache`]). Hosts
    /// abandoned on admission errors simply drop their journal; only the
    /// `finish` path returns one, so the pool stays tiny.
    static JOURNAL_POOL: std::cell::RefCell<Vec<Vec<JournalEntry>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn world() -> WorldState {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from(100u64));
        w.set_storage(addr(2), H256::from_low_u64(0), U256::from(7u64));
        w.set_code(addr(2), vec![0x00]);
        w
    }

    #[test]
    fn reads_recorded_with_version() {
        let w = world();
        let view = WorldView::new(&w);
        let mut h = BufferedHost::new(&view);
        assert_eq!(h.read(AccessKey::Balance(addr(1))), U256::from(100u64));
        let (rw, _, _) = h.finish();
        assert_eq!(rw.reads[&AccessKey::Balance(addr(1))], 0);
        assert!(rw.writes.is_empty());
    }

    #[test]
    fn own_writes_visible_and_not_recorded_as_reads() {
        let w = world();
        let view = WorldView::new(&w);
        let mut h = BufferedHost::new(&view);
        h.write(AccessKey::Balance(addr(9)), U256::from(5u64));
        assert_eq!(h.read(AccessKey::Balance(addr(9))), U256::from(5u64));
        let (rw, _, _) = h.finish();
        assert!(!rw.reads.contains_key(&AccessKey::Balance(addr(9))));
        assert_eq!(rw.writes[&AccessKey::Balance(addr(9))], U256::from(5u64));
    }

    #[test]
    fn transfer_moves_value() {
        let w = world();
        let view = WorldView::new(&w);
        let mut h = BufferedHost::new(&view);
        assert!(h.transfer(addr(1), addr(3), U256::from(30u64)));
        assert_eq!(h.balance(&addr(1)), U256::from(70u64));
        assert_eq!(h.balance(&addr(3)), U256::from(30u64));
        // Insufficient funds: nothing changes.
        assert!(!h.transfer(addr(1), addr(3), U256::from(1000u64)));
        assert_eq!(h.balance(&addr(1)), U256::from(70u64));
    }

    #[test]
    fn zero_transfer_always_succeeds_without_reads() {
        let w = world();
        let view = WorldView::new(&w);
        let mut h = BufferedHost::new(&view);
        assert!(h.transfer(addr(5), addr(6), U256::ZERO));
        let (rw, _, _) = h.finish();
        assert!(rw.reads.is_empty());
    }

    #[test]
    fn checkpoint_revert_rolls_back_writes_keeps_reads() {
        let w = world();
        let view = WorldView::new(&w);
        let mut h = BufferedHost::new(&view);
        h.write(AccessKey::Balance(addr(1)), U256::from(1u64));
        let cp = h.checkpoint();
        h.write(AccessKey::Balance(addr(4)), U256::from(2u64));
        h.read(AccessKey::Storage(addr(2), H256::from_low_u64(0)));
        h.log(Log {
            address: addr(2),
            topics: vec![],
            data: vec![1],
        });
        h.revert_to(cp);
        let (rw, logs, _) = h.finish();
        assert!(logs.is_empty());
        assert!(rw.writes.contains_key(&AccessKey::Balance(addr(1))));
        assert!(!rw.writes.contains_key(&AccessKey::Balance(addr(4))));
        // The read inside the reverted region is still in the footprint.
        assert!(rw
            .reads
            .contains_key(&AccessKey::Storage(addr(2), H256::from_low_u64(0))));
    }

    #[test]
    fn set_code_visible_in_tx() {
        let w = world();
        let view = WorldView::new(&w);
        let mut h = BufferedHost::new(&view);
        h.set_code(addr(7), vec![0xAA, 0xBB]);
        assert_eq!(*h.code(&addr(7)), vec![0xAA, 0xBB]);
        let (rw, _, deployed) = h.finish();
        assert!(rw.writes.contains_key(&AccessKey::Code(addr(7))));
        assert_eq!(*deployed[&addr(7)], vec![0xAA, 0xBB]);
    }

    #[test]
    fn mv_snapshot_respects_version() {
        let base = Arc::new(world());
        let mv = MultiVersionState::new(base, 2);
        let mut ws: bp_types::WriteSet = Default::default();
        ws.insert(AccessKey::Balance(addr(1)), U256::from(60u64));
        mv.commit_writes(&ws, 2);

        let snap1 = MvSnapshot::new(&mv, 1);
        let mut h1 = BufferedHost::new(&snap1);
        assert_eq!(h1.read(AccessKey::Balance(addr(1))), U256::from(100u64));

        let snap2 = MvSnapshot::new(&mv, 2);
        let mut h2 = BufferedHost::new(&snap2);
        assert_eq!(h2.read(AccessKey::Balance(addr(1))), U256::from(60u64));
        let (rw, _, _) = h2.finish();
        assert_eq!(rw.reads[&AccessKey::Balance(addr(1))], 2);
    }
}
