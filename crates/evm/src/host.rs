//! The interpreter's window onto state: snapshot views plus a buffered,
//! footprint-recording host.
//!
//! The EVM never touches `WorldState` directly. It reads through a
//! [`StateView`] (either the flat world for serial execution, or an OCC-WSI
//! snapshot of the [`MultiVersionState`]) and writes into the
//! [`BufferedHost`]'s private buffer. When the transaction finishes, the
//! buffer *is* its write set and the recorded reads *are* its read set — the
//! `rs`/`ws` of Algorithm 1 — with zero extra instrumentation cost.

use std::collections::HashMap;
use std::sync::Arc;

use bp_state::{MultiVersionState, WorldState};
use bp_types::{AccessKey, Address, RwSet, H256, U256};
use serde::{Deserialize, Serialize};

/// A read-only, versioned view of some state.
pub trait StateView {
    /// The value of `key` and the version it was committed at (0 = pre-block
    /// state).
    fn read_key(&self, key: &AccessKey) -> (U256, u64);
    /// The code of `addr` in this view.
    fn code(&self, addr: &Address) -> Arc<Vec<u8>>;
}

/// Direct view of a flat world (serial execution; validators' lane
/// executors). Everything reads at version 0.
pub struct WorldView<'a>(pub &'a WorldState);

impl StateView for WorldView<'_> {
    fn read_key(&self, key: &AccessKey) -> (U256, u64) {
        (self.0.read_key(key), 0)
    }

    fn code(&self, addr: &Address) -> Arc<Vec<u8>> {
        self.0.code(addr)
    }
}

/// An OCC-WSI snapshot: the multi-version state as of `version`.
pub struct MvSnapshot<'a> {
    mv: &'a MultiVersionState,
    version: u64,
}

impl<'a> MvSnapshot<'a> {
    /// Snapshot of `mv` at `version`.
    ///
    /// Under the two-phase proposer commit, `version` may still be pending
    /// publication; taking the snapshot waits on the multi-version state's
    /// visibility gate so every subsequent read is serialized against a
    /// fully published prefix. Without a gate this is free.
    pub fn new(mv: &'a MultiVersionState, version: u64) -> Self {
        mv.wait_visible(version);
        MvSnapshot { mv, version }
    }

    /// The snapshot version.
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl StateView for MvSnapshot<'_> {
    fn read_key(&self, key: &AccessKey) -> (U256, u64) {
        self.mv.read_at(key, self.version)
    }

    fn code(&self, addr: &Address) -> Arc<Vec<u8>> {
        self.mv.code(addr)
    }
}

/// One EVM log record.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log {
    /// Emitting contract.
    pub address: Address,
    /// Indexed topics (0..=4).
    pub topics: Vec<H256>,
    /// Opaque payload.
    pub data: Vec<u8>,
}

/// A checkpoint for nested-frame revert.
pub struct Checkpoint {
    buffer: HashMap<AccessKey, U256>,
    code_buffer: HashMap<Address, Arc<Vec<u8>>>,
    log_len: usize,
}

/// Buffered, footprint-recording state access for one transaction.
pub struct BufferedHost<'a, V: StateView> {
    view: &'a V,
    rw: RwSet,
    buffer: HashMap<AccessKey, U256>,
    code_buffer: HashMap<Address, Arc<Vec<u8>>>,
    logs: Vec<Log>,
}

impl<'a, V: StateView> BufferedHost<'a, V> {
    /// A fresh host over `view`.
    pub fn new(view: &'a V) -> Self {
        BufferedHost {
            view,
            rw: RwSet::new(),
            buffer: HashMap::new(),
            code_buffer: HashMap::new(),
            logs: Vec::new(),
        }
    }

    /// Reads `key`: the transaction's own pending write if any, otherwise the
    /// underlying view (recording the read and its version).
    pub fn read(&mut self, key: AccessKey) -> U256 {
        if let Some(v) = self.buffer.get(&key) {
            return *v;
        }
        let (value, version) = self.view.read_key(&key);
        self.rw.record_read(key, version);
        value
    }

    /// Buffers a write to `key`.
    pub fn write(&mut self, key: AccessKey, value: U256) {
        self.buffer.insert(key, value);
    }

    /// The code of `addr`, respecting in-transaction deployments.
    pub fn code(&mut self, addr: &Address) -> Arc<Vec<u8>> {
        if let Some(c) = self.code_buffer.get(addr) {
            return Arc::clone(c);
        }
        // Code identity participates in conflict detection: a creation at
        // this address by a concurrent transaction must abort us.
        let (_, version) = self.view.read_key(&AccessKey::Code(*addr));
        self.rw.record_read(AccessKey::Code(*addr), version);
        self.view.code(addr)
    }

    /// Deploys code at `addr` within this transaction.
    pub fn set_code(&mut self, addr: Address, code: Vec<u8>) {
        let hash = bp_crypto::keccak256(&code).to_u256();
        self.code_buffer.insert(addr, Arc::new(code));
        self.buffer.insert(AccessKey::Code(addr), hash);
    }

    /// Convenience balance read.
    pub fn balance(&mut self, addr: &Address) -> U256 {
        self.read(AccessKey::Balance(*addr))
    }

    /// Convenience balance write.
    pub fn set_balance(&mut self, addr: Address, value: U256) {
        self.write(AccessKey::Balance(addr), value);
    }

    /// Moves `value` from `from` to `to`; fails (and writes nothing) on
    /// insufficient balance.
    pub fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        if value.is_zero() {
            return true;
        }
        let from_bal = self.balance(&from);
        match from_bal.checked_sub(value) {
            Some(rest) => {
                self.set_balance(from, rest);
                let to_bal = self.balance(&to);
                self.set_balance(to, to_bal + value);
                true
            }
            None => false,
        }
    }

    /// Appends a log.
    pub fn log(&mut self, log: Log) {
        self.logs.push(log);
    }

    /// Snapshot for nested-call revert.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            buffer: self.buffer.clone(),
            code_buffer: self.code_buffer.clone(),
            log_len: self.logs.len(),
        }
    }

    /// Rolls writes, deployments and logs back to `cp`. Reads stay recorded:
    /// a reverted frame still *observed* those keys, and OCC validation must
    /// cover them.
    pub fn revert_to(&mut self, cp: Checkpoint) {
        self.buffer = cp.buffer;
        self.code_buffer = cp.code_buffer;
        self.logs.truncate(cp.log_len);
    }

    /// Finishes the transaction: the recorded footprint (reads as observed,
    /// writes = final buffer), logs, and deployed code.
    pub fn finish(mut self) -> (RwSet, Vec<Log>, HashMap<Address, Arc<Vec<u8>>>) {
        for (key, value) in &self.buffer {
            self.rw.record_write(*key, *value);
        }
        (self.rw, self.logs, self.code_buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn world() -> WorldState {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from(100u64));
        w.set_storage(addr(2), H256::from_low_u64(0), U256::from(7u64));
        w.set_code(addr(2), vec![0x00]);
        w
    }

    #[test]
    fn reads_recorded_with_version() {
        let w = world();
        let view = WorldView(&w);
        let mut h = BufferedHost::new(&view);
        assert_eq!(h.read(AccessKey::Balance(addr(1))), U256::from(100u64));
        let (rw, _, _) = h.finish();
        assert_eq!(rw.reads[&AccessKey::Balance(addr(1))], 0);
        assert!(rw.writes.is_empty());
    }

    #[test]
    fn own_writes_visible_and_not_recorded_as_reads() {
        let w = world();
        let view = WorldView(&w);
        let mut h = BufferedHost::new(&view);
        h.write(AccessKey::Balance(addr(9)), U256::from(5u64));
        assert_eq!(h.read(AccessKey::Balance(addr(9))), U256::from(5u64));
        let (rw, _, _) = h.finish();
        assert!(!rw.reads.contains_key(&AccessKey::Balance(addr(9))));
        assert_eq!(rw.writes[&AccessKey::Balance(addr(9))], U256::from(5u64));
    }

    #[test]
    fn transfer_moves_value() {
        let w = world();
        let view = WorldView(&w);
        let mut h = BufferedHost::new(&view);
        assert!(h.transfer(addr(1), addr(3), U256::from(30u64)));
        assert_eq!(h.balance(&addr(1)), U256::from(70u64));
        assert_eq!(h.balance(&addr(3)), U256::from(30u64));
        // Insufficient funds: nothing changes.
        assert!(!h.transfer(addr(1), addr(3), U256::from(1000u64)));
        assert_eq!(h.balance(&addr(1)), U256::from(70u64));
    }

    #[test]
    fn zero_transfer_always_succeeds_without_reads() {
        let w = world();
        let view = WorldView(&w);
        let mut h = BufferedHost::new(&view);
        assert!(h.transfer(addr(5), addr(6), U256::ZERO));
        let (rw, _, _) = h.finish();
        assert!(rw.reads.is_empty());
    }

    #[test]
    fn checkpoint_revert_rolls_back_writes_keeps_reads() {
        let w = world();
        let view = WorldView(&w);
        let mut h = BufferedHost::new(&view);
        h.write(AccessKey::Balance(addr(1)), U256::from(1u64));
        let cp = h.checkpoint();
        h.write(AccessKey::Balance(addr(4)), U256::from(2u64));
        h.read(AccessKey::Storage(addr(2), H256::from_low_u64(0)));
        h.log(Log {
            address: addr(2),
            topics: vec![],
            data: vec![1],
        });
        h.revert_to(cp);
        let (rw, logs, _) = h.finish();
        assert!(logs.is_empty());
        assert!(rw.writes.contains_key(&AccessKey::Balance(addr(1))));
        assert!(!rw.writes.contains_key(&AccessKey::Balance(addr(4))));
        // The read inside the reverted region is still in the footprint.
        assert!(rw
            .reads
            .contains_key(&AccessKey::Storage(addr(2), H256::from_low_u64(0))));
    }

    #[test]
    fn set_code_visible_in_tx() {
        let w = world();
        let view = WorldView(&w);
        let mut h = BufferedHost::new(&view);
        h.set_code(addr(7), vec![0xAA, 0xBB]);
        assert_eq!(*h.code(&addr(7)), vec![0xAA, 0xBB]);
        let (rw, _, deployed) = h.finish();
        assert!(rw.writes.contains_key(&AccessKey::Code(addr(7))));
        assert_eq!(*deployed[&addr(7)], vec![0xAA, 0xBB]);
    }

    #[test]
    fn mv_snapshot_respects_version() {
        let base = Arc::new(world());
        let mv = MultiVersionState::new(base, 2);
        let mut ws: bp_types::WriteSet = Default::default();
        ws.insert(AccessKey::Balance(addr(1)), U256::from(60u64));
        mv.commit_writes(&ws, 2);

        let snap1 = MvSnapshot::new(&mv, 1);
        let mut h1 = BufferedHost::new(&snap1);
        assert_eq!(h1.read(AccessKey::Balance(addr(1))), U256::from(100u64));

        let snap2 = MvSnapshot::new(&mv, 2);
        let mut h2 = BufferedHost::new(&snap2);
        assert_eq!(h2.read(AccessKey::Balance(addr(1))), U256::from(60u64));
        let (rw, _, _) = h2.finish();
        assert_eq!(rw.reads[&AccessKey::Balance(addr(1))], 2);
    }
}
