//! The EVM interpreter: a gas-metered 256-bit stack machine.
//!
//! One [`run_frame`] call executes one message frame (an external call, an
//! internal `CALL`, or `CREATE` init code) against a [`BufferedHost`]. All
//! state effects go through the host, so the transaction's read/write
//! footprint falls out for free — that footprint is what the OCC-WSI
//! proposer validates and what the validator scheduler builds its dependency
//! graph from.

use std::sync::Arc;

use bp_crypto::{keccak256, RlpStream};
use bp_types::{AccessKey, Address, Gas, H256, U256};

use crate::gas;
use crate::host::{BufferedHost, Log, StateView};
use crate::opcode::{Op, DUP1, DUP16, PUSH1, PUSH32, SWAP1, SWAP16};

/// Block-level execution context.
#[derive(Clone, Copy, Debug)]
pub struct BlockEnv {
    /// Fee recipient.
    pub coinbase: Address,
    /// Block height.
    pub number: u64,
    /// Block timestamp (seconds).
    pub timestamp: u64,
    /// Block gas limit.
    pub gas_limit: Gas,
}

impl Default for BlockEnv {
    fn default() -> Self {
        BlockEnv {
            coinbase: Address::from_index(0xC0FFEE),
            number: 1,
            timestamp: 1_700_000_000,
            gas_limit: 30_000_000,
        }
    }
}

/// One message frame.
pub struct Frame {
    /// Executing account (storage context).
    pub address: Address,
    /// Immediate caller.
    pub caller: Address,
    /// Transaction origin.
    pub origin: Address,
    /// Wei sent with the message.
    pub value: U256,
    /// Call data.
    pub input: Vec<u8>,
    /// Code to execute.
    pub code: Arc<Vec<u8>>,
    /// Gas available to this frame.
    pub gas: Gas,
    /// Transaction gas price.
    pub gas_price: u64,
    /// True inside a `STATICCALL` context: state mutation is forbidden.
    pub is_static: bool,
}

/// Successful (or reverted) frame completion.
#[derive(Debug)]
pub struct FrameResult {
    /// RETURN/REVERT payload.
    pub output: Vec<u8>,
    /// Gas remaining after execution.
    pub gas_left: Gas,
    /// True when the frame ended with `REVERT`.
    pub reverted: bool,
}

/// Exceptional halts. These consume all gas in the frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmError {
    /// Gas exhausted.
    OutOfGas,
    /// Pop from an empty stack.
    StackUnderflow,
    /// Push past 1024 entries.
    StackOverflow,
    /// Jump to a non-JUMPDEST target.
    InvalidJump,
    /// Undefined or explicitly invalid opcode.
    InvalidOpcode(u8),
    /// Call depth exceeded 64 frames.
    CallDepth,
    /// A state-mutating opcode ran inside a `STATICCALL` context.
    StaticViolation,
    /// `RETURNDATACOPY` read past the end of the return buffer.
    ReturnDataOutOfBounds,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::OutOfGas => write!(f, "out of gas"),
            VmError::StackUnderflow => write!(f, "stack underflow"),
            VmError::StackOverflow => write!(f, "stack overflow"),
            VmError::InvalidJump => write!(f, "invalid jump destination"),
            VmError::InvalidOpcode(b) => write!(f, "invalid opcode 0x{b:02x}"),
            VmError::CallDepth => write!(f, "call depth exceeded"),
            VmError::StaticViolation => write!(f, "state mutation in static context"),
            VmError::ReturnDataOutOfBounds => write!(f, "return data access out of bounds"),
        }
    }
}

impl std::error::Error for VmError {}

const STACK_LIMIT: usize = 1024;
const MAX_CALL_DEPTH: usize = 64;

struct Machine {
    stack: Vec<U256>,
    memory: Vec<u8>,
    gas_left: Gas,
    pc: usize,
    return_data: Vec<u8>,
}

impl Machine {
    fn new(gas: Gas) -> Self {
        Machine {
            stack: Vec::with_capacity(64),
            memory: Vec::new(),
            gas_left: gas,
            pc: 0,
            return_data: Vec::new(),
        }
    }

    #[inline]
    fn charge(&mut self, cost: Gas) -> Result<(), VmError> {
        if self.gas_left < cost {
            self.gas_left = 0;
            return Err(VmError::OutOfGas);
        }
        self.gas_left -= cost;
        Ok(())
    }

    #[inline]
    fn pop(&mut self) -> Result<U256, VmError> {
        self.stack.pop().ok_or(VmError::StackUnderflow)
    }

    #[inline]
    fn push(&mut self, v: U256) -> Result<(), VmError> {
        if self.stack.len() >= STACK_LIMIT {
            return Err(VmError::StackOverflow);
        }
        self.stack.push(v);
        Ok(())
    }

    /// Charges for and performs expansion to cover `[offset, offset+len)`.
    fn expand_memory(&mut self, offset: U256, len: U256) -> Result<usize, VmError> {
        if len.is_zero() {
            return offset.to_usize().ok_or(VmError::OutOfGas);
        }
        let offset = offset.to_usize().ok_or(VmError::OutOfGas)?;
        let len = len.to_usize().ok_or(VmError::OutOfGas)?;
        let end = offset.checked_add(len).ok_or(VmError::OutOfGas)?;
        let cur_words = (self.memory.len() as u64).div_ceil(32);
        let want_words = (end as u64).div_ceil(32);
        self.charge(gas::memory_expansion(cur_words, want_words))?;
        if end > self.memory.len() {
            self.memory.resize(want_words as usize * 32, 0);
        }
        Ok(offset)
    }

    fn mem_slice(&self, offset: usize, len: usize) -> &[u8] {
        &self.memory[offset..offset + len]
    }
}

/// Precomputed set of valid jump destinations (JUMPDEST bytes outside PUSH
/// immediates).
fn jumpdests(code: &[u8]) -> Vec<bool> {
    let mut valid = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let b = code[i];
        if b == Op::JumpDest as u8 {
            valid[i] = true;
        }
        if (PUSH1..=PUSH32).contains(&b) {
            i += (b - PUSH1) as usize + 1;
        }
        i += 1;
    }
    valid
}

/// Runs one frame to completion.
pub fn run_frame<V: StateView>(
    host: &mut BufferedHost<'_, V>,
    env: &BlockEnv,
    frame: Frame,
    depth: usize,
) -> Result<FrameResult, VmError> {
    if depth > MAX_CALL_DEPTH {
        return Err(VmError::CallDepth);
    }
    let code = Arc::clone(&frame.code);
    let valid_jumps = jumpdests(&code);
    let mut m = Machine::new(frame.gas);

    loop {
        let byte = match code.get(m.pc) {
            Some(&b) => b,
            // Running off the end of code is an implicit STOP.
            None => {
                return Ok(FrameResult {
                    output: Vec::new(),
                    gas_left: m.gas_left,
                    reverted: false,
                })
            }
        };
        m.pc += 1;

        // PUSH / DUP / SWAP ranges first.
        if (PUSH1..=PUSH32).contains(&byte) {
            m.charge(gas::VERYLOW)?;
            let n = (byte - PUSH1) as usize + 1;
            let end = (m.pc + n).min(code.len());
            let v = U256::from_be_slice(&code[m.pc..end]);
            // Truncated push at end of code zero-pads on the right per spec;
            // from_be_slice pads left, so shift for the missing bytes.
            let missing = (m.pc + n - end) as u32;
            m.push(v << (8 * missing))?;
            m.pc += n;
            continue;
        }
        if (DUP1..=DUP16).contains(&byte) {
            m.charge(gas::VERYLOW)?;
            let n = (byte - DUP1) as usize + 1;
            if m.stack.len() < n {
                return Err(VmError::StackUnderflow);
            }
            let v = m.stack[m.stack.len() - n];
            m.push(v)?;
            continue;
        }
        if (SWAP1..=SWAP16).contains(&byte) {
            m.charge(gas::VERYLOW)?;
            let n = (byte - SWAP1) as usize + 1;
            if m.stack.len() < n + 1 {
                return Err(VmError::StackUnderflow);
            }
            let top = m.stack.len() - 1;
            m.stack.swap(top, top - n);
            continue;
        }

        let op = Op::from_byte(byte).ok_or(VmError::InvalidOpcode(byte))?;
        match op {
            Op::Stop => {
                return Ok(FrameResult {
                    output: Vec::new(),
                    gas_left: m.gas_left,
                    reverted: false,
                })
            }
            Op::Add => binary(&mut m, gas::VERYLOW, |a, b| a + b)?,
            Op::Mul => binary(&mut m, gas::LOW, |a, b| a * b)?,
            Op::Sub => binary(&mut m, gas::VERYLOW, |a, b| a - b)?,
            Op::Div => binary(&mut m, gas::LOW, |a, b| a / b)?,
            Op::Mod => binary(&mut m, gas::LOW, |a, b| a % b)?,
            Op::SDiv => binary(&mut m, gas::LOW, |a, b| a.sdiv(b))?,
            Op::SMod => binary(&mut m, gas::LOW, |a, b| a.smod(b))?,
            Op::SignExtend => binary(&mut m, gas::LOW, |k, v| v.sign_extend(k))?,
            Op::AddMod => ternary(&mut m, gas::MID, |a, b, n| a.add_mod(b, n))?,
            Op::MulMod => ternary(&mut m, gas::MID, |a, b, n| a.mul_mod(b, n))?,
            Op::Exp => {
                let base = m.pop()?;
                let exp = m.pop()?;
                let exp_bytes = (exp.bits() as u64).div_ceil(8);
                m.charge(gas::EXP + gas::EXP_BYTE * exp_bytes)?;
                m.push(base.pow(exp))?;
            }
            Op::Lt => binary(&mut m, gas::VERYLOW, |a, b| bool_word(a < b))?,
            Op::Gt => binary(&mut m, gas::VERYLOW, |a, b| bool_word(a > b))?,
            Op::Slt => binary(&mut m, gas::VERYLOW, |a, b| bool_word(a.slt(&b)))?,
            Op::Sgt => binary(&mut m, gas::VERYLOW, |a, b| bool_word(b.slt(&a)))?,
            Op::Eq => binary(&mut m, gas::VERYLOW, |a, b| bool_word(a == b))?,
            Op::IsZero => {
                m.charge(gas::VERYLOW)?;
                let a = m.pop()?;
                m.push(bool_word(a.is_zero()))?;
            }
            Op::And => binary(&mut m, gas::VERYLOW, |a, b| a & b)?,
            Op::Or => binary(&mut m, gas::VERYLOW, |a, b| a | b)?,
            Op::Xor => binary(&mut m, gas::VERYLOW, |a, b| a ^ b)?,
            Op::Not => {
                m.charge(gas::VERYLOW)?;
                let a = m.pop()?;
                m.push(!a)?;
            }
            Op::Byte => binary(&mut m, gas::VERYLOW, |i, x| {
                U256::from(x.byte_be(i.to_usize().unwrap_or(32)))
            })?,
            Op::Shl => binary(&mut m, gas::VERYLOW, |s, v| {
                v << s.to_u64().map(|x| x.min(256) as u32).unwrap_or(256)
            })?,
            Op::Shr => binary(&mut m, gas::VERYLOW, |s, v| {
                v >> s.to_u64().map(|x| x.min(256) as u32).unwrap_or(256)
            })?,
            Op::Sar => binary(&mut m, gas::VERYLOW, |s, v| {
                v.sar(s.to_u64().map(|x| x.min(256) as u32).unwrap_or(256))
            })?,
            Op::Sha3 => {
                let offset = m.pop()?;
                let len = m.pop()?;
                let words = len.to_u64().ok_or(VmError::OutOfGas)?.div_ceil(32);
                m.charge(gas::SHA3 + gas::SHA3_WORD * words)?;
                let off = m.expand_memory(offset, len)?;
                let hash = keccak256(m.mem_slice(off, len.to_usize().unwrap_or(0)));
                m.push(hash.to_u256())?;
            }
            Op::Address => {
                m.charge(gas::BASE)?;
                m.push(address_word(&frame.address))?;
            }
            Op::Balance => {
                m.charge(gas::BALANCE)?;
                let a = m.pop()?;
                let addr = word_address(a);
                let bal = host.balance(&addr);
                m.push(bal)?;
            }
            Op::SelfBalance => {
                m.charge(gas::SELFBALANCE)?;
                let bal = host.balance(&frame.address);
                m.push(bal)?;
            }
            Op::Origin => {
                m.charge(gas::BASE)?;
                m.push(address_word(&frame.origin))?;
            }
            Op::Caller => {
                m.charge(gas::BASE)?;
                m.push(address_word(&frame.caller))?;
            }
            Op::CallValue => {
                m.charge(gas::BASE)?;
                m.push(frame.value)?;
            }
            Op::CallDataLoad => {
                m.charge(gas::VERYLOW)?;
                let i = m.pop()?;
                let mut word = [0u8; 32];
                if let Some(start) = i.to_usize() {
                    for (j, byte) in word.iter_mut().enumerate() {
                        *byte = frame.input.get(start + j).copied().unwrap_or(0);
                    }
                }
                m.push(U256::from_be_bytes(word))?;
            }
            Op::CallDataSize => {
                m.charge(gas::BASE)?;
                m.push(U256::from(frame.input.len()))?;
            }
            Op::CallDataCopy => {
                let dst = m.pop()?;
                let src = m.pop()?;
                let len = m.pop()?;
                let words = len.to_u64().ok_or(VmError::OutOfGas)?.div_ceil(32);
                m.charge(gas::VERYLOW + gas::COPY_WORD * words)?;
                let dst_off = m.expand_memory(dst, len)?;
                let n = len.to_usize().unwrap_or(0);
                let s = src.to_usize().unwrap_or(usize::MAX);
                for j in 0..n {
                    m.memory[dst_off + j] = s
                        .checked_add(j)
                        .and_then(|i| frame.input.get(i))
                        .copied()
                        .unwrap_or(0);
                }
            }
            Op::CodeSize => {
                m.charge(gas::BASE)?;
                m.push(U256::from(code.len()))?;
            }
            Op::CodeCopy => {
                let dst = m.pop()?;
                let src = m.pop()?;
                let len = m.pop()?;
                let words = len.to_u64().ok_or(VmError::OutOfGas)?.div_ceil(32);
                m.charge(gas::VERYLOW + gas::COPY_WORD * words)?;
                let dst_off = m.expand_memory(dst, len)?;
                let n = len.to_usize().unwrap_or(0);
                let s = src.to_usize().unwrap_or(usize::MAX);
                for j in 0..n {
                    m.memory[dst_off + j] = s
                        .checked_add(j)
                        .and_then(|i| code.get(i))
                        .copied()
                        .unwrap_or(0);
                }
            }
            Op::ReturnDataSize => {
                m.charge(gas::BASE)?;
                m.push(U256::from(m.return_data.len()))?;
            }
            Op::ReturnDataCopy => {
                let dst = m.pop()?;
                let src = m.pop()?;
                let len = m.pop()?;
                let words = len.to_u64().ok_or(VmError::OutOfGas)?.div_ceil(32);
                m.charge(gas::VERYLOW + gas::COPY_WORD * words)?;
                let n = len.to_usize().unwrap_or(usize::MAX);
                let s = src.to_usize().unwrap_or(usize::MAX);
                // Unlike CALLDATACOPY, out-of-range RETURNDATACOPY is an
                // exceptional halt per EIP-211.
                let end = s.checked_add(n).ok_or(VmError::ReturnDataOutOfBounds)?;
                if end > m.return_data.len() {
                    return Err(VmError::ReturnDataOutOfBounds);
                }
                let dst_off = m.expand_memory(dst, len)?;
                let data = m.return_data[s..end].to_vec();
                m.memory[dst_off..dst_off + n].copy_from_slice(&data);
            }
            Op::ExtCodeSize => {
                m.charge(gas::BALANCE)?;
                let a = m.pop()?;
                let sz = host.code(&word_address(a)).len();
                m.push(U256::from(sz))?;
            }
            Op::ExtCodeCopy => {
                let a = m.pop()?;
                let dst = m.pop()?;
                let src = m.pop()?;
                let len = m.pop()?;
                let words = len.to_u64().ok_or(VmError::OutOfGas)?.div_ceil(32);
                m.charge(gas::BALANCE + gas::COPY_WORD * words)?;
                let ext = host.code(&word_address(a));
                let dst_off = m.expand_memory(dst, len)?;
                let n = len.to_usize().unwrap_or(0);
                let s = src.to_usize().unwrap_or(usize::MAX);
                for j in 0..n {
                    m.memory[dst_off + j] = s
                        .checked_add(j)
                        .and_then(|i| ext.get(i))
                        .copied()
                        .unwrap_or(0);
                }
            }
            Op::GasPrice => {
                m.charge(gas::BASE)?;
                m.push(U256::from(frame.gas_price))?;
            }
            Op::Coinbase => {
                m.charge(gas::BASE)?;
                m.push(address_word(&env.coinbase))?;
            }
            Op::Timestamp => {
                m.charge(gas::BASE)?;
                m.push(U256::from(env.timestamp))?;
            }
            Op::Number => {
                m.charge(gas::BASE)?;
                m.push(U256::from(env.number))?;
            }
            Op::GasLimit => {
                m.charge(gas::BASE)?;
                m.push(U256::from(env.gas_limit))?;
            }
            Op::Pop => {
                m.charge(gas::BASE)?;
                m.pop()?;
            }
            Op::MLoad => {
                m.charge(gas::VERYLOW)?;
                let offset = m.pop()?;
                let off = m.expand_memory(offset, U256::from(32u64))?;
                let mut word = [0u8; 32];
                word.copy_from_slice(m.mem_slice(off, 32));
                m.push(U256::from_be_bytes(word))?;
            }
            Op::MStore => {
                m.charge(gas::VERYLOW)?;
                let offset = m.pop()?;
                let value = m.pop()?;
                let off = m.expand_memory(offset, U256::from(32u64))?;
                m.memory[off..off + 32].copy_from_slice(&value.to_be_bytes());
            }
            Op::MStore8 => {
                m.charge(gas::VERYLOW)?;
                let offset = m.pop()?;
                let value = m.pop()?;
                let off = m.expand_memory(offset, U256::ONE)?;
                m.memory[off] = value.low_u64() as u8;
            }
            Op::SLoad => {
                m.charge(gas::SLOAD)?;
                let slot = m.pop()?;
                let v = host.read(AccessKey::Storage(frame.address, H256::from_u256(slot)));
                m.push(v)?;
            }
            Op::SStore => {
                if frame.is_static {
                    return Err(VmError::StaticViolation);
                }
                let slot = m.pop()?;
                let value = m.pop()?;
                let key = AccessKey::Storage(frame.address, H256::from_u256(slot));
                let current = host.read(key);
                let cost = if current.is_zero() && !value.is_zero() {
                    gas::SSTORE_SET
                } else {
                    gas::SSTORE_RESET
                };
                m.charge(cost)?;
                host.write(key, value);
            }
            Op::Jump => {
                m.charge(gas::MID)?;
                let dest = m.pop()?;
                jump_to(&mut m, dest, &valid_jumps)?;
            }
            Op::JumpI => {
                m.charge(gas::HIGH)?;
                let dest = m.pop()?;
                let cond = m.pop()?;
                if !cond.is_zero() {
                    jump_to(&mut m, dest, &valid_jumps)?;
                }
            }
            Op::Pc => {
                m.charge(gas::BASE)?;
                m.push(U256::from(m.pc - 1))?;
            }
            Op::MSize => {
                m.charge(gas::BASE)?;
                m.push(U256::from(m.memory.len()))?;
            }
            Op::Gas => {
                m.charge(gas::BASE)?;
                m.push(U256::from(m.gas_left))?;
            }
            Op::JumpDest => m.charge(gas::JUMPDEST)?,
            Op::Log0 | Op::Log1 | Op::Log2 | Op::Log3 | Op::Log4 => {
                if frame.is_static {
                    return Err(VmError::StaticViolation);
                }
                let topic_count = (op as u8 - Op::Log0 as u8) as usize;
                let offset = m.pop()?;
                let len = m.pop()?;
                let mut topics = Vec::with_capacity(topic_count);
                for _ in 0..topic_count {
                    topics.push(H256::from_u256(m.pop()?));
                }
                let data_len = len.to_u64().ok_or(VmError::OutOfGas)?;
                m.charge(
                    gas::LOG + gas::LOG_TOPIC * topic_count as u64 + gas::LOG_DATA * data_len,
                )?;
                let off = m.expand_memory(offset, len)?;
                let data = m.mem_slice(off, data_len as usize).to_vec();
                host.log(Log {
                    address: frame.address,
                    topics,
                    data,
                });
            }
            Op::Create => {
                if frame.is_static {
                    return Err(VmError::StaticViolation);
                }
                m.charge(gas::CREATE)?;
                let value = m.pop()?;
                let offset = m.pop()?;
                let len = m.pop()?;
                let off = m.expand_memory(offset, len)?;
                let init = m.mem_slice(off, len.to_usize().unwrap_or(0)).to_vec();
                let forwarded = m.gas_left - m.gas_left / 64;
                m.charge(forwarded)?;
                let (created, gas_returned) =
                    do_create(host, env, &frame, value, init, forwarded, depth);
                m.gas_left += gas_returned;
                m.return_data.clear();
                match created {
                    Some(addr) => m.push(address_word(&addr))?,
                    None => m.push(U256::ZERO)?,
                }
            }
            Op::Call | Op::DelegateCall | Op::StaticCall => {
                let gas_req = m.pop()?;
                let to = word_address(m.pop()?);
                // CALL carries an explicit value; DELEGATECALL inherits the
                // parent's; STATICCALL transfers nothing.
                let value = match op {
                    Op::Call => m.pop()?,
                    Op::DelegateCall => frame.value,
                    _ => U256::ZERO,
                };
                let in_off = m.pop()?;
                let in_len = m.pop()?;
                let out_off = m.pop()?;
                let out_len = m.pop()?;

                let transfers_value = op == Op::Call && !value.is_zero();
                if transfers_value && frame.is_static {
                    return Err(VmError::StaticViolation);
                }
                let mut base = gas::CALL;
                if transfers_value {
                    base += gas::CALL_VALUE;
                }
                m.charge(base)?;
                let i_off = m.expand_memory(in_off, in_len)?;
                let input = m.mem_slice(i_off, in_len.to_usize().unwrap_or(0)).to_vec();
                let o_off = m.expand_memory(out_off, out_len)?;

                let cap = m.gas_left - m.gas_left / 64;
                let forwarded = gas_req.to_u64().unwrap_or(u64::MAX).min(cap);
                m.charge(forwarded)?;
                let stipend = if transfers_value {
                    gas::CALL_STIPEND
                } else {
                    0
                };

                let kind = match op {
                    Op::Call => CallKind::Call,
                    Op::DelegateCall => CallKind::Delegate,
                    _ => CallKind::Static,
                };
                let (ok, output, gas_returned) = do_call(
                    host,
                    env,
                    &frame,
                    to,
                    value,
                    input,
                    forwarded + stipend,
                    depth,
                    kind,
                );
                // The stipend was free to the caller; only un-spent
                // *forwarded* gas comes back.
                m.gas_left += gas_returned.min(forwarded);
                let n = out_len.to_usize().unwrap_or(0).min(output.len());
                m.memory[o_off..o_off + n].copy_from_slice(&output[..n]);
                m.return_data = output;
                m.push(bool_word(ok))?;
            }
            Op::Return | Op::Revert => {
                let offset = m.pop()?;
                let len = m.pop()?;
                let off = m.expand_memory(offset, len)?;
                let output = m.mem_slice(off, len.to_usize().unwrap_or(0)).to_vec();
                return Ok(FrameResult {
                    output,
                    gas_left: m.gas_left,
                    reverted: op == Op::Revert,
                });
            }
            Op::Invalid => return Err(VmError::InvalidOpcode(0xFE)),
        }
    }
}

fn jump_to(m: &mut Machine, dest: U256, valid: &[bool]) -> Result<(), VmError> {
    let d = dest.to_usize().ok_or(VmError::InvalidJump)?;
    if d >= valid.len() || !valid[d] {
        return Err(VmError::InvalidJump);
    }
    m.pc = d;
    Ok(())
}

#[inline]
fn binary(m: &mut Machine, cost: Gas, f: impl FnOnce(U256, U256) -> U256) -> Result<(), VmError> {
    m.charge(cost)?;
    let a = m.pop()?;
    let b = m.pop()?;
    m.push(f(a, b))
}

#[inline]
fn ternary(
    m: &mut Machine,
    cost: Gas,
    f: impl FnOnce(U256, U256, U256) -> U256,
) -> Result<(), VmError> {
    m.charge(cost)?;
    let a = m.pop()?;
    let b = m.pop()?;
    let c = m.pop()?;
    m.push(f(a, b, c))
}

#[inline]
fn bool_word(b: bool) -> U256 {
    if b {
        U256::ONE
    } else {
        U256::ZERO
    }
}

/// Zero-extends an address into a word.
pub fn address_word(a: &Address) -> U256 {
    let mut bytes = [0u8; 32];
    bytes[12..].copy_from_slice(a.as_bytes());
    U256::from_be_bytes(bytes)
}

/// Truncates a word to its low 20 bytes as an address.
pub fn word_address(w: U256) -> Address {
    let bytes = w.to_be_bytes();
    let mut out = [0u8; 20];
    out.copy_from_slice(&bytes[12..]);
    Address(out)
}

/// The classic CREATE address: `keccak(rlp([sender, nonce]))[12..]`.
pub fn create_address(sender: &Address, nonce: u64) -> Address {
    let mut s = RlpStream::new();
    s.begin_list(2);
    s.append_address(sender);
    s.append_u64(nonce);
    let hash = keccak256(&s.out());
    let mut out = [0u8; 20];
    out.copy_from_slice(&hash.0[12..]);
    Address(out)
}

/// The three message-call flavours.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CallKind {
    Call,
    Delegate,
    Static,
}

/// Executes a nested call. Returns (success, output, gas left in callee).
#[allow(clippy::too_many_arguments)]
fn do_call<V: StateView>(
    host: &mut BufferedHost<'_, V>,
    env: &BlockEnv,
    parent: &Frame,
    to: Address,
    value: U256,
    input: Vec<u8>,
    gas: Gas,
    depth: usize,
    kind: CallKind,
) -> (bool, Vec<u8>, Gas) {
    let cp = host.checkpoint();
    if kind == CallKind::Call && !host.transfer(parent.address, to, value) {
        host.revert_to(cp);
        return (false, Vec::new(), gas);
    }
    let code = host.code(&to);
    if code.is_empty() {
        // Plain value transfer to an EOA.
        return (true, Vec::new(), gas);
    }
    let frame = match kind {
        CallKind::Call | CallKind::Static => Frame {
            address: to,
            caller: parent.address,
            origin: parent.origin,
            value,
            input,
            code,
            gas,
            gas_price: parent.gas_price,
            is_static: parent.is_static || kind == CallKind::Static,
        },
        // DELEGATECALL borrows the callee's code but keeps the caller's
        // storage context, caller identity and value.
        CallKind::Delegate => Frame {
            address: parent.address,
            caller: parent.caller,
            origin: parent.origin,
            value,
            input,
            code,
            gas,
            gas_price: parent.gas_price,
            is_static: parent.is_static,
        },
    };
    match run_frame(host, env, frame, depth + 1) {
        Ok(res) if !res.reverted => (true, res.output, res.gas_left),
        Ok(res) => {
            host.revert_to(cp);
            (false, res.output, res.gas_left)
        }
        Err(_) => {
            host.revert_to(cp);
            (false, Vec::new(), 0)
        }
    }
}

/// Executes a nested CREATE. Returns (created address, gas left in initcode).
fn do_create<V: StateView>(
    host: &mut BufferedHost<'_, V>,
    env: &BlockEnv,
    parent: &Frame,
    value: U256,
    init: Vec<u8>,
    gas: Gas,
    depth: usize,
) -> (Option<Address>, Gas) {
    let cp = host.checkpoint();
    // The creator's nonce determines the address and is then bumped.
    let nonce = host.read(AccessKey::Nonce(parent.address)).low_u64();
    let created = create_address(&parent.address, nonce);
    host.write(AccessKey::Nonce(parent.address), U256::from(nonce + 1));
    if !host.transfer(parent.address, created, value) {
        host.revert_to(cp);
        return (None, gas);
    }
    let frame = Frame {
        address: created,
        caller: parent.address,
        origin: parent.origin,
        value,
        input: Vec::new(),
        code: Arc::new(init),
        gas,
        gas_price: parent.gas_price,
        is_static: false,
    };
    match run_frame(host, env, frame, depth + 1) {
        Ok(res) if !res.reverted => {
            let deposit = gas::CODE_DEPOSIT * res.output.len() as u64;
            if res.gas_left < deposit {
                host.revert_to(cp);
                return (None, 0);
            }
            host.set_code(created, res.output);
            (Some(created), res.gas_left - deposit)
        }
        Ok(res) => {
            host.revert_to(cp);
            (None, res.gas_left)
        }
        Err(_) => {
            host.revert_to(cp);
            (None, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::host::WorldView;
    use bp_state::WorldState;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn run_code(
        code: Vec<u8>,
        input: Vec<u8>,
        world: &WorldState,
    ) -> (Result<FrameResult, VmError>, bp_types::RwSet) {
        let view = WorldView(world);
        let mut host = BufferedHost::new(&view);
        let frame = Frame {
            address: addr(100),
            caller: addr(1),
            origin: addr(1),
            value: U256::ZERO,
            input,
            code: Arc::new(code),
            gas: 1_000_000,
            gas_price: 1,
            is_static: false,
        };
        let env = BlockEnv::default();
        let res = run_frame(&mut host, &env, frame, 0);
        let (rw, _, _) = host.finish();
        (res, rw)
    }

    fn returns_word(code: Vec<u8>) -> U256 {
        let w = WorldState::new();
        let (res, _) = run_code(code, Vec::new(), &w);
        let out = res.expect("frame ok");
        assert!(!out.reverted);
        U256::from_be_slice(&out.output)
    }

    /// Program suffix: store the stack top at memory 0 and return it.
    fn ret_top(asm: Asm) -> Vec<u8> {
        asm.push_u64(0)
            .op(Op::MStore)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Return)
            .build()
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(2).push_u64(3).op(Op::Add))),
            U256::from(5u64)
        );
        // Stack order: SUB computes top - next.
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(3).push_u64(10).op(Op::Sub))),
            U256::from(7u64)
        );
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(4).push_u64(20).op(Op::Div))),
            U256::from(5u64)
        );
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(0).push_u64(20).op(Op::Div))),
            U256::ZERO
        );
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(7).push_u64(3).op(Op::Exp))),
            U256::from(2187u64)
        );
    }

    #[test]
    fn comparisons_and_logic() {
        // LT pops a then b, tests a < b: push b first.
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(5).push_u64(3).op(Op::Lt))),
            U256::ONE
        );
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(3).push_u64(5).op(Op::Gt))),
            U256::ONE
        );
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(5).push_u64(5).op(Op::Eq))),
            U256::ONE
        );
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(0).op(Op::IsZero))),
            U256::ONE
        );
        assert_eq!(
            returns_word(ret_top(
                Asm::new().push_u64(0b1100).push_u64(0b1010).op(Op::And)
            )),
            U256::from(0b1000u64)
        );
    }

    #[test]
    fn memory_roundtrip() {
        // MSTORE then MLOAD.
        let code = Asm::new()
            .push_u64(0xDEAD)
            .push_u64(64)
            .op(Op::MStore)
            .push_u64(64)
            .op(Op::MLoad);
        assert_eq!(returns_word(ret_top(code)), U256::from(0xDEADu64));
    }

    #[test]
    fn storage_read_write_and_footprint() {
        let mut w = WorldState::new();
        w.set_storage(addr(100), H256::from_low_u64(1), U256::from(7u64));
        // SLOAD slot 1, add 1, SSTORE slot 2.
        let code = Asm::new()
            .push_u64(1)
            .op(Op::SLoad)
            .push_u64(1)
            .op(Op::Add)
            .push_u64(2)
            .op(Op::SStore)
            .op(Op::Stop)
            .build();
        let (res, rw) = run_code(code, Vec::new(), &w);
        assert!(!res.unwrap().reverted);
        assert!(rw
            .reads
            .contains_key(&AccessKey::Storage(addr(100), H256::from_low_u64(1))));
        assert_eq!(
            rw.writes[&AccessKey::Storage(addr(100), H256::from_low_u64(2))],
            U256::from(8u64)
        );
    }

    #[test]
    fn sstore_gas_depends_on_prior_value() {
        let mut w = WorldState::new();
        w.set_storage(addr(100), H256::from_low_u64(5), U256::ONE);
        let store = |slot: u64| {
            Asm::new()
                .push_u64(9)
                .push_u64(slot)
                .op(Op::SStore)
                .op(Op::Stop)
                .build()
        };
        let (res_fresh, _) = run_code(store(6), Vec::new(), &w);
        let (res_reset, _) = run_code(store(5), Vec::new(), &w);
        let fresh_used = 1_000_000 - res_fresh.unwrap().gas_left;
        let reset_used = 1_000_000 - res_reset.unwrap().gas_left;
        assert_eq!(fresh_used - reset_used, gas::SSTORE_SET - gas::SSTORE_RESET);
    }

    #[test]
    fn jumps_loop_sums() {
        // for (i = 0; i < 10; i++) acc += i  => acc = 45
        let code = Asm::new()
            .push_u64(0) // acc
            .push_u64(0) // i
            .label("loop")
            // stack: acc i
            .dup(1)
            .push_u64(10)
            .op(Op::Eq)
            .push_label("done")
            .op(Op::JumpI)
            // acc += i
            .dup(1) // acc i i
            .swap(2) // i i acc
            .op(Op::Add) // i acc'
            .swap(1) // acc' i
            .push_u64(1)
            .op(Op::Add) // acc' i+1
            .push_label("loop")
            .op(Op::Jump)
            .label("done")
            .op(Op::Pop); // drop i, leave acc
        assert_eq!(returns_word(ret_top(code)), U256::from(45u64));
    }

    #[test]
    fn invalid_jump_faults() {
        let code = Asm::new().push_u64(1).op(Op::Jump).build();
        let w = WorldState::new();
        let (res, _) = run_code(code, Vec::new(), &w);
        assert_eq!(res.unwrap_err(), VmError::InvalidJump);
    }

    #[test]
    fn jumpdest_inside_push_data_is_invalid() {
        // PUSH2 0x005B; JUMP to offset 2 (the 0x5B inside the immediate).
        let code = vec![0x61, 0x00, 0x5B, 0x60, 0x02, 0x56];
        let w = WorldState::new();
        let (res, _) = run_code(code, Vec::new(), &w);
        assert_eq!(res.unwrap_err(), VmError::InvalidJump);
    }

    #[test]
    fn stack_underflow_and_overflow() {
        let w = WorldState::new();
        let (res, _) = run_code(vec![Op::Add as u8], Vec::new(), &w);
        assert_eq!(res.unwrap_err(), VmError::StackUnderflow);

        // Push 1025 times.
        let mut code = Vec::new();
        for _ in 0..1025 {
            code.extend_from_slice(&[0x60, 0x01]);
        }
        let (res, _) = run_code(code, Vec::new(), &w);
        assert_eq!(res.unwrap_err(), VmError::StackOverflow);
    }

    #[test]
    fn out_of_gas_on_tight_budget() {
        let view_world = WorldState::new();
        let view = WorldView(&view_world);
        let mut host = BufferedHost::new(&view);
        let frame = Frame {
            address: addr(100),
            caller: addr(1),
            origin: addr(1),
            value: U256::ZERO,
            input: Vec::new(),
            code: Arc::new(
                Asm::new()
                    .push_u64(1)
                    .push_u64(2)
                    .op(Op::Add)
                    .op(Op::Stop)
                    .build(),
            ),
            gas: 5, // two pushes alone need 6
            gas_price: 1,
            is_static: false,
        };
        let res = run_frame(&mut host, &BlockEnv::default(), frame, 0);
        assert_eq!(res.unwrap_err(), VmError::OutOfGas);
    }

    #[test]
    fn calldata_ops() {
        let code = Asm::new().push_u64(0).op(Op::CallDataLoad);
        let w = WorldState::new();
        let mut input = vec![0u8; 32];
        input[31] = 42;
        let (res, _) = run_code(ret_top(code), input, &w);
        assert_eq!(U256::from_be_slice(&res.unwrap().output), U256::from(42u64));

        // CALLDATASIZE
        let code = ret_top(Asm::new().op(Op::CallDataSize));
        let (res, _) = run_code(code, vec![1, 2, 3], &w);
        assert_eq!(U256::from_be_slice(&res.unwrap().output), U256::from(3u64));
    }

    #[test]
    fn sha3_of_memory() {
        // keccak256 of 32 zero bytes.
        let code = Asm::new().push_u64(32).push_u64(0).op(Op::Sha3);
        let got = returns_word(ret_top(code));
        assert_eq!(got, keccak256(&[0u8; 32]).to_u256());
    }

    #[test]
    fn revert_returns_payload_and_flag() {
        let code = Asm::new()
            .push_u64(0xBAD)
            .push_u64(0)
            .op(Op::MStore)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Revert)
            .build();
        let w = WorldState::new();
        let (res, _) = run_code(code, Vec::new(), &w);
        let out = res.unwrap();
        assert!(out.reverted);
        assert_eq!(U256::from_be_slice(&out.output), U256::from(0xBADu64));
    }

    #[test]
    fn env_opcodes() {
        assert_eq!(returns_word(ret_top(Asm::new().op(Op::Number))), U256::ONE);
        assert_eq!(
            returns_word(ret_top(Asm::new().op(Op::Caller))),
            address_word(&addr(1))
        );
        assert_eq!(
            returns_word(ret_top(Asm::new().op(Op::Address))),
            address_word(&addr(100))
        );
    }

    #[test]
    fn logs_recorded() {
        let code = Asm::new()
            .push_u64(0xAB) // topic
            .push_u64(0) // len
            .push_u64(0) // offset
            .op(Op::Log1)
            .op(Op::Stop)
            .build();
        let w = WorldState::new();
        let view = WorldView(&w);
        let mut host = BufferedHost::new(&view);
        let frame = Frame {
            address: addr(100),
            caller: addr(1),
            origin: addr(1),
            value: U256::ZERO,
            input: Vec::new(),
            code: Arc::new(code),
            gas: 100_000,
            gas_price: 1,
            is_static: false,
        };
        run_frame(&mut host, &BlockEnv::default(), frame, 0).unwrap();
        let (_, logs, _) = host.finish();
        assert_eq!(logs.len(), 1);
        assert_eq!(logs[0].topics, vec![H256::from_low_u64(0xAB)]);
    }

    #[test]
    fn call_transfers_value_to_eoa() {
        let mut w = WorldState::new();
        w.set_balance(addr(100), U256::from(1000u64));
        // CALL(gas=50000, to=addr(55), value=77, no data), return success flag.
        let code = Asm::new()
            .push_u64(0) // out len
            .push_u64(0) // out off
            .push_u64(0) // in len
            .push_u64(0) // in off
            .push_u64(77) // value
            .push(address_word(&addr(55)))
            .push_u64(50_000)
            .op(Op::Call);
        let (res, rw) = run_code(ret_top(code), Vec::new(), &w);
        let out = res.unwrap();
        assert_eq!(U256::from_be_slice(&out.output), U256::ONE);
        assert_eq!(rw.writes[&AccessKey::Balance(addr(55))], U256::from(77u64));
        assert_eq!(
            rw.writes[&AccessKey::Balance(addr(100))],
            U256::from(923u64)
        );
    }

    #[test]
    fn call_to_contract_executes_and_reverts_cleanly() {
        let mut w = WorldState::new();
        w.set_balance(addr(100), U256::from(1000u64));
        // Callee: SSTORE slot0 = 1 then REVERT.
        let callee = Asm::new()
            .push_u64(1)
            .push_u64(0)
            .op(Op::SStore)
            .push_u64(0)
            .push_u64(0)
            .op(Op::Revert)
            .build();
        w.set_code(addr(200), callee);
        let code = Asm::new()
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0) // no value
            .push(address_word(&addr(200)))
            .push_u64(60_000)
            .op(Op::Call);
        let (res, rw) = run_code(ret_top(code), Vec::new(), &w);
        // Call failed (flag 0) and the callee's SSTORE was rolled back.
        assert_eq!(U256::from_be_slice(&res.unwrap().output), U256::ZERO);
        assert!(!rw
            .writes
            .contains_key(&AccessKey::Storage(addr(200), H256::from_low_u64(0))));
        // But the read footprint still includes the callee's code and slot.
        assert!(rw.reads.contains_key(&AccessKey::Code(addr(200))));
    }

    #[test]
    fn create_deploys_code() {
        let mut w = WorldState::new();
        w.set_balance(addr(100), U256::from(1000u64));
        // Init code: return 2 bytes 0x6000 (PUSH1 0) as the deployed code.
        // MSTORE8 them then RETURN(0, 2).
        let init = Asm::new()
            .push_u64(0x60)
            .push_u64(0)
            .op(Op::MStore8)
            .push_u64(0x00)
            .push_u64(1)
            .op(Op::MStore8)
            .push_u64(2)
            .push_u64(0)
            .op(Op::Return)
            .build();
        // Caller program: write init into memory byte by byte, then CREATE.
        let mut asm = Asm::new();
        for (i, b) in init.iter().enumerate() {
            asm = asm.push_u64(*b as u64).push_u64(i as u64).op(Op::MStore8);
        }
        let code = asm
            .push_u64(init.len() as u64)
            .push_u64(0)
            .push_u64(0) // value
            .op(Op::Create);
        let (res, rw) = run_code(ret_top(code), Vec::new(), &w);
        let created_word = U256::from_be_slice(&res.unwrap().output);
        assert_ne!(created_word, U256::ZERO);
        let created = word_address(created_word);
        assert_eq!(created, create_address(&addr(100), 0));
        // Code write recorded; creator nonce bumped.
        assert!(rw.writes.contains_key(&AccessKey::Code(created)));
        assert_eq!(rw.writes[&AccessKey::Nonce(addr(100))], U256::ONE);
    }

    #[test]
    fn call_depth_limit() {
        // A contract that calls itself with all gas.
        let mut w = WorldState::new();
        let self_addr = addr(100);
        let code = Asm::new()
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push(address_word(&self_addr))
            .push_u64(1_000_000_000)
            .op(Op::Call)
            .op(Op::Stop)
            .build();
        w.set_code(self_addr, code.clone());
        let (res, _) = run_code(code, Vec::new(), &w);
        // The outermost frame completes; inner frames stop recursing at the
        // depth limit without poisoning the whole transaction.
        assert!(res.is_ok());
    }

    #[test]
    fn signed_opcodes() {
        let neg = |v: u64| U256::from(v).wrapping_neg();
        // SDIV: -6 / 3 = -2 (push divisor first, dividend on top).
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(3).push(neg(6)).op(Op::SDiv))),
            neg(2)
        );
        // SMOD: -7 % 3 = -1.
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(3).push(neg(7)).op(Op::SMod))),
            neg(1)
        );
        // SLT: -1 < 1.
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(1).push(neg(1)).op(Op::Slt))),
            U256::ONE
        );
        // SGT: 1 > -1.
        assert_eq!(
            returns_word(ret_top(Asm::new().push(neg(1)).push_u64(1).op(Op::Sgt))),
            U256::ONE
        );
        // SIGNEXTEND(0, 0xFF) = -1.
        assert_eq!(
            returns_word(ret_top(
                Asm::new().push_u64(0xFF).push_u64(0).op(Op::SignExtend)
            )),
            U256::MAX
        );
        // SAR: -4 >> 1 = -2.
        assert_eq!(
            returns_word(ret_top(Asm::new().push(neg(4)).push_u64(1).op(Op::Sar))),
            neg(2)
        );
    }

    #[test]
    fn extcodecopy_reads_other_contract() {
        let mut w = WorldState::new();
        w.set_code(addr(200), vec![0xDE, 0xAD, 0xBE, 0xEF]);
        let code = Asm::new()
            .push_u64(4) // len
            .push_u64(0) // code offset
            .push_u64(0) // mem offset
            .push(address_word(&addr(200)))
            .op(Op::ExtCodeCopy)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Return)
            .build();
        let (res, rw) = run_code(code, Vec::new(), &w);
        let out = res.unwrap().output;
        assert_eq!(&out[..4], &[0xDE, 0xAD, 0xBE, 0xEF]);
        // Reading foreign code is part of the footprint.
        assert!(rw.reads.contains_key(&AccessKey::Code(addr(200))));
    }

    #[test]
    fn codecopy_reads_own_code() {
        // Copy the first 4 bytes of code to memory and return the word.
        let code = Asm::new()
            .push_u64(4) // len
            .push_u64(0) // code offset
            .push_u64(0) // mem offset
            .op(Op::CodeCopy)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Return)
            .build();
        let w = WorldState::new();
        let (res, _) = run_code(code.clone(), Vec::new(), &w);
        let out = res.unwrap().output;
        assert_eq!(&out[..4], &code[..4]);
        assert!(out[4..].iter().all(|&b| b == 0));
    }

    #[test]
    fn returndata_roundtrip() {
        let mut w = WorldState::new();
        w.set_balance(addr(100), U256::from(1_000_000u64));
        // Callee returns 0x2A.
        let callee = ret_top(Asm::new().push_u64(0x2A));
        w.set_code(addr(200), callee);
        // Caller: CALL with zero out area, then RETURNDATASIZE /
        // RETURNDATACOPY the word into memory and return it.
        let code = Asm::new()
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push(address_word(&addr(200)))
            .push_u64(60_000)
            .op(Op::Call)
            .op(Op::Pop)
            .op(Op::ReturnDataSize) // should be 32
            .push_u64(0) // src
            .push_u64(0) // dst
            .op(Op::ReturnDataCopy)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Return)
            .build();
        let (res, _) = run_code(code, Vec::new(), &w);
        assert_eq!(
            U256::from_be_slice(&res.unwrap().output),
            U256::from(0x2Au64)
        );
    }

    #[test]
    fn returndatacopy_out_of_bounds_faults() {
        let w = WorldState::new();
        // No prior call: return buffer is empty; copying 1 byte faults.
        let code = Asm::new()
            .push_u64(1)
            .push_u64(0)
            .push_u64(0)
            .op(Op::ReturnDataCopy)
            .build();
        let (res, _) = run_code(code, Vec::new(), &w);
        assert_eq!(res.unwrap_err(), VmError::ReturnDataOutOfBounds);
    }

    #[test]
    fn staticcall_blocks_state_mutation() {
        let mut w = WorldState::new();
        w.set_balance(addr(100), U256::from(1_000_000u64));
        // Callee tries to SSTORE.
        let callee = Asm::new()
            .push_u64(1)
            .push_u64(0)
            .op(Op::SStore)
            .op(Op::Stop)
            .build();
        w.set_code(addr(200), callee);
        // STATICCALL it; push the success flag.
        let code = Asm::new()
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push(address_word(&addr(200)))
            .push_u64(60_000)
            .op(Op::StaticCall);
        let (res, rw) = run_code(ret_top(code), Vec::new(), &w);
        // The inner frame faulted with StaticViolation → flag is 0.
        assert_eq!(U256::from_be_slice(&res.unwrap().output), U256::ZERO);
        assert!(!rw
            .writes
            .contains_key(&AccessKey::Storage(addr(200), H256::from_low_u64(0))));
    }

    #[test]
    fn staticcall_allows_reads() {
        let mut w = WorldState::new();
        w.set_storage(addr(200), H256::from_low_u64(0), U256::from(99u64));
        w.set_code(addr(200), ret_top(Asm::new().push_u64(0).op(Op::SLoad)));
        let code = Asm::new()
            .push_u64(32) // out len
            .push_u64(0) // out off
            .push_u64(0)
            .push_u64(0)
            .push(address_word(&addr(200)))
            .push_u64(60_000)
            .op(Op::StaticCall)
            .op(Op::Pop)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Return)
            .build();
        let (res, _) = run_code(code, Vec::new(), &w);
        assert_eq!(U256::from_be_slice(&res.unwrap().output), U256::from(99u64));
    }

    #[test]
    fn delegatecall_uses_caller_storage() {
        let mut w = WorldState::new();
        w.set_balance(addr(100), U256::from(1_000_000u64));
        // Library code: SSTORE(0, 7).
        let library = Asm::new()
            .push_u64(7)
            .push_u64(0)
            .op(Op::SStore)
            .op(Op::Stop)
            .build();
        w.set_code(addr(300), library);
        // Caller DELEGATECALLs the library: the write must land in the
        // *caller's* storage (addr 100), not the library's.
        let code = Asm::new()
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push(address_word(&addr(300)))
            .push_u64(60_000)
            .op(Op::DelegateCall);
        let (res, rw) = run_code(ret_top(code), Vec::new(), &w);
        assert_eq!(U256::from_be_slice(&res.unwrap().output), U256::ONE);
        assert_eq!(
            rw.writes[&AccessKey::Storage(addr(100), H256::from_low_u64(0))],
            U256::from(7u64)
        );
        assert!(!rw
            .writes
            .contains_key(&AccessKey::Storage(addr(300), H256::from_low_u64(0))));
    }

    #[test]
    fn static_context_propagates_through_calls() {
        let mut w = WorldState::new();
        w.set_balance(addr(100), U256::from(1_000_000u64));
        // Inner: SSTORE.
        let inner = Asm::new()
            .push_u64(1)
            .push_u64(0)
            .op(Op::SStore)
            .op(Op::Stop)
            .build();
        w.set_code(addr(201), inner);
        // Middle: plain CALL to inner, returns inner's success flag.
        let middle = ret_top(
            Asm::new()
                .push_u64(0)
                .push_u64(0)
                .push_u64(0)
                .push_u64(0)
                .push_u64(0)
                .push(address_word(&addr(201)))
                .push_u64(40_000)
                .op(Op::Call),
        );
        w.set_code(addr(200), middle);
        // Outer: STATICCALL middle, copy its 32-byte answer out.
        let code = Asm::new()
            .push_u64(32)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push(address_word(&addr(200)))
            .push_u64(80_000)
            .op(Op::StaticCall)
            .op(Op::Pop)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Return)
            .build();
        let (res, rw) = run_code(code, Vec::new(), &w);
        // The middle frame ran, but its CALL inherited the static flag, so
        // the inner SSTORE faulted and middle saw flag 0.
        assert_eq!(U256::from_be_slice(&res.unwrap().output), U256::ZERO);
        assert!(!rw
            .writes
            .contains_key(&AccessKey::Storage(addr(201), H256::from_low_u64(0))));
    }

    #[test]
    fn truncated_push_zero_pads() {
        // Code ends mid-PUSH32: remaining bytes read as zero, then implicit
        // STOP. The stack value is `0x01` followed by 31 zero bytes.
        let code = vec![0x7F, 0x01];
        let w = WorldState::new();
        let (res, _) = run_code(code, Vec::new(), &w);
        assert!(!res.unwrap().reverted);
    }
}
