//! The EVM interpreter: a gas-metered 256-bit stack machine.
//!
//! One [`run_frame`] call executes one message frame (an external call, an
//! internal `CALL`, or `CREATE` init code) against a [`BufferedHost`]. All
//! state effects go through the host, so the transaction's read/write
//! footprint falls out for free — that footprint is what the OCC-WSI
//! proposer validates and what the validator scheduler builds its dependency
//! graph from.

use std::sync::Arc;

use bp_crypto::{keccak256, RlpStream};
use bp_types::{AccessKey, Address, Gas, H256, U256};

use crate::analysis::{BlockInfo, CodeAnalysis, Inst, Kind, INVALID_BLOCK, KIND_COUNT};
use crate::gas;
use crate::host::{BufferedHost, Log, StateView};

/// Block-level execution context.
#[derive(Clone, Copy, Debug)]
pub struct BlockEnv {
    /// Fee recipient.
    pub coinbase: Address,
    /// Block height.
    pub number: u64,
    /// Block timestamp (seconds).
    pub timestamp: u64,
    /// Block gas limit.
    pub gas_limit: Gas,
}

impl Default for BlockEnv {
    fn default() -> Self {
        BlockEnv {
            coinbase: Address::from_index(0xC0FFEE),
            number: 1,
            timestamp: 1_700_000_000,
            gas_limit: 30_000_000,
        }
    }
}

/// One message frame.
pub struct Frame {
    /// Executing account (storage context).
    pub address: Address,
    /// Immediate caller.
    pub caller: Address,
    /// Transaction origin.
    pub origin: Address,
    /// Wei sent with the message.
    pub value: U256,
    /// Call data.
    pub input: Vec<u8>,
    /// Code to execute.
    pub code: Arc<Vec<u8>>,
    /// Gas available to this frame.
    pub gas: Gas,
    /// Transaction gas price.
    pub gas_price: u64,
    /// True inside a `STATICCALL` context: state mutation is forbidden.
    pub is_static: bool,
}

/// Successful (or reverted) frame completion.
#[derive(Debug)]
pub struct FrameResult {
    /// RETURN/REVERT payload.
    pub output: Vec<u8>,
    /// Gas remaining after execution.
    pub gas_left: Gas,
    /// True when the frame ended with `REVERT`.
    pub reverted: bool,
}

/// Exceptional halts. These consume all gas in the frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmError {
    /// Gas exhausted.
    OutOfGas,
    /// Pop from an empty stack.
    StackUnderflow,
    /// Push past 1024 entries.
    StackOverflow,
    /// Jump to a non-JUMPDEST target.
    InvalidJump,
    /// Undefined or explicitly invalid opcode.
    InvalidOpcode(u8),
    /// Call depth exceeded 64 frames.
    CallDepth,
    /// A state-mutating opcode ran inside a `STATICCALL` context.
    StaticViolation,
    /// `RETURNDATACOPY` read past the end of the return buffer.
    ReturnDataOutOfBounds,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::OutOfGas => write!(f, "out of gas"),
            VmError::StackUnderflow => write!(f, "stack underflow"),
            VmError::StackOverflow => write!(f, "stack overflow"),
            VmError::InvalidJump => write!(f, "invalid jump destination"),
            VmError::InvalidOpcode(b) => write!(f, "invalid opcode 0x{b:02x}"),
            VmError::CallDepth => write!(f, "call depth exceeded"),
            VmError::StaticViolation => write!(f, "state mutation in static context"),
            VmError::ReturnDataOutOfBounds => write!(f, "return data access out of bounds"),
        }
    }
}

impl std::error::Error for VmError {}

const STACK_LIMIT: usize = 1024;
const MAX_CALL_DEPTH: usize = 64;

/// The operand stack.
///
/// Capacity for the full 1024-slot limit is reserved up front, and every
/// access is unchecked in release builds: the block-entry pre-validation in
/// [`run_analyzed`] proves (from the analysis's per-block `need` and
/// `max_growth`, computed over the *unfused* opcode sequence) that no
/// instruction in the block can underflow or overflow, so per-slot checks in
/// the hot loop would be pure waste. Debug builds keep assertions.
struct Stack {
    data: Vec<U256>,
}

thread_local! {
    /// Reusable operand-stack buffers, one per live frame depth.
    ///
    /// A full-capacity stack is 32 KiB; allocating and freeing one per frame
    /// measurably dominates cheap frames (a fresh 32 KiB heap block per call
    /// costs several hundred nanoseconds in a busy allocator). Frames on one
    /// thread are strictly nested, so a small per-thread free list — take on
    /// frame entry, return cleared on frame exit — removes the allocation
    /// from every frame after the first `MAX_CALL_DEPTH` on each thread.
    static STACK_POOL: std::cell::RefCell<Vec<Vec<U256>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl Stack {
    fn new() -> Self {
        let data = STACK_POOL
            .with(|p| p.borrow_mut().pop())
            .unwrap_or_else(|| Vec::with_capacity(STACK_LIMIT));
        debug_assert!(data.is_empty() && data.capacity() >= STACK_LIMIT);
        Stack { data }
    }

    #[inline(always)]
    fn len(&self) -> usize {
        self.data.len()
    }

    #[inline(always)]
    fn push(&mut self, v: U256) {
        debug_assert!(self.data.len() < STACK_LIMIT);
        // SAFETY: block pre-validation guarantees len + max_growth ≤ 1024
        // and capacity is 1024, so the slot exists and no reallocation can
        // occur.
        unsafe {
            let n = self.data.len();
            std::ptr::write(self.data.as_mut_ptr().add(n), v);
            self.data.set_len(n + 1);
        }
    }

    #[inline(always)]
    fn pop(&mut self) -> U256 {
        debug_assert!(!self.data.is_empty());
        // SAFETY: block pre-validation guarantees the stack is deep enough
        // for every pop in the block.
        unsafe {
            let n = self.data.len() - 1;
            self.data.set_len(n);
            std::ptr::read(self.data.as_ptr().add(n))
        }
    }

    /// The `depth`-th word from the top (0 = top).
    #[inline(always)]
    fn peek(&self, depth: usize) -> U256 {
        debug_assert!(depth < self.data.len());
        // SAFETY: as for `pop` — DUP/SWAP depths are covered by `need`.
        unsafe { *self.data.get_unchecked(self.data.len() - 1 - depth) }
    }

    /// Swaps the top with the `n`-th word below it.
    #[inline(always)]
    fn swap(&mut self, n: usize) {
        debug_assert!(n < self.data.len());
        // SAFETY: as for `peek`.
        unsafe {
            let top = self.data.len() - 1;
            let p = self.data.as_mut_ptr();
            std::ptr::swap(p.add(top), p.add(top - n));
        }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        // `U256` is `Copy`, so clearing is a length reset, not element drops.
        let mut data = std::mem::take(&mut self.data);
        data.clear();
        STACK_POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_CALL_DEPTH {
                pool.push(data);
            }
        });
    }
}

/// What a handler tells the dispatch loop to do next.
enum Ctl {
    /// Fall through to the next instruction.
    Next,
    /// Transfer control to this block index.
    Jump(u32),
    /// Frame finished; `output`/`reverted` are set on the [`Exec`].
    Halt,
}

/// Mutable execution state for one frame, shared by every handler.
struct Exec<'e, 'h, V: StateView> {
    host: &'e mut BufferedHost<'h, V>,
    env: &'e BlockEnv,
    frame: &'e Frame,
    an: &'e CodeAnalysis,
    depth: usize,
    stack: Stack,
    memory: Vec<u8>,
    gas_left: Gas,
    return_data: Vec<u8>,
    output: Vec<u8>,
    reverted: bool,
}

impl<V: StateView> Exec<'_, '_, V> {
    /// Charges dynamic (non-precharged) gas.
    #[inline]
    fn charge(&mut self, cost: Gas) -> Result<(), VmError> {
        if self.gas_left < cost {
            self.gas_left = 0;
            return Err(VmError::OutOfGas);
        }
        self.gas_left -= cost;
        Ok(())
    }

    /// Charges for and performs expansion to cover `[offset, offset+len)`.
    fn expand_memory(&mut self, offset: U256, len: U256) -> Result<usize, VmError> {
        if len.is_zero() {
            return offset.to_usize().ok_or(VmError::OutOfGas);
        }
        let offset = offset.to_usize().ok_or(VmError::OutOfGas)?;
        let len = len.to_usize().ok_or(VmError::OutOfGas)?;
        let end = offset.checked_add(len).ok_or(VmError::OutOfGas)?;
        let cur_words = (self.memory.len() as u64).div_ceil(32);
        let want_words = (end as u64).div_ceil(32);
        self.charge(gas::memory_expansion(cur_words, want_words))?;
        if end > self.memory.len() {
            self.memory.resize(want_words as usize * 32, 0);
        }
        Ok(offset)
    }

    fn mem_slice(&self, offset: usize, len: usize) -> &[u8] {
        &self.memory[offset..offset + len]
    }
}

type Handler<V> = for<'e, 'h> fn(&mut Exec<'e, 'h, V>, Inst) -> Result<Ctl, VmError>;

/// Carrier for the per-`V` handler table (generics forbid a plain `static`;
/// an associated `const` on a generic struct monomorphizes per view type).
struct Table<V: StateView>(std::marker::PhantomData<V>);

impl<V: StateView> Table<V> {
    /// Flat jump table indexed by [`Kind`]. Replaces the old monolithic
    /// `match` dispatch.
    const TABLE: [Handler<V>; KIND_COUNT] = {
        let mut t: [Handler<V>; KIND_COUNT] = [op_abort::<V> as Handler<V>; KIND_COUNT];
        t[Kind::Stop as usize] = op_stop::<V>;
        t[Kind::Add as usize] = op_add::<V>;
        t[Kind::Mul as usize] = op_mul::<V>;
        t[Kind::Sub as usize] = op_sub::<V>;
        t[Kind::Div as usize] = op_div::<V>;
        t[Kind::SDiv as usize] = op_sdiv::<V>;
        t[Kind::Mod as usize] = op_mod::<V>;
        t[Kind::SMod as usize] = op_smod::<V>;
        t[Kind::AddMod as usize] = op_addmod::<V>;
        t[Kind::MulMod as usize] = op_mulmod::<V>;
        t[Kind::Exp as usize] = op_exp::<V>;
        t[Kind::SignExtend as usize] = op_signextend::<V>;
        t[Kind::Lt as usize] = op_lt::<V>;
        t[Kind::Gt as usize] = op_gt::<V>;
        t[Kind::Slt as usize] = op_slt::<V>;
        t[Kind::Sgt as usize] = op_sgt::<V>;
        t[Kind::Eq as usize] = op_eq::<V>;
        t[Kind::IsZero as usize] = op_iszero::<V>;
        t[Kind::And as usize] = op_and::<V>;
        t[Kind::Or as usize] = op_or::<V>;
        t[Kind::Xor as usize] = op_xor::<V>;
        t[Kind::Not as usize] = op_not::<V>;
        t[Kind::Byte as usize] = op_byte::<V>;
        t[Kind::Shl as usize] = op_shl::<V>;
        t[Kind::Shr as usize] = op_shr::<V>;
        t[Kind::Sar as usize] = op_sar::<V>;
        t[Kind::Sha3 as usize] = op_sha3::<V>;
        t[Kind::Address as usize] = op_address::<V>;
        t[Kind::Balance as usize] = op_balance::<V>;
        t[Kind::Origin as usize] = op_origin::<V>;
        t[Kind::Caller as usize] = op_caller::<V>;
        t[Kind::CallValue as usize] = op_callvalue::<V>;
        t[Kind::CallDataLoad as usize] = op_calldataload::<V>;
        t[Kind::CallDataSize as usize] = op_calldatasize::<V>;
        t[Kind::CallDataCopy as usize] = op_calldatacopy::<V>;
        t[Kind::CodeSize as usize] = op_codesize::<V>;
        t[Kind::CodeCopy as usize] = op_codecopy::<V>;
        t[Kind::GasPrice as usize] = op_gasprice::<V>;
        t[Kind::ExtCodeSize as usize] = op_extcodesize::<V>;
        t[Kind::ExtCodeCopy as usize] = op_extcodecopy::<V>;
        t[Kind::ReturnDataSize as usize] = op_returndatasize::<V>;
        t[Kind::ReturnDataCopy as usize] = op_returndatacopy::<V>;
        t[Kind::Coinbase as usize] = op_coinbase::<V>;
        t[Kind::Timestamp as usize] = op_timestamp::<V>;
        t[Kind::Number as usize] = op_number::<V>;
        t[Kind::GasLimit as usize] = op_gaslimit::<V>;
        t[Kind::SelfBalance as usize] = op_selfbalance::<V>;
        t[Kind::Pop as usize] = op_pop::<V>;
        t[Kind::MLoad as usize] = op_mload::<V>;
        t[Kind::MStore as usize] = op_mstore::<V>;
        t[Kind::MStore8 as usize] = op_mstore8::<V>;
        t[Kind::SLoad as usize] = op_sload::<V>;
        t[Kind::SStore as usize] = op_sstore::<V>;
        t[Kind::Jump as usize] = op_jump::<V>;
        t[Kind::JumpI as usize] = op_jumpi::<V>;
        t[Kind::Pc as usize] = op_pc::<V>;
        t[Kind::MSize as usize] = op_msize::<V>;
        t[Kind::Gas as usize] = op_gas::<V>;
        t[Kind::JumpDest as usize] = op_jumpdest::<V>;
        t[Kind::Log as usize] = op_log::<V>;
        t[Kind::Create as usize] = op_create::<V>;
        t[Kind::Call as usize] = op_call::<V>;
        t[Kind::DelegateCall as usize] = op_delegatecall::<V>;
        t[Kind::StaticCall as usize] = op_staticcall::<V>;
        t[Kind::Return as usize] = op_return::<V>;
        t[Kind::Revert as usize] = op_revert::<V>;
        t[Kind::Abort as usize] = op_abort::<V>;
        t[Kind::Push as usize] = op_push::<V>;
        t[Kind::Push2 as usize] = op_push2::<V>;
        t[Kind::Dup as usize] = op_dup::<V>;
        t[Kind::Swap as usize] = op_swap::<V>;
        t[Kind::JumpImm as usize] = op_jump_imm::<V>;
        t[Kind::JumpIImm as usize] = op_jumpi_imm::<V>;
        t[Kind::DupMStore as usize] = op_dup_mstore::<V>;
        t
    };
}

/// Runs one frame to completion.
///
/// Code analysis comes from the host's [`AnalysisCache`], so repeated frames
/// against the same contract skip decoding, jumpdest discovery and block
/// summarization entirely.
pub fn run_frame<V: StateView>(
    host: &mut BufferedHost<'_, V>,
    env: &BlockEnv,
    frame: Frame,
    depth: usize,
) -> Result<FrameResult, VmError> {
    run_frame_at(host, env, frame, depth, true)
}

/// `run_frame` with cache policy: CREATE init code is one-shot and would
/// only churn the shared cache, so deployment frames analyze fresh.
fn run_frame_at<V: StateView>(
    host: &mut BufferedHost<'_, V>,
    env: &BlockEnv,
    frame: Frame,
    depth: usize,
    use_cache: bool,
) -> Result<FrameResult, VmError> {
    if depth > MAX_CALL_DEPTH {
        return Err(VmError::CallDepth);
    }
    if frame.code.is_empty() {
        return Ok(FrameResult {
            output: Vec::new(),
            gas_left: frame.gas,
            reverted: false,
        });
    }
    let cached;
    let owned;
    let an: &CodeAnalysis = if use_cache {
        cached = host.analysis(&frame.code);
        &cached
    } else {
        owned = CodeAnalysis::analyze(Arc::clone(&frame.code));
        &owned
    };
    run_analyzed(host, env, &frame, an, depth)
}

/// The hot loop: per-block gas precharge + stack pre-validation, then
/// jump-table dispatch over the pre-decoded instruction stream.
fn run_analyzed<V: StateView>(
    host: &mut BufferedHost<'_, V>,
    env: &BlockEnv,
    frame: &Frame,
    an: &CodeAnalysis,
    depth: usize,
) -> Result<FrameResult, VmError> {
    let gas = frame.gas;
    let mut e = Exec {
        host,
        env,
        frame,
        an,
        depth,
        stack: Stack::new(),
        memory: Vec::new(),
        gas_left: gas,
        return_data: Vec::new(),
        output: Vec::new(),
        reverted: false,
    };
    let blocks: &[BlockInfo] = &an.blocks;
    let insts: &[Inst] = &an.insts;
    let table = &Table::<V>::TABLE;

    let mut bi = 0usize;
    loop {
        // `bi` is always in bounds: jump targets come from `pc_block` (which
        // only holds real block indices) and fall-through targets exist
        // because the analysis appends a synthetic STOP block at the end.
        debug_assert!(bi < blocks.len());
        let blk = unsafe { *blocks.get_unchecked(bi) };

        // Precharge the whole block's static gas. Within a block execution
        // is straight-line, so a successful path through it pays exactly
        // this much; a faulting path consumes the frame's full gas either
        // way (every VmError is a full-gas exceptional halt).
        if e.gas_left < blk.static_gas {
            e.gas_left = 0;
            return Err(VmError::OutOfGas);
        }
        e.gas_left -= blk.static_gas;

        // Pre-validate stack bounds once; handlers then use unchecked
        // access.
        let len = e.stack.len() as u64;
        if len < blk.need as u64 {
            return Err(VmError::StackUnderflow);
        }
        if len + blk.max_growth as u64 > STACK_LIMIT as u64 {
            return Err(VmError::StackOverflow);
        }

        let mut ii = blk.first as usize;
        let end = blk.end as usize;
        let mut next = bi + 1;
        while ii < end {
            debug_assert!(ii < insts.len());
            let inst = unsafe { *insts.get_unchecked(ii) };
            ii += 1;
            // SAFETY: `Kind` discriminants are contiguous in
            // [0, KIND_COUNT).
            let handler = unsafe { *table.get_unchecked(inst.kind as usize) };
            match handler(&mut e, inst)? {
                Ctl::Next => {}
                Ctl::Jump(b) => {
                    next = b as usize;
                    break;
                }
                Ctl::Halt => {
                    return Ok(FrameResult {
                        output: e.output,
                        gas_left: e.gas_left,
                        reverted: e.reverted,
                    });
                }
            }
        }
        bi = next;
    }
}

/// Maps a dynamic jump destination to its target block.
#[inline]
fn resolve_jump(an: &CodeAnalysis, dest: U256) -> Result<u32, VmError> {
    let d = dest.to_usize().ok_or(VmError::InvalidJump)?;
    match an.pc_block.get(d) {
        Some(&b) if b != INVALID_BLOCK => Ok(b),
        _ => Err(VmError::InvalidJump),
    }
}

#[inline(always)]
fn binop<V: StateView>(
    e: &mut Exec<'_, '_, V>,
    f: impl FnOnce(U256, U256) -> U256,
) -> Result<Ctl, VmError> {
    let a = e.stack.pop();
    let b = e.stack.pop();
    e.stack.push(f(a, b));
    Ok(Ctl::Next)
}

fn op_stop<V: StateView>(_e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    Ok(Ctl::Halt)
}

fn op_add<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |a, b| a + b)
}

fn op_mul<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |a, b| a * b)
}

fn op_sub<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |a, b| a - b)
}

fn op_div<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |a, b| a / b)
}

fn op_sdiv<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |a, b| a.sdiv(b))
}

fn op_mod<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |a, b| a % b)
}

fn op_smod<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |a, b| a.smod(b))
}

fn op_addmod<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let a = e.stack.pop();
    let b = e.stack.pop();
    let n = e.stack.pop();
    e.stack.push(a.add_mod(b, n));
    Ok(Ctl::Next)
}

fn op_mulmod<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let a = e.stack.pop();
    let b = e.stack.pop();
    let n = e.stack.pop();
    e.stack.push(a.mul_mod(b, n));
    Ok(Ctl::Next)
}

fn op_exp<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let base = e.stack.pop();
    let exp = e.stack.pop();
    let exp_bytes = (exp.bits() as u64).div_ceil(8);
    e.charge(gas::EXP_BYTE * exp_bytes)?;
    e.stack.push(base.pow(exp));
    Ok(Ctl::Next)
}

fn op_signextend<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |k, v| v.sign_extend(k))
}

fn op_lt<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |a, b| bool_word(a < b))
}

fn op_gt<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |a, b| bool_word(a > b))
}

fn op_slt<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |a, b| bool_word(a.slt(&b)))
}

fn op_sgt<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |a, b| bool_word(b.slt(&a)))
}

fn op_eq<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |a, b| bool_word(a == b))
}

fn op_iszero<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let a = e.stack.pop();
    e.stack.push(bool_word(a.is_zero()));
    Ok(Ctl::Next)
}

fn op_and<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |a, b| a & b)
}

fn op_or<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |a, b| a | b)
}

fn op_xor<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |a, b| a ^ b)
}

fn op_not<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let a = e.stack.pop();
    e.stack.push(!a);
    Ok(Ctl::Next)
}

fn op_byte<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |i, x| U256::from(x.byte_be(i.to_usize().unwrap_or(32))))
}

fn op_shl<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |s, v| {
        v << s.to_u64().map(|x| x.min(256) as u32).unwrap_or(256)
    })
}

fn op_shr<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |s, v| {
        v >> s.to_u64().map(|x| x.min(256) as u32).unwrap_or(256)
    })
}

fn op_sar<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    binop(e, |s, v| {
        v.sar(s.to_u64().map(|x| x.min(256) as u32).unwrap_or(256))
    })
}

fn op_sha3<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let offset = e.stack.pop();
    let len = e.stack.pop();
    let words = len.to_u64().ok_or(VmError::OutOfGas)?.div_ceil(32);
    e.charge(gas::SHA3_WORD * words)?;
    let off = e.expand_memory(offset, len)?;
    let hash = keccak256(e.mem_slice(off, len.to_usize().unwrap_or(0)));
    e.stack.push(hash.to_u256());
    Ok(Ctl::Next)
}

fn op_address<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let w = address_word(&e.frame.address);
    e.stack.push(w);
    Ok(Ctl::Next)
}

fn op_balance<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let a = e.stack.pop();
    let addr = word_address(a);
    let bal = e.host.balance(&addr);
    e.stack.push(bal);
    Ok(Ctl::Next)
}

fn op_selfbalance<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let bal = e.host.balance(&e.frame.address);
    e.stack.push(bal);
    Ok(Ctl::Next)
}

fn op_origin<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let w = address_word(&e.frame.origin);
    e.stack.push(w);
    Ok(Ctl::Next)
}

fn op_caller<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let w = address_word(&e.frame.caller);
    e.stack.push(w);
    Ok(Ctl::Next)
}

fn op_callvalue<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let v = e.frame.value;
    e.stack.push(v);
    Ok(Ctl::Next)
}

fn op_calldataload<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let i = e.stack.pop();
    let mut word = [0u8; 32];
    if let Some(start) = i.to_usize() {
        for (j, byte) in word.iter_mut().enumerate() {
            *byte = e.frame.input.get(start + j).copied().unwrap_or(0);
        }
    }
    e.stack.push(U256::from_be_bytes(word));
    Ok(Ctl::Next)
}

fn op_calldatasize<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let n = e.frame.input.len();
    e.stack.push(U256::from(n));
    Ok(Ctl::Next)
}

fn op_calldatacopy<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let dst = e.stack.pop();
    let src = e.stack.pop();
    let len = e.stack.pop();
    let words = len.to_u64().ok_or(VmError::OutOfGas)?.div_ceil(32);
    e.charge(gas::COPY_WORD * words)?;
    let dst_off = e.expand_memory(dst, len)?;
    let n = len.to_usize().unwrap_or(0);
    let s = src.to_usize().unwrap_or(usize::MAX);
    for j in 0..n {
        e.memory[dst_off + j] = s
            .checked_add(j)
            .and_then(|i| e.frame.input.get(i))
            .copied()
            .unwrap_or(0);
    }
    Ok(Ctl::Next)
}

fn op_codesize<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let n = e.frame.code.len();
    e.stack.push(U256::from(n));
    Ok(Ctl::Next)
}

fn op_codecopy<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let dst = e.stack.pop();
    let src = e.stack.pop();
    let len = e.stack.pop();
    let words = len.to_u64().ok_or(VmError::OutOfGas)?.div_ceil(32);
    e.charge(gas::COPY_WORD * words)?;
    let dst_off = e.expand_memory(dst, len)?;
    let n = len.to_usize().unwrap_or(0);
    let s = src.to_usize().unwrap_or(usize::MAX);
    for j in 0..n {
        e.memory[dst_off + j] = s
            .checked_add(j)
            .and_then(|i| e.frame.code.get(i))
            .copied()
            .unwrap_or(0);
    }
    Ok(Ctl::Next)
}

fn op_gasprice<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let p = e.frame.gas_price;
    e.stack.push(U256::from(p));
    Ok(Ctl::Next)
}

fn op_extcodesize<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let a = e.stack.pop();
    let sz = e.host.code(&word_address(a)).len();
    e.stack.push(U256::from(sz));
    Ok(Ctl::Next)
}

fn op_extcodecopy<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let a = e.stack.pop();
    let dst = e.stack.pop();
    let src = e.stack.pop();
    let len = e.stack.pop();
    let words = len.to_u64().ok_or(VmError::OutOfGas)?.div_ceil(32);
    e.charge(gas::COPY_WORD * words)?;
    let ext = e.host.code(&word_address(a));
    let dst_off = e.expand_memory(dst, len)?;
    let n = len.to_usize().unwrap_or(0);
    let s = src.to_usize().unwrap_or(usize::MAX);
    for j in 0..n {
        e.memory[dst_off + j] = s
            .checked_add(j)
            .and_then(|i| ext.get(i))
            .copied()
            .unwrap_or(0);
    }
    Ok(Ctl::Next)
}

fn op_returndatasize<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let n = e.return_data.len();
    e.stack.push(U256::from(n));
    Ok(Ctl::Next)
}

fn op_returndatacopy<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let dst = e.stack.pop();
    let src = e.stack.pop();
    let len = e.stack.pop();
    let words = len.to_u64().ok_or(VmError::OutOfGas)?.div_ceil(32);
    e.charge(gas::COPY_WORD * words)?;
    let n = len.to_usize().unwrap_or(usize::MAX);
    let s = src.to_usize().unwrap_or(usize::MAX);
    // Unlike CALLDATACOPY, out-of-range RETURNDATACOPY is an exceptional
    // halt per EIP-211.
    let end = s.checked_add(n).ok_or(VmError::ReturnDataOutOfBounds)?;
    if end > e.return_data.len() {
        return Err(VmError::ReturnDataOutOfBounds);
    }
    let dst_off = e.expand_memory(dst, len)?;
    let data = e.return_data[s..end].to_vec();
    e.memory[dst_off..dst_off + n].copy_from_slice(&data);
    Ok(Ctl::Next)
}

fn op_coinbase<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let w = address_word(&e.env.coinbase);
    e.stack.push(w);
    Ok(Ctl::Next)
}

fn op_timestamp<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let t = e.env.timestamp;
    e.stack.push(U256::from(t));
    Ok(Ctl::Next)
}

fn op_number<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let n = e.env.number;
    e.stack.push(U256::from(n));
    Ok(Ctl::Next)
}

fn op_gaslimit<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let l = e.env.gas_limit;
    e.stack.push(U256::from(l));
    Ok(Ctl::Next)
}

fn op_pop<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    e.stack.pop();
    Ok(Ctl::Next)
}

fn op_mload<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let offset = e.stack.pop();
    let off = e.expand_memory(offset, U256::from(32u64))?;
    let mut word = [0u8; 32];
    word.copy_from_slice(e.mem_slice(off, 32));
    e.stack.push(U256::from_be_bytes(word));
    Ok(Ctl::Next)
}

fn op_mstore<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let offset = e.stack.pop();
    let value = e.stack.pop();
    let off = e.expand_memory(offset, U256::from(32u64))?;
    e.memory[off..off + 32].copy_from_slice(&value.to_be_bytes());
    Ok(Ctl::Next)
}

fn op_mstore8<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let offset = e.stack.pop();
    let value = e.stack.pop();
    let off = e.expand_memory(offset, U256::ONE)?;
    e.memory[off] = value.low_u64() as u8;
    Ok(Ctl::Next)
}

fn op_sload<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let slot = e.stack.pop();
    let v = e
        .host
        .read(AccessKey::Storage(e.frame.address, H256::from_u256(slot)));
    e.stack.push(v);
    Ok(Ctl::Next)
}

fn op_sstore<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    if e.frame.is_static {
        return Err(VmError::StaticViolation);
    }
    let slot = e.stack.pop();
    let value = e.stack.pop();
    let key = AccessKey::Storage(e.frame.address, H256::from_u256(slot));
    let current = e.host.read(key);
    let cost = if current.is_zero() && !value.is_zero() {
        gas::SSTORE_SET
    } else {
        gas::SSTORE_RESET
    };
    e.charge(cost)?;
    e.host.write(key, value);
    Ok(Ctl::Next)
}

fn op_jump<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let dest = e.stack.pop();
    Ok(Ctl::Jump(resolve_jump(e.an, dest)?))
}

fn op_jumpi<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let dest = e.stack.pop();
    let cond = e.stack.pop();
    if cond.is_zero() {
        Ok(Ctl::Next)
    } else {
        Ok(Ctl::Jump(resolve_jump(e.an, dest)?))
    }
}

fn op_pc<V: StateView>(e: &mut Exec<'_, '_, V>, i: Inst) -> Result<Ctl, VmError> {
    e.stack.push(U256::from(i.pc as u64));
    Ok(Ctl::Next)
}

fn op_msize<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let n = e.memory.len();
    e.stack.push(U256::from(n));
    Ok(Ctl::Next)
}

fn op_gas<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    // GAS is always block-final and its BASE cost is part of the precharge,
    // so `gas_left` here equals the per-opcode value exactly.
    let g = e.gas_left;
    e.stack.push(U256::from(g));
    Ok(Ctl::Next)
}

fn op_jumpdest<V: StateView>(_e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    Ok(Ctl::Next)
}

fn op_log<V: StateView>(e: &mut Exec<'_, '_, V>, i: Inst) -> Result<Ctl, VmError> {
    if e.frame.is_static {
        return Err(VmError::StaticViolation);
    }
    let topic_count = i.a as usize;
    let offset = e.stack.pop();
    let len = e.stack.pop();
    let mut topics = Vec::with_capacity(topic_count);
    for _ in 0..topic_count {
        topics.push(H256::from_u256(e.stack.pop()));
    }
    let data_len = len.to_u64().ok_or(VmError::OutOfGas)?;
    e.charge(gas::LOG_DATA * data_len)?;
    let off = e.expand_memory(offset, len)?;
    let data = e.mem_slice(off, data_len as usize).to_vec();
    let address = e.frame.address;
    e.host.log(Log {
        address,
        topics,
        data,
    });
    Ok(Ctl::Next)
}

fn op_create<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    if e.frame.is_static {
        return Err(VmError::StaticViolation);
    }
    let value = e.stack.pop();
    let offset = e.stack.pop();
    let len = e.stack.pop();
    let off = e.expand_memory(offset, len)?;
    let init = e.mem_slice(off, len.to_usize().unwrap_or(0)).to_vec();
    // CREATE is block-final with its static base in the precharge, so
    // `gas_left` at the 63/64 computation matches per-opcode metering.
    let forwarded = e.gas_left - e.gas_left / 64;
    e.charge(forwarded)?;
    let (created, gas_returned) =
        do_create(e.host, e.env, e.frame, value, init, forwarded, e.depth);
    e.gas_left += gas_returned;
    e.return_data.clear();
    match created {
        Some(addr) => e.stack.push(address_word(&addr)),
        None => e.stack.push(U256::ZERO),
    }
    Ok(Ctl::Next)
}

fn op_call<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    call_common(e, CallKind::Call)
}

fn op_delegatecall<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    call_common(e, CallKind::Delegate)
}

fn op_staticcall<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    call_common(e, CallKind::Static)
}

fn call_common<V: StateView>(e: &mut Exec<'_, '_, V>, kind: CallKind) -> Result<Ctl, VmError> {
    let gas_req = e.stack.pop();
    let to = word_address(e.stack.pop());
    // CALL carries an explicit value; DELEGATECALL inherits the parent's;
    // STATICCALL transfers nothing.
    let value = match kind {
        CallKind::Call => e.stack.pop(),
        CallKind::Delegate => e.frame.value,
        CallKind::Static => U256::ZERO,
    };
    let in_off = e.stack.pop();
    let in_len = e.stack.pop();
    let out_off = e.stack.pop();
    let out_len = e.stack.pop();

    let transfers_value = kind == CallKind::Call && !value.is_zero();
    if transfers_value && e.frame.is_static {
        return Err(VmError::StaticViolation);
    }
    // The flat CALL base is in the block precharge (the call terminates its
    // block); only the conditional value surcharge is dynamic.
    if transfers_value {
        e.charge(gas::CALL_VALUE)?;
    }
    let i_off = e.expand_memory(in_off, in_len)?;
    let input = e.mem_slice(i_off, in_len.to_usize().unwrap_or(0)).to_vec();
    let o_off = e.expand_memory(out_off, out_len)?;

    let cap = e.gas_left - e.gas_left / 64;
    let forwarded = gas_req.to_u64().unwrap_or(u64::MAX).min(cap);
    e.charge(forwarded)?;
    let stipend = if transfers_value {
        gas::CALL_STIPEND
    } else {
        0
    };

    let (ok, output, gas_returned) = do_call(
        e.host,
        e.env,
        e.frame,
        to,
        value,
        input,
        forwarded + stipend,
        e.depth,
        kind,
    );
    // The stipend was free to the caller; only un-spent *forwarded* gas
    // comes back.
    e.gas_left += gas_returned.min(forwarded);
    let n = out_len.to_usize().unwrap_or(0).min(output.len());
    e.memory[o_off..o_off + n].copy_from_slice(&output[..n]);
    e.return_data = output;
    e.stack.push(bool_word(ok));
    Ok(Ctl::Next)
}

fn op_return<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let offset = e.stack.pop();
    let len = e.stack.pop();
    let off = e.expand_memory(offset, len)?;
    e.output = e.mem_slice(off, len.to_usize().unwrap_or(0)).to_vec();
    Ok(Ctl::Halt)
}

fn op_revert<V: StateView>(e: &mut Exec<'_, '_, V>, _i: Inst) -> Result<Ctl, VmError> {
    let offset = e.stack.pop();
    let len = e.stack.pop();
    let off = e.expand_memory(offset, len)?;
    e.output = e.mem_slice(off, len.to_usize().unwrap_or(0)).to_vec();
    e.reverted = true;
    Ok(Ctl::Halt)
}

fn op_abort<V: StateView>(_e: &mut Exec<'_, '_, V>, i: Inst) -> Result<Ctl, VmError> {
    Err(VmError::InvalidOpcode(i.a as u8))
}

fn op_push<V: StateView>(e: &mut Exec<'_, '_, V>, i: Inst) -> Result<Ctl, VmError> {
    debug_assert!((i.a as usize) < e.an.imms.len());
    // SAFETY: immediate-pool indices are produced by the analysis.
    let v = unsafe { *e.an.imms.get_unchecked(i.a as usize) };
    e.stack.push(v);
    Ok(Ctl::Next)
}

fn op_push2<V: StateView>(e: &mut Exec<'_, '_, V>, i: Inst) -> Result<Ctl, VmError> {
    debug_assert!((i.a as usize) < e.an.imms.len() && (i.b as usize) < e.an.imms.len());
    // SAFETY: immediate-pool indices are produced by the analysis.
    let (a, b) = unsafe {
        (
            *e.an.imms.get_unchecked(i.a as usize),
            *e.an.imms.get_unchecked(i.b as usize),
        )
    };
    e.stack.push(a);
    e.stack.push(b);
    Ok(Ctl::Next)
}

fn op_dup<V: StateView>(e: &mut Exec<'_, '_, V>, i: Inst) -> Result<Ctl, VmError> {
    let v = e.stack.peek(i.a as usize - 1);
    e.stack.push(v);
    Ok(Ctl::Next)
}

fn op_swap<V: StateView>(e: &mut Exec<'_, '_, V>, i: Inst) -> Result<Ctl, VmError> {
    e.stack.swap(i.a as usize);
    Ok(Ctl::Next)
}

fn op_jump_imm<V: StateView>(_e: &mut Exec<'_, '_, V>, i: Inst) -> Result<Ctl, VmError> {
    if i.a == INVALID_BLOCK {
        return Err(VmError::InvalidJump);
    }
    Ok(Ctl::Jump(i.a))
}

fn op_jumpi_imm<V: StateView>(e: &mut Exec<'_, '_, V>, i: Inst) -> Result<Ctl, VmError> {
    let cond = e.stack.pop();
    if cond.is_zero() {
        Ok(Ctl::Next)
    } else if i.a == INVALID_BLOCK {
        Err(VmError::InvalidJump)
    } else {
        Ok(Ctl::Jump(i.a))
    }
}

fn op_dup_mstore<V: StateView>(e: &mut Exec<'_, '_, V>, i: Inst) -> Result<Ctl, VmError> {
    // DUPn duplicated the n-th word as the store offset; MSTORE then popped
    // that copy and the previous top as the value. Fused: read the offset in
    // place, pop only the value.
    let offset = e.stack.peek(i.a as usize - 1);
    let value = e.stack.pop();
    let off = e.expand_memory(offset, U256::from(32u64))?;
    e.memory[off..off + 32].copy_from_slice(&value.to_be_bytes());
    Ok(Ctl::Next)
}

#[inline]
fn bool_word(b: bool) -> U256 {
    if b {
        U256::ONE
    } else {
        U256::ZERO
    }
}

/// Zero-extends an address into a word.
pub fn address_word(a: &Address) -> U256 {
    let mut bytes = [0u8; 32];
    bytes[12..].copy_from_slice(a.as_bytes());
    U256::from_be_bytes(bytes)
}

/// Truncates a word to its low 20 bytes as an address.
pub fn word_address(w: U256) -> Address {
    let bytes = w.to_be_bytes();
    let mut out = [0u8; 20];
    out.copy_from_slice(&bytes[12..]);
    Address(out)
}

/// The classic CREATE address: `keccak(rlp([sender, nonce]))[12..]`.
pub fn create_address(sender: &Address, nonce: u64) -> Address {
    let mut s = RlpStream::new();
    s.begin_list(2);
    s.append_address(sender);
    s.append_u64(nonce);
    let hash = keccak256(&s.out());
    let mut out = [0u8; 20];
    out.copy_from_slice(&hash.0[12..]);
    Address(out)
}

/// The three message-call flavours.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CallKind {
    Call,
    Delegate,
    Static,
}

/// Executes a nested call. Returns (success, output, gas left in callee).
#[allow(clippy::too_many_arguments)]
fn do_call<V: StateView>(
    host: &mut BufferedHost<'_, V>,
    env: &BlockEnv,
    parent: &Frame,
    to: Address,
    value: U256,
    input: Vec<u8>,
    gas: Gas,
    depth: usize,
    kind: CallKind,
) -> (bool, Vec<u8>, Gas) {
    let cp = host.checkpoint();
    if kind == CallKind::Call && !host.transfer(parent.address, to, value) {
        host.revert_to(cp);
        return (false, Vec::new(), gas);
    }
    let code = host.code(&to);
    if code.is_empty() {
        // Plain value transfer to an EOA.
        return (true, Vec::new(), gas);
    }
    let frame = match kind {
        CallKind::Call | CallKind::Static => Frame {
            address: to,
            caller: parent.address,
            origin: parent.origin,
            value,
            input,
            code,
            gas,
            gas_price: parent.gas_price,
            is_static: parent.is_static || kind == CallKind::Static,
        },
        // DELEGATECALL borrows the callee's code but keeps the caller's
        // storage context, caller identity and value.
        CallKind::Delegate => Frame {
            address: parent.address,
            caller: parent.caller,
            origin: parent.origin,
            value,
            input,
            code,
            gas,
            gas_price: parent.gas_price,
            is_static: parent.is_static,
        },
    };
    match run_frame(host, env, frame, depth + 1) {
        Ok(res) if !res.reverted => (true, res.output, res.gas_left),
        Ok(res) => {
            host.revert_to(cp);
            (false, res.output, res.gas_left)
        }
        Err(_) => {
            host.revert_to(cp);
            (false, Vec::new(), 0)
        }
    }
}

/// Executes a nested CREATE. Returns (created address, gas left in initcode).
fn do_create<V: StateView>(
    host: &mut BufferedHost<'_, V>,
    env: &BlockEnv,
    parent: &Frame,
    value: U256,
    init: Vec<u8>,
    gas: Gas,
    depth: usize,
) -> (Option<Address>, Gas) {
    let cp = host.checkpoint();
    // The creator's nonce determines the address and is then bumped.
    let nonce = host.read(AccessKey::Nonce(parent.address)).low_u64();
    let created = create_address(&parent.address, nonce);
    host.write(AccessKey::Nonce(parent.address), U256::from(nonce + 1));
    if !host.transfer(parent.address, created, value) {
        host.revert_to(cp);
        return (None, gas);
    }
    let frame = Frame {
        address: created,
        caller: parent.address,
        origin: parent.origin,
        value,
        input: Vec::new(),
        code: Arc::new(init),
        gas,
        gas_price: parent.gas_price,
        is_static: false,
    };
    match run_frame_at(host, env, frame, depth + 1, false) {
        Ok(res) if !res.reverted => {
            let deposit = gas::CODE_DEPOSIT * res.output.len() as u64;
            if res.gas_left < deposit {
                host.revert_to(cp);
                return (None, 0);
            }
            host.set_code(created, res.output);
            (Some(created), res.gas_left - deposit)
        }
        Ok(res) => {
            host.revert_to(cp);
            (None, res.gas_left)
        }
        Err(_) => {
            host.revert_to(cp);
            (None, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::host::WorldView;
    use crate::opcode::Op;
    use bp_state::WorldState;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn run_code(
        code: Vec<u8>,
        input: Vec<u8>,
        world: &WorldState,
    ) -> (Result<FrameResult, VmError>, bp_types::RwSet) {
        let view = WorldView::new(world);
        let mut host = BufferedHost::new(&view);
        let frame = Frame {
            address: addr(100),
            caller: addr(1),
            origin: addr(1),
            value: U256::ZERO,
            input,
            code: Arc::new(code),
            gas: 1_000_000,
            gas_price: 1,
            is_static: false,
        };
        let env = BlockEnv::default();
        let res = run_frame(&mut host, &env, frame, 0);
        let (rw, _, _) = host.finish();
        (res, rw)
    }

    fn returns_word(code: Vec<u8>) -> U256 {
        let w = WorldState::new();
        let (res, _) = run_code(code, Vec::new(), &w);
        let out = res.expect("frame ok");
        assert!(!out.reverted);
        U256::from_be_slice(&out.output)
    }

    /// Program suffix: store the stack top at memory 0 and return it.
    fn ret_top(asm: Asm) -> Vec<u8> {
        asm.push_u64(0)
            .op(Op::MStore)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Return)
            .build()
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(2).push_u64(3).op(Op::Add))),
            U256::from(5u64)
        );
        // Stack order: SUB computes top - next.
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(3).push_u64(10).op(Op::Sub))),
            U256::from(7u64)
        );
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(4).push_u64(20).op(Op::Div))),
            U256::from(5u64)
        );
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(0).push_u64(20).op(Op::Div))),
            U256::ZERO
        );
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(7).push_u64(3).op(Op::Exp))),
            U256::from(2187u64)
        );
    }

    #[test]
    fn comparisons_and_logic() {
        // LT pops a then b, tests a < b: push b first.
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(5).push_u64(3).op(Op::Lt))),
            U256::ONE
        );
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(3).push_u64(5).op(Op::Gt))),
            U256::ONE
        );
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(5).push_u64(5).op(Op::Eq))),
            U256::ONE
        );
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(0).op(Op::IsZero))),
            U256::ONE
        );
        assert_eq!(
            returns_word(ret_top(
                Asm::new().push_u64(0b1100).push_u64(0b1010).op(Op::And)
            )),
            U256::from(0b1000u64)
        );
    }

    #[test]
    fn memory_roundtrip() {
        // MSTORE then MLOAD.
        let code = Asm::new()
            .push_u64(0xDEAD)
            .push_u64(64)
            .op(Op::MStore)
            .push_u64(64)
            .op(Op::MLoad);
        assert_eq!(returns_word(ret_top(code)), U256::from(0xDEADu64));
    }

    #[test]
    fn storage_read_write_and_footprint() {
        let mut w = WorldState::new();
        w.set_storage(addr(100), H256::from_low_u64(1), U256::from(7u64));
        // SLOAD slot 1, add 1, SSTORE slot 2.
        let code = Asm::new()
            .push_u64(1)
            .op(Op::SLoad)
            .push_u64(1)
            .op(Op::Add)
            .push_u64(2)
            .op(Op::SStore)
            .op(Op::Stop)
            .build();
        let (res, rw) = run_code(code, Vec::new(), &w);
        assert!(!res.unwrap().reverted);
        assert!(rw
            .reads
            .contains_key(&AccessKey::Storage(addr(100), H256::from_low_u64(1))));
        assert_eq!(
            rw.writes[&AccessKey::Storage(addr(100), H256::from_low_u64(2))],
            U256::from(8u64)
        );
    }

    #[test]
    fn sstore_gas_depends_on_prior_value() {
        let mut w = WorldState::new();
        w.set_storage(addr(100), H256::from_low_u64(5), U256::ONE);
        let store = |slot: u64| {
            Asm::new()
                .push_u64(9)
                .push_u64(slot)
                .op(Op::SStore)
                .op(Op::Stop)
                .build()
        };
        let (res_fresh, _) = run_code(store(6), Vec::new(), &w);
        let (res_reset, _) = run_code(store(5), Vec::new(), &w);
        let fresh_used = 1_000_000 - res_fresh.unwrap().gas_left;
        let reset_used = 1_000_000 - res_reset.unwrap().gas_left;
        assert_eq!(fresh_used - reset_used, gas::SSTORE_SET - gas::SSTORE_RESET);
    }

    #[test]
    fn jumps_loop_sums() {
        // for (i = 0; i < 10; i++) acc += i  => acc = 45
        let code = Asm::new()
            .push_u64(0) // acc
            .push_u64(0) // i
            .label("loop")
            // stack: acc i
            .dup(1)
            .push_u64(10)
            .op(Op::Eq)
            .push_label("done")
            .op(Op::JumpI)
            // acc += i
            .dup(1) // acc i i
            .swap(2) // i i acc
            .op(Op::Add) // i acc'
            .swap(1) // acc' i
            .push_u64(1)
            .op(Op::Add) // acc' i+1
            .push_label("loop")
            .op(Op::Jump)
            .label("done")
            .op(Op::Pop); // drop i, leave acc
        assert_eq!(returns_word(ret_top(code)), U256::from(45u64));
    }

    #[test]
    fn invalid_jump_faults() {
        let code = Asm::new().push_u64(1).op(Op::Jump).build();
        let w = WorldState::new();
        let (res, _) = run_code(code, Vec::new(), &w);
        assert_eq!(res.unwrap_err(), VmError::InvalidJump);
    }

    #[test]
    fn jumpdest_inside_push_data_is_invalid() {
        // PUSH2 0x005B; JUMP to offset 2 (the 0x5B inside the immediate).
        let code = vec![0x61, 0x00, 0x5B, 0x60, 0x02, 0x56];
        let w = WorldState::new();
        let (res, _) = run_code(code, Vec::new(), &w);
        assert_eq!(res.unwrap_err(), VmError::InvalidJump);
    }

    #[test]
    fn stack_underflow_and_overflow() {
        let w = WorldState::new();
        let (res, _) = run_code(vec![Op::Add as u8], Vec::new(), &w);
        assert_eq!(res.unwrap_err(), VmError::StackUnderflow);

        // Push 1025 times.
        let mut code = Vec::new();
        for _ in 0..1025 {
            code.extend_from_slice(&[0x60, 0x01]);
        }
        let (res, _) = run_code(code, Vec::new(), &w);
        assert_eq!(res.unwrap_err(), VmError::StackOverflow);
    }

    #[test]
    fn out_of_gas_on_tight_budget() {
        let view_world = WorldState::new();
        let view = WorldView::new(&view_world);
        let mut host = BufferedHost::new(&view);
        let frame = Frame {
            address: addr(100),
            caller: addr(1),
            origin: addr(1),
            value: U256::ZERO,
            input: Vec::new(),
            code: Arc::new(
                Asm::new()
                    .push_u64(1)
                    .push_u64(2)
                    .op(Op::Add)
                    .op(Op::Stop)
                    .build(),
            ),
            gas: 5, // two pushes alone need 6
            gas_price: 1,
            is_static: false,
        };
        let res = run_frame(&mut host, &BlockEnv::default(), frame, 0);
        assert_eq!(res.unwrap_err(), VmError::OutOfGas);
    }

    #[test]
    fn calldata_ops() {
        let code = Asm::new().push_u64(0).op(Op::CallDataLoad);
        let w = WorldState::new();
        let mut input = vec![0u8; 32];
        input[31] = 42;
        let (res, _) = run_code(ret_top(code), input, &w);
        assert_eq!(U256::from_be_slice(&res.unwrap().output), U256::from(42u64));

        // CALLDATASIZE
        let code = ret_top(Asm::new().op(Op::CallDataSize));
        let (res, _) = run_code(code, vec![1, 2, 3], &w);
        assert_eq!(U256::from_be_slice(&res.unwrap().output), U256::from(3u64));
    }

    #[test]
    fn sha3_of_memory() {
        // keccak256 of 32 zero bytes.
        let code = Asm::new().push_u64(32).push_u64(0).op(Op::Sha3);
        let got = returns_word(ret_top(code));
        assert_eq!(got, keccak256(&[0u8; 32]).to_u256());
    }

    #[test]
    fn revert_returns_payload_and_flag() {
        let code = Asm::new()
            .push_u64(0xBAD)
            .push_u64(0)
            .op(Op::MStore)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Revert)
            .build();
        let w = WorldState::new();
        let (res, _) = run_code(code, Vec::new(), &w);
        let out = res.unwrap();
        assert!(out.reverted);
        assert_eq!(U256::from_be_slice(&out.output), U256::from(0xBADu64));
    }

    #[test]
    fn env_opcodes() {
        assert_eq!(returns_word(ret_top(Asm::new().op(Op::Number))), U256::ONE);
        assert_eq!(
            returns_word(ret_top(Asm::new().op(Op::Caller))),
            address_word(&addr(1))
        );
        assert_eq!(
            returns_word(ret_top(Asm::new().op(Op::Address))),
            address_word(&addr(100))
        );
    }

    #[test]
    fn logs_recorded() {
        let code = Asm::new()
            .push_u64(0xAB) // topic
            .push_u64(0) // len
            .push_u64(0) // offset
            .op(Op::Log1)
            .op(Op::Stop)
            .build();
        let w = WorldState::new();
        let view = WorldView::new(&w);
        let mut host = BufferedHost::new(&view);
        let frame = Frame {
            address: addr(100),
            caller: addr(1),
            origin: addr(1),
            value: U256::ZERO,
            input: Vec::new(),
            code: Arc::new(code),
            gas: 100_000,
            gas_price: 1,
            is_static: false,
        };
        run_frame(&mut host, &BlockEnv::default(), frame, 0).unwrap();
        let (_, logs, _) = host.finish();
        assert_eq!(logs.len(), 1);
        assert_eq!(logs[0].topics, vec![H256::from_low_u64(0xAB)]);
    }

    #[test]
    fn call_transfers_value_to_eoa() {
        let mut w = WorldState::new();
        w.set_balance(addr(100), U256::from(1000u64));
        // CALL(gas=50000, to=addr(55), value=77, no data), return success flag.
        let code = Asm::new()
            .push_u64(0) // out len
            .push_u64(0) // out off
            .push_u64(0) // in len
            .push_u64(0) // in off
            .push_u64(77) // value
            .push(address_word(&addr(55)))
            .push_u64(50_000)
            .op(Op::Call);
        let (res, rw) = run_code(ret_top(code), Vec::new(), &w);
        let out = res.unwrap();
        assert_eq!(U256::from_be_slice(&out.output), U256::ONE);
        assert_eq!(rw.writes[&AccessKey::Balance(addr(55))], U256::from(77u64));
        assert_eq!(
            rw.writes[&AccessKey::Balance(addr(100))],
            U256::from(923u64)
        );
    }

    #[test]
    fn call_to_contract_executes_and_reverts_cleanly() {
        let mut w = WorldState::new();
        w.set_balance(addr(100), U256::from(1000u64));
        // Callee: SSTORE slot0 = 1 then REVERT.
        let callee = Asm::new()
            .push_u64(1)
            .push_u64(0)
            .op(Op::SStore)
            .push_u64(0)
            .push_u64(0)
            .op(Op::Revert)
            .build();
        w.set_code(addr(200), callee);
        let code = Asm::new()
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0) // no value
            .push(address_word(&addr(200)))
            .push_u64(60_000)
            .op(Op::Call);
        let (res, rw) = run_code(ret_top(code), Vec::new(), &w);
        // Call failed (flag 0) and the callee's SSTORE was rolled back.
        assert_eq!(U256::from_be_slice(&res.unwrap().output), U256::ZERO);
        assert!(!rw
            .writes
            .contains_key(&AccessKey::Storage(addr(200), H256::from_low_u64(0))));
        // But the read footprint still includes the callee's code and slot.
        assert!(rw.reads.contains_key(&AccessKey::Code(addr(200))));
    }

    #[test]
    fn create_deploys_code() {
        let mut w = WorldState::new();
        w.set_balance(addr(100), U256::from(1000u64));
        // Init code: return 2 bytes 0x6000 (PUSH1 0) as the deployed code.
        // MSTORE8 them then RETURN(0, 2).
        let init = Asm::new()
            .push_u64(0x60)
            .push_u64(0)
            .op(Op::MStore8)
            .push_u64(0x00)
            .push_u64(1)
            .op(Op::MStore8)
            .push_u64(2)
            .push_u64(0)
            .op(Op::Return)
            .build();
        // Caller program: write init into memory byte by byte, then CREATE.
        let mut asm = Asm::new();
        for (i, b) in init.iter().enumerate() {
            asm = asm.push_u64(*b as u64).push_u64(i as u64).op(Op::MStore8);
        }
        let code = asm
            .push_u64(init.len() as u64)
            .push_u64(0)
            .push_u64(0) // value
            .op(Op::Create);
        let (res, rw) = run_code(ret_top(code), Vec::new(), &w);
        let created_word = U256::from_be_slice(&res.unwrap().output);
        assert_ne!(created_word, U256::ZERO);
        let created = word_address(created_word);
        assert_eq!(created, create_address(&addr(100), 0));
        // Code write recorded; creator nonce bumped.
        assert!(rw.writes.contains_key(&AccessKey::Code(created)));
        assert_eq!(rw.writes[&AccessKey::Nonce(addr(100))], U256::ONE);
    }

    #[test]
    fn call_depth_limit() {
        // A contract that calls itself with all gas.
        let mut w = WorldState::new();
        let self_addr = addr(100);
        let code = Asm::new()
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push(address_word(&self_addr))
            .push_u64(1_000_000_000)
            .op(Op::Call)
            .op(Op::Stop)
            .build();
        w.set_code(self_addr, code.clone());
        let (res, _) = run_code(code, Vec::new(), &w);
        // The outermost frame completes; inner frames stop recursing at the
        // depth limit without poisoning the whole transaction.
        assert!(res.is_ok());
    }

    #[test]
    fn signed_opcodes() {
        let neg = |v: u64| U256::from(v).wrapping_neg();
        // SDIV: -6 / 3 = -2 (push divisor first, dividend on top).
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(3).push(neg(6)).op(Op::SDiv))),
            neg(2)
        );
        // SMOD: -7 % 3 = -1.
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(3).push(neg(7)).op(Op::SMod))),
            neg(1)
        );
        // SLT: -1 < 1.
        assert_eq!(
            returns_word(ret_top(Asm::new().push_u64(1).push(neg(1)).op(Op::Slt))),
            U256::ONE
        );
        // SGT: 1 > -1.
        assert_eq!(
            returns_word(ret_top(Asm::new().push(neg(1)).push_u64(1).op(Op::Sgt))),
            U256::ONE
        );
        // SIGNEXTEND(0, 0xFF) = -1.
        assert_eq!(
            returns_word(ret_top(
                Asm::new().push_u64(0xFF).push_u64(0).op(Op::SignExtend)
            )),
            U256::MAX
        );
        // SAR: -4 >> 1 = -2.
        assert_eq!(
            returns_word(ret_top(Asm::new().push(neg(4)).push_u64(1).op(Op::Sar))),
            neg(2)
        );
    }

    #[test]
    fn extcodecopy_reads_other_contract() {
        let mut w = WorldState::new();
        w.set_code(addr(200), vec![0xDE, 0xAD, 0xBE, 0xEF]);
        let code = Asm::new()
            .push_u64(4) // len
            .push_u64(0) // code offset
            .push_u64(0) // mem offset
            .push(address_word(&addr(200)))
            .op(Op::ExtCodeCopy)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Return)
            .build();
        let (res, rw) = run_code(code, Vec::new(), &w);
        let out = res.unwrap().output;
        assert_eq!(&out[..4], &[0xDE, 0xAD, 0xBE, 0xEF]);
        // Reading foreign code is part of the footprint.
        assert!(rw.reads.contains_key(&AccessKey::Code(addr(200))));
    }

    #[test]
    fn codecopy_reads_own_code() {
        // Copy the first 4 bytes of code to memory and return the word.
        let code = Asm::new()
            .push_u64(4) // len
            .push_u64(0) // code offset
            .push_u64(0) // mem offset
            .op(Op::CodeCopy)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Return)
            .build();
        let w = WorldState::new();
        let (res, _) = run_code(code.clone(), Vec::new(), &w);
        let out = res.unwrap().output;
        assert_eq!(&out[..4], &code[..4]);
        assert!(out[4..].iter().all(|&b| b == 0));
    }

    #[test]
    fn returndata_roundtrip() {
        let mut w = WorldState::new();
        w.set_balance(addr(100), U256::from(1_000_000u64));
        // Callee returns 0x2A.
        let callee = ret_top(Asm::new().push_u64(0x2A));
        w.set_code(addr(200), callee);
        // Caller: CALL with zero out area, then RETURNDATASIZE /
        // RETURNDATACOPY the word into memory and return it.
        let code = Asm::new()
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push(address_word(&addr(200)))
            .push_u64(60_000)
            .op(Op::Call)
            .op(Op::Pop)
            .op(Op::ReturnDataSize) // should be 32
            .push_u64(0) // src
            .push_u64(0) // dst
            .op(Op::ReturnDataCopy)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Return)
            .build();
        let (res, _) = run_code(code, Vec::new(), &w);
        assert_eq!(
            U256::from_be_slice(&res.unwrap().output),
            U256::from(0x2Au64)
        );
    }

    #[test]
    fn returndatacopy_out_of_bounds_faults() {
        let w = WorldState::new();
        // No prior call: return buffer is empty; copying 1 byte faults.
        let code = Asm::new()
            .push_u64(1)
            .push_u64(0)
            .push_u64(0)
            .op(Op::ReturnDataCopy)
            .build();
        let (res, _) = run_code(code, Vec::new(), &w);
        assert_eq!(res.unwrap_err(), VmError::ReturnDataOutOfBounds);
    }

    #[test]
    fn staticcall_blocks_state_mutation() {
        let mut w = WorldState::new();
        w.set_balance(addr(100), U256::from(1_000_000u64));
        // Callee tries to SSTORE.
        let callee = Asm::new()
            .push_u64(1)
            .push_u64(0)
            .op(Op::SStore)
            .op(Op::Stop)
            .build();
        w.set_code(addr(200), callee);
        // STATICCALL it; push the success flag.
        let code = Asm::new()
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push(address_word(&addr(200)))
            .push_u64(60_000)
            .op(Op::StaticCall);
        let (res, rw) = run_code(ret_top(code), Vec::new(), &w);
        // The inner frame faulted with StaticViolation → flag is 0.
        assert_eq!(U256::from_be_slice(&res.unwrap().output), U256::ZERO);
        assert!(!rw
            .writes
            .contains_key(&AccessKey::Storage(addr(200), H256::from_low_u64(0))));
    }

    #[test]
    fn staticcall_allows_reads() {
        let mut w = WorldState::new();
        w.set_storage(addr(200), H256::from_low_u64(0), U256::from(99u64));
        w.set_code(addr(200), ret_top(Asm::new().push_u64(0).op(Op::SLoad)));
        let code = Asm::new()
            .push_u64(32) // out len
            .push_u64(0) // out off
            .push_u64(0)
            .push_u64(0)
            .push(address_word(&addr(200)))
            .push_u64(60_000)
            .op(Op::StaticCall)
            .op(Op::Pop)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Return)
            .build();
        let (res, _) = run_code(code, Vec::new(), &w);
        assert_eq!(U256::from_be_slice(&res.unwrap().output), U256::from(99u64));
    }

    #[test]
    fn delegatecall_uses_caller_storage() {
        let mut w = WorldState::new();
        w.set_balance(addr(100), U256::from(1_000_000u64));
        // Library code: SSTORE(0, 7).
        let library = Asm::new()
            .push_u64(7)
            .push_u64(0)
            .op(Op::SStore)
            .op(Op::Stop)
            .build();
        w.set_code(addr(300), library);
        // Caller DELEGATECALLs the library: the write must land in the
        // *caller's* storage (addr 100), not the library's.
        let code = Asm::new()
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push(address_word(&addr(300)))
            .push_u64(60_000)
            .op(Op::DelegateCall);
        let (res, rw) = run_code(ret_top(code), Vec::new(), &w);
        assert_eq!(U256::from_be_slice(&res.unwrap().output), U256::ONE);
        assert_eq!(
            rw.writes[&AccessKey::Storage(addr(100), H256::from_low_u64(0))],
            U256::from(7u64)
        );
        assert!(!rw
            .writes
            .contains_key(&AccessKey::Storage(addr(300), H256::from_low_u64(0))));
    }

    #[test]
    fn static_context_propagates_through_calls() {
        let mut w = WorldState::new();
        w.set_balance(addr(100), U256::from(1_000_000u64));
        // Inner: SSTORE.
        let inner = Asm::new()
            .push_u64(1)
            .push_u64(0)
            .op(Op::SStore)
            .op(Op::Stop)
            .build();
        w.set_code(addr(201), inner);
        // Middle: plain CALL to inner, returns inner's success flag.
        let middle = ret_top(
            Asm::new()
                .push_u64(0)
                .push_u64(0)
                .push_u64(0)
                .push_u64(0)
                .push_u64(0)
                .push(address_word(&addr(201)))
                .push_u64(40_000)
                .op(Op::Call),
        );
        w.set_code(addr(200), middle);
        // Outer: STATICCALL middle, copy its 32-byte answer out.
        let code = Asm::new()
            .push_u64(32)
            .push_u64(0)
            .push_u64(0)
            .push_u64(0)
            .push(address_word(&addr(200)))
            .push_u64(80_000)
            .op(Op::StaticCall)
            .op(Op::Pop)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Return)
            .build();
        let (res, rw) = run_code(code, Vec::new(), &w);
        // The middle frame ran, but its CALL inherited the static flag, so
        // the inner SSTORE faulted and middle saw flag 0.
        assert_eq!(U256::from_be_slice(&res.unwrap().output), U256::ZERO);
        assert!(!rw
            .writes
            .contains_key(&AccessKey::Storage(addr(201), H256::from_low_u64(0))));
    }

    #[test]
    fn truncated_push_zero_pads() {
        // Code ends mid-PUSH32: remaining bytes read as zero, then implicit
        // STOP. The stack value is `0x01` followed by 31 zero bytes.
        let code = vec![0x7F, 0x01];
        let w = WorldState::new();
        let (res, _) = run_code(code, Vec::new(), &w);
        assert!(!res.unwrap().reverted);
    }
}
