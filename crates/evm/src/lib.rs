//! A gas-metered EVM with read/write-set recording.
//!
//! This is the execution substrate the BlockPilot framework runs on: a
//! 256-bit stack machine covering the instruction subset the paper's
//! workloads exercise, with Ethereum gas semantics (storage operations
//! dominate, which the validator scheduler exploits as a running-time
//! proxy). Every state access flows through [`host::BufferedHost`], so each
//! executed transaction yields its exact read/write footprint — the `rs`/`ws`
//! of the paper's Algorithm 1 — at no extra cost.
//!
//! Intentional simplifications relative to mainnet (documented in DESIGN.md):
//! no gas refunds or access lists, no precompiles, no
//! DELEGATECALL/STATICCALL, 64-frame call depth, and fees aggregated at
//! block seal instead of per-transaction coinbase writes.

#![warn(missing_docs)]

pub mod analysis;
pub mod asm;
pub mod contracts;
pub mod gas;
pub mod host;
pub mod interpreter;
pub mod opcode;
pub mod reference;
pub mod tx;

pub use analysis::{AnalysisCache, CacheStats, CodeAnalysis};
pub use host::{BufferedHost, Log, MvSnapshot, StateView, WorldView};
pub use interpreter::{create_address, BlockEnv, Frame, FrameResult, VmError};
pub use tx::{
    execute_transaction, execute_transaction_in, execute_transaction_reference, ExecutionResult,
    Receipt, Transaction, TxError,
};
