//! EVM opcodes: byte values and static gas costs.
//!
//! The subset covers everything the paper's workloads exercise — arithmetic,
//! comparison and bitwise words, Keccak, environment and block context,
//! memory, storage (`SLOAD`/`SSTORE`, the hotspot operations of §2.3),
//! control flow, `PUSH1..32`, `DUP1..16`, `SWAP1..16`, `LOG0..4`, calls,
//! creation, and halting.

/// Opcode byte values (a strict subset of the Ethereum instruction set with
/// Ethereum's numbering).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Op {
    Stop = 0x00,
    Add = 0x01,
    Mul = 0x02,
    Sub = 0x03,
    Div = 0x04,
    SDiv = 0x05,
    Mod = 0x06,
    SMod = 0x07,
    AddMod = 0x08,
    MulMod = 0x09,
    Exp = 0x0A,
    SignExtend = 0x0B,
    Lt = 0x10,
    Gt = 0x11,
    Slt = 0x12,
    Sgt = 0x13,
    Eq = 0x14,
    IsZero = 0x15,
    And = 0x16,
    Or = 0x17,
    Xor = 0x18,
    Not = 0x19,
    Byte = 0x1A,
    Shl = 0x1B,
    Shr = 0x1C,
    Sar = 0x1D,
    Sha3 = 0x20,
    Address = 0x30,
    Balance = 0x31,
    Origin = 0x32,
    Caller = 0x33,
    CallValue = 0x34,
    CallDataLoad = 0x35,
    CallDataSize = 0x36,
    CallDataCopy = 0x37,
    CodeSize = 0x38,
    CodeCopy = 0x39,
    GasPrice = 0x3A,
    ExtCodeSize = 0x3B,
    ExtCodeCopy = 0x3C,
    ReturnDataSize = 0x3D,
    ReturnDataCopy = 0x3E,
    Coinbase = 0x41,
    Timestamp = 0x42,
    Number = 0x43,
    GasLimit = 0x45,
    SelfBalance = 0x47,
    Pop = 0x50,
    MLoad = 0x51,
    MStore = 0x52,
    MStore8 = 0x53,
    SLoad = 0x54,
    SStore = 0x55,
    Jump = 0x56,
    JumpI = 0x57,
    Pc = 0x58,
    MSize = 0x59,
    Gas = 0x5A,
    JumpDest = 0x5B,
    // PUSH1..PUSH32 are 0x60..0x7F, DUP1..DUP16 are 0x80..0x8F and
    // SWAP1..SWAP16 are 0x90..0x9F; handled by range in the interpreter.
    Log0 = 0xA0,
    Log1 = 0xA1,
    Log2 = 0xA2,
    Log3 = 0xA3,
    Log4 = 0xA4,
    Create = 0xF0,
    Call = 0xF1,
    Return = 0xF3,
    DelegateCall = 0xF4,
    StaticCall = 0xFA,
    Revert = 0xFD,
    Invalid = 0xFE,
}

/// First PUSH opcode.
pub const PUSH1: u8 = 0x60;
/// Last PUSH opcode.
pub const PUSH32: u8 = 0x7F;
/// First DUP opcode.
pub const DUP1: u8 = 0x80;
/// Last DUP opcode.
pub const DUP16: u8 = 0x8F;
/// First SWAP opcode.
pub const SWAP1: u8 = 0x90;
/// Last SWAP opcode.
pub const SWAP16: u8 = 0x9F;

impl Op {
    /// Decodes a byte into a non-range opcode (PUSH/DUP/SWAP are handled by
    /// numeric range in the interpreter and return `None` here).
    pub fn from_byte(b: u8) -> Option<Op> {
        use Op::*;
        Some(match b {
            0x00 => Stop,
            0x01 => Add,
            0x02 => Mul,
            0x03 => Sub,
            0x04 => Div,
            0x05 => SDiv,
            0x06 => Mod,
            0x07 => SMod,
            0x08 => AddMod,
            0x09 => MulMod,
            0x0A => Exp,
            0x0B => SignExtend,
            0x10 => Lt,
            0x11 => Gt,
            0x12 => Slt,
            0x13 => Sgt,
            0x14 => Eq,
            0x15 => IsZero,
            0x16 => And,
            0x17 => Or,
            0x18 => Xor,
            0x19 => Not,
            0x1A => Byte,
            0x1B => Shl,
            0x1C => Shr,
            0x1D => Sar,
            0x20 => Sha3,
            0x30 => Address,
            0x31 => Balance,
            0x32 => Origin,
            0x33 => Caller,
            0x34 => CallValue,
            0x35 => CallDataLoad,
            0x36 => CallDataSize,
            0x37 => CallDataCopy,
            0x38 => CodeSize,
            0x39 => CodeCopy,
            0x3A => GasPrice,
            0x3B => ExtCodeSize,
            0x3C => ExtCodeCopy,
            0x3D => ReturnDataSize,
            0x3E => ReturnDataCopy,
            0x41 => Coinbase,
            0x42 => Timestamp,
            0x43 => Number,
            0x45 => GasLimit,
            0x47 => SelfBalance,
            0x50 => Pop,
            0x51 => MLoad,
            0x52 => MStore,
            0x53 => MStore8,
            0x54 => SLoad,
            0x55 => SStore,
            0x56 => Jump,
            0x57 => JumpI,
            0x58 => Pc,
            0x59 => MSize,
            0x5A => Gas,
            0x5B => JumpDest,
            0xA0 => Log0,
            0xA1 => Log1,
            0xA2 => Log2,
            0xA3 => Log3,
            0xA4 => Log4,
            0xF0 => Create,
            0xF1 => Call,
            0xF3 => Return,
            0xF4 => DelegateCall,
            0xFA => StaticCall,
            0xFD => Revert,
            0xFE => Invalid,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_known_bytes() {
        for b in 0u8..=0xFF {
            if let Some(op) = Op::from_byte(b) {
                assert_eq!(op as u8, b);
            }
        }
    }

    #[test]
    fn push_dup_swap_ranges_excluded() {
        for b in PUSH1..=SWAP16 {
            assert!(
                Op::from_byte(b).is_none(),
                "0x{b:02x} should be range-decoded"
            );
        }
    }

    #[test]
    fn storage_ops_present() {
        assert_eq!(Op::from_byte(0x54), Some(Op::SLoad));
        assert_eq!(Op::from_byte(0x55), Some(Op::SStore));
    }
}
