//! The pre-optimization reference interpreter.
//!
//! A byte-for-byte retention of the interpreter as it was before the
//! analysis/precharge/jump-table rewrite: per-frame `jumpdests()`
//! recomputation, per-opcode gas charging, checked stack access and a
//! monolithic `match` dispatch. It exists for two reasons: the differential
//! test suite proves the optimized engine produces identical receipts,
//! read/write sets and logs on arbitrary bytecode, and the `evm_baseline`
//! bench uses it as the honest "before" when measuring gas/us.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bp_crypto::keccak256;
use bp_types::{AccessKey, Address, Gas, RwSet, H256, U256};

use crate::gas;
use crate::host::{Log, StateView};
use crate::interpreter::{
    address_word, create_address, word_address, BlockEnv, Frame, FrameResult, VmError,
};
use crate::opcode::{Op, DUP1, DUP16, PUSH1, PUSH32, SWAP1, SWAP16};
use crate::tx::{ExecutionResult, Receipt, TxError};

/// The pre-optimization footprint recorder, retained verbatim: ordered
/// `BTreeMap`s, exactly as [`RwSet`] was backed before the Fx-hashed
/// rewrite. The raw reference path records into this so the timed "before"
/// side of the bench pays the seed's tree costs, not the new hash costs.
#[derive(Clone, Debug, Default)]
pub struct RefRwSet {
    /// Keys read, with the version observed for each.
    pub reads: BTreeMap<AccessKey, u64>,
    /// Keys written, with the final value for each.
    pub writes: BTreeMap<AccessKey, U256>,
}

impl RefRwSet {
    fn new() -> Self {
        Self::default()
    }

    fn record_read(&mut self, key: AccessKey, version: u64) {
        self.reads.entry(key).or_insert(version);
    }

    fn record_write(&mut self, key: AccessKey, value: U256) {
        self.writes.insert(key, value);
    }

    /// Converts to the live footprint type (outside any timed region).
    pub fn into_rw_set(self) -> RwSet {
        let mut rw = RwSet::new();
        for (k, v) in self.reads {
            rw.reads.insert(k, v);
        }
        for (k, v) in self.writes {
            rw.writes.insert(k, v);
        }
        rw
    }
}

/// The pre-optimization state view, retained verbatim: a plain pass-through
/// to [`WorldState::read_key`] with no account memo. The live
/// [`crate::WorldView`] grew a one-account memo as part of the hot-loop
/// work; running the reference engine through it would retroactively
/// accelerate the baseline with a post-change state-layer optimization.
/// `evm_baseline` runs the reference series through this view instead, so
/// the measured speedup covers the full pre-change → post-change stack.
pub struct RefView<'a> {
    world: &'a bp_state::WorldState,
}

impl<'a> RefView<'a> {
    /// A plain, memo-less view of `world`.
    pub fn new(world: &'a bp_state::WorldState) -> Self {
        RefView { world }
    }
}

impl StateView for RefView<'_> {
    fn read_key(&self, key: &AccessKey) -> (U256, u64) {
        (self.world.read_key(key), 0)
    }

    fn code(&self, addr: &Address) -> Arc<Vec<u8>> {
        self.world.code(addr)
    }
}

/// The pre-optimization buffered host, retained verbatim: `std` SipHash
/// maps and clone-the-buffer checkpoints, exactly as the host worked before
/// the Fx-hashed, journaled rewrite. Pinning it here keeps the reference
/// path an honest end-to-end "before" for the `evm_baseline` bench — the
/// optimized engine's host improvements count toward the measured speedup
/// instead of silently accelerating both sides.
pub struct RefHost<'a, V: StateView> {
    view: &'a V,
    rw: RefRwSet,
    buffer: HashMap<AccessKey, U256>,
    code_buffer: HashMap<Address, Arc<Vec<u8>>>,
    logs: Vec<Log>,
}

/// Checkpoint for [`RefHost`]: full clones of both buffers.
pub struct RefCheckpoint {
    buffer: HashMap<AccessKey, U256>,
    code_buffer: HashMap<Address, Arc<Vec<u8>>>,
    log_len: usize,
}

impl<'a, V: StateView> RefHost<'a, V> {
    /// A fresh host over `view`.
    pub fn new(view: &'a V) -> Self {
        RefHost {
            view,
            rw: RefRwSet::new(),
            buffer: HashMap::new(),
            code_buffer: HashMap::new(),
            logs: Vec::new(),
        }
    }

    fn read(&mut self, key: AccessKey) -> U256 {
        if let Some(v) = self.buffer.get(&key) {
            return *v;
        }
        let (value, version) = self.view.read_key(&key);
        self.rw.record_read(key, version);
        value
    }

    fn write(&mut self, key: AccessKey, value: U256) {
        self.buffer.insert(key, value);
    }

    fn code(&mut self, addr: &Address) -> Arc<Vec<u8>> {
        if let Some(c) = self.code_buffer.get(addr) {
            return Arc::clone(c);
        }
        let (_, version) = self.view.read_key(&AccessKey::Code(*addr));
        self.rw.record_read(AccessKey::Code(*addr), version);
        let code = self.view.code(addr);
        // The pre-optimization state layer resolved every code-identity
        // read by hashing the blob (no cached code hash), so each call
        // frame paid one keccak here. Reproduce that cost so A/B runs
        // against this path measure the optimization rather than a
        // baseline retroactively accelerated by the new state layer.
        if !code.is_empty() {
            std::hint::black_box(keccak256(&code));
        }
        code
    }

    fn set_code(&mut self, addr: Address, code: Vec<u8>) {
        let hash = keccak256(&code).to_u256();
        self.code_buffer.insert(addr, Arc::new(code));
        self.buffer.insert(AccessKey::Code(addr), hash);
    }

    fn balance(&mut self, addr: &Address) -> U256 {
        self.read(AccessKey::Balance(*addr))
    }

    fn set_balance(&mut self, addr: Address, value: U256) {
        self.write(AccessKey::Balance(addr), value);
    }

    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        if value.is_zero() {
            return true;
        }
        let from_bal = self.balance(&from);
        match from_bal.checked_sub(value) {
            Some(rest) => {
                self.set_balance(from, rest);
                let to_bal = self.balance(&to);
                self.set_balance(to, to_bal + value);
                true
            }
            None => false,
        }
    }

    fn log(&mut self, log: Log) {
        self.logs.push(log);
    }

    fn checkpoint(&self) -> RefCheckpoint {
        RefCheckpoint {
            buffer: self.buffer.clone(),
            code_buffer: self.code_buffer.clone(),
            log_len: self.logs.len(),
        }
    }

    fn revert_to(&mut self, cp: RefCheckpoint) {
        self.buffer = cp.buffer;
        self.code_buffer = cp.code_buffer;
        self.logs.truncate(cp.log_len);
    }

    fn finish(mut self) -> (RefRwSet, Vec<Log>, HashMap<Address, Arc<Vec<u8>>>) {
        for (key, value) in &self.buffer {
            self.rw.record_write(*key, *value);
        }
        (self.rw, self.logs, self.code_buffer)
    }
}

/// Everything the raw reference path produced, in the seed's own data
/// structures (so benches can time it without paying a conversion).
pub struct RefExecutionResult {
    /// The receipt.
    pub receipt: Receipt,
    /// Read/write footprint in the pre-optimization `BTreeMap` layout.
    pub rw: RefRwSet,
    /// Code deployed by this transaction.
    pub deployed: HashMap<Address, Arc<Vec<u8>>>,
}

/// The pre-optimization transaction driver over [`RefHost`] +
/// [`run_frame_reference`]: admission checks, gas purchase, the outer
/// frame, refund and receipt assembly, exactly as `execute_transaction`
/// worked before the rewrite. Returns the seed's own result shape; use
/// [`execute_transaction_reference`] when the live types are wanted.
pub fn execute_transaction_reference_raw<V: StateView>(
    view: &V,
    env: &BlockEnv,
    tx: &crate::tx::Transaction,
) -> Result<RefExecutionResult, TxError> {
    let mut host = RefHost::new(view);
    let state_nonce = host.read(AccessKey::Nonce(tx.sender)).low_u64();
    if state_nonce != tx.nonce {
        return Err(TxError::BadNonce {
            expected: state_nonce,
            got: tx.nonce,
        });
    }

    let intrinsic = crate::gas::intrinsic_gas(&tx.data, tx.to.is_none());
    if tx.gas_limit < intrinsic {
        return Err(TxError::IntrinsicGas);
    }

    let gas_cost = U256::from(tx.gas_limit) * U256::from(tx.gas_price);
    let balance = host.balance(&tx.sender);
    let needed = gas_cost
        .checked_add(tx.value)
        .ok_or(TxError::InsufficientFunds)?;
    if balance < needed {
        return Err(TxError::InsufficientFunds);
    }

    host.set_balance(tx.sender, balance - gas_cost);
    host.write(AccessKey::Nonce(tx.sender), U256::from(tx.nonce + 1));

    let cp = host.checkpoint();
    let exec_gas = tx.gas_limit - intrinsic;
    let (mut success, mut gas_left, mut output, mut created) = (true, exec_gas, Vec::new(), None);

    match &tx.to {
        Some(to) => {
            if !host.transfer(tx.sender, *to, tx.value) {
                success = false;
            } else {
                let code = host.code(to);
                if !code.is_empty() {
                    let frame = Frame {
                        address: *to,
                        caller: tx.sender,
                        origin: tx.sender,
                        value: tx.value,
                        input: tx.data.clone(),
                        code,
                        gas: exec_gas,
                        gas_price: tx.gas_price,
                        is_static: false,
                    };
                    match run_frame_reference(&mut host, env, frame, 0) {
                        Ok(res) => {
                            gas_left = res.gas_left;
                            output = res.output;
                            success = !res.reverted;
                        }
                        Err(_) => {
                            gas_left = 0;
                            success = false;
                        }
                    }
                }
            }
        }
        None => {
            let addr = create_address(&tx.sender, tx.nonce);
            if !host.transfer(tx.sender, addr, tx.value) {
                success = false;
            } else {
                let frame = Frame {
                    address: addr,
                    caller: tx.sender,
                    origin: tx.sender,
                    value: tx.value,
                    input: Vec::new(),
                    code: Arc::new(tx.data.clone()),
                    gas: exec_gas,
                    gas_price: tx.gas_price,
                    is_static: false,
                };
                match run_frame_reference(&mut host, env, frame, 0) {
                    Ok(res) if !res.reverted => {
                        let deposit = crate::gas::CODE_DEPOSIT * res.output.len() as u64;
                        if res.gas_left < deposit {
                            gas_left = 0;
                            success = false;
                        } else {
                            gas_left = res.gas_left - deposit;
                            host.set_code(addr, res.output);
                            created = Some(addr);
                        }
                    }
                    Ok(res) => {
                        gas_left = res.gas_left;
                        output = res.output;
                        success = false;
                    }
                    Err(_) => {
                        gas_left = 0;
                        success = false;
                    }
                }
            }
        }
    }

    if !success {
        host.revert_to(cp);
        output.truncate(0);
    }

    let sender_balance = host.balance(&tx.sender);
    let refund = U256::from(gas_left) * U256::from(tx.gas_price);
    host.set_balance(tx.sender, sender_balance + refund);

    let gas_used = tx.gas_limit - gas_left;
    let (rw, logs, deployed) = host.finish();
    Ok(RefExecutionResult {
        receipt: Receipt {
            success,
            gas_used,
            output,
            logs,
            fee: U256::from(gas_used) * U256::from(tx.gas_price),
            created,
        },
        rw,
        deployed,
    })
}

/// [`execute_transaction_reference_raw`] adapted to the live
/// [`ExecutionResult`] shape (footprint conversion happens here, outside
/// anything a bench should time).
pub fn execute_transaction_reference<V: StateView>(
    view: &V,
    env: &BlockEnv,
    tx: &crate::tx::Transaction,
) -> Result<ExecutionResult, TxError> {
    let raw = execute_transaction_reference_raw(view, env, tx)?;
    Ok(ExecutionResult {
        receipt: raw.receipt,
        rw: raw.rw.into_rw_set(),
        deployed: raw.deployed.into_iter().collect(),
    })
}

const STACK_LIMIT: usize = 1024;
const MAX_CALL_DEPTH: usize = 64;

struct Machine {
    stack: Vec<U256>,
    memory: Vec<u8>,
    gas_left: Gas,
    pc: usize,
    return_data: Vec<u8>,
}

impl Machine {
    fn new(gas: Gas) -> Self {
        Machine {
            stack: Vec::with_capacity(64),
            memory: Vec::new(),
            gas_left: gas,
            pc: 0,
            return_data: Vec::new(),
        }
    }

    #[inline]
    fn charge(&mut self, cost: Gas) -> Result<(), VmError> {
        if self.gas_left < cost {
            self.gas_left = 0;
            return Err(VmError::OutOfGas);
        }
        self.gas_left -= cost;
        Ok(())
    }

    #[inline]
    fn pop(&mut self) -> Result<U256, VmError> {
        self.stack.pop().ok_or(VmError::StackUnderflow)
    }

    #[inline]
    fn push(&mut self, v: U256) -> Result<(), VmError> {
        if self.stack.len() >= STACK_LIMIT {
            return Err(VmError::StackOverflow);
        }
        self.stack.push(v);
        Ok(())
    }

    /// Charges for and performs expansion to cover `[offset, offset+len)`.
    fn expand_memory(&mut self, offset: U256, len: U256) -> Result<usize, VmError> {
        if len.is_zero() {
            return offset.to_usize().ok_or(VmError::OutOfGas);
        }
        let offset = offset.to_usize().ok_or(VmError::OutOfGas)?;
        let len = len.to_usize().ok_or(VmError::OutOfGas)?;
        let end = offset.checked_add(len).ok_or(VmError::OutOfGas)?;
        let cur_words = (self.memory.len() as u64).div_ceil(32);
        let want_words = (end as u64).div_ceil(32);
        self.charge(gas::memory_expansion(cur_words, want_words))?;
        if end > self.memory.len() {
            self.memory.resize(want_words as usize * 32, 0);
        }
        Ok(offset)
    }

    fn mem_slice(&self, offset: usize, len: usize) -> &[u8] {
        &self.memory[offset..offset + len]
    }
}

/// Precomputed set of valid jump destinations (JUMPDEST bytes outside PUSH
/// immediates).
fn jumpdests(code: &[u8]) -> Vec<bool> {
    let mut valid = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let b = code[i];
        if b == Op::JumpDest as u8 {
            valid[i] = true;
        }
        if (PUSH1..=PUSH32).contains(&b) {
            i += (b - PUSH1) as usize + 1;
        }
        i += 1;
    }
    valid
}

/// Runs one frame to completion.
pub fn run_frame_reference<V: StateView>(
    host: &mut RefHost<'_, V>,
    env: &BlockEnv,
    frame: Frame,
    depth: usize,
) -> Result<FrameResult, VmError> {
    if depth > MAX_CALL_DEPTH {
        return Err(VmError::CallDepth);
    }
    let code = Arc::clone(&frame.code);
    let valid_jumps = jumpdests(&code);
    let mut m = Machine::new(frame.gas);

    loop {
        let byte = match code.get(m.pc) {
            Some(&b) => b,
            // Running off the end of code is an implicit STOP.
            None => {
                return Ok(FrameResult {
                    output: Vec::new(),
                    gas_left: m.gas_left,
                    reverted: false,
                })
            }
        };
        m.pc += 1;

        // PUSH / DUP / SWAP ranges first.
        if (PUSH1..=PUSH32).contains(&byte) {
            m.charge(gas::VERYLOW)?;
            let n = (byte - PUSH1) as usize + 1;
            let end = (m.pc + n).min(code.len());
            let v = U256::from_be_slice(&code[m.pc..end]);
            // Truncated push at end of code zero-pads on the right per spec;
            // from_be_slice pads left, so shift for the missing bytes.
            let missing = (m.pc + n - end) as u32;
            m.push(v << (8 * missing))?;
            m.pc += n;
            continue;
        }
        if (DUP1..=DUP16).contains(&byte) {
            m.charge(gas::VERYLOW)?;
            let n = (byte - DUP1) as usize + 1;
            if m.stack.len() < n {
                return Err(VmError::StackUnderflow);
            }
            let v = m.stack[m.stack.len() - n];
            m.push(v)?;
            continue;
        }
        if (SWAP1..=SWAP16).contains(&byte) {
            m.charge(gas::VERYLOW)?;
            let n = (byte - SWAP1) as usize + 1;
            if m.stack.len() < n + 1 {
                return Err(VmError::StackUnderflow);
            }
            let top = m.stack.len() - 1;
            m.stack.swap(top, top - n);
            continue;
        }

        let op = Op::from_byte(byte).ok_or(VmError::InvalidOpcode(byte))?;
        match op {
            Op::Stop => {
                return Ok(FrameResult {
                    output: Vec::new(),
                    gas_left: m.gas_left,
                    reverted: false,
                })
            }
            Op::Add => binary(&mut m, gas::VERYLOW, |a, b| a + b)?,
            Op::Mul => binary(&mut m, gas::LOW, |a, b| a * b)?,
            Op::Sub => binary(&mut m, gas::VERYLOW, |a, b| a - b)?,
            Op::Div => binary(&mut m, gas::LOW, |a, b| a / b)?,
            Op::Mod => binary(&mut m, gas::LOW, |a, b| a % b)?,
            Op::SDiv => binary(&mut m, gas::LOW, |a, b| a.sdiv(b))?,
            Op::SMod => binary(&mut m, gas::LOW, |a, b| a.smod(b))?,
            Op::SignExtend => binary(&mut m, gas::LOW, |k, v| v.sign_extend(k))?,
            Op::AddMod => ternary(&mut m, gas::MID, |a, b, n| a.add_mod(b, n))?,
            Op::MulMod => ternary(&mut m, gas::MID, |a, b, n| a.mul_mod(b, n))?,
            Op::Exp => {
                let base = m.pop()?;
                let exp = m.pop()?;
                let exp_bytes = (exp.bits() as u64).div_ceil(8);
                m.charge(gas::EXP + gas::EXP_BYTE * exp_bytes)?;
                m.push(base.pow(exp))?;
            }
            Op::Lt => binary(&mut m, gas::VERYLOW, |a, b| bool_word(a < b))?,
            Op::Gt => binary(&mut m, gas::VERYLOW, |a, b| bool_word(a > b))?,
            Op::Slt => binary(&mut m, gas::VERYLOW, |a, b| bool_word(a.slt(&b)))?,
            Op::Sgt => binary(&mut m, gas::VERYLOW, |a, b| bool_word(b.slt(&a)))?,
            Op::Eq => binary(&mut m, gas::VERYLOW, |a, b| bool_word(a == b))?,
            Op::IsZero => {
                m.charge(gas::VERYLOW)?;
                let a = m.pop()?;
                m.push(bool_word(a.is_zero()))?;
            }
            Op::And => binary(&mut m, gas::VERYLOW, |a, b| a & b)?,
            Op::Or => binary(&mut m, gas::VERYLOW, |a, b| a | b)?,
            Op::Xor => binary(&mut m, gas::VERYLOW, |a, b| a ^ b)?,
            Op::Not => {
                m.charge(gas::VERYLOW)?;
                let a = m.pop()?;
                m.push(!a)?;
            }
            Op::Byte => binary(&mut m, gas::VERYLOW, |i, x| {
                U256::from(x.byte_be(i.to_usize().unwrap_or(32)))
            })?,
            Op::Shl => binary(&mut m, gas::VERYLOW, |s, v| {
                v << s.to_u64().map(|x| x.min(256) as u32).unwrap_or(256)
            })?,
            Op::Shr => binary(&mut m, gas::VERYLOW, |s, v| {
                v >> s.to_u64().map(|x| x.min(256) as u32).unwrap_or(256)
            })?,
            Op::Sar => binary(&mut m, gas::VERYLOW, |s, v| {
                v.sar(s.to_u64().map(|x| x.min(256) as u32).unwrap_or(256))
            })?,
            Op::Sha3 => {
                let offset = m.pop()?;
                let len = m.pop()?;
                let words = len.to_u64().ok_or(VmError::OutOfGas)?.div_ceil(32);
                m.charge(gas::SHA3 + gas::SHA3_WORD * words)?;
                let off = m.expand_memory(offset, len)?;
                let hash = keccak256(m.mem_slice(off, len.to_usize().unwrap_or(0)));
                m.push(hash.to_u256())?;
            }
            Op::Address => {
                m.charge(gas::BASE)?;
                m.push(address_word(&frame.address))?;
            }
            Op::Balance => {
                m.charge(gas::BALANCE)?;
                let a = m.pop()?;
                let addr = word_address(a);
                let bal = host.balance(&addr);
                m.push(bal)?;
            }
            Op::SelfBalance => {
                m.charge(gas::SELFBALANCE)?;
                let bal = host.balance(&frame.address);
                m.push(bal)?;
            }
            Op::Origin => {
                m.charge(gas::BASE)?;
                m.push(address_word(&frame.origin))?;
            }
            Op::Caller => {
                m.charge(gas::BASE)?;
                m.push(address_word(&frame.caller))?;
            }
            Op::CallValue => {
                m.charge(gas::BASE)?;
                m.push(frame.value)?;
            }
            Op::CallDataLoad => {
                m.charge(gas::VERYLOW)?;
                let i = m.pop()?;
                let mut word = [0u8; 32];
                if let Some(start) = i.to_usize() {
                    for (j, byte) in word.iter_mut().enumerate() {
                        *byte = frame.input.get(start + j).copied().unwrap_or(0);
                    }
                }
                m.push(U256::from_be_bytes(word))?;
            }
            Op::CallDataSize => {
                m.charge(gas::BASE)?;
                m.push(U256::from(frame.input.len()))?;
            }
            Op::CallDataCopy => {
                let dst = m.pop()?;
                let src = m.pop()?;
                let len = m.pop()?;
                let words = len.to_u64().ok_or(VmError::OutOfGas)?.div_ceil(32);
                m.charge(gas::VERYLOW + gas::COPY_WORD * words)?;
                let dst_off = m.expand_memory(dst, len)?;
                let n = len.to_usize().unwrap_or(0);
                let s = src.to_usize().unwrap_or(usize::MAX);
                for j in 0..n {
                    m.memory[dst_off + j] = s
                        .checked_add(j)
                        .and_then(|i| frame.input.get(i))
                        .copied()
                        .unwrap_or(0);
                }
            }
            Op::CodeSize => {
                m.charge(gas::BASE)?;
                m.push(U256::from(code.len()))?;
            }
            Op::CodeCopy => {
                let dst = m.pop()?;
                let src = m.pop()?;
                let len = m.pop()?;
                let words = len.to_u64().ok_or(VmError::OutOfGas)?.div_ceil(32);
                m.charge(gas::VERYLOW + gas::COPY_WORD * words)?;
                let dst_off = m.expand_memory(dst, len)?;
                let n = len.to_usize().unwrap_or(0);
                let s = src.to_usize().unwrap_or(usize::MAX);
                for j in 0..n {
                    m.memory[dst_off + j] = s
                        .checked_add(j)
                        .and_then(|i| code.get(i))
                        .copied()
                        .unwrap_or(0);
                }
            }
            Op::ReturnDataSize => {
                m.charge(gas::BASE)?;
                m.push(U256::from(m.return_data.len()))?;
            }
            Op::ReturnDataCopy => {
                let dst = m.pop()?;
                let src = m.pop()?;
                let len = m.pop()?;
                let words = len.to_u64().ok_or(VmError::OutOfGas)?.div_ceil(32);
                m.charge(gas::VERYLOW + gas::COPY_WORD * words)?;
                let n = len.to_usize().unwrap_or(usize::MAX);
                let s = src.to_usize().unwrap_or(usize::MAX);
                // Unlike CALLDATACOPY, out-of-range RETURNDATACOPY is an
                // exceptional halt per EIP-211.
                let end = s.checked_add(n).ok_or(VmError::ReturnDataOutOfBounds)?;
                if end > m.return_data.len() {
                    return Err(VmError::ReturnDataOutOfBounds);
                }
                let dst_off = m.expand_memory(dst, len)?;
                let data = m.return_data[s..end].to_vec();
                m.memory[dst_off..dst_off + n].copy_from_slice(&data);
            }
            Op::ExtCodeSize => {
                m.charge(gas::BALANCE)?;
                let a = m.pop()?;
                let sz = host.code(&word_address(a)).len();
                m.push(U256::from(sz))?;
            }
            Op::ExtCodeCopy => {
                let a = m.pop()?;
                let dst = m.pop()?;
                let src = m.pop()?;
                let len = m.pop()?;
                let words = len.to_u64().ok_or(VmError::OutOfGas)?.div_ceil(32);
                m.charge(gas::BALANCE + gas::COPY_WORD * words)?;
                let ext = host.code(&word_address(a));
                let dst_off = m.expand_memory(dst, len)?;
                let n = len.to_usize().unwrap_or(0);
                let s = src.to_usize().unwrap_or(usize::MAX);
                for j in 0..n {
                    m.memory[dst_off + j] = s
                        .checked_add(j)
                        .and_then(|i| ext.get(i))
                        .copied()
                        .unwrap_or(0);
                }
            }
            Op::GasPrice => {
                m.charge(gas::BASE)?;
                m.push(U256::from(frame.gas_price))?;
            }
            Op::Coinbase => {
                m.charge(gas::BASE)?;
                m.push(address_word(&env.coinbase))?;
            }
            Op::Timestamp => {
                m.charge(gas::BASE)?;
                m.push(U256::from(env.timestamp))?;
            }
            Op::Number => {
                m.charge(gas::BASE)?;
                m.push(U256::from(env.number))?;
            }
            Op::GasLimit => {
                m.charge(gas::BASE)?;
                m.push(U256::from(env.gas_limit))?;
            }
            Op::Pop => {
                m.charge(gas::BASE)?;
                m.pop()?;
            }
            Op::MLoad => {
                m.charge(gas::VERYLOW)?;
                let offset = m.pop()?;
                let off = m.expand_memory(offset, U256::from(32u64))?;
                let mut word = [0u8; 32];
                word.copy_from_slice(m.mem_slice(off, 32));
                m.push(U256::from_be_bytes(word))?;
            }
            Op::MStore => {
                m.charge(gas::VERYLOW)?;
                let offset = m.pop()?;
                let value = m.pop()?;
                let off = m.expand_memory(offset, U256::from(32u64))?;
                m.memory[off..off + 32].copy_from_slice(&value.to_be_bytes());
            }
            Op::MStore8 => {
                m.charge(gas::VERYLOW)?;
                let offset = m.pop()?;
                let value = m.pop()?;
                let off = m.expand_memory(offset, U256::ONE)?;
                m.memory[off] = value.low_u64() as u8;
            }
            Op::SLoad => {
                m.charge(gas::SLOAD)?;
                let slot = m.pop()?;
                let v = host.read(AccessKey::Storage(frame.address, H256::from_u256(slot)));
                m.push(v)?;
            }
            Op::SStore => {
                if frame.is_static {
                    return Err(VmError::StaticViolation);
                }
                let slot = m.pop()?;
                let value = m.pop()?;
                let key = AccessKey::Storage(frame.address, H256::from_u256(slot));
                let current = host.read(key);
                let cost = if current.is_zero() && !value.is_zero() {
                    gas::SSTORE_SET
                } else {
                    gas::SSTORE_RESET
                };
                m.charge(cost)?;
                host.write(key, value);
            }
            Op::Jump => {
                m.charge(gas::MID)?;
                let dest = m.pop()?;
                jump_to(&mut m, dest, &valid_jumps)?;
            }
            Op::JumpI => {
                m.charge(gas::HIGH)?;
                let dest = m.pop()?;
                let cond = m.pop()?;
                if !cond.is_zero() {
                    jump_to(&mut m, dest, &valid_jumps)?;
                }
            }
            Op::Pc => {
                m.charge(gas::BASE)?;
                m.push(U256::from(m.pc - 1))?;
            }
            Op::MSize => {
                m.charge(gas::BASE)?;
                m.push(U256::from(m.memory.len()))?;
            }
            Op::Gas => {
                m.charge(gas::BASE)?;
                m.push(U256::from(m.gas_left))?;
            }
            Op::JumpDest => m.charge(gas::JUMPDEST)?,
            Op::Log0 | Op::Log1 | Op::Log2 | Op::Log3 | Op::Log4 => {
                if frame.is_static {
                    return Err(VmError::StaticViolation);
                }
                let topic_count = (op as u8 - Op::Log0 as u8) as usize;
                let offset = m.pop()?;
                let len = m.pop()?;
                let mut topics = Vec::with_capacity(topic_count);
                for _ in 0..topic_count {
                    topics.push(H256::from_u256(m.pop()?));
                }
                let data_len = len.to_u64().ok_or(VmError::OutOfGas)?;
                m.charge(
                    gas::LOG + gas::LOG_TOPIC * topic_count as u64 + gas::LOG_DATA * data_len,
                )?;
                let off = m.expand_memory(offset, len)?;
                let data = m.mem_slice(off, data_len as usize).to_vec();
                host.log(Log {
                    address: frame.address,
                    topics,
                    data,
                });
            }
            Op::Create => {
                if frame.is_static {
                    return Err(VmError::StaticViolation);
                }
                m.charge(gas::CREATE)?;
                let value = m.pop()?;
                let offset = m.pop()?;
                let len = m.pop()?;
                let off = m.expand_memory(offset, len)?;
                let init = m.mem_slice(off, len.to_usize().unwrap_or(0)).to_vec();
                let forwarded = m.gas_left - m.gas_left / 64;
                m.charge(forwarded)?;
                let (created, gas_returned) =
                    do_create(host, env, &frame, value, init, forwarded, depth);
                m.gas_left += gas_returned;
                m.return_data.clear();
                match created {
                    Some(addr) => m.push(address_word(&addr))?,
                    None => m.push(U256::ZERO)?,
                }
            }
            Op::Call | Op::DelegateCall | Op::StaticCall => {
                let gas_req = m.pop()?;
                let to = word_address(m.pop()?);
                // CALL carries an explicit value; DELEGATECALL inherits the
                // parent's; STATICCALL transfers nothing.
                let value = match op {
                    Op::Call => m.pop()?,
                    Op::DelegateCall => frame.value,
                    _ => U256::ZERO,
                };
                let in_off = m.pop()?;
                let in_len = m.pop()?;
                let out_off = m.pop()?;
                let out_len = m.pop()?;

                let transfers_value = op == Op::Call && !value.is_zero();
                if transfers_value && frame.is_static {
                    return Err(VmError::StaticViolation);
                }
                let mut base = gas::CALL;
                if transfers_value {
                    base += gas::CALL_VALUE;
                }
                m.charge(base)?;
                let i_off = m.expand_memory(in_off, in_len)?;
                let input = m.mem_slice(i_off, in_len.to_usize().unwrap_or(0)).to_vec();
                let o_off = m.expand_memory(out_off, out_len)?;

                let cap = m.gas_left - m.gas_left / 64;
                let forwarded = gas_req.to_u64().unwrap_or(u64::MAX).min(cap);
                m.charge(forwarded)?;
                let stipend = if transfers_value {
                    gas::CALL_STIPEND
                } else {
                    0
                };

                let kind = match op {
                    Op::Call => CallKind::Call,
                    Op::DelegateCall => CallKind::Delegate,
                    _ => CallKind::Static,
                };
                let (ok, output, gas_returned) = do_call(
                    host,
                    env,
                    &frame,
                    to,
                    value,
                    input,
                    forwarded + stipend,
                    depth,
                    kind,
                );
                // The stipend was free to the caller; only un-spent
                // *forwarded* gas comes back.
                m.gas_left += gas_returned.min(forwarded);
                let n = out_len.to_usize().unwrap_or(0).min(output.len());
                m.memory[o_off..o_off + n].copy_from_slice(&output[..n]);
                m.return_data = output;
                m.push(bool_word(ok))?;
            }
            Op::Return | Op::Revert => {
                let offset = m.pop()?;
                let len = m.pop()?;
                let off = m.expand_memory(offset, len)?;
                let output = m.mem_slice(off, len.to_usize().unwrap_or(0)).to_vec();
                return Ok(FrameResult {
                    output,
                    gas_left: m.gas_left,
                    reverted: op == Op::Revert,
                });
            }
            Op::Invalid => return Err(VmError::InvalidOpcode(0xFE)),
        }
    }
}

fn jump_to(m: &mut Machine, dest: U256, valid: &[bool]) -> Result<(), VmError> {
    let d = dest.to_usize().ok_or(VmError::InvalidJump)?;
    if d >= valid.len() || !valid[d] {
        return Err(VmError::InvalidJump);
    }
    m.pc = d;
    Ok(())
}

#[inline]
fn binary(m: &mut Machine, cost: Gas, f: impl FnOnce(U256, U256) -> U256) -> Result<(), VmError> {
    m.charge(cost)?;
    let a = m.pop()?;
    let b = m.pop()?;
    m.push(f(a, b))
}

#[inline]
fn ternary(
    m: &mut Machine,
    cost: Gas,
    f: impl FnOnce(U256, U256, U256) -> U256,
) -> Result<(), VmError> {
    m.charge(cost)?;
    let a = m.pop()?;
    let b = m.pop()?;
    let c = m.pop()?;
    m.push(f(a, b, c))
}

#[inline]
fn bool_word(b: bool) -> U256 {
    if b {
        U256::ONE
    } else {
        U256::ZERO
    }
}

/// The three message-call flavours.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CallKind {
    Call,
    Delegate,
    Static,
}

/// Executes a nested call. Returns (success, output, gas left in callee).
#[allow(clippy::too_many_arguments)]
fn do_call<V: StateView>(
    host: &mut RefHost<'_, V>,
    env: &BlockEnv,
    parent: &Frame,
    to: Address,
    value: U256,
    input: Vec<u8>,
    gas: Gas,
    depth: usize,
    kind: CallKind,
) -> (bool, Vec<u8>, Gas) {
    let cp = host.checkpoint();
    if kind == CallKind::Call && !host.transfer(parent.address, to, value) {
        host.revert_to(cp);
        return (false, Vec::new(), gas);
    }
    let code = host.code(&to);
    if code.is_empty() {
        // Plain value transfer to an EOA.
        return (true, Vec::new(), gas);
    }
    let frame = match kind {
        CallKind::Call | CallKind::Static => Frame {
            address: to,
            caller: parent.address,
            origin: parent.origin,
            value,
            input,
            code,
            gas,
            gas_price: parent.gas_price,
            is_static: parent.is_static || kind == CallKind::Static,
        },
        // DELEGATECALL borrows the callee's code but keeps the caller's
        // storage context, caller identity and value.
        CallKind::Delegate => Frame {
            address: parent.address,
            caller: parent.caller,
            origin: parent.origin,
            value,
            input,
            code,
            gas,
            gas_price: parent.gas_price,
            is_static: parent.is_static,
        },
    };
    match run_frame_reference(host, env, frame, depth + 1) {
        Ok(res) if !res.reverted => (true, res.output, res.gas_left),
        Ok(res) => {
            host.revert_to(cp);
            (false, res.output, res.gas_left)
        }
        Err(_) => {
            host.revert_to(cp);
            (false, Vec::new(), 0)
        }
    }
}

/// Executes a nested CREATE. Returns (created address, gas left in initcode).
fn do_create<V: StateView>(
    host: &mut RefHost<'_, V>,
    env: &BlockEnv,
    parent: &Frame,
    value: U256,
    init: Vec<u8>,
    gas: Gas,
    depth: usize,
) -> (Option<Address>, Gas) {
    let cp = host.checkpoint();
    // The creator's nonce determines the address and is then bumped.
    let nonce = host.read(AccessKey::Nonce(parent.address)).low_u64();
    let created = create_address(&parent.address, nonce);
    host.write(AccessKey::Nonce(parent.address), U256::from(nonce + 1));
    if !host.transfer(parent.address, created, value) {
        host.revert_to(cp);
        return (None, gas);
    }
    let frame = Frame {
        address: created,
        caller: parent.address,
        origin: parent.origin,
        value,
        input: Vec::new(),
        code: Arc::new(init),
        gas,
        gas_price: parent.gas_price,
        is_static: false,
    };
    match run_frame_reference(host, env, frame, depth + 1) {
        Ok(res) if !res.reverted => {
            let deposit = gas::CODE_DEPOSIT * res.output.len() as u64;
            if res.gas_left < deposit {
                host.revert_to(cp);
                return (None, 0);
            }
            host.set_code(created, res.output);
            (Some(created), res.gas_left - deposit)
        }
        Ok(res) => {
            host.revert_to(cp);
            (None, res.gas_left)
        }
        Err(_) => {
            host.revert_to(cp);
            (None, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_state::WorldState;

    use crate::host::WorldView;

    #[test]
    fn truncated_push_immediate_marks_no_phantom_jumpdests() {
        // PUSH32 with only two immediate bytes present, both 0x5B. The
        // immediate window extends past the end of code; the 0x5B bytes are
        // data, not code, and must not become jump destinations.
        let valid = jumpdests(&[0x7F, 0x5B, 0x5B]);
        assert_eq!(valid, vec![false, false, false]);
        // PUSH2 whose immediate is truncated to one byte.
        let valid = jumpdests(&[0x61, 0x5B]);
        assert_eq!(valid, vec![false, false]);
        // Control: a JUMPDEST after a complete PUSH is valid.
        let valid = jumpdests(&[0x60, 0x5B, 0x5B]);
        assert_eq!(valid, vec![false, false, true]);
    }

    #[test]
    fn reference_runs_a_simple_frame() {
        let world = WorldState::new();
        let view = WorldView::new(&world);
        let mut host = RefHost::new(&view);
        let env = BlockEnv::default();
        let code = crate::asm::Asm::new()
            .push_u64(2)
            .push_u64(40)
            .op(Op::Add)
            .push_u64(0)
            .op(Op::MStore)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Return)
            .build();
        let frame = Frame {
            address: Address::from_index(1),
            caller: Address::from_index(2),
            origin: Address::from_index(2),
            value: U256::ZERO,
            input: Vec::new(),
            code: Arc::new(code),
            gas: 100_000,
            gas_price: 1,
            is_static: false,
        };
        let res = run_frame_reference(&mut host, &env, frame, 0).unwrap();
        assert_eq!(U256::from_be_slice(&res.output), U256::from(42u64));
        assert!(!res.reverted);
    }
}
