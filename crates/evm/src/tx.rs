//! Transaction-level execution: nonce/balance checks, gas purchase, the
//! outer message frame, refunds and receipts.
//!
//! Fees are **not** credited to the coinbase inside the transaction's write
//! set: a per-transaction coinbase write would make every pair of
//! transactions conflict and destroy the parallelism the paper measures.
//! Like the geth-based prototype, fee credit is a commutative counter
//! aggregated when the block is sealed; each [`Receipt`] carries its fee.

use std::sync::Arc;

use bp_crypto::{keccak256, RlpStream};
use bp_types::{AccessKey, Address, FxHashMap, Gas, RwSet, TxHash, U256};
use serde::{Deserialize, Serialize};

use crate::analysis::AnalysisCache;
use crate::gas;
use crate::host::{BufferedHost, Log, StateView};
use crate::interpreter::{create_address, run_frame, BlockEnv, Frame};

/// A transaction (legacy Ethereum shape).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Sender (recovered from signature in real Ethereum; explicit here).
    pub sender: Address,
    /// Recipient; `None` deploys a contract.
    pub to: Option<Address>,
    /// Wei transferred.
    pub value: U256,
    /// Sender's transaction count.
    pub nonce: u64,
    /// Gas ceiling for the transaction.
    pub gas_limit: Gas,
    /// Price per gas unit (also the pool's selection priority).
    pub gas_price: u64,
    /// Call data or init code.
    pub data: Vec<u8>,
}

impl Transaction {
    /// Canonical hash: keccak of the RLP encoding.
    pub fn hash(&self) -> TxHash {
        let mut s = RlpStream::new();
        s.begin_list(7);
        s.append_address(&self.sender);
        match &self.to {
            Some(to) => s.append_address(to),
            None => s.append_bytes(&[]),
        }
        s.append_u256(&self.value);
        s.append_u64(self.nonce);
        s.append_u64(self.gas_limit);
        s.append_u64(self.gas_price);
        s.append_bytes(&self.data);
        keccak256(&s.out())
    }

    /// A simple value transfer.
    pub fn transfer(sender: Address, to: Address, value: U256, nonce: u64, gas_price: u64) -> Self {
        Transaction {
            sender,
            to: Some(to),
            value,
            nonce,
            gas_limit: 21_000,
            gas_price,
            data: Vec::new(),
        }
    }
}

/// Post-execution summary.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Receipt {
    /// True unless the outer frame reverted or faulted.
    pub success: bool,
    /// Gas consumed (≥ intrinsic gas).
    pub gas_used: Gas,
    /// RETURN/REVERT payload of the outer frame.
    pub output: Vec<u8>,
    /// Logs emitted by non-reverted frames.
    pub logs: Vec<Log>,
    /// `gas_used × gas_price`, owed to the coinbase at block seal.
    pub fee: U256,
    /// Address created by a deployment transaction.
    pub created: Option<Address>,
}

/// Everything execution produced, including the concurrency-control
/// footprint.
#[derive(Debug)]
pub struct ExecutionResult {
    /// The receipt.
    pub receipt: Receipt,
    /// Read/write footprint (Algorithm 1's `rs`/`ws`).
    pub rw: RwSet,
    /// Code deployed by this transaction (address → bytecode).
    pub deployed: FxHashMap<Address, Arc<Vec<u8>>>,
}

/// Reasons a transaction cannot be included at all (distinct from on-chain
/// failure, which still consumes gas and produces a receipt).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxError {
    /// Sender nonce mismatch.
    BadNonce {
        /// Nonce the state expects.
        expected: u64,
        /// Nonce the transaction carries.
        got: u64,
    },
    /// Sender cannot pay `gas_limit × gas_price + value`.
    InsufficientFunds,
    /// `gas_limit` below intrinsic gas.
    IntrinsicGas,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::BadNonce { expected, got } => {
                write!(f, "bad nonce: expected {expected}, got {got}")
            }
            TxError::InsufficientFunds => write!(f, "insufficient funds"),
            TxError::IntrinsicGas => write!(f, "gas limit below intrinsic gas"),
        }
    }
}

impl std::error::Error for TxError {}

/// Executes `tx` against `view`, producing the receipt and footprint.
///
/// The footprint always contains the sender's nonce and balance (read and
/// written), so any two transactions from the same sender conflict — which
/// is what preserves per-sender nonce order under parallel execution.
pub fn execute_transaction<V: StateView>(
    view: &V,
    env: &BlockEnv,
    tx: &Transaction,
) -> Result<ExecutionResult, TxError> {
    execute_with(BufferedHost::new(view), env, tx)
}

/// [`execute_transaction`] resolving code analyses through an explicit
/// cache instead of the process-wide one (so callers can bound, share and
/// observe cache behavior per proposer/validator run).
pub fn execute_transaction_in<V: StateView>(
    cache: &Arc<AnalysisCache>,
    view: &V,
    env: &BlockEnv,
    tx: &Transaction,
) -> Result<ExecutionResult, TxError> {
    execute_with(BufferedHost::with_cache(view, Arc::clone(cache)), env, tx)
}

/// [`execute_transaction`] on the pre-optimization baseline: the retained
/// reference interpreter *and* the retained pre-optimization host and
/// transaction driver (`crate::reference`), so the "before" side of the
/// differential tests and the `evm_baseline` bench is the whole old
/// execution path, not just the old opcode loop.
pub fn execute_transaction_reference<V: StateView>(
    view: &V,
    env: &BlockEnv,
    tx: &Transaction,
) -> Result<ExecutionResult, TxError> {
    crate::reference::execute_transaction_reference(view, env, tx)
}

fn execute_with<V: StateView>(
    mut host: BufferedHost<'_, V>,
    env: &BlockEnv,
    tx: &Transaction,
) -> Result<ExecutionResult, TxError> {
    let state_nonce = host.read(AccessKey::Nonce(tx.sender)).low_u64();
    if state_nonce != tx.nonce {
        return Err(TxError::BadNonce {
            expected: state_nonce,
            got: tx.nonce,
        });
    }

    let intrinsic = gas::intrinsic_gas(&tx.data, tx.to.is_none());
    if tx.gas_limit < intrinsic {
        return Err(TxError::IntrinsicGas);
    }

    // u64 × u64 fits u128 exactly; skip the 4×4-limb schoolbook multiply.
    let gas_cost = U256::from(tx.gas_limit as u128 * tx.gas_price as u128);
    let balance = host.balance(&tx.sender);
    let needed = gas_cost
        .checked_add(tx.value)
        .ok_or(TxError::InsufficientFunds)?;
    if balance < needed {
        return Err(TxError::InsufficientFunds);
    }

    // Purchase gas and bump the nonce. These survive even if execution
    // fails on-chain.
    host.set_balance(tx.sender, balance - gas_cost);
    host.write(AccessKey::Nonce(tx.sender), U256::from(tx.nonce + 1));

    let cp = host.checkpoint();
    let exec_gas = tx.gas_limit - intrinsic;
    let (mut success, mut gas_left, mut output, mut created) = (true, exec_gas, Vec::new(), None);

    match &tx.to {
        Some(to) => {
            if !host.transfer(tx.sender, *to, tx.value) {
                // Funds were checked above, but a concurrent snapshot could
                // still surface an older, poorer balance — treat as failure.
                success = false;
            } else {
                let code = host.code(to);
                if !code.is_empty() {
                    let frame = Frame {
                        address: *to,
                        caller: tx.sender,
                        origin: tx.sender,
                        value: tx.value,
                        input: tx.data.clone(),
                        code,
                        gas: exec_gas,
                        gas_price: tx.gas_price,
                        is_static: false,
                    };
                    match run_frame(&mut host, env, frame, 0) {
                        Ok(res) => {
                            gas_left = res.gas_left;
                            output = res.output;
                            success = !res.reverted;
                        }
                        Err(_) => {
                            gas_left = 0;
                            success = false;
                        }
                    }
                }
            }
        }
        None => {
            let addr = create_address(&tx.sender, tx.nonce);
            if !host.transfer(tx.sender, addr, tx.value) {
                success = false;
            } else {
                let frame = Frame {
                    address: addr,
                    caller: tx.sender,
                    origin: tx.sender,
                    value: tx.value,
                    input: Vec::new(),
                    code: Arc::new(tx.data.clone()),
                    gas: exec_gas,
                    gas_price: tx.gas_price,
                    is_static: false,
                };
                match run_frame(&mut host, env, frame, 0) {
                    Ok(res) if !res.reverted => {
                        let deposit = gas::CODE_DEPOSIT * res.output.len() as u64;
                        if res.gas_left < deposit {
                            gas_left = 0;
                            success = false;
                        } else {
                            gas_left = res.gas_left - deposit;
                            host.set_code(addr, res.output);
                            created = Some(addr);
                        }
                    }
                    Ok(res) => {
                        gas_left = res.gas_left;
                        output = res.output;
                        success = false;
                    }
                    Err(_) => {
                        gas_left = 0;
                        success = false;
                    }
                }
            }
        }
    }

    if !success {
        host.revert_to(cp);
        output.truncate(0);
    }

    // Refund unused gas.
    let sender_balance = host.balance(&tx.sender);
    let refund = U256::from(gas_left as u128 * tx.gas_price as u128);
    host.set_balance(tx.sender, sender_balance + refund);

    let gas_used = tx.gas_limit - gas_left;
    let (rw, logs, deployed) = host.finish();
    Ok(ExecutionResult {
        receipt: Receipt {
            success,
            gas_used,
            output,
            logs,
            fee: U256::from(gas_used as u128 * tx.gas_price as u128),
            created,
        },
        rw,
        deployed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::host::WorldView;
    use crate::opcode::Op;
    use bp_state::WorldState;
    use bp_types::H256;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn funded_world() -> WorldState {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from(10_000_000u64));
        w
    }

    #[test]
    fn plain_transfer() {
        let w = funded_world();
        let view = WorldView::new(&w);
        let tx = Transaction::transfer(addr(1), addr(2), U256::from(500u64), 0, 1);
        let res = execute_transaction(&view, &BlockEnv::default(), &tx).unwrap();
        assert!(res.receipt.success);
        assert_eq!(res.receipt.gas_used, 21_000);
        assert_eq!(res.receipt.fee, U256::from(21_000u64));
        assert_eq!(
            res.rw.writes[&AccessKey::Balance(addr(2))],
            U256::from(500u64)
        );
        assert_eq!(
            res.rw.writes[&AccessKey::Balance(addr(1))],
            U256::from(10_000_000u64 - 500 - 21_000)
        );
        assert_eq!(res.rw.writes[&AccessKey::Nonce(addr(1))], U256::ONE);
    }

    #[test]
    fn bad_nonce_rejected() {
        let w = funded_world();
        let view = WorldView::new(&w);
        let tx = Transaction::transfer(addr(1), addr(2), U256::ONE, 5, 1);
        assert_eq!(
            execute_transaction(&view, &BlockEnv::default(), &tx).unwrap_err(),
            TxError::BadNonce {
                expected: 0,
                got: 5
            }
        );
    }

    #[test]
    fn insufficient_funds_rejected() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from(21_000u64)); // can pay gas but not value
        let view = WorldView::new(&w);
        let tx = Transaction::transfer(addr(1), addr(2), U256::ONE, 0, 1);
        assert_eq!(
            execute_transaction(&view, &BlockEnv::default(), &tx).unwrap_err(),
            TxError::InsufficientFunds
        );
    }

    #[test]
    fn gas_limit_below_intrinsic_rejected() {
        let w = funded_world();
        let view = WorldView::new(&w);
        let mut tx = Transaction::transfer(addr(1), addr(2), U256::ONE, 0, 1);
        tx.gas_limit = 20_000;
        assert_eq!(
            execute_transaction(&view, &BlockEnv::default(), &tx).unwrap_err(),
            TxError::IntrinsicGas
        );
    }

    #[test]
    fn reverting_call_consumes_gas_but_rolls_back_state() {
        let mut w = funded_world();
        // Contract stores then reverts.
        let code = Asm::new()
            .push_u64(1)
            .push_u64(0)
            .op(Op::SStore)
            .push_u64(0)
            .push_u64(0)
            .op(Op::Revert)
            .build();
        w.set_code(addr(50), code);
        let view = WorldView::new(&w);
        let tx = Transaction {
            sender: addr(1),
            to: Some(addr(50)),
            value: U256::from(9u64),
            nonce: 0,
            gas_limit: 100_000,
            gas_price: 2,
            data: Vec::new(),
        };
        let res = execute_transaction(&view, &BlockEnv::default(), &tx).unwrap();
        assert!(!res.receipt.success);
        assert!(res.receipt.gas_used > 21_000);
        // Storage write and value transfer rolled back.
        assert!(!res
            .rw
            .writes
            .contains_key(&AccessKey::Storage(addr(50), H256::from_low_u64(0))));
        assert!(!res.rw.writes.contains_key(&AccessKey::Balance(addr(50))));
        // Nonce and fee deduction survive.
        assert_eq!(res.rw.writes[&AccessKey::Nonce(addr(1))], U256::ONE);
        let final_balance = res.rw.writes[&AccessKey::Balance(addr(1))];
        assert_eq!(final_balance, U256::from(10_000_000u64) - res.receipt.fee);
    }

    #[test]
    fn deployment_creates_contract() {
        let w = funded_world();
        let view = WorldView::new(&w);
        // Init code returning empty runtime code.
        let init = Asm::new().push_u64(0).push_u64(0).op(Op::Return).build();
        let tx = Transaction {
            sender: addr(1),
            to: None,
            value: U256::ZERO,
            nonce: 0,
            gas_limit: 200_000,
            gas_price: 1,
            data: init,
        };
        let res = execute_transaction(&view, &BlockEnv::default(), &tx).unwrap();
        assert!(res.receipt.success);
        let created = res.receipt.created.unwrap();
        assert_eq!(created, create_address(&addr(1), 0));
        assert!(res.receipt.gas_used >= 53_000);
    }

    #[test]
    fn out_of_gas_consumes_limit() {
        let mut w = funded_world();
        // Infinite loop.
        let code = Asm::new()
            .label("top")
            .push_label("top")
            .op(Op::Jump)
            .build();
        w.set_code(addr(60), code);
        let view = WorldView::new(&w);
        let tx = Transaction {
            sender: addr(1),
            to: Some(addr(60)),
            value: U256::ZERO,
            nonce: 0,
            gas_limit: 50_000,
            gas_price: 1,
            data: Vec::new(),
        };
        let res = execute_transaction(&view, &BlockEnv::default(), &tx).unwrap();
        assert!(!res.receipt.success);
        assert_eq!(res.receipt.gas_used, 50_000);
    }

    #[test]
    fn tx_hash_distinguishes_fields() {
        let t1 = Transaction::transfer(addr(1), addr(2), U256::ONE, 0, 1);
        let mut t2 = t1.clone();
        t2.nonce = 1;
        assert_ne!(t1.hash(), t2.hash());
        let mut t3 = t1.clone();
        t3.to = None;
        assert_ne!(t1.hash(), t3.hash());
    }

    #[test]
    fn same_sender_txs_conflict_via_nonce() {
        let w = funded_world();
        let view = WorldView::new(&w);
        let tx = Transaction::transfer(addr(1), addr(2), U256::ONE, 0, 1);
        let res = execute_transaction(&view, &BlockEnv::default(), &tx).unwrap();
        // Footprint contains the nonce read and write — the scheduler relies
        // on this to serialize same-sender transactions.
        assert!(res.rw.reads.contains_key(&AccessKey::Nonce(addr(1))));
        assert!(res.rw.writes.contains_key(&AccessKey::Nonce(addr(1))));
    }
}
