//! Differential tests: the optimized engine (cached analysis, block
//! precharge, jump-table dispatch, fused superinstructions) must be
//! receipt-for-receipt identical to the retained reference interpreter on
//! every observable output — success flag, gas used, output bytes, logs,
//! fee, created address, read/write footprint, and deployed code.
//!
//! This file is fully deterministic (fixed seeds) so it runs without
//! proptest; `differential_props.rs` layers randomized program generation on
//! top of the same oracle in CI.

use std::sync::Arc;

use bp_evm::asm::Asm;
use bp_evm::opcode::Op;
use bp_evm::{
    contracts, execute_transaction, execute_transaction_in, execute_transaction_reference,
    AnalysisCache, BlockEnv, Transaction, WorldView,
};
use bp_state::WorldState;
use bp_types::{Address, U256};

fn addr(i: u64) -> Address {
    Address::from_index(i)
}

/// xorshift64*: a tiny deterministic generator so the raw-bytecode sweeps
/// need no external RNG crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn byte(&mut self) -> u8 {
        (self.next() >> 56) as u8
    }
}

/// The oracle: run `tx` through both engines on clones of `world` and
/// assert every observable output matches. Returns the optimized result's
/// success flag for callers that want to assert workload-level facts.
fn assert_equivalent(world: &WorldState, env: &BlockEnv, tx: &Transaction, what: &str) -> bool {
    let view = WorldView::new(world);
    let opt = execute_transaction(&view, env, tx);
    let refr = execute_transaction_reference(&view, env, tx);
    match (opt, refr) {
        (Ok(o), Ok(r)) => {
            assert_eq!(o.receipt, r.receipt, "receipt diverged: {what}");
            if o.receipt.success {
                assert_eq!(o.rw.reads, r.rw.reads, "read set diverged: {what}");
            } else {
                // A doomed frame aborts at block entry (precharge or stack
                // pre-validation) where the reference faults mid-block, so
                // the optimized engine may skip trailing reads of the dying
                // block. It must never *invent* a read, and both engines
                // roll the frame back identically.
                for key in o.rw.reads.keys() {
                    assert!(
                        r.rw.reads.contains_key(key),
                        "optimized read {key:?} the reference never performed: {what}"
                    );
                }
            }
            assert_eq!(o.rw.writes, r.rw.writes, "write set diverged: {what}");
            let mut od: Vec<_> = o
                .deployed
                .iter()
                .map(|(a, c)| (*a, (**c).clone()))
                .collect();
            let mut rd: Vec<_> = r
                .deployed
                .iter()
                .map(|(a, c)| (*a, (**c).clone()))
                .collect();
            od.sort();
            rd.sort();
            assert_eq!(od, rd, "deployed code diverged: {what}");
            o.receipt.success
        }
        (Err(oe), Err(re)) => {
            assert_eq!(oe, re, "inclusion error diverged: {what}");
            false
        }
        (o, r) => panic!(
            "inclusion verdict diverged ({what}): optimized {:?}, reference {:?}",
            o.map(|x| x.receipt.success),
            r.map(|x| x.receipt.success),
        ),
    }
}

fn funded_world() -> WorldState {
    let mut w = WorldState::new();
    for i in 1..=16 {
        w.set_balance(addr(i), U256::from(u64::MAX));
    }
    w
}

fn call_tx(sender: u64, to: Address, nonce: u64, data: Vec<u8>) -> Transaction {
    Transaction {
        sender: addr(sender),
        to: Some(to),
        value: U256::ZERO,
        nonce,
        gas_limit: 500_000,
        gas_price: 1,
        data,
    }
}

#[test]
fn workload_contracts_match_reference() {
    let mut w = funded_world();
    let env = BlockEnv::default();
    let (counter, token, amm, registry) = (addr(100), addr(101), addr(102), addr(103));
    w.set_code(counter, contracts::counter());
    w.set_code(token, contracts::token());
    w.set_code(amm, contracts::amm_pair());
    w.set_code(registry, contracts::registry());
    for i in 1..=8 {
        w.set_storage(
            token,
            contracts::token_balance_slot(&addr(i)),
            U256::from(1_000u64),
        );
    }
    w.set_storage(
        amm,
        contracts::amm_reserve_slot(0),
        U256::from(1_000_000u64),
    );
    w.set_storage(
        amm,
        contracts::amm_reserve_slot(1),
        U256::from(2_000_000u64),
    );

    // Walk the contract mix the bench uses, applying the optimized engine's
    // writes between transactions so later txs see evolving state.
    let mut rng = Rng(0x5eed_0001);
    for step in 0..64u64 {
        let sender = 1 + step % 8;
        let tx = match step % 4 {
            0 => call_tx(sender, counter, 0, vec![]),
            1 => call_tx(
                sender,
                token,
                0,
                contracts::token_transfer_calldata(
                    &addr(1 + rng.next() % 8),
                    // Occasionally overdraw so the revert path is exercised.
                    U256::from(if step % 16 == 1 {
                        1u64 << 40
                    } else {
                        rng.next() % 500
                    }),
                ),
            ),
            2 => call_tx(
                sender,
                amm,
                0,
                contracts::amm_swap_calldata(
                    (rng.next() % 2) as u8,
                    U256::from(1 + rng.next() % 10_000),
                ),
            ),
            _ => call_tx(
                sender,
                registry,
                0,
                contracts::registry_calldata(U256::from(rng.next())),
            ),
        };
        let mut scratch = w.clone();
        scratch.set_nonce(tx.sender, 0);
        assert_equivalent(&scratch, &env, &tx, &format!("workload step {step}"));
        // Advance the shared state with the optimized result.
        let view = WorldView::new(&scratch);
        if let Ok(res) = execute_transaction(&view, &env, &tx) {
            w.apply_writes(&res.rw.writes);
        }
    }
}

#[test]
fn deployment_and_nested_calls_match_reference() {
    let w = funded_world();
    let env = BlockEnv::default();

    // Deploy: init code returns a body that increments slot 0.
    let body = contracts::counter();
    let mut i = Asm::new();
    for (k, b) in body.iter().enumerate() {
        i = i
            .push_u64(*b as u64)
            .push_u64(255)
            .op(Op::And)
            .push_u64(k as u64)
            .op(Op::MStore8);
    }
    let init_code = i
        .push_u64(body.len() as u64)
        .push_u64(0)
        .op(Op::Return)
        .build();
    let deploy = Transaction {
        sender: addr(1),
        to: None,
        value: U256::ZERO,
        nonce: 0,
        gas_limit: 2_000_000,
        gas_price: 1,
        data: init_code,
    };
    assert!(assert_equivalent(&w, &env, &deploy, "deployment"));

    // Nested call: a proxy that CALLs the counter and returns its status.
    let mut w2 = w.clone();
    let counter = addr(100);
    w2.set_code(counter, contracts::counter());
    let proxy = Asm::new()
        .push_u64(0) // ret len
        .push_u64(0) // ret off
        .push_u64(0) // arg len
        .push_u64(0) // arg off
        .push_u64(0) // value
        .push(bp_evm::interpreter::address_word(&counter))
        .op(Op::Gas)
        .op(Op::Call)
        .push_u64(0)
        .op(Op::MStore)
        .push_u64(32)
        .push_u64(0)
        .op(Op::Return)
        .build();
    let proxy_addr = addr(101);
    w2.set_code(proxy_addr, proxy);
    assert!(assert_equivalent(
        &w2,
        &env,
        &call_tx(1, proxy_addr, 0, vec![]),
        "nested call"
    ));
}

#[test]
fn failure_paths_match_reference() {
    let mut w = funded_world();
    let env = BlockEnv::default();

    // Out of gas in a tight loop.
    let looped = Asm::new()
        .label("top")
        .push_u64(0)
        .op(Op::SLoad)
        .op(Op::Pop)
        .push_label("top")
        .op(Op::Jump)
        .build();
    w.set_code(addr(50), looped);
    let mut tx = call_tx(1, addr(50), 0, vec![]);
    tx.gas_limit = 60_000;
    assert!(!assert_equivalent(&w, &env, &tx, "oog loop"));

    // Invalid jump destination (into a PUSH immediate).
    let bad_jump = Asm::new().push_u64(1).op(Op::Jump).op(Op::JumpDest).build();
    w.set_code(addr(51), bad_jump);
    assert!(!assert_equivalent(
        &w,
        &env,
        &call_tx(1, addr(51), 0, vec![]),
        "bad jump"
    ));

    // Stack underflow.
    w.set_code(addr(52), vec![Op::Add as u8]);
    assert!(!assert_equivalent(
        &w,
        &env,
        &call_tx(1, addr(52), 0, vec![]),
        "underflow"
    ));

    // Explicit revert with payload.
    let reverter = Asm::new()
        .push_u64(0xdead)
        .push_u64(0)
        .op(Op::MStore)
        .push_u64(32)
        .push_u64(0)
        .op(Op::Revert)
        .build();
    w.set_code(addr(53), reverter);
    assert!(!assert_equivalent(
        &w,
        &env,
        &call_tx(1, addr(53), 0, vec![]),
        "revert"
    ));

    // Truncated PUSH at end of code (satellite: phantom-jumpdest regression
    // at the transaction level — the immediate bytes must not be executable
    // or jumpable in either engine).
    w.set_code(addr(54), vec![0x60, 0x02, 0x56, 0x7f, 0x5b]);
    assert!(!assert_equivalent(
        &w,
        &env,
        &call_tx(1, addr(54), 0, vec![]),
        "jump into truncated push"
    ));
}

#[test]
fn raw_bytecode_sweep_matches_reference() {
    let env = BlockEnv::default();
    let mut rng = Rng(0xb10c_b10c_b10c_b10c);
    for case in 0..400 {
        let len = 1 + (rng.next() % 96) as usize;
        let code: Vec<u8> = (0..len).map(|_| rng.byte()).collect();
        let mut w = funded_world();
        w.set_code(addr(60), code.clone());
        let mut tx = call_tx(1, addr(60), 0, vec![0xAA; 8]);
        tx.gas_limit = 100_000;
        assert_equivalent(
            &w,
            &env,
            &tx,
            &format!("raw sweep case {case}: {code:02x?}"),
        );
    }
}

#[test]
fn shared_cache_is_thread_safe_and_equivalent() {
    let mut w = funded_world();
    let env = BlockEnv::default();
    let (counter, token) = (addr(100), addr(101));
    w.set_code(counter, contracts::counter());
    w.set_code(token, contracts::token());
    for i in 1..=16 {
        w.set_storage(
            token,
            contracts::token_balance_slot(&addr(i)),
            U256::from(1_000_000u64),
        );
    }
    let w = Arc::new(w);

    for threads in [1usize, 2, 4, 8, 16] {
        // A fresh bounded cache per round: all threads race to analyze the
        // same two blobs, and every result must still match the reference.
        let cache = Arc::new(AnalysisCache::with_capacity(64));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                let w = Arc::clone(&w);
                scope.spawn(move || {
                    for k in 0..50u64 {
                        let to = if (t as u64 + k).is_multiple_of(2) {
                            counter
                        } else {
                            token
                        };
                        let data = if to == token {
                            contracts::token_transfer_calldata(&addr(1 + k % 16), U256::from(k))
                        } else {
                            vec![]
                        };
                        let tx = call_tx(1 + t as u64, to, 0, data);
                        let view = WorldView::new(&w);
                        let got =
                            execute_transaction_in(&cache, &view, &env, &tx).expect("includable");
                        let want =
                            execute_transaction_reference(&view, &env, &tx).expect("includable");
                        assert_eq!(got.receipt, want.receipt);
                        assert_eq!(got.rw, want.rw);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "each blob analyzed exactly once");
        assert_eq!(stats.hits, threads as u64 * 50 - 2);
    }
}
