//! Randomized differential properties: the optimized engine vs the retained
//! reference interpreter on generated programs and raw byte soup.
//!
//! The oracle matches `differential.rs`: receipts (status, gas, output,
//! logs, fee, created), write sets and deployed code must be identical;
//! read sets must be identical on success and a subset on doomed frames
//! (block-entry pre-validation aborts earlier than the reference's
//! mid-block fault, skipping trailing reads of the dying block).

use bp_evm::asm::Asm;
use bp_evm::opcode::Op;
use bp_evm::{
    contracts, execute_transaction, execute_transaction_reference, BlockEnv, Transaction, WorldView,
};
use bp_state::WorldState;
use bp_types::{Address, U256};
use proptest::prelude::*;

fn addr(i: u64) -> Address {
    Address::from_index(i)
}

fn assert_equivalent(world: &WorldState, env: &BlockEnv, tx: &Transaction) {
    let view = WorldView::new(world);
    let opt = execute_transaction(&view, env, tx);
    let refr = execute_transaction_reference(&view, env, tx);
    match (opt, refr) {
        (Ok(o), Ok(r)) => {
            assert_eq!(o.receipt, r.receipt, "receipt diverged");
            if o.receipt.success {
                assert_eq!(o.rw.reads, r.rw.reads, "read set diverged");
            } else {
                for key in o.rw.reads.keys() {
                    assert!(
                        r.rw.reads.contains_key(key),
                        "optimized read {key:?} the reference never performed"
                    );
                }
            }
            assert_eq!(o.rw.writes, r.rw.writes, "write set diverged");
            let mut od: Vec<_> = o
                .deployed
                .iter()
                .map(|(a, c)| (*a, (**c).clone()))
                .collect();
            let mut rd: Vec<_> = r
                .deployed
                .iter()
                .map(|(a, c)| (*a, (**c).clone()))
                .collect();
            od.sort();
            rd.sort();
            assert_eq!(od, rd, "deployed code diverged");
        }
        (Err(oe), Err(re)) => assert_eq!(oe, re, "inclusion error diverged"),
        (o, r) => panic!(
            "inclusion verdict diverged: optimized {:?}, reference {:?}",
            o.map(|x| x.receipt.success),
            r.map(|x| x.receipt.success),
        ),
    }
}

fn world_with(code: Vec<u8>) -> WorldState {
    let mut w = WorldState::new();
    w.set_balance(addr(1), U256::from(u64::MAX));
    w.set_code(addr(60), code);
    w.set_storage(addr(60), bp_types::H256::from_low_u64(0), U256::from(7u64));
    w
}

fn call_tx(data: Vec<u8>, gas_limit: u64) -> Transaction {
    Transaction {
        sender: addr(1),
        to: Some(addr(60)),
        value: U256::ZERO,
        nonce: 0,
        gas_limit,
        gas_price: 1,
        data,
    }
}

/// One structured program step. Jumps target a label planted between steps,
/// so generated programs exercise the analyzer's block partitioning, the
/// fused PUSH+JUMP/PUSH+JUMPI paths, and invalid-destination handling.
#[derive(Clone, Debug)]
enum Step {
    Push(u64),
    Arith(u8),
    DupSwap(u8),
    Mem(u8),
    Storage(u8),
    EnvOp(u8),
    LogTop,
    JumpFwd,
    JumpIFwd,
    BadJump(u64),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<u64>().prop_map(Step::Push),
        (0u8..8).prop_map(Step::Arith),
        (0u8..4).prop_map(Step::DupSwap),
        (0u8..3).prop_map(Step::Mem),
        (0u8..2).prop_map(Step::Storage),
        (0u8..4).prop_map(Step::EnvOp),
        Just(Step::LogTop),
        Just(Step::JumpFwd),
        Just(Step::JumpIFwd),
        (0u64..64).prop_map(Step::BadJump),
    ]
}

fn compile(steps: &[Step]) -> Vec<u8> {
    let mut a = Asm::new();
    let mut label = 0usize;
    for step in steps {
        a = match step {
            Step::Push(v) => a.push_u64(*v),
            // Binary ops on two freshly pushed words, so the stack effect
            // is predictable regardless of surrounding steps.
            Step::Arith(k) => {
                let a2 = a.push_u64(0x1234_5678).push_u64(0x9abc_def0 + *k as u64);
                match k {
                    0 => a2.op(Op::Add),
                    1 => a2.op(Op::Mul),
                    2 => a2.op(Op::Sub),
                    3 => a2.op(Op::Div),
                    4 => a2.op(Op::And),
                    5 => a2.op(Op::Xor),
                    6 => a2.op(Op::Lt),
                    _ => a2.op(Op::Sgt),
                }
            }
            Step::DupSwap(k) => {
                let a2 = a.push_u64(11).push_u64(22).push_u64(33);
                match k {
                    0 => a2.dup(1).op(Op::Pop),
                    1 => a2.dup(3).op(Op::Pop),
                    2 => a2.swap(1),
                    _ => a2.swap(2),
                }
            }
            Step::Mem(k) => {
                let a2 = a.push_u64(0xfeed).push_u64(8 * (*k as u64 + 1));
                match k {
                    0 => a2.op(Op::MStore),
                    1 => a2.op(Op::MStore8),
                    _ => a2.op(Op::MStore).push_u64(16).op(Op::MLoad).op(Op::Pop),
                }
            }
            Step::Storage(k) => match k {
                0 => a.push_u64(0).op(Op::SLoad).op(Op::Pop),
                _ => a.push_u64(5).push_u64(1).op(Op::SStore),
            },
            Step::EnvOp(k) => {
                let a2 = match k {
                    0 => a.op(Op::Caller),
                    1 => a.op(Op::CallValue),
                    2 => a.op(Op::Gas),
                    _ => a.op(Op::CodeSize),
                };
                a2.op(Op::Pop)
            }
            Step::LogTop => a
                .push_u64(0xabcd)
                .push_u64(0)
                .op(Op::MStore)
                .push_u64(32)
                .push_u64(0)
                .op(Op::Log0),
            Step::JumpFwd => {
                label += 1;
                let name = format!("l{label}");
                a.push_label(&name).op(Op::Jump).label(&name)
            }
            Step::JumpIFwd => {
                label += 1;
                let name = format!("l{label}");
                a.push_u64(1).push_label(&name).op(Op::JumpI).label(&name)
            }
            Step::BadJump(dest) => a.push_u64(*dest).op(Op::Jump),
        };
    }
    a.op(Op::Stop).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Structured programs: every step sequence the generator can produce
    /// executes identically on both engines.
    #[test]
    fn structured_programs_match_reference(
        steps in proptest::collection::vec(arb_step(), 0..40),
        gas in 25_000u64..300_000,
    ) {
        let w = world_with(compile(&steps));
        assert_equivalent(&w, &BlockEnv::default(), &call_tx(vec![], gas));
    }

    /// Raw byte soup: arbitrary bytes, including truncated PUSHes, undefined
    /// opcodes and jumps into immediates, never diverge.
    #[test]
    fn raw_bytecode_matches_reference(
        code in proptest::collection::vec(any::<u8>(), 0..160),
        data in proptest::collection::vec(any::<u8>(), 0..48),
        gas in 22_000u64..120_000,
    ) {
        let w = world_with(code);
        assert_equivalent(&w, &BlockEnv::default(), &call_tx(data, gas));
    }

    /// The workload contract mix with randomized calldata — the bytecode the
    /// bench measures is also the bytecode the oracle covers.
    #[test]
    fn workload_contracts_match_reference(
        amount in 0u64..2_000,
        dir in 0u8..2,
        swap_in in 1u64..50_000,
        holder in 1u64..8,
        value in any::<u64>(),
    ) {
        let env = BlockEnv::default();
        for (code, data) in [
            (contracts::counter(), vec![]),
            (
                contracts::token(),
                contracts::token_transfer_calldata(&addr(holder), U256::from(amount)),
            ),
            (contracts::amm_pair(), contracts::amm_swap_calldata(dir, U256::from(swap_in))),
            (contracts::registry(), contracts::registry_calldata(U256::from(value))),
        ] {
            let mut w = world_with(code);
            w.set_storage(
                addr(60),
                contracts::token_balance_slot(&addr(1)),
                U256::from(1_000u64),
            );
            w.set_storage(addr(60), contracts::amm_reserve_slot(0), U256::from(1_000_000u64));
            w.set_storage(addr(60), contracts::amm_reserve_slot(1), U256::from(2_000_000u64));
            assert_equivalent(&w, &env, &call_tx(data.clone(), 300_000));
        }
    }
}
