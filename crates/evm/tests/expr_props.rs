//! Differential property test of the interpreter: random arithmetic
//! expression trees are compiled to EVM bytecode with the assembler and the
//! machine's result is compared against direct `U256` evaluation.

use std::sync::Arc;

use bp_evm::asm::Asm;
use bp_evm::opcode::Op;
use bp_evm::{BlockEnv, BufferedHost, Frame, WorldView};
use bp_state::WorldState;
use bp_types::{Address, U256};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Expr {
    Lit(u64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    Mod(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    IsZero(Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = any::<u64>().prop_map(Expr::Lit);
    leaf.prop_recursive(5, 48, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Div(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mod(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(a.into(), b.into())),
            inner.clone().prop_map(|a| Expr::Not(a.into())),
            inner.prop_map(|a| Expr::IsZero(a.into())),
        ]
    })
}

/// Reference semantics over U256.
fn eval(e: &Expr) -> U256 {
    match e {
        Expr::Lit(v) => U256::from(*v),
        Expr::Add(a, b) => eval(a) + eval(b),
        Expr::Sub(a, b) => eval(a) - eval(b),
        Expr::Mul(a, b) => eval(a) * eval(b),
        Expr::Div(a, b) => eval(a) / eval(b),
        Expr::Mod(a, b) => eval(a) % eval(b),
        Expr::And(a, b) => eval(a) & eval(b),
        Expr::Or(a, b) => eval(a) | eval(b),
        Expr::Xor(a, b) => eval(a) ^ eval(b),
        Expr::Not(a) => !eval(a),
        Expr::IsZero(a) => {
            if eval(a).is_zero() {
                U256::ONE
            } else {
                U256::ZERO
            }
        }
    }
}

/// Compiles the expression to stack code leaving its value on top.
///
/// Binary operators pop `(top, next)`, so the *left* operand is compiled
/// second (ends up on top).
fn compile(e: &Expr, asm: Asm) -> Asm {
    match e {
        Expr::Lit(v) => asm.push_u64(*v),
        Expr::Add(a, b) => compile(a, compile(b, asm)).op(Op::Add),
        Expr::Sub(a, b) => compile(a, compile(b, asm)).op(Op::Sub),
        Expr::Mul(a, b) => compile(a, compile(b, asm)).op(Op::Mul),
        Expr::Div(a, b) => compile(a, compile(b, asm)).op(Op::Div),
        Expr::Mod(a, b) => compile(a, compile(b, asm)).op(Op::Mod),
        Expr::And(a, b) => compile(a, compile(b, asm)).op(Op::And),
        Expr::Or(a, b) => compile(a, compile(b, asm)).op(Op::Or),
        Expr::Xor(a, b) => compile(a, compile(b, asm)).op(Op::Xor),
        Expr::Not(a) => compile(a, asm).op(Op::Not),
        Expr::IsZero(a) => compile(a, asm).op(Op::IsZero),
    }
}

fn run(code: Vec<u8>) -> U256 {
    let world = WorldState::new();
    let view = WorldView::new(&world);
    let mut host = BufferedHost::new(&view);
    let frame = Frame {
        address: Address::from_index(1),
        caller: Address::from_index(2),
        origin: Address::from_index(2),
        value: U256::ZERO,
        input: Vec::new(),
        code: Arc::new(code),
        gas: 10_000_000,
        gas_price: 1,
        is_static: false,
    };
    let result = bp_evm::interpreter::run_frame(&mut host, &BlockEnv::default(), frame, 0)
        .expect("expression programs never fault");
    assert!(!result.reverted);
    U256::from_be_slice(&result.output)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_expressions_match_reference(e in arb_expr()) {
        let code = compile(&e, Asm::new())
            .push_u64(0)
            .op(Op::MStore)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Return)
            .build();
        prop_assert_eq!(run(code), eval(&e));
    }
}
