//! A deterministic network simulation of BlockPilot's DiCE loop
//! (Dissemination → Consensus → Execution, §3.2 of the paper).
//!
//! `N` validator nodes share a transaction stream. At every height a
//! round-robin proposer packs a block with OCC-WSI and broadcasts it with
//! per-link latencies drawn from a seeded RNG; on *fork heights* a second
//! proposer races with a competing block, so validators receive multiple
//! blocks at one height and the pipeline's same-height concurrency and
//! parent-parking paths are exercised exactly as §3.4 describes. Fork
//! choice is deterministic (lowest block hash wins), so every node must
//! converge to the identical canonical chain and MPT state root — which
//! [`run_network`] asserts and reports.
//!
//! [`run_network_with_restart`] additionally backs one node with a
//! persistent [`bp_store::Store`], kills it mid-simulation, reopens the
//! store, and asserts the recovered node catches up to the same head and
//! state root as the nodes that never went down.

#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::Path;
use std::sync::Arc;

use blockpilot_core::{
    ConflictGranularity, OccWsiConfig, OccWsiProposer, PipelineConfig, ValidationHandle, Validator,
};
use bp_block::Block;
use bp_evm::BlockEnv;
use bp_state::WorldState;
use bp_store::Store;
use bp_types::{BlockHash, Height, H256};
use bp_workload::{WorkloadConfig, WorkloadGen};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Network-simulation parameters.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Number of validator nodes.
    pub nodes: usize,
    /// Chain length to run.
    pub heights: u64,
    /// Pipeline workers per node.
    pub workers_per_node: usize,
    /// OCC-WSI threads per proposer.
    pub proposer_threads: usize,
    /// Every `fork_every`-th height two proposers race (0 = never fork).
    pub fork_every: u64,
    /// Per-link delivery latency range, in ticks. One height spans
    /// [`NetConfig::ticks_per_height`] ticks, so latencies beyond that
    /// deliver blocks out of height order.
    pub latency: std::ops::Range<u64>,
    /// Virtual ticks between consecutive proposals.
    pub ticks_per_height: u64,
    /// RNG seed for latencies and the workload.
    pub seed: u64,
    /// The transaction workload.
    pub workload: WorkloadConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            nodes: 4,
            heights: 6,
            workers_per_node: 2,
            proposer_threads: 2,
            fork_every: 3,
            latency: 1..30,
            ticks_per_height: 20,
            seed: 0xD1CE,
            workload: WorkloadConfig {
                accounts: 100,
                tokens: 3,
                amm_pairs: 1,
                txs_per_block: 24,
                tx_jitter: 4,
                ..WorkloadConfig::default()
            },
        }
    }
}

/// Seeded per-link latency sampler.
///
/// Each link gets an independent, individually deterministic RNG derived
/// from the base seed, so delay sequences do not depend on the order links
/// are polled in. The discrete-event sim interprets draws as virtual ticks;
/// the `bp-node` process-local harness interprets the same draws as
/// microseconds of real sleep, giving both the same `NetConfig`-style knob.
pub struct LinkDelays {
    rngs: Vec<StdRng>,
    range: std::ops::Range<u64>,
}

impl LinkDelays {
    /// A sampler for `links` independent links drawing from `range`.
    pub fn new(links: usize, range: std::ops::Range<u64>, seed: u64) -> Self {
        let rngs = (0..links as u64)
            .map(|i| StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1)))
            .collect();
        LinkDelays { rngs, range }
    }

    /// The next delay on `link`. An empty range (e.g. `0..0`) means "no
    /// injected latency" and always yields the range start.
    pub fn next_delay(&mut self, link: usize) -> u64 {
        if self.range.is_empty() {
            return self.range.start;
        }
        self.rngs[link].gen_range(self.range.clone())
    }

    /// Number of links the sampler covers.
    pub fn links(&self) -> usize {
        self.rngs.len()
    }
}

/// Per-node block-delivery latency, in virtual ticks.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    /// Smallest delivery latency observed.
    pub min: u64,
    /// Largest delivery latency observed.
    pub max: u64,
    /// Mean delivery latency.
    pub avg: f64,
    /// Number of deliveries the node received.
    pub deliveries: u64,
}

impl LatencyStats {
    fn record(&mut self, latency: u64) {
        if self.deliveries == 0 {
            self.min = latency;
            self.max = latency;
        } else {
            self.min = self.min.min(latency);
            self.max = self.max.max(latency);
        }
        // Accumulate the sum in `avg` until `finish` divides it.
        self.avg += latency as f64;
        self.deliveries += 1;
    }

    fn finish(&mut self) {
        if self.deliveries > 0 {
            self.avg /= self.deliveries as f64;
        }
    }
}

/// What the simulation observed.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Heights processed.
    pub heights: u64,
    /// Heights where two proposers raced.
    pub forks: u64,
    /// Uncle blocks recorded per node at the end (same on every node).
    pub uncles: usize,
    /// Total transactions across the canonical chain.
    pub total_txs: usize,
    /// Canonical head state root every node agreed on.
    pub final_root: H256,
    /// True iff all nodes converged to the same head (asserted internally
    /// too).
    pub converged: bool,
    /// Blocks delivered out of height order somewhere in the network
    /// (exercises the pipeline's parent-parking path).
    pub out_of_order_deliveries: u64,
    /// Min/avg/max block-delivery latency observed per node.
    pub delivery_latency: Vec<LatencyStats>,
}

/// What the kill-and-reopen scenario observed. All equalities described
/// here are asserted inside [`run_network_with_restart`].
#[derive(Clone, Debug)]
pub struct RestartReport {
    /// Head the restarted node recovered from disk: exactly the canonical
    /// winner of the stop height — never a torn or partial block.
    pub recovered_head: (BlockHash, Height),
    /// Head after catch-up; identical on every node.
    pub final_head: (BlockHash, Height),
    /// State root at the final head; identical on every node, and
    /// resolvable from the restarted node's on-disk trie store.
    pub final_root: H256,
}

/// The deterministic block DAG the proposers publish, shared by every
/// simulation entry point. Proposals chain through the fork-choice winner
/// (smallest hash) at each height.
struct ChainPlan {
    genesis: WorldState,
    candidates: Vec<Vec<Block>>,
    forks: u64,
    total_txs: usize,
}

impl ChainPlan {
    fn winner_at(&self, h_idx: usize) -> BlockHash {
        self.candidates[h_idx]
            .iter()
            .map(Block::hash)
            .min()
            .expect("non-empty height")
    }
}

struct Delivery {
    latency: u64,
    seq: u64,
    node: usize,
    // Blocks travel over the wire in their canonical RLP encoding; the
    // receiver decodes (strictly) before validating.
    bytes: Arc<Vec<u8>>,
}

fn pipeline_config(config: &NetConfig) -> PipelineConfig {
    PipelineConfig {
        workers: config.workers_per_node,
        granularity: ConflictGranularity::Account,
        ..Default::default()
    }
}

/// Proposal phase: build the block DAG deterministically (independent of
/// the validators and of delivery latencies).
fn build_chain(config: &NetConfig) -> ChainPlan {
    let mut gen = WorkloadGen::new(config.workload.clone());
    let genesis = gen.genesis_state();
    let mut candidates: Vec<Vec<Block>> = Vec::new();
    // The genesis hash is a pure function of the genesis state — identical
    // to what every `Validator` computes for itself.
    let mut parent = Block {
        header: bp_block::genesis_header(genesis.state_root()),
        transactions: vec![],
        profile: bp_block::BlockProfile::new(),
    }
    .hash();
    let mut parent_state = Arc::new(genesis.clone());
    let mut forks = 0u64;
    let mut total_txs = 0usize;
    for height in 1..=config.heights {
        let txs = gen.next_block_txs();
        total_txs += txs.len();
        let racing = config.fork_every != 0 && height % config.fork_every == 0 && txs.len() >= 2;
        let mut blocks = Vec::new();
        // Competing proposers select different subsets of the mempool, but a
        // sender's nonce chain must stay within one proposal — split by
        // sender, not by position.
        let splits: Vec<Vec<bp_evm::Transaction>> = if racing {
            forks += 1;
            let (even, odd): (Vec<_>, Vec<_>) = txs
                .iter()
                .cloned()
                .partition(|tx| tx.sender.as_bytes()[19] % 2 == 0);
            if even.is_empty() || odd.is_empty() {
                vec![txs.clone()]
            } else {
                vec![even, odd]
            }
        } else {
            vec![txs.clone()]
        };
        for (i, split) in splits.iter().enumerate() {
            let proposer_node = (height as usize + i) % config.nodes;
            let engine = OccWsiProposer::new(OccWsiConfig {
                threads: config.proposer_threads,
                env: BlockEnv {
                    number: height,
                    coinbase: bp_types::Address::from_index(9_000_000 + proposer_node as u64),
                    ..gen.block_env(height)
                },
                ..OccWsiConfig::default()
            });
            let pool = bp_txpool::TxPool::new();
            for tx in split {
                pool.add(tx.clone());
            }
            let proposal = engine.propose(&pool, Arc::clone(&parent_state), parent, height);
            blocks.push((proposal.block, proposal.post_state));
        }
        // Fork choice: smallest hash wins; the winner parents the next
        // height.
        let winner = blocks
            .iter()
            .enumerate()
            .min_by_key(|(_, (b, _))| b.hash())
            .map(|(i, _)| i)
            .expect("at least one block");
        parent = blocks[winner].0.hash();
        parent_state = Arc::new(blocks[winner].1.clone());
        candidates.push(blocks.into_iter().map(|(b, _)| b).collect());
    }
    ChainPlan {
        genesis,
        candidates,
        forks,
        total_txs,
    }
}

/// Runs the simulation to completion. Panics if the network fails to
/// converge — that would be a consensus-safety bug.
pub fn run_network(config: NetConfig) -> SimReport {
    assert!(config.nodes >= 1);
    assert!(config.heights >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let plan = build_chain(&config);

    let nodes: Vec<Validator> = (0..config.nodes)
        .map(|_| Validator::new(pipeline_config(&config), plan.genesis.clone()))
        .collect();

    // --- Dissemination phase: broadcast with seeded latencies. -----------
    let mut queue: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut payloads: Vec<Option<Delivery>> = Vec::new();
    let mut seq = 0u64;
    for (h_idx, blocks) in plan.candidates.iter().enumerate() {
        let publish_tick = (h_idx as u64 + 1) * config.ticks_per_height;
        for block in blocks {
            let bytes = Arc::new(bp_block::encode_block(block));
            for node in 0..config.nodes {
                let latency = rng.gen_range(config.latency.clone());
                let tick = publish_tick + latency;
                queue.push(Reverse((tick, seq)));
                payloads.push(Some(Delivery {
                    latency,
                    seq,
                    node,
                    bytes: Arc::clone(&bytes),
                }));
                seq += 1;
            }
        }
    }

    // --- Execution phase: deliver in tick order; validators pipeline. ---
    let mut handles: Vec<Vec<(u64, ValidationHandle)>> =
        (0..config.nodes).map(|_| Vec::new()).collect();
    let mut last_height_seen = vec![0u64; config.nodes];
    let mut out_of_order = 0u64;
    let mut latency_stats = vec![LatencyStats::default(); config.nodes];
    while let Some(Reverse((_, s))) = queue.pop() {
        let delivery = payloads[s as usize].take().expect("payload exists");
        latency_stats[delivery.node].record(delivery.latency);
        let block = bp_block::decode_block(&delivery.bytes).expect("honest wire encoding");
        let height = block.height();
        if height < last_height_seen[delivery.node] {
            out_of_order += 1;
        }
        last_height_seen[delivery.node] = last_height_seen[delivery.node].max(height);
        let handle = nodes[delivery.node].receive_block(block);
        handles[delivery.node].push((delivery.seq, handle));
    }
    for stats in &mut latency_stats {
        stats.finish();
    }
    for node_handles in handles {
        for (_, handle) in node_handles {
            let outcome = handle.wait();
            assert!(
                outcome.is_valid(),
                "honest block rejected: {:?}",
                outcome.result
            );
        }
    }

    // --- Consensus phase: apply the deterministic fork choice. ----------
    for node in &nodes {
        for h_idx in 0..plan.candidates.len() {
            assert!(
                node.commit_canonical(plan.winner_at(h_idx)),
                "fork choice failed at height {}",
                h_idx + 1
            );
        }
    }

    // --- Convergence check. ----------------------------------------------
    let heads: Vec<(BlockHash, u64)> = nodes
        .iter()
        .map(|n| n.head().expect("chain advanced"))
        .collect();
    let converged = heads.iter().all(|h| h == &heads[0]);
    assert!(converged, "nodes diverged: {heads:?}");
    let uncles: usize = (1..=config.heights).map(|h| nodes[0].uncles_at(h)).sum();
    let final_root = plan
        .candidates
        .last()
        .and_then(|blocks| blocks.iter().min_by_key(|b| b.hash()))
        .map(|b| b.header.state_root)
        .expect("at least one height");

    SimReport {
        heights: config.heights,
        forks: plan.forks,
        uncles,
        total_txs: plan.total_txs,
        final_root,
        converged,
        out_of_order_deliveries: out_of_order,
        delivery_latency: latency_stats,
    }
}

/// Kill-and-reopen scenario: node 0 runs on a persistent [`Store`] rooted
/// at `store_dir`, processes heights `1..=stop_height`, receives (but never
/// commits) the next height's candidates, and is then dropped — simulating
/// a crash whose most recent work never reached a durable commit. The
/// surviving in-memory nodes finish the chain. Node 0's store is then
/// reopened: cold-start replay must recover **exactly** the head it had
/// durably committed at `stop_height`, after which the node catches up on
/// the missed heights and must converge to the same canonical head and MPT
/// state root as the nodes that never restarted. Every guarantee in
/// [`RestartReport`] is asserted internally; the report is returned for
/// inspection.
pub fn run_network_with_restart(
    config: NetConfig,
    stop_height: u64,
    store_dir: &Path,
) -> RestartReport {
    assert!(config.nodes >= 2, "restart scenario needs a surviving node");
    assert!(
        stop_height >= 1 && stop_height < config.heights,
        "stop height must be inside the simulated chain"
    );
    let pc = || pipeline_config(&config);
    let plan = build_chain(&config);

    // Delivers one height's candidates to a node and commits the winner.
    let settle_height = |node: &Validator, h_idx: usize| {
        let handles: Vec<ValidationHandle> = plan.candidates[h_idx]
            .iter()
            .map(|block| {
                let bytes = bp_block::encode_block(block);
                let block = bp_block::decode_block(&bytes).expect("honest wire encoding");
                node.receive_block(block)
            })
            .collect();
        for handle in handles {
            let outcome = handle.wait();
            assert!(
                outcome.is_valid(),
                "honest block rejected: {:?}",
                outcome.result
            );
        }
        assert!(
            node.commit_canonical(plan.winner_at(h_idx)),
            "fork choice failed at height {}",
            h_idx + 1
        );
    };

    let durable = Validator::with_store(
        pc(),
        plan.genesis.clone(),
        Store::open(store_dir).expect("open fresh store"),
    )
    .expect("store-backed validator");
    let survivors: Vec<Validator> = (1..config.nodes)
        .map(|_| Validator::new(pc(), plan.genesis.clone()))
        .collect();

    // Phase 1: the whole network settles heights 1..=stop_height.
    for h_idx in 0..stop_height as usize {
        settle_height(&durable, h_idx);
        for node in &survivors {
            settle_height(node, h_idx);
        }
    }
    let head_at_stop = durable.head().expect("chain advanced");
    assert_eq!(head_at_stop.1, stop_height);
    // The doomed node validates the next height's candidates but crashes
    // before fork choice commits any of them: that uncommitted work must
    // not leak into what recovery reconstructs.
    for block in &plan.candidates[stop_height as usize] {
        let outcome = durable.receive_block(block.clone()).wait();
        assert!(outcome.is_valid());
    }
    drop(durable); // the crash

    // Phase 2: survivors finish the chain without the downed node.
    for h_idx in stop_height as usize..plan.candidates.len() {
        for node in &survivors {
            settle_height(node, h_idx);
        }
    }

    // Phase 3: reopen the store; cold-start replay recovers the durable
    // head, then the node catches up on everything it missed.
    let recovered = Validator::with_store(
        pc(),
        plan.genesis.clone(),
        Store::open(store_dir).expect("reopen store"),
    )
    .expect("recovery from durable store");
    let recovered_head = recovered.head().expect("recovered chain");
    assert_eq!(
        recovered_head, head_at_stop,
        "recovery must land exactly on the last durable commit"
    );
    for h_idx in stop_height as usize..plan.candidates.len() {
        settle_height(&recovered, h_idx);
    }

    let final_head = recovered.head().expect("caught up");
    let final_root = recovered.head_state_root().expect("caught up");
    for node in &survivors {
        assert_eq!(node.head().expect("head"), final_head, "heads diverged");
        assert_eq!(
            node.head_state_root().expect("root"),
            final_root,
            "state roots diverged"
        );
    }
    // The final state is durable too: its trie must resolve entirely from
    // the on-disk node store.
    recovered
        .with_store_ref(|store| {
            let trie = store.open_trie(final_root).expect("final root on disk");
            assert_eq!(trie.root_hash(), final_root);
        })
        .expect("node is store-backed");

    RestartReport {
        recovered_head,
        final_head,
        final_root,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_latency_sane(report: &SimReport, config: &NetConfig) {
        assert_eq!(report.delivery_latency.len(), config.nodes);
        for stats in &report.delivery_latency {
            assert!(stats.deliveries > 0, "every node receives blocks");
            assert!(stats.min <= stats.max);
            assert!(stats.avg >= stats.min as f64 && stats.avg <= stats.max as f64);
            assert!(stats.min >= config.latency.start);
            assert!(stats.max < config.latency.end);
        }
    }

    #[test]
    fn small_network_converges() {
        let config = NetConfig {
            nodes: 3,
            heights: 4,
            fork_every: 2,
            ..NetConfig::default()
        };
        let report = run_network(config.clone());
        assert!(report.converged);
        assert_eq!(report.heights, 4);
        assert_eq!(report.forks, 2);
        assert_eq!(report.uncles, 2, "each fork leaves one uncle");
        assert!(report.total_txs > 0);
        assert_latency_sane(&report, &config);
    }

    #[test]
    fn forkless_network_has_no_uncles() {
        let config = NetConfig {
            nodes: 2,
            heights: 3,
            fork_every: 0,
            ..NetConfig::default()
        };
        let report = run_network(config.clone());
        assert!(report.converged);
        assert_eq!(report.forks, 0);
        assert_eq!(report.uncles, 0);
        assert_latency_sane(&report, &config);
    }

    #[test]
    fn deterministic_given_seed() {
        // OCC-WSI with multiple worker threads may commit any serializable
        // order (the block differs run to run by design); a single proposer
        // thread makes the chain content a pure function of the seeds.
        let config = NetConfig {
            proposer_threads: 1,
            ..NetConfig::default()
        };
        let a = run_network(config.clone());
        let b = run_network(config.clone());
        assert_eq!(a.final_root, b.final_root);
        assert_eq!(a.out_of_order_deliveries, b.out_of_order_deliveries);
        for (sa, sb) in a.delivery_latency.iter().zip(&b.delivery_latency) {
            assert_eq!(
                (sa.min, sa.max, sa.deliveries),
                (sb.min, sb.max, sb.deliveries)
            );
            assert_eq!(sa.avg, sb.avg);
        }
        let c = run_network(NetConfig {
            seed: 777, // different latencies, same workload
            ..config
        });
        assert_eq!(
            a.final_root, c.final_root,
            "chain content ignores latencies"
        );
    }

    #[test]
    fn high_latency_forces_out_of_order_delivery() {
        let config = NetConfig {
            nodes: 3,
            heights: 6,
            latency: 1..80,
            ticks_per_height: 10,
            ..NetConfig::default()
        };
        let report = run_network(config.clone());
        assert!(report.converged);
        assert!(
            report.out_of_order_deliveries > 0,
            "latency range should scramble delivery order"
        );
        assert_latency_sane(&report, &config);
    }

    #[test]
    fn single_node_network() {
        let report = run_network(NetConfig {
            nodes: 1,
            heights: 3,
            ..NetConfig::default()
        });
        assert!(report.converged);
    }

    #[test]
    fn restarted_node_recovers_and_converges() {
        let dir = bp_store::store::test_dir("net-restart");
        // Single-threaded proposals so the plan is reproducible across the
        // two runs compared below (multi-threaded OCC-WSI packs blocks in a
        // scheduling-dependent order).
        let config = NetConfig {
            nodes: 3,
            heights: 5,
            fork_every: 2,
            proposer_threads: 1,
            ..NetConfig::default()
        };
        let report = run_network_with_restart(config.clone(), 3, &dir);
        assert_eq!(report.recovered_head.1, 3);
        assert_eq!(report.final_head.1, 5);
        // The live network over the same plan agrees with the restarted
        // node's final root.
        let live = run_network(config);
        assert_eq!(report.final_root, live.final_root);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_at_first_height_replays_genesis_only() {
        let dir = bp_store::store::test_dir("net-restart-early");
        let config = NetConfig {
            nodes: 2,
            heights: 3,
            fork_every: 0,
            ..NetConfig::default()
        };
        let report = run_network_with_restart(config, 1, &dir);
        assert_eq!(report.recovered_head.1, 1);
        assert_eq!(report.final_head.1, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn link_delays_are_deterministic_and_order_independent() {
        let mut a = LinkDelays::new(3, 10..20, 42);
        let mut b = LinkDelays::new(3, 10..20, 42);
        // Draw in different link orders: per-link sequences must agree.
        let a_seq: Vec<u64> = (0..6).map(|i| a.next_delay(i % 3)).collect();
        let mut b_seq = vec![0u64; 6];
        for link in (0..3).rev() {
            for round in 0..2 {
                b_seq[round * 3 + link] = b.next_delay(link);
            }
        }
        assert_eq!(a_seq, b_seq);
        assert!(a_seq.iter().all(|&d| (10..20).contains(&d)));
        // Empty range: latency injection off.
        let mut off = LinkDelays::new(1, 0..0, 7);
        assert_eq!(off.next_delay(0), 0);
        assert_eq!(off.links(), 1);
    }
}
