//! A deterministic network simulation of BlockPilot's DiCE loop
//! (Dissemination → Consensus → Execution, §3.2 of the paper).
//!
//! `N` validator nodes share a transaction stream. At every height a
//! round-robin proposer packs a block with OCC-WSI and broadcasts it with
//! per-link latencies drawn from a seeded RNG; on *fork heights* a second
//! proposer races with a competing block, so validators receive multiple
//! blocks at one height and the pipeline's same-height concurrency and
//! parent-parking paths are exercised exactly as §3.4 describes. Fork
//! choice is deterministic (lowest block hash wins), so every node must
//! converge to the identical canonical chain and MPT state root — which
//! [`run_network`] asserts and reports.

#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use blockpilot_core::{
    ConflictGranularity, OccWsiConfig, OccWsiProposer, PipelineConfig, ValidationHandle, Validator,
};
use bp_block::Block;
use bp_evm::BlockEnv;
use bp_types::{BlockHash, H256};
use bp_workload::{WorkloadConfig, WorkloadGen};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Network-simulation parameters.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Number of validator nodes.
    pub nodes: usize,
    /// Chain length to run.
    pub heights: u64,
    /// Pipeline workers per node.
    pub workers_per_node: usize,
    /// OCC-WSI threads per proposer.
    pub proposer_threads: usize,
    /// Every `fork_every`-th height two proposers race (0 = never fork).
    pub fork_every: u64,
    /// Per-link delivery latency range, in ticks. One height spans
    /// [`NetConfig::ticks_per_height`] ticks, so latencies beyond that
    /// deliver blocks out of height order.
    pub latency: std::ops::Range<u64>,
    /// Virtual ticks between consecutive proposals.
    pub ticks_per_height: u64,
    /// RNG seed for latencies and the workload.
    pub seed: u64,
    /// The transaction workload.
    pub workload: WorkloadConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            nodes: 4,
            heights: 6,
            workers_per_node: 2,
            proposer_threads: 2,
            fork_every: 3,
            latency: 1..30,
            ticks_per_height: 20,
            seed: 0xD1CE,
            workload: WorkloadConfig {
                accounts: 100,
                tokens: 3,
                amm_pairs: 1,
                txs_per_block: 24,
                tx_jitter: 4,
                ..WorkloadConfig::default()
            },
        }
    }
}

/// What the simulation observed.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Heights processed.
    pub heights: u64,
    /// Heights where two proposers raced.
    pub forks: u64,
    /// Uncle blocks recorded per node at the end (same on every node).
    pub uncles: usize,
    /// Total transactions across the canonical chain.
    pub total_txs: usize,
    /// Canonical head state root every node agreed on.
    pub final_root: H256,
    /// True iff all nodes converged to the same head (asserted internally
    /// too).
    pub converged: bool,
    /// Blocks delivered out of height order somewhere in the network
    /// (exercises the pipeline's parent-parking path).
    pub out_of_order_deliveries: u64,
}

struct Delivery {
    tick: u64,
    seq: u64,
    node: usize,
    // Blocks travel over the wire in their canonical RLP encoding; the
    // receiver decodes (strictly) before validating.
    bytes: Arc<Vec<u8>>,
}

/// Runs the simulation to completion. Panics if the network fails to
/// converge — that would be a consensus-safety bug.
pub fn run_network(config: NetConfig) -> SimReport {
    assert!(config.nodes >= 1);
    assert!(config.heights >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut gen = WorkloadGen::new(config.workload.clone());
    let genesis = gen.genesis_state();

    let nodes: Vec<Validator> = (0..config.nodes)
        .map(|_| {
            Validator::new(
                PipelineConfig {
                    workers: config.workers_per_node,
                    granularity: ConflictGranularity::Account,
                },
                genesis.clone(),
            )
        })
        .collect();
    let genesis_hash = nodes[0].genesis_hash();

    // --- Proposal phase: build the block DAG deterministically. ---------
    // Proposals chain through the fork-choice winner at each height (the
    // block with the smallest hash among the candidates).
    let mut candidates_per_height: Vec<Vec<Block>> = Vec::new();
    let mut parent = genesis_hash;
    let mut parent_state = Arc::new(genesis);
    let mut forks = 0u64;
    let mut total_txs = 0usize;
    for height in 1..=config.heights {
        let txs = gen.next_block_txs();
        total_txs += txs.len();
        let racing = config.fork_every != 0 && height % config.fork_every == 0 && txs.len() >= 2;
        let mut blocks = Vec::new();
        // Competing proposers select different subsets of the mempool, but a
        // sender's nonce chain must stay within one proposal — split by
        // sender, not by position.
        let splits: Vec<Vec<bp_evm::Transaction>> = if racing {
            forks += 1;
            let (even, odd): (Vec<_>, Vec<_>) = txs
                .iter()
                .cloned()
                .partition(|tx| tx.sender.as_bytes()[19] % 2 == 0);
            if even.is_empty() || odd.is_empty() {
                vec![txs.clone()]
            } else {
                vec![even, odd]
            }
        } else {
            vec![txs.clone()]
        };
        for (i, split) in splits.iter().enumerate() {
            let proposer_node = (height as usize + i) % config.nodes;
            let engine = OccWsiProposer::new(OccWsiConfig {
                threads: config.proposer_threads,
                env: BlockEnv {
                    number: height,
                    coinbase: bp_types::Address::from_index(9_000_000 + proposer_node as u64),
                    ..gen.block_env(height)
                },
                ..OccWsiConfig::default()
            });
            let pool = bp_txpool::TxPool::new();
            for tx in split {
                pool.add(tx.clone());
            }
            let proposal = engine.propose(&pool, Arc::clone(&parent_state), parent, height);
            blocks.push((proposal.block, proposal.post_state));
        }
        // Fork choice: smallest hash wins; the winner parents the next
        // height.
        let winner = blocks
            .iter()
            .enumerate()
            .min_by_key(|(_, (b, _))| b.hash())
            .map(|(i, _)| i)
            .expect("at least one block");
        parent = blocks[winner].0.hash();
        parent_state = Arc::new(blocks[winner].1.clone());
        candidates_per_height.push(blocks.into_iter().map(|(b, _)| b).collect());
    }

    // --- Dissemination phase: broadcast with seeded latencies. -----------
    let mut queue: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut payloads: Vec<Option<Delivery>> = Vec::new();
    let mut seq = 0u64;
    for (h_idx, blocks) in candidates_per_height.iter().enumerate() {
        let publish_tick = (h_idx as u64 + 1) * config.ticks_per_height;
        for block in blocks {
            let bytes = Arc::new(bp_block::encode_block(block));
            for node in 0..config.nodes {
                let latency = rng.gen_range(config.latency.clone());
                let tick = publish_tick + latency;
                queue.push(Reverse((tick, seq)));
                payloads.push(Some(Delivery {
                    tick,
                    seq,
                    node,
                    bytes: Arc::clone(&bytes),
                }));
                seq += 1;
            }
        }
    }

    // --- Execution phase: deliver in tick order; validators pipeline. ---
    let mut handles: Vec<Vec<(u64, ValidationHandle)>> =
        (0..config.nodes).map(|_| Vec::new()).collect();
    let mut last_height_seen = vec![0u64; config.nodes];
    let mut out_of_order = 0u64;
    while let Some(Reverse((_, s))) = queue.pop() {
        let delivery = payloads[s as usize].take().expect("payload exists");
        let _ = delivery.tick;
        let block = bp_block::decode_block(&delivery.bytes).expect("honest wire encoding");
        let height = block.height();
        if height < last_height_seen[delivery.node] {
            out_of_order += 1;
        }
        last_height_seen[delivery.node] = last_height_seen[delivery.node].max(height);
        let handle = nodes[delivery.node].receive_block(block);
        handles[delivery.node].push((delivery.seq, handle));
    }
    for node_handles in handles {
        for (_, handle) in node_handles {
            let outcome = handle.wait();
            assert!(
                outcome.is_valid(),
                "honest block rejected: {:?}",
                outcome.result
            );
        }
    }

    // --- Consensus phase: apply the deterministic fork choice. ----------
    for node in &nodes {
        for (h_idx, blocks) in candidates_per_height.iter().enumerate() {
            let winner = blocks.iter().map(Block::hash).min().expect("non-empty");
            assert!(
                node.commit_canonical(winner),
                "fork choice failed at height {}",
                h_idx + 1
            );
        }
    }

    // --- Convergence check. ----------------------------------------------
    let heads: Vec<(BlockHash, u64)> = nodes
        .iter()
        .map(|n| n.head().expect("chain advanced"))
        .collect();
    let converged = heads.iter().all(|h| h == &heads[0]);
    assert!(converged, "nodes diverged: {heads:?}");
    let uncles: usize = (1..=config.heights)
        .map(|h| nodes[0].uncles_at(h))
        .sum();
    let final_root = candidates_per_height
        .last()
        .and_then(|blocks| blocks.iter().min_by_key(|b| b.hash()))
        .map(|b| b.header.state_root)
        .expect("at least one height");

    SimReport {
        heights: config.heights,
        forks,
        uncles,
        total_txs,
        final_root,
        converged,
        out_of_order_deliveries: out_of_order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_network_converges() {
        let report = run_network(NetConfig {
            nodes: 3,
            heights: 4,
            fork_every: 2,
            ..NetConfig::default()
        });
        assert!(report.converged);
        assert_eq!(report.heights, 4);
        assert_eq!(report.forks, 2);
        assert_eq!(report.uncles, 2, "each fork leaves one uncle");
        assert!(report.total_txs > 0);
    }

    #[test]
    fn forkless_network_has_no_uncles() {
        let report = run_network(NetConfig {
            nodes: 2,
            heights: 3,
            fork_every: 0,
            ..NetConfig::default()
        });
        assert!(report.converged);
        assert_eq!(report.forks, 0);
        assert_eq!(report.uncles, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        // OCC-WSI with multiple worker threads may commit any serializable
        // order (the block differs run to run by design); a single proposer
        // thread makes the chain content a pure function of the seeds.
        let config = NetConfig {
            proposer_threads: 1,
            ..NetConfig::default()
        };
        let a = run_network(config.clone());
        let b = run_network(config.clone());
        assert_eq!(a.final_root, b.final_root);
        assert_eq!(a.out_of_order_deliveries, b.out_of_order_deliveries);
        let c = run_network(NetConfig {
            seed: 777, // different latencies, same workload
            ..config
        });
        assert_eq!(a.final_root, c.final_root, "chain content ignores latencies");
    }

    #[test]
    fn high_latency_forces_out_of_order_delivery() {
        let report = run_network(NetConfig {
            nodes: 3,
            heights: 6,
            latency: 1..80,
            ticks_per_height: 10,
            ..NetConfig::default()
        });
        assert!(report.converged);
        assert!(
            report.out_of_order_deliveries > 0,
            "latency range should scramble delivery order"
        );
    }

    #[test]
    fn single_node_network() {
        let report = run_network(NetConfig {
            nodes: 1,
            heights: 3,
            ..NetConfig::default()
        });
        assert!(report.converged);
    }
}
