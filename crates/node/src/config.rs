//! Node-service configuration.

use std::path::PathBuf;

use blockpilot_core::{PipelineConfig, ProposerAlgo};
use bp_store::GroupCommitConfig;
use bp_types::Gas;
use bp_workload::WorkloadConfig;

/// How the proposer paces itself against the validators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeMode {
    /// The proposer chains height `N+1` on its own proposal post-state and
    /// starts packing immediately — proposing overlaps validation and
    /// persistence of earlier heights (the paper's Figure-1 overlap).
    Pipelined,
    /// The proposer waits for every validator to commit height `N` before
    /// packing `N+1` — the serial baseline the overlap is measured against.
    LockStep,
}

impl NodeMode {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            NodeMode::Pipelined => "pipelined",
            NodeMode::LockStep => "lock_step",
        }
    }
}

/// Configuration for one node-service run.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Proposer pacing mode.
    pub mode: NodeMode,
    /// Number of heights to propose and commit.
    pub blocks: u64,
    /// Capacity of each bounded inter-stage channel (proposer → codec and
    /// codec → each validator). Depth 1 is maximal backpressure; deeper
    /// channels let fast stages run ahead.
    pub channel_depth: usize,
    /// Proposer execution engine.
    pub engine: ProposerAlgo,
    /// Proposer worker threads.
    pub proposer_threads: usize,
    /// Block gas limit.
    pub gas_limit: Gas,
    /// Per-validator pipeline shape (workers, appliers, dispatch).
    pub pipeline: PipelineConfig,
    /// Number of validator nodes fed through in-process wires.
    pub validators: usize,
    /// Injected per-link wire latency range in microseconds (empty range =
    /// no injection). Drawn from a seeded [`bp_net::LinkDelays`].
    pub latency_us: std::ops::Range<u64>,
    /// Seed for latency draws.
    pub seed: u64,
    /// Transaction workload feeding the pool.
    pub workload: WorkloadConfig,
    /// Pool admission cap — the ingest backpressure bound.
    pub pool_capacity: usize,
    /// The proposer waits until the pool holds at least this many
    /// transactions before packing a block (avoids near-empty blocks when
    /// ingest briefly lags).
    pub min_pool_txs: usize,
    /// When set, validator 0 persists its canonical chain to this store
    /// directory (crash-safe commit cadence under sustained load).
    pub store_dir: Option<PathBuf>,
    /// With a store attached, coalesce consecutive durable commits into one
    /// fsync batch (see [`GroupCommitConfig`]). The open batch is flushed on
    /// shutdown; a crash mid-batch rolls back to the last batch boundary.
    pub group_commit: Option<GroupCommitConfig>,
    /// Run the serial-replay equivalence gate after the loop finishes.
    pub check_equivalence: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            mode: NodeMode::Pipelined,
            blocks: 20,
            channel_depth: 2,
            engine: ProposerAlgo::OccWsi,
            proposer_threads: 2,
            gas_limit: 30_000_000,
            pipeline: PipelineConfig::default(),
            validators: 2,
            latency_us: 0..0,
            seed: 0xB10C_1207,
            workload: WorkloadConfig::default(),
            pool_capacity: 1024,
            min_pool_txs: 1,
            store_dir: None,
            group_commit: None,
            check_equivalence: true,
        }
    }
}
