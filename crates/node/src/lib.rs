//! # bp-node — the full-loop BlockPilot node service
//!
//! Every other crate benchmarks one stage in isolation; this crate wires
//! them into the long-running service the paper actually describes: a
//! transaction feed filling a capacity-bounded [`bp_txpool::TxPool`], a
//! proposer (OCC-WSI or Block-STM, per [`blockpilot_core::ProposerAlgo`])
//! packing blocks against its own chain of post-states, a dedicated wire
//! codec stage, and `K` validator nodes — each a full
//! [`blockpilot_core::Validator`] with its four-stage pipeline, the first
//! optionally backed by a persistent [`bp_store::Store`] — all connected by
//! **bounded channels** so backpressure propagates stage to stage instead
//! of queues growing without bound.
//!
//! The point of the assembly is the paper's Figure-1 overlap in wall-clock:
//! in [`NodeMode::Pipelined`] the proposer packs height `N+1` while the
//! wire, validation and persistence of height `N` are still in flight;
//! [`NodeMode::LockStep`] is the serial baseline where the proposer waits
//! for every validator's commit. [`run_node`] reports per-stage occupancy,
//! stall shares and queue depths ([`StageStats`]) plus sustained
//! committed-tx/s, and can gate the run on a serial replay of the committed
//! chain ([`serial_replay_root`]) so the overlap can never silently
//! diverge from serial semantics.

#![warn(missing_docs)]

mod config;
mod service;
mod stats;

pub use config::{NodeConfig, NodeMode};
pub use service::{run_node, serial_replay_root, Equivalence, NodeReport, RunningNode};
pub use stats::StageStats;
