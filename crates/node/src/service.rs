//! The streaming node loop: txpool → proposer → wire codec → validator
//! pipeline(s) → store, over bounded channels with backpressure.
//!
//! Stage layout (one OS thread each):
//!
//! ```text
//!  ingest ──add_batch──▶ TxPool (capacity-bounded)
//!                          │ pop_many (engine workers)
//!                        proposer ──Block──▶ codec ──Arc<[u8]>──▶ validator 0 (+ store)
//!                          ▲        bounded         bounded  └──▶ validator k
//!                          │ lock-step only: wait for commits
//!                        CommitBoard ◀── commit_canonical ──┘
//! ```
//!
//! * Every inter-stage channel is **bounded** at `channel_depth`: a slow
//!   stage fills its input queue and the sender blocks — that blocked time
//!   is accounted as *stall* in the sender's [`StageStats`], so the report
//!   names the bottleneck.
//! * In [`NodeMode::Pipelined`] the proposer chains height `N+1` on its own
//!   proposal post-state immediately; validation, persistence and the wire
//!   all run behind it. In [`NodeMode::LockStep`] it additionally waits for
//!   every validator to commit height `N` first.
//! * The codec stage encodes each block **once** and hands the bytes to all
//!   `K` validator wires as a shared `Arc<[u8]>` — refcount bumps, not
//!   copies — keeping serialization off the proposer's critical path.
//! * Shutdown is by channel disconnect: the proposer finishing (or
//!   [`RunningNode::stop`]) drops the head of the chain of senders and each
//!   stage drains what it already received, so every proposed block is
//!   validated, committed and (for validator 0 with a store) persisted —
//!   no lost or duplicated blocks mid-stream.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use blockpilot_core::{BlockStmProposer, OccWsiConfig, OccWsiProposer, ProposerAlgo, Validator};
use bp_block::wire::{decode_block, encode_block_into};
use bp_block::{genesis_header, Block, BlockProfile};
use bp_net::LinkDelays;
use bp_state::WorldState;
use bp_txpool::TxPool;
use bp_types::{BlockHash, Height, H256};
use bp_workload::WorkloadGen;
use crossbeam::channel::bounded;

use crate::config::{NodeConfig, NodeMode};
use crate::stats::{micros_since, StageStats};

/// How long starved stages sleep between polls of an empty pool.
const POOL_POLL_MICROS: u64 = 50;

/// Highest height each validator has committed, for lock-step pacing and
/// progress tracking.
struct CommitBoard {
    heights: Mutex<Vec<Height>>,
    advanced: Condvar,
}

impl CommitBoard {
    fn new(validators: usize) -> Self {
        CommitBoard {
            heights: Mutex::new(vec![0; validators]),
            advanced: Condvar::new(),
        }
    }

    fn record(&self, validator: usize, height: Height) {
        let mut heights = self.heights.lock().unwrap();
        heights[validator] = heights[validator].max(height);
        drop(heights);
        self.advanced.notify_all();
    }

    /// Blocks until every validator has committed at least `height`.
    fn wait_all_at(&self, height: Height) {
        let mut heights = self.heights.lock().unwrap();
        while heights.iter().any(|&h| h < height) {
            heights = self.advanced.wait(heights).unwrap();
        }
    }

    fn min(&self) -> Height {
        *self
            .heights
            .lock()
            .unwrap()
            .iter()
            .min()
            .expect("non-empty")
    }
}

/// Per-validator outcome returned by its stage thread.
struct ValidatorOutcome {
    stats: StageStats,
    head: Option<(BlockHash, Height)>,
    head_root: Option<H256>,
    /// Canonical chain (heights 1..=head) — collected by validator 0 only,
    /// for the equivalence gate and tx accounting.
    chain: Vec<Block>,
    validation_failures: u64,
}

/// Result of the serial-replay equivalence gate.
#[derive(Clone, Debug)]
pub struct Equivalence {
    /// Blocks replayed.
    pub blocks: u64,
    /// Final state root of the serial replay from genesis.
    pub serial_root: H256,
    /// Final state root committed by the (pipelined) validators.
    pub node_root: H256,
    /// True iff the two roots agree.
    pub ok: bool,
}

/// Everything a finished run reports.
#[derive(Debug)]
pub struct NodeReport {
    /// Pacing mode the run used.
    pub mode: NodeMode,
    /// Proposer engine the run used.
    pub engine: ProposerAlgo,
    /// Heights committed by every validator.
    pub committed_blocks: u64,
    /// Transactions in the committed canonical chain.
    pub committed_txs: u64,
    /// Wall time of the whole loop, first propose to last commit.
    pub wall_micros: u64,
    /// Sustained throughput: committed transactions per wall-clock second.
    pub committed_tx_per_sec: f64,
    /// Ingest-stage counters (items = transactions admitted).
    pub ingest: StageStats,
    /// Proposer-stage counters (items = blocks proposed; stall = send
    /// backpressure + lock-step waiting).
    pub proposer: StageStats,
    /// Codec-stage counters (items = blocks encoded).
    pub codec: StageStats,
    /// Per-validator counters (items = blocks committed).
    pub validators: Vec<StageStats>,
    /// Proposer engine aborts summed over all heights.
    pub proposer_aborts: u64,
    /// Blocks that failed validation (always 0 in a healthy run).
    pub validation_failures: u64,
    /// Head state root agreed by all validators.
    pub final_root: H256,
    /// Head (hash, height) per validator.
    pub heads: Vec<(BlockHash, Height)>,
    /// Serial-replay gate result (`None` when disabled).
    pub equivalence: Option<Equivalence>,
}

impl NodeReport {
    /// True iff every validator converged to the same head and the
    /// equivalence gate (when run) passed.
    pub fn healthy(&self) -> bool {
        let heads_agree = self.heads.windows(2).all(|w| w[0] == w[1]);
        heads_agree
            && self.validation_failures == 0
            && self.equivalence.as_ref().is_none_or(|e| e.ok)
    }
}

/// A node service in flight. Obtain with [`RunningNode::spawn`], end with
/// [`RunningNode::join`] (runs to the configured height) or
/// [`RunningNode::stop`] + `join` (clean mid-stream shutdown).
pub struct RunningNode {
    stop: Arc<AtomicBool>,
    board: Arc<CommitBoard>,
    config: NodeConfig,
    genesis_state: WorldState,
    started: Instant,
    ingest: JoinHandle<StageStats>,
    proposer: JoinHandle<(StageStats, u64)>,
    codec: JoinHandle<StageStats>,
    validators: Vec<JoinHandle<ValidatorOutcome>>,
}

impl RunningNode {
    /// Spawns every stage thread and starts the loop.
    pub fn spawn(config: NodeConfig) -> Self {
        assert!(config.validators > 0, "need at least one validator");
        assert!(config.channel_depth > 0, "bounded channels need depth >= 1");
        assert!(config.blocks > 0, "need at least one height");

        let stop = Arc::new(AtomicBool::new(false));
        let board = Arc::new(CommitBoard::new(config.validators));
        let pool = Arc::new(TxPool::with_capacity_limit(config.pool_capacity));

        let workload = WorkloadGen::new(config.workload.clone());
        let genesis_state = workload.genesis_state();
        let genesis_hash = Block {
            header: genesis_header(genesis_state.state_root()),
            transactions: vec![],
            profile: BlockProfile::new(),
        }
        .hash();

        // Stage channels: proposer → codec, codec → each validator.
        let (codec_tx, codec_rx) = bounded::<Block>(config.channel_depth);
        let mut wire_txs = Vec::with_capacity(config.validators);
        let mut wire_rxs = Vec::with_capacity(config.validators);
        for _ in 0..config.validators {
            let (tx, rx) = bounded::<(Height, Arc<[u8]>)>(config.channel_depth);
            wire_txs.push(tx);
            wire_rxs.push(rx);
        }

        let started = Instant::now();

        // --- Ingest stage -------------------------------------------------
        let ingest = {
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            let mut gen = WorkloadGen::new(config.workload.clone());
            std::thread::spawn(move || {
                let mut stats = StageStats::default();
                let mut batch: Vec<_> = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    if batch.is_empty() {
                        let t = Instant::now();
                        batch = gen.next_block_txs();
                        stats.busy_micros += micros_since(t);
                    }
                    let offered = batch.len();
                    let taken = pool.add_batch(&mut batch);
                    stats.items += taken as u64;
                    if taken < offered {
                        // Pool full: backpressure from the proposer. Sleep
                        // briefly and re-offer the remainder in order (no
                        // nonce gaps).
                        let t = Instant::now();
                        std::thread::sleep(std::time::Duration::from_micros(POOL_POLL_MICROS));
                        stats.stall_micros += micros_since(t);
                    }
                }
                stats
            })
        };

        // --- Proposer stage ----------------------------------------------
        let proposer =
            {
                let pool = Arc::clone(&pool);
                let stop = Arc::clone(&stop);
                let board = Arc::clone(&board);
                let config = config.clone();
                let envs = WorkloadGen::new(config.workload.clone());
                let parent_state = Arc::new(genesis_state.clone());
                std::thread::spawn(move || {
                    let mut stats = StageStats::default();
                    let mut aborts = 0u64;
                    let mut parent_hash = genesis_hash;
                    let mut parent_state = parent_state;
                    for height in 1..=config.blocks {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        // Wait for ingest to fill the pool far enough.
                        let t = Instant::now();
                        while pool.len() < config.min_pool_txs && !stop.load(Ordering::Acquire) {
                            std::thread::sleep(std::time::Duration::from_micros(POOL_POLL_MICROS));
                        }
                        stats.wait_micros += micros_since(t);
                        if stop.load(Ordering::Acquire) {
                            break;
                        }

                        let engine_config = OccWsiConfig {
                            threads: config.proposer_threads,
                            gas_limit: config.gas_limit,
                            env: envs.block_env(height),
                            max_txs: 0,
                            commit_path: Default::default(),
                            algo: config.engine,
                        };
                        let t = Instant::now();
                        let proposal =
                            match config.engine {
                                ProposerAlgo::OccWsi => OccWsiProposer::new(engine_config).propose(
                                    &pool,
                                    Arc::clone(&parent_state),
                                    parent_hash,
                                    height,
                                ),
                                ProposerAlgo::BlockStm => BlockStmProposer::new(engine_config)
                                    .propose(&pool, Arc::clone(&parent_state), parent_hash, height),
                            };
                        stats.busy_micros += micros_since(t);
                        stats.items += 1;
                        aborts += proposal.stats.aborts;

                        // Chain on our own proposal: the next height packs
                        // against this post-state while everything downstream
                        // is still digesting this block.
                        parent_hash = proposal.block.hash();
                        parent_state = Arc::new(proposal.post_state);

                        let t = Instant::now();
                        if codec_tx.send(proposal.block).is_err() {
                            break; // downstream gone (stop + drain)
                        }
                        stats.stall_micros += micros_since(t);
                        stats.sample_depth(codec_tx.len());

                        if config.mode == NodeMode::LockStep {
                            let t = Instant::now();
                            board.wait_all_at(height);
                            stats.stall_micros += micros_since(t);
                        }
                    }
                    // Dropping codec_tx here starts the drain cascade.
                    (stats, aborts)
                })
            };

        // --- Codec stage --------------------------------------------------
        let codec = {
            std::thread::spawn(move || {
                let mut stats = StageStats::default();
                let mut scratch: Vec<u8> = Vec::new();
                loop {
                    let t = Instant::now();
                    let Ok(block) = codec_rx.recv() else {
                        break; // proposer done: drain complete
                    };
                    stats.wait_micros += micros_since(t);

                    let t = Instant::now();
                    let height = block.height();
                    scratch = encode_block_into(&block, scratch);
                    // One encode, K receivers: the bytes go out as a shared
                    // Arc<[u8]> — cloning is a refcount bump, not a copy.
                    let bytes: Arc<[u8]> = Arc::from(&scratch[..]);
                    stats.busy_micros += micros_since(t);
                    stats.items += 1;

                    let t = Instant::now();
                    for wire in &wire_txs {
                        if wire.send((height, Arc::clone(&bytes))).is_err() {
                            break;
                        }
                    }
                    stats.stall_micros += micros_since(t);
                    let deepest = wire_txs.iter().map(|w| w.len()).max().unwrap_or(0);
                    stats.sample_depth(deepest);
                }
                stats
            })
        };

        // --- Validator stages --------------------------------------------
        let validators = wire_rxs
            .into_iter()
            .enumerate()
            .map(|(k, wire_rx)| {
                let board = Arc::clone(&board);
                let config = config.clone();
                let genesis_state = genesis_state.clone();
                std::thread::spawn(move || {
                    let deferred_root = config.pipeline.deferred_root;
                    let validator = match (&config.store_dir, k) {
                        (Some(dir), 0) => Validator::with_store_profile(
                            config.pipeline,
                            genesis_state,
                            dir,
                            config.group_commit,
                        )
                        .expect("node store opens"),
                        _ => Validator::new(config.pipeline, genesis_state),
                    };
                    // Per-link latency: every validator thread builds the
                    // same seeded sampler and draws only its own link, so
                    // sequences match a single shared sampler.
                    let mut delays =
                        LinkDelays::new(config.validators, config.latency_us, config.seed);
                    let mut stats = StageStats::default();
                    let mut failures = 0u64;
                    // With deferred roots the pipeline releases height N+1
                    // into execution while N's root still hashes, so the
                    // stage submits ahead through a small in-flight window
                    // instead of waiting each verdict before the next recv.
                    // Commits still land strictly in height order (FIFO
                    // drain). Without deferral a window > 1 only buffers
                    // blocks the pipeline would serialize anyway, so keep
                    // the classic submit-wait-commit loop.
                    let window = if deferred_root {
                        config.channel_depth.max(2)
                    } else {
                        1
                    };
                    type Inflight = std::collections::VecDeque<(
                        Height,
                        BlockHash,
                        blockpilot_core::ValidationHandle,
                    )>;
                    let mut inflight: Inflight = Inflight::new();
                    let drain_one =
                        |inflight: &mut Inflight, stats: &mut StageStats, failures: &mut u64| {
                            let Some((height, hash, handle)) = inflight.pop_front() else {
                                return;
                            };
                            let t = Instant::now();
                            let outcome = handle.wait();
                            if outcome.is_valid() && validator.commit_canonical(hash) {
                                stats.items += 1;
                            } else {
                                *failures += 1;
                            }
                            stats.busy_micros += micros_since(t);
                            // Record even failed heights so lock-step pacing
                            // cannot deadlock on a broken block.
                            board.record(k, height);
                        };
                    loop {
                        let t = Instant::now();
                        let Ok((height, bytes)) = wire_rx.recv() else {
                            break; // wire disconnected: drain complete
                        };
                        stats.wait_micros += micros_since(t);

                        let delay = delays.next_delay(k);
                        if delay > 0 {
                            std::thread::sleep(std::time::Duration::from_micros(delay));
                            stats.injected_micros += delay;
                        }

                        let t = Instant::now();
                        let block = decode_block(&bytes).expect("wire bytes decode");
                        let hash = block.hash();
                        let handle = validator.receive_block(block);
                        stats.busy_micros += micros_since(t);
                        inflight.push_back((height, hash, handle));
                        while inflight.len() >= window.max(1) {
                            drain_one(&mut inflight, &mut stats, &mut failures);
                        }
                    }
                    while !inflight.is_empty() {
                        drain_one(&mut inflight, &mut stats, &mut failures);
                    }
                    let head = validator.head();
                    let head_root = validator.head_state_root();
                    let chain = if k == 0 {
                        let top = head.map(|(_, h)| h).unwrap_or(0);
                        (1..=top)
                            .filter_map(|h| validator.canonical_block(h))
                            .collect()
                    } else {
                        Vec::new()
                    };
                    // Close any open group-commit batch: deferred commits
                    // must be durable before the run is reported done.
                    let _ = validator.into_store();
                    ValidatorOutcome {
                        stats,
                        head,
                        head_root,
                        chain,
                        validation_failures: failures,
                    }
                })
            })
            .collect();

        RunningNode {
            stop,
            board,
            config,
            genesis_state,
            started,
            ingest,
            proposer,
            codec,
            validators,
        }
    }

    /// Requests a clean mid-stream shutdown: the proposer stops at the next
    /// height boundary and every stage drains what was already in flight.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Lowest height committed by all validators so far.
    pub fn committed_height(&self) -> Height {
        self.board.min()
    }

    /// Waits for the loop to finish (or drain, after [`RunningNode::stop`])
    /// and assembles the report.
    pub fn join(self) -> NodeReport {
        let RunningNode {
            stop,
            board: _,
            config,
            genesis_state,
            started,
            ingest,
            proposer,
            codec,
            validators,
        } = self;

        let (proposer_stats, proposer_aborts) = proposer.join().expect("proposer thread");
        let codec_stats = codec.join().expect("codec thread");
        let mut outcomes: Vec<ValidatorOutcome> = validators
            .into_iter()
            .map(|v| v.join().expect("validator thread"))
            .collect();
        let wall_micros = micros_since(started);
        // Validators are drained: nothing consumes the pool anymore.
        stop.store(true, Ordering::Release);
        let ingest_stats = ingest.join().expect("ingest thread");

        let heads: Vec<(BlockHash, Height)> = outcomes
            .iter()
            .map(|o| o.head.expect("validator has a head"))
            .collect();
        let final_root = outcomes[0].head_root.expect("head has a root");
        let committed_blocks = heads.iter().map(|&(_, h)| h).min().unwrap_or(0);
        let chain = std::mem::take(&mut outcomes[0].chain);
        let committed_txs: u64 = chain.iter().map(|b| b.tx_count() as u64).sum();
        let validation_failures = outcomes.iter().map(|o| o.validation_failures).sum();

        let equivalence = config.check_equivalence.then(|| {
            let serial_root = serial_replay_root(&genesis_state, &chain);
            Equivalence {
                blocks: chain.len() as u64,
                serial_root,
                node_root: final_root,
                ok: serial_root == final_root,
            }
        });

        let committed_tx_per_sec = if wall_micros == 0 {
            0.0
        } else {
            committed_txs as f64 * 1e6 / wall_micros as f64
        };

        NodeReport {
            mode: config.mode,
            engine: config.engine,
            committed_blocks,
            committed_txs,
            wall_micros,
            committed_tx_per_sec,
            ingest: ingest_stats,
            proposer: proposer_stats,
            codec: codec_stats,
            validators: outcomes.into_iter().map(|o| o.stats).collect(),
            proposer_aborts,
            validation_failures,
            final_root,
            heads,
            equivalence,
        }
    }
}

/// Replays `chain` serially from `genesis` and returns the final state
/// root — the oracle the pipelined loop must agree with.
pub fn serial_replay_root(genesis: &WorldState, chain: &[Block]) -> H256 {
    let mut state = genesis.snapshot();
    for block in chain {
        let env = bp_evm::BlockEnv {
            coinbase: block.header.coinbase,
            number: block.header.height,
            timestamp: block.header.timestamp,
            gas_limit: block.header.gas_limit,
        };
        let outcome = bp_baseline::execute_block_serially(&state, &env, &block.transactions)
            .expect("committed chain replays serially");
        state = outcome.post_state;
    }
    state.state_root()
}

/// Runs the loop to completion: [`RunningNode::spawn`] + [`RunningNode::join`].
pub fn run_node(config: NodeConfig) -> NodeReport {
    RunningNode::spawn(config).join()
}
