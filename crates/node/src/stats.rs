//! Per-stage occupancy and queue-depth instrumentation.
//!
//! Every stage thread owns a [`StageStats`] and accounts each moment of its
//! life to exactly one bucket: *busy* (doing its work), *wait* (blocked
//! receiving — starved by the upstream stage), *stall* (blocked sending —
//! backpressured by the downstream stage, or held by lock-step pacing) or
//! *injected* (deliberate wire-latency sleeps). Queue depth is sampled at
//! every send, so a persistently deep downstream queue identifies the
//! bottleneck stage without guesswork.

/// Counters for one pipeline stage.
#[derive(Clone, Debug, Default)]
pub struct StageStats {
    /// Units processed (blocks for the block stages, transactions for
    /// ingest).
    pub items: u64,
    /// Microseconds spent doing the stage's own work.
    pub busy_micros: u64,
    /// Microseconds blocked receiving from the upstream stage.
    pub wait_micros: u64,
    /// Microseconds blocked sending to the downstream stage (backpressure)
    /// or, for the proposer in lock-step mode, waiting for validator
    /// commits.
    pub stall_micros: u64,
    /// Microseconds of deliberately injected wire latency (validator stages
    /// only).
    pub injected_micros: u64,
    /// Deepest downstream queue observed when sending.
    pub max_queue_depth: usize,
}

impl StageStats {
    /// Fraction of `wall_micros` this stage spent busy.
    pub fn occupancy(&self, wall_micros: u64) -> f64 {
        if wall_micros == 0 {
            0.0
        } else {
            self.busy_micros as f64 / wall_micros as f64
        }
    }

    /// Fraction of `wall_micros` this stage spent backpressured.
    pub fn stall_share(&self, wall_micros: u64) -> f64 {
        if wall_micros == 0 {
            0.0
        } else {
            self.stall_micros as f64 / wall_micros as f64
        }
    }

    /// Records a send-side queue-depth sample.
    pub fn sample_depth(&mut self, depth: usize) {
        self.max_queue_depth = self.max_queue_depth.max(depth);
    }
}

/// Microseconds elapsed since `start`, saturating into `u64`.
pub(crate) fn micros_since(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_and_stall_shares() {
        let stats = StageStats {
            items: 10,
            busy_micros: 250,
            wait_micros: 500,
            stall_micros: 250,
            injected_micros: 0,
            max_queue_depth: 3,
        };
        assert!((stats.occupancy(1000) - 0.25).abs() < 1e-12);
        assert!((stats.stall_share(1000) - 0.25).abs() < 1e-12);
        assert_eq!(stats.occupancy(0), 0.0);
    }

    #[test]
    fn depth_sampling_keeps_the_max() {
        let mut stats = StageStats::default();
        for d in [1, 4, 2] {
            stats.sample_depth(d);
        }
        assert_eq!(stats.max_queue_depth, 4);
    }
}
