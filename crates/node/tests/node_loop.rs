//! End-to-end tests of the streaming node loop: equivalence across engines
//! and modes, bounded-channel backpressure, clean mid-stream shutdown with
//! store agreement, and multi-validator convergence.

use blockpilot_core::{PipelineConfig, ProposerAlgo, Validator};
use bp_node::{run_node, NodeConfig, NodeMode, RunningNode};
use bp_workload::{WorkloadConfig, WorkloadGen};

fn small_workload() -> WorkloadConfig {
    WorkloadConfig {
        accounts: 100,
        tokens: 3,
        amm_pairs: 1,
        txs_per_block: 24,
        tx_jitter: 4,
        ..WorkloadConfig::default()
    }
}

fn small_config() -> NodeConfig {
    NodeConfig {
        blocks: 5,
        channel_depth: 2,
        proposer_threads: 2,
        pipeline: PipelineConfig {
            workers: 2,
            ..PipelineConfig::default()
        },
        validators: 2,
        workload: small_workload(),
        pool_capacity: 256,
        ..NodeConfig::default()
    }
}

#[test]
fn pipelined_loop_commits_and_matches_serial_replay() {
    for engine in [ProposerAlgo::OccWsi, ProposerAlgo::BlockStm] {
        let report = run_node(NodeConfig {
            engine,
            ..small_config()
        });
        assert_eq!(report.committed_blocks, 5, "{engine:?}");
        assert!(report.committed_txs > 0, "{engine:?}");
        assert_eq!(report.validation_failures, 0, "{engine:?}");
        let eq = report.equivalence.as_ref().expect("gate ran");
        assert!(
            eq.ok,
            "{engine:?}: serial {:?} != node {:?}",
            eq.serial_root, eq.node_root
        );
        assert!(report.healthy(), "{engine:?}");
    }
}

#[test]
fn lock_step_loop_matches_serial_replay() {
    let report = run_node(NodeConfig {
        mode: NodeMode::LockStep,
        ..small_config()
    });
    assert_eq!(report.committed_blocks, 5);
    assert!(report.healthy());
    // Lock-step pacing shows up as proposer stall time (waiting on commits).
    assert!(report.proposer.stall_micros > 0);
}

/// Channel depth 1 with slow validators: the proposer must fill the codec
/// channel, stall on backpressure, and resume as the drain frees slots —
/// without losing or reordering any block.
#[test]
fn bounded_channels_stall_the_proposer_then_drain() {
    let report = run_node(NodeConfig {
        channel_depth: 1,
        // 3 ms injected latency per block delivery makes the wire the slow
        // stage; the proposer packs far faster and must hit the bound.
        latency_us: 3000..3001,
        blocks: 6,
        ..small_config()
    });
    assert_eq!(report.committed_blocks, 6);
    assert!(report.healthy());
    assert!(
        report.proposer.stall_micros > 0,
        "proposer never felt backpressure: {:?}",
        report.proposer
    );
    // Injected latency is accounted separately from useful work.
    for v in &report.validators {
        assert!(v.injected_micros >= 6 * 3000);
    }
    // Bounded channels can never report a depth beyond their capacity.
    assert!(report.proposer.max_queue_depth <= 1);
    assert!(report.codec.max_queue_depth <= 1);
}

/// Stop mid-stream: every block already in flight drains to all validators,
/// heads agree, and the persisted store reopens to exactly the in-memory
/// head (no lost or duplicated blocks).
#[test]
fn clean_shutdown_drains_in_flight_blocks_and_store_agrees() {
    let dir = bp_store::store::test_dir("node-shutdown");
    let node = RunningNode::spawn(NodeConfig {
        blocks: 10_000, // far more than we let it run
        store_dir: Some(dir.clone()),
        ..small_config()
    });
    // Let it commit a few heights, then pull the plug.
    while node.committed_height() < 3 {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    node.stop();
    let report = node.join();
    assert!(report.committed_blocks >= 3);
    assert!(report.committed_blocks < 10_000, "stop was ignored");
    assert!(report.healthy());

    // Reopen the store cold: replay must land on the same head and root.
    let genesis = WorkloadGen::new(small_workload()).genesis_state();
    let reopened = Validator::with_store_at(
        PipelineConfig {
            workers: 2,
            ..PipelineConfig::default()
        },
        genesis,
        &dir,
    )
    .expect("store reopens");
    let (head_hash, head_height) = reopened.head().expect("reopened head");
    assert_eq!(head_height, report.committed_blocks);
    assert_eq!((head_hash, head_height), report.heads[0]);
    assert_eq!(reopened.head_state_root().unwrap(), report.final_root);
    std::fs::remove_dir_all(&dir).ok();
}

/// The async commit pipeline end-to-end: deferred state roots (execution of
/// height N+1 overlaps N's root hash) plus group commit (one fsync batch per
/// few heights), with the store flushed on shutdown. The run must stay
/// equivalent to serial replay, and a cold reopen must land on the reported
/// head — i.e. the final flush made the whole batch durable.
#[test]
fn deferred_root_and_group_commit_match_serial_and_persist() {
    let dir = bp_store::store::test_dir("node-deferred-gc");
    let report = run_node(NodeConfig {
        blocks: 8,
        store_dir: Some(dir.clone()),
        group_commit: Some(bp_store::GroupCommitConfig {
            max_blocks: 4,
            max_bytes: 64 << 20,
        }),
        pipeline: PipelineConfig {
            workers: 2,
            deferred_root: true,
            ..PipelineConfig::default()
        },
        ..small_config()
    });
    assert_eq!(report.committed_blocks, 8);
    assert_eq!(report.validation_failures, 0);
    let eq = report.equivalence.as_ref().expect("gate ran");
    assert!(
        eq.ok,
        "serial {:?} != node {:?}",
        eq.serial_root, eq.node_root
    );
    assert!(report.healthy());

    let genesis = WorkloadGen::new(small_workload()).genesis_state();
    let reopened = Validator::with_store_at(
        PipelineConfig {
            workers: 2,
            ..PipelineConfig::default()
        },
        genesis,
        &dir,
    )
    .expect("store reopens");
    assert_eq!(reopened.head().expect("reopened head"), report.heads[0]);
    assert_eq!(reopened.head_state_root().unwrap(), report.final_root);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn four_validators_with_jittered_links_converge() {
    let report = run_node(NodeConfig {
        validators: 4,
        latency_us: 100..1500,
        blocks: 4,
        ..small_config()
    });
    assert_eq!(report.committed_blocks, 4);
    assert_eq!(report.validators.len(), 4);
    assert!(report.healthy());
    // All four heads are literally identical.
    for pair in report.heads.windows(2) {
        assert_eq!(pair[0], pair[1]);
    }
}
