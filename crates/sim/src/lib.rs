//! Deterministic virtual-time executors.
//!
//! The evaluation machine for this reproduction has a single CPU core, so
//! the paper's wall-clock speedups cannot be observed physically. Gas is the
//! paper's own execution-time proxy (§4.3), and every speedup in its
//! evaluation is a property of the *schedule* the algorithms produce — which
//! threads run which transactions, who aborts, what serializes. This crate
//! replays those schedules in **gas-time**:
//!
//! * [`proposer`] — an event-driven simulation of Algorithm 1 on `k` virtual
//!   threads: real EVM executions against real multi-version snapshots, real
//!   WSI validation, virtual clocks (Figure 6);
//! * [`validator`] — the lane makespan of a real scheduler output plus an
//!   explicit overhead model (Figures 7(a), 7(b), 8);
//! * [`pipeline`] — list-scheduled multi-block execution over a shared
//!   worker pool with a serialized applier and context-switch costs
//!   (Figure 9), plus a configurable model of the restructured pipeline
//!   (subgraph-granular dispatch, overlapped verification, applier *pool*)
//!   for the `validator_baseline` A/B series.
//!
//! All three are exact, repeatable functions of their inputs.

#![warn(missing_docs)]

pub mod node;
pub mod pipeline;
pub mod proposer;
pub mod stm;
pub mod validator;

pub use node::{simulate_node_loop, NodeLoopConfig, NodeLoopResult};

pub use pipeline::{
    simulate_multiblock, simulate_validator_pipeline, MultiBlockSimResult, PipelineSimConfig,
    PipelineSimResult,
};
pub use proposer::{
    simulate_proposer, simulate_proposer_configured, simulate_proposer_with_rule,
    ProposerSimResult, ValidationRule,
};
pub use stm::simulate_proposer_block_stm;
pub use validator::{simulate_validator, ValidatorSimResult};

use bp_types::Gas;

/// Virtual-time cost model, in gas units.
///
/// The execution cost of a transaction is its gas (the paper's proxy); the
/// constants below model the framework's own overheads. They were calibrated
/// once against the paper's reported speedups and are documented in
/// DESIGN.md; the ablation benches sweep them.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Per-execution worker overhead (dequeue, snapshot setup, result
    /// hand-off).
    pub per_tx_dispatch: Gas,
    /// Total commit-section cost per committed transaction in the OCC-WSI
    /// proposer (validation, version allocation, multi-version + reserve
    /// publication, block-body push). Under [`CommitPath::CoarseLock`] the
    /// whole section serializes through one commit resource; under
    /// [`CommitPath::TwoPhase`] only [`CostModel::commit_admit`] of it does,
    /// and the remaining `commit_sync - commit_admit` (Phase B publication)
    /// runs on the committing thread's own clock.
    ///
    /// [`CommitPath::CoarseLock`]: blockpilot_core::CommitPath::CoarseLock
    /// [`CommitPath::TwoPhase`]: blockpilot_core::CommitPath::TwoPhase
    pub commit_sync: Gas,
    /// The serialized Phase A slice of [`CostModel::commit_sync`]: WSI
    /// read-set validation + gas admission + version allocation + reserve
    /// intents under the commit-sequence lock. Also the cost a *failed*
    /// validation occupies the commit resource for (aborts validate under
    /// the lock on both paths). Calibrated from the real proposer's measured
    /// admit-section share (see `proposer_baseline` in bp-bench and
    /// DESIGN.md §7).
    pub commit_admit: Gas,
    /// Proposer-side state-access contention, in **per-mille of execution
    /// gas per additional concurrent worker**: with `t` workers every
    /// execution costs `gas × (1000 + state_contention_permille × (t-1)) /
    /// 1000`. Models the shared StateDB/trie-cache traffic that dominates
    /// geth under parallel execution; calibrated against the paper's
    /// proposer efficiency curve (91% at 2 threads down to ~31% at 16).
    pub state_contention_permille: u64,
    /// Validator preparation cost per transaction (dependency graph + lane
    /// assignment).
    pub prepare_per_tx: Gas,
    /// Applier cost per transaction (in-order apply of the profiled
    /// writes). Under non-overlapped verification the applier additionally
    /// pays [`CostModel::match_per_tx`] per transaction.
    pub applier_per_tx: Gas,
    /// Per-transaction footprint comparison against the block profile
    /// (Algorithm 2's read/write-set equality check). With overlapped
    /// verification this cost rides on the *worker's* clock right after the
    /// execution; on the baseline path it serializes through the applier.
    pub match_per_tx: Gas,
    /// Fixed per-block cost of block validation: CoW snapshot of the parent
    /// state, incremental MPT root recomputation over the dirty set, and
    /// header commitment checks. This is the term that makes a single
    /// applier bind once several same-height blocks are in flight.
    pub applier_block: Gas,
    /// Per-transaction read-set validation cost in the Block-STM proposer
    /// (compare every read's observed version against the multi-version
    /// store). Rides on the validating worker's own clock — Block-STM has no
    /// commit-section lock to serialize through; the preset order plus the
    /// commit watermark replace it.
    pub stm_validate: Gas,
    /// Penalty a worker pays when switching to a lane of a *different* block
    /// in the multi-block pipeline (context/state switch, §5.6).
    pub block_switch: Gas,
    /// Extra applier cost per transaction when consecutive results come from
    /// different blocks — with `B` in-flight blocks the applier interleaves
    /// result streams and pays this on a `(B-1)/B` fraction of
    /// transactions. This is the §5.6 "send out relevant information"
    /// cross-context cost that produces Figure 9's decline past 4 blocks.
    pub applier_switch: Gas,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_tx_dispatch: 2_200,
            commit_sync: 2_000,
            commit_admit: 300,
            state_contention_permille: 115,
            prepare_per_tx: 300,
            applier_per_tx: 1_600,
            match_per_tx: 400,
            applier_block: 120_000,
            stm_validate: 400,
            block_switch: 30_000,
            applier_switch: 2_300,
        }
    }
}
