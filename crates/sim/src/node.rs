//! Virtual-time model of the full node loop: proposer → codec → validator
//! as a three-stage pipeline over **bounded** hand-off buffers.
//!
//! Stage times are per-block gas-time costs (calibrated by `node_baseline`
//! from real proposer/codec/validator measurements on this machine), so the
//! model answers the question the single-CPU evaluation host cannot: what
//! does the paper's proposer/validator overlap buy in sustained
//! committed-tx/s when every stage really runs concurrently?
//!
//! The recurrences mirror the real service in `bp-node`:
//!
//! * a stage starts block `i` when it has finished block `i-1` **and**
//!   block `i` has been handed to it;
//! * a stage *hands off* block `i` only when the downstream buffer has a
//!   free slot — i.e. the downstream stage has started block `i - depth` —
//!   which is exactly a bounded channel of capacity `depth`;
//! * in lock-step mode the proposer additionally waits for the validator
//!   to finish block `i-1` before starting block `i`.
//!
//! Steady-state throughput is `1 / max(stage)` pipelined and
//! `1 / (sum of stages)` lock-step; per-block jitter makes buffer depth
//! matter, which is why the inputs are per-block vectors, not scalars.

use bp_types::Gas;

/// Per-block stage costs and loop shape.
#[derive(Clone, Debug)]
pub struct NodeLoopConfig {
    /// Gas-time to pack each block (proposer stage), one entry per block.
    pub propose: Vec<Gas>,
    /// Gas-time to encode each block (codec stage). Must match `propose`
    /// in length.
    pub codec: Vec<Gas>,
    /// Gas-time to validate + commit each block (validator stage). Must
    /// match `propose` in length.
    pub validate: Vec<Gas>,
    /// Bounded-buffer capacity between adjacent stages (the node's
    /// `channel_depth`).
    pub depth: usize,
    /// Lock-step pacing: the proposer waits for the validator to finish
    /// block `i-1` before starting block `i`.
    pub lock_step: bool,
}

/// Virtual-time outcome of one node-loop run.
#[derive(Clone, Debug)]
pub struct NodeLoopResult {
    /// Total virtual time from first propose to last commit.
    pub makespan: Gas,
    /// Sum of per-block propose costs (proposer busy time).
    pub proposer_busy: Gas,
    /// Proposer time lost to backpressure + lock-step pacing: the gap
    /// between the proposer's active span and its busy time.
    pub proposer_stall: Gas,
    /// Codec busy time.
    pub codec_busy: Gas,
    /// Validator busy time.
    pub validator_busy: Gas,
    /// Busy share of the makespan per stage: proposer, codec, validator.
    pub occupancy: [f64; 3],
}

impl NodeLoopResult {
    /// Committed blocks per unit of virtual time, scaled by `1e6` to read
    /// like "per second" when gas-time is calibrated in microseconds.
    pub fn blocks_per_mega(&self, blocks: u64) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            blocks as f64 * 1e6 / self.makespan as f64
        }
    }
}

/// Simulates the three-stage loop. Deterministic: same inputs, same result.
pub fn simulate_node_loop(config: &NodeLoopConfig) -> NodeLoopResult {
    let n = config.propose.len();
    assert_eq!(config.codec.len(), n, "codec costs must cover every block");
    assert_eq!(
        config.validate.len(),
        n,
        "validate costs must cover every block"
    );
    assert!(config.depth > 0, "bounded buffers need depth >= 1");
    if n == 0 {
        return NodeLoopResult {
            makespan: 0,
            proposer_busy: 0,
            proposer_stall: 0,
            codec_busy: 0,
            validator_busy: 0,
            occupancy: [0.0; 3],
        };
    }

    let d = config.depth;
    // Per-block event times.
    let mut p_done = vec![0u64; n]; // proposer finishes packing i
    let mut p_handoff = vec![0u64; n]; // block i enters the codec buffer
    let mut c_start = vec![0u64; n]; // codec pops i from its buffer
    let mut c_handoff = vec![0u64; n]; // block i enters the wire buffer
    let mut v_start = vec![0u64; n]; // validator pops i
    let mut v_done = vec![0u64; n]; // block i committed

    for i in 0..n {
        let prev_handoff = if i > 0 { p_handoff[i - 1] } else { 0 };
        let p_start = if config.lock_step && i > 0 {
            prev_handoff.max(v_done[i - 1])
        } else {
            prev_handoff
        };
        p_done[i] = p_start + config.propose[i];
        // The codec buffer has a slot once the codec has *popped* block
        // i - depth.
        p_handoff[i] = if i >= d {
            p_done[i].max(c_start[i - d])
        } else {
            p_done[i]
        };

        let c_prev = if i > 0 { c_handoff[i - 1] } else { 0 };
        c_start[i] = p_handoff[i].max(c_prev);
        let c_done = c_start[i] + config.codec[i];
        c_handoff[i] = if i >= d {
            c_done.max(v_start[i - d])
        } else {
            c_done
        };

        let v_prev = if i > 0 { v_done[i - 1] } else { 0 };
        v_start[i] = c_handoff[i].max(v_prev);
        v_done[i] = v_start[i] + config.validate[i];
    }

    let proposer_busy: Gas = config.propose.iter().sum();
    let codec_busy: Gas = config.codec.iter().sum();
    let validator_busy: Gas = config.validate.iter().sum();
    let makespan = v_done[n - 1];
    // The proposer's active span runs from t=0 to its last hand-off; any
    // excess over busy time was spent blocked on the buffer or (lock-step)
    // on validator commits.
    let proposer_stall = p_handoff[n - 1].saturating_sub(proposer_busy);

    let occ = |busy: Gas| {
        if makespan == 0 {
            0.0
        } else {
            busy as f64 / makespan as f64
        }
    };
    NodeLoopResult {
        makespan,
        proposer_busy,
        proposer_stall,
        codec_busy,
        validator_busy,
        occupancy: [occ(proposer_busy), occ(codec_busy), occ(validator_busy)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(
        blocks: usize,
        tp: Gas,
        tc: Gas,
        tv: Gas,
        depth: usize,
        lock_step: bool,
    ) -> NodeLoopConfig {
        NodeLoopConfig {
            propose: vec![tp; blocks],
            codec: vec![tc; blocks],
            validate: vec![tv; blocks],
            depth,
            lock_step,
        }
    }

    #[test]
    fn lock_step_is_the_sum_of_stages() {
        let r = simulate_node_loop(&uniform(50, 100, 10, 80, 2, true));
        assert_eq!(r.makespan, 50 * (100 + 10 + 80));
    }

    #[test]
    fn pipelined_converges_to_the_slowest_stage() {
        let blocks = 200u64;
        let r = simulate_node_loop(&uniform(blocks as usize, 100, 10, 80, 2, false));
        // Fill + drain cost the non-bottleneck stages once; steady state
        // paces at the 100-gas proposer.
        assert_eq!(r.makespan, blocks * 100 + 10 + 80);
        assert!(r.occupancy[0] > 0.99, "bottleneck stage saturates");
    }

    #[test]
    fn pipelined_beats_lock_step() {
        let pipelined = simulate_node_loop(&uniform(100, 100, 10, 90, 2, false));
        let lock_step = simulate_node_loop(&uniform(100, 100, 10, 90, 2, true));
        let ratio = lock_step.makespan as f64 / pipelined.makespan as f64;
        assert!(ratio > 1.9, "overlap ratio {ratio:.2}");
    }

    #[test]
    fn slow_validator_backpressures_the_proposer() {
        // Validator is 4x the proposer: with depth 1 the proposer can only
        // run ahead by the buffered blocks, so most of its span is stall.
        let r = simulate_node_loop(&uniform(100, 25, 5, 100, 1, false));
        assert!(r.proposer_stall > r.proposer_busy);
        assert!(r.occupancy[2] > 0.99, "validator is the bottleneck");
    }

    #[test]
    fn deeper_buffers_absorb_jitter() {
        // Anti-phased *bursts*: 8-block runs where the proposer is slow
        // while the validator is fast, then vice versa. A deep buffer lets
        // the proposer pre-produce during its fast burst so the validator's
        // fast burst has backlog to drain; depth 1 throws that overlap away
        // and both stages pace at the per-burst maximum.
        let n = 96;
        let slow_burst = |i: usize| (i / 8).is_multiple_of(2);
        let propose: Vec<Gas> = (0..n)
            .map(|i| if slow_burst(i) { 150 } else { 50 })
            .collect();
        let validate: Vec<Gas> = (0..n)
            .map(|i| if slow_burst(i) { 50 } else { 150 })
            .collect();
        let base = NodeLoopConfig {
            propose,
            codec: vec![5; n],
            validate,
            depth: 1,
            lock_step: false,
        };
        let shallow = simulate_node_loop(&base);
        let deep = simulate_node_loop(&NodeLoopConfig {
            depth: 8,
            ..base.clone()
        });
        assert!(
            deep.makespan < shallow.makespan,
            "depth 8 {} !< depth 1 {}",
            deep.makespan,
            shallow.makespan
        );
    }

    #[test]
    fn empty_input() {
        let r = simulate_node_loop(&NodeLoopConfig {
            propose: vec![],
            codec: vec![],
            validate: vec![],
            depth: 2,
            lock_step: false,
        });
        assert_eq!(r.makespan, 0);
    }
}
