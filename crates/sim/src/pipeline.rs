//! Virtual-time model of the multi-block validator pipeline (Figure 9).
//!
//! `B` blocks (the paper simulates same-height replicas) share one worker
//! pool. Lanes from *all* in-flight blocks are list-scheduled onto the
//! workers; a worker that picks up a lane belonging to a different block
//! than its previous lane pays a context-switch penalty (§5.6: "workers
//! \[need\] to shift between different contexts to handle distinct blocks
//! and send out relevant information"). A single applier verifies blocks
//! one at a time. Both effects produce the paper's peak-then-decline curve.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use blockpilot_core::scheduler::Schedule;
use bp_block::BlockProfile;
use bp_types::Gas;

use crate::CostModel;

/// Result of one simulated multi-block run.
#[derive(Clone, Copy, Debug)]
pub struct MultiBlockSimResult {
    /// Virtual time until the last block finished validation.
    pub makespan: Gas,
    /// Sum of all blocks' serial execution times.
    pub serial_gas: Gas,
    /// serial_gas / makespan — the paper's multi-block speedup (relative to
    /// serial execution of all blocks).
    pub speedup: f64,
    /// Number of context switches workers performed.
    pub switches: u64,
}

/// Simulates validating `blocks` concurrently on `workers` workers.
///
/// Each element pairs a block's schedule with its profile. Blocks are
/// assumed independent (same height), matching the paper's §5.6 setup.
pub fn simulate_multiblock(
    blocks: &[(Schedule, &BlockProfile)],
    workers: usize,
    model: &CostModel,
) -> MultiBlockSimResult {
    assert!(workers > 0);
    // Build the global lane list: (block id, lane gas including dispatch).
    struct Lane {
        block: usize,
        gas: Gas,
    }
    let mut lanes: Vec<Lane> = Vec::new();
    let mut block_exec_remaining: Vec<usize> = vec![0; blocks.len()];
    let mut serial_gas: Gas = 0;
    for (b, (schedule, profile)) in blocks.iter().enumerate() {
        serial_gas += profile.entries.iter().map(|e| e.gas_used).sum::<Gas>();
        for lane in schedule.lanes.iter().filter(|l| !l.is_empty()) {
            let gas: Gas = lane
                .iter()
                .map(|&i| profile.entries[i].gas_used + model.per_tx_dispatch)
                .sum();
            lanes.push(Lane { block: b, gas });
            block_exec_remaining[b] += 1;
        }
    }
    // LPT across all blocks, ties broken by block id for determinism.
    lanes.sort_by(|a, b| b.gas.cmp(&a.gas).then(a.block.cmp(&b.block)));

    // Workers: min-heap of (available time, worker id); remember each
    // worker's last block for the switch penalty.
    let mut heap: BinaryHeap<Reverse<(Gas, usize)>> =
        (0..workers).map(|w| Reverse((0, w))).collect();
    let mut last_block: Vec<Option<usize>> = vec![None; workers];
    let mut block_exec_finish: Vec<Gas> = vec![0; blocks.len()];
    let mut switches: u64 = 0;

    for lane in &lanes {
        let Reverse((avail, w)) = heap.pop().expect("workers > 0");
        let mut start = avail;
        if last_block[w] != Some(lane.block) {
            if last_block[w].is_some() {
                switches += 1;
            }
            start += model.block_switch;
            last_block[w] = Some(lane.block);
        }
        let finish = start + lane.gas;
        block_exec_finish[lane.block] = block_exec_finish[lane.block].max(finish);
        heap.push(Reverse((finish, w)));
    }

    // With B blocks in flight the applier interleaves B result streams: a
    // `(B-1)/B` fraction of results arrive from a different block than the
    // previous one and pay the cross-context cost.
    let b_count = blocks.len().max(1) as u64;
    let applier_tx_cost = model.applier_per_tx + model.applier_switch * (b_count - 1) / b_count;
    // The applier streams: it consumes results from every in-flight block
    // while lanes still execute, so the run ends when both the slowest lane
    // has finished (plus its block's preparation) and the single applier has
    // worked through every block's verification stream.
    let mut exec_makespan: Gas = 0;
    let mut total_applier: Gas = 0;
    for (b, (_, profile)) in blocks.iter().enumerate() {
        let n = profile.entries.len() as u64;
        exec_makespan = exec_makespan.max(block_exec_finish[b] + model.prepare_per_tx * n);
        total_applier += applier_tx_cost * n;
    }
    let makespan = exec_makespan.max(total_applier);

    MultiBlockSimResult {
        makespan,
        serial_gas,
        speedup: if makespan == 0 {
            1.0
        } else {
            serial_gas as f64 / makespan as f64
        },
        switches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpilot_core::scheduler::{ConflictGranularity, Scheduler};
    use bp_block::TxProfile;
    use bp_types::{AccessKey, Address, RwSet, U256};

    fn profile(n: usize, conflict_groups: usize, gas: Gas) -> BlockProfile {
        let entries = (0..n)
            .map(|i| {
                let mut rw = RwSet::new();
                rw.record_write(
                    AccessKey::Balance(Address::from_index((i % conflict_groups) as u64 + 1)),
                    U256::ONE,
                );
                TxProfile::from_rw(&rw, gas)
            })
            .collect();
        BlockProfile { entries }
    }

    fn sched(p: &BlockProfile, lanes: usize) -> Schedule {
        Scheduler::new(ConflictGranularity::Account).schedule(p, lanes)
    }

    #[test]
    fn one_block_equals_validator_model_roughly() {
        let p = profile(16, 4, 10_000);
        let s = sched(&p, 16);
        let m = CostModel {
            block_switch: 0,
            ..CostModel::default()
        };
        let r = simulate_multiblock(&[(s, &p)], 16, &m);
        // 4 conflict groups of 4 txs: lane makespan = 4 * (10000+1500).
        assert!(r.makespan >= 46_000);
        assert_eq!(r.serial_gas, 160_000);
    }

    #[test]
    fn more_blocks_improve_utilization() {
        // A block whose critical path uses only 4 of 16 workers: adding a
        // second and fourth block fills the idle workers.
        let p = profile(32, 4, 30_000);
        let model = CostModel::default();
        let mk = |count: usize| {
            let blocks: Vec<_> = (0..count).map(|_| (sched(&p, 16), &p)).collect();
            simulate_multiblock(&blocks, 16, &model)
        };
        let one = mk(1);
        let two = mk(2);
        let four = mk(4);
        assert!(
            two.speedup > one.speedup,
            "{} vs {}",
            two.speedup,
            one.speedup
        );
        assert!(
            four.speedup > two.speedup,
            "{} vs {}",
            four.speedup,
            two.speedup
        );
    }

    #[test]
    fn oversubscription_declines_once_applier_binds() {
        // Small transactions make the applier the binding resource; its
        // cross-block interleaving cost then grows with the block count and
        // the speedup declines past the saturation point.
        let p = profile(64, 8, 4_000);
        let model = CostModel {
            block_switch: 20_000,
            applier_per_tx: 800,
            applier_switch: 2_400,
            ..CostModel::default()
        };
        let mk = |count: usize| {
            let blocks: Vec<_> = (0..count).map(|_| (sched(&p, 16), &p)).collect();
            simulate_multiblock(&blocks, 16, &model)
        };
        let four = mk(4);
        let eight = mk(8);
        assert!(
            eight.speedup < four.speedup,
            "8 blocks {} vs 4 blocks {}",
            eight.speedup,
            four.speedup
        );
        assert!(eight.switches > four.switches);
    }

    #[test]
    fn deterministic() {
        let p = profile(20, 5, 7_000);
        let blocks: Vec<_> = (0..3).map(|_| (sched(&p, 8), &p)).collect();
        let a = simulate_multiblock(&blocks, 8, &CostModel::default());
        let b = simulate_multiblock(&blocks, 8, &CostModel::default());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.switches, b.switches);
    }

    #[test]
    fn empty_input() {
        let r = simulate_multiblock(&[], 4, &CostModel::default());
        assert_eq!(r.makespan, 0);
        assert_eq!(r.speedup, 1.0);
    }
}
