//! Virtual-time model of the multi-block validator pipeline (Figure 9).
//!
//! `B` blocks (the paper simulates same-height replicas) share one worker
//! pool. Lanes from *all* in-flight blocks are list-scheduled onto the
//! workers; a worker that picks up a lane belonging to a different block
//! than its previous lane pays a context-switch penalty (§5.6: "workers
//! \[need\] to shift between different contexts to handle distinct blocks
//! and send out relevant information"). [`simulate_multiblock`] keeps the
//! original single-streaming-applier model as the fixed Figure 9 baseline;
//! [`simulate_validator_pipeline`] models the restructured pipeline — job
//! granularity (subgraph vs static lane), overlapped footprint
//! verification, and an applier *pool* as a shared resource — for the
//! coarse-vs-subgraph / 1-vs-N-applier A/B series in `validator_baseline`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use blockpilot_core::scheduler::Schedule;
use blockpilot_core::DispatchPolicy;
use bp_block::BlockProfile;
use bp_types::Gas;

use crate::CostModel;

/// Result of one simulated multi-block run.
#[derive(Clone, Copy, Debug)]
pub struct MultiBlockSimResult {
    /// Virtual time until the last block finished validation.
    pub makespan: Gas,
    /// Sum of all blocks' serial execution times.
    pub serial_gas: Gas,
    /// serial_gas / makespan — the paper's multi-block speedup (relative to
    /// serial execution of all blocks).
    pub speedup: f64,
    /// Number of context switches workers performed.
    pub switches: u64,
}

/// Simulates validating `blocks` concurrently on `workers` workers.
///
/// Each element pairs a block's schedule with its profile. Blocks are
/// assumed independent (same height), matching the paper's §5.6 setup.
pub fn simulate_multiblock(
    blocks: &[(Schedule, &BlockProfile)],
    workers: usize,
    model: &CostModel,
) -> MultiBlockSimResult {
    assert!(workers > 0);
    // Build the global lane list: (block id, lane gas including dispatch).
    struct Lane {
        block: usize,
        gas: Gas,
    }
    let mut lanes: Vec<Lane> = Vec::new();
    let mut block_exec_remaining: Vec<usize> = vec![0; blocks.len()];
    let mut serial_gas: Gas = 0;
    for (b, (schedule, profile)) in blocks.iter().enumerate() {
        serial_gas += profile.entries.iter().map(|e| e.gas_used).sum::<Gas>();
        for lane in schedule.lanes.iter().filter(|l| !l.is_empty()) {
            let gas: Gas = lane
                .iter()
                .map(|&i| profile.entries[i].gas_used + model.per_tx_dispatch)
                .sum();
            lanes.push(Lane { block: b, gas });
            block_exec_remaining[b] += 1;
        }
    }
    // LPT across all blocks, ties broken by block id for determinism.
    lanes.sort_by(|a, b| b.gas.cmp(&a.gas).then(a.block.cmp(&b.block)));

    // Workers: min-heap of (available time, worker id); remember each
    // worker's last block for the switch penalty.
    let mut heap: BinaryHeap<Reverse<(Gas, usize)>> =
        (0..workers).map(|w| Reverse((0, w))).collect();
    let mut last_block: Vec<Option<usize>> = vec![None; workers];
    let mut block_exec_finish: Vec<Gas> = vec![0; blocks.len()];
    let mut switches: u64 = 0;

    for lane in &lanes {
        let Reverse((avail, w)) = heap.pop().expect("workers > 0");
        let mut start = avail;
        if last_block[w] != Some(lane.block) {
            if last_block[w].is_some() {
                switches += 1;
            }
            start += model.block_switch;
            last_block[w] = Some(lane.block);
        }
        let finish = start + lane.gas;
        block_exec_finish[lane.block] = block_exec_finish[lane.block].max(finish);
        heap.push(Reverse((finish, w)));
    }

    // With B blocks in flight the applier interleaves B result streams: a
    // `(B-1)/B` fraction of results arrive from a different block than the
    // previous one and pay the cross-context cost.
    let b_count = blocks.len().max(1) as u64;
    let applier_tx_cost = model.applier_per_tx + model.applier_switch * (b_count - 1) / b_count;
    // The applier streams: it consumes results from every in-flight block
    // while lanes still execute, so the run ends when both the slowest lane
    // has finished (plus its block's preparation) and the single applier has
    // worked through every block's verification stream.
    let mut exec_makespan: Gas = 0;
    let mut total_applier: Gas = 0;
    for (b, (_, profile)) in blocks.iter().enumerate() {
        let n = profile.entries.len() as u64;
        exec_makespan = exec_makespan.max(block_exec_finish[b] + model.prepare_per_tx * n);
        total_applier += applier_tx_cost * n;
    }
    let makespan = exec_makespan.max(total_applier);

    MultiBlockSimResult {
        makespan,
        serial_gas,
        speedup: if makespan == 0 {
            1.0
        } else {
            serial_gas as f64 / makespan as f64
        },
        switches,
    }
}

// ---------------------------------------------------------------------------
// Restructured pipeline (subgraph dispatch, overlapped verify, applier pool)
// ---------------------------------------------------------------------------

/// Knobs of the restructured validator pipeline, mirroring
/// `blockpilot_core::PipelineConfig` in virtual time.
#[derive(Clone, Copy, Debug)]
pub struct PipelineSimConfig {
    /// Worker-pool size.
    pub workers: usize,
    /// Applier-pool size (1 = the old serialized block-validation stage).
    pub appliers: usize,
    /// Execution-job granularity.
    pub dispatch: DispatchPolicy,
    /// When true, per-transaction footprint checks ride on the workers'
    /// clocks (overlapped verification); when false they serialize through
    /// the applier, as in the baseline pipeline.
    pub overlap_verify: bool,
}

impl Default for PipelineSimConfig {
    fn default() -> Self {
        PipelineSimConfig {
            workers: 8,
            appliers: 2,
            dispatch: DispatchPolicy::Subgraph,
            overlap_verify: true,
        }
    }
}

/// Result of one simulated restructured-pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineSimResult {
    /// Virtual time until the last block cleared block validation.
    pub makespan: Gas,
    /// Sum of all blocks' serial execution times.
    pub serial_gas: Gas,
    /// serial_gas / makespan.
    pub speedup: f64,
    /// Virtual time until the last execution job finished.
    pub exec_makespan: Gas,
    /// Per-block `[start, end)` of the block-validation stage, in block
    /// submission order. With one applier these are disjoint (queued); with
    /// a pool, independent blocks overlap — the paper's Figure 5.
    pub block_validate: Vec<(Gas, Gas)>,
    /// Total transactions across all blocks.
    pub total_txs: u64,
}

impl PipelineSimResult {
    /// True iff any two blocks' block-validation stages overlap in virtual
    /// time (Figure 5's "overlap fully", as opposed to queueing).
    pub fn validation_overlaps(&self) -> bool {
        for (i, a) in self.block_validate.iter().enumerate() {
            for b in self.block_validate.iter().skip(i + 1) {
                if a.0 < b.1 && b.0 < a.1 && a.1 > a.0 && b.1 > b.0 {
                    return true;
                }
            }
        }
        false
    }
}

/// Simulates the restructured validator pipeline on `blocks` (same-height,
/// independent — the Figure 5/§5.6 setup).
///
/// Preparation runs serially on the submitting thread (each block's jobs
/// release only after every earlier block's preparation). Execution jobs —
/// one per dependency subgraph (heaviest-first) or one per packed lane —
/// are list-scheduled FIFO onto the worker pool with the §5.6 block-switch
/// penalty. Block validation costs `applier_block + n·applier_per_tx`
/// (plus `n·match_per_tx` when verification is not overlapped) and runs on
/// the first free applier of the pool once the block's last execution job
/// has finished.
pub fn simulate_validator_pipeline(
    blocks: &[(Schedule, &BlockProfile)],
    config: &PipelineSimConfig,
    model: &CostModel,
) -> PipelineSimResult {
    assert!(config.workers > 0);
    assert!(config.appliers > 0);
    struct Job {
        block: usize,
        gas: Gas,
    }
    // Per-transaction execution-side cost: dispatch overhead plus the
    // overlapped footprint check.
    let exec_tx_overhead = model.per_tx_dispatch
        + if config.overlap_verify {
            model.match_per_tx
        } else {
            0
        };
    let mut jobs: Vec<Job> = Vec::new();
    let mut release: Vec<Gas> = Vec::with_capacity(blocks.len());
    let mut serial_gas: Gas = 0;
    let mut total_txs: u64 = 0;
    let mut prep_clock: Gas = 0;
    for (b, (schedule, profile)) in blocks.iter().enumerate() {
        let n = profile.entries.len() as u64;
        serial_gas += profile.entries.iter().map(|e| e.gas_used).sum::<Gas>();
        total_txs += n;
        prep_clock += model.prepare_per_tx * n;
        release.push(prep_clock);
        let job_sets: Vec<&Vec<usize>> = match config.dispatch {
            DispatchPolicy::Subgraph => schedule.subgraphs.iter().map(|sg| &sg.txs).collect(),
            DispatchPolicy::StaticLanes => {
                schedule.lanes.iter().filter(|l| !l.is_empty()).collect()
            }
        };
        for txs in job_sets {
            let gas: Gas = txs
                .iter()
                .map(|&i| profile.entries[i].gas_used + exec_tx_overhead)
                .sum();
            jobs.push(Job { block: b, gas });
        }
    }

    // Execution: FIFO list scheduling over the worker pool (the real
    // pipeline's shared job channel), block-switch penalty on block change.
    let mut heap: BinaryHeap<Reverse<(Gas, usize)>> =
        (0..config.workers).map(|w| Reverse((0, w))).collect();
    let mut last_block: Vec<Option<usize>> = vec![None; config.workers];
    let mut block_exec_finish: Vec<Gas> = release.clone();
    for job in &jobs {
        let Reverse((avail, w)) = heap.pop().expect("workers > 0");
        let mut start = avail.max(release[job.block]);
        if last_block[w] != Some(job.block) {
            if last_block[w].is_some() {
                start += model.block_switch;
            }
            last_block[w] = Some(job.block);
        }
        let finish = start + job.gas;
        block_exec_finish[job.block] = block_exec_finish[job.block].max(finish);
        heap.push(Reverse((finish, w)));
    }
    let exec_makespan = block_exec_finish.iter().copied().max().unwrap_or(0);

    // Block validation: blocks enter the applier channel as their last
    // execution job completes; each runs on the first free applier.
    let applier_tx_cost = model.applier_per_tx
        + if config.overlap_verify {
            0
        } else {
            model.match_per_tx
        };
    let mut order: Vec<usize> = (0..blocks.len()).collect();
    order.sort_by_key(|&b| (block_exec_finish[b], b));
    let mut applier_avail: Vec<Gas> = vec![0; config.appliers];
    let mut block_validate: Vec<(Gas, Gas)> = vec![(0, 0); blocks.len()];
    for &b in &order {
        let n = blocks[b].1.entries.len() as u64;
        let slot = (0..config.appliers)
            .min_by_key(|&a| (applier_avail[a], a))
            .expect("appliers > 0");
        let start = applier_avail[slot].max(block_exec_finish[b]);
        let end = start + model.applier_block + applier_tx_cost * n;
        applier_avail[slot] = end;
        block_validate[b] = (start, end);
    }
    let makespan = block_validate
        .iter()
        .map(|&(_, e)| e)
        .max()
        .unwrap_or(0)
        .max(exec_makespan);

    PipelineSimResult {
        makespan,
        serial_gas,
        speedup: if makespan == 0 {
            1.0
        } else {
            serial_gas as f64 / makespan as f64
        },
        exec_makespan,
        block_validate,
        total_txs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpilot_core::scheduler::{ConflictGranularity, Scheduler};
    use bp_block::TxProfile;
    use bp_types::{AccessKey, Address, RwSet, U256};

    fn profile(n: usize, conflict_groups: usize, gas: Gas) -> BlockProfile {
        let entries = (0..n)
            .map(|i| {
                let mut rw = RwSet::new();
                rw.record_write(
                    AccessKey::Balance(Address::from_index((i % conflict_groups) as u64 + 1)),
                    U256::ONE,
                );
                TxProfile::from_rw(&rw, gas)
            })
            .collect();
        BlockProfile { entries }
    }

    fn sched(p: &BlockProfile, lanes: usize) -> Schedule {
        Scheduler::new(ConflictGranularity::Account).schedule(p, lanes)
    }

    #[test]
    fn one_block_equals_validator_model_roughly() {
        let p = profile(16, 4, 10_000);
        let s = sched(&p, 16);
        let m = CostModel {
            block_switch: 0,
            ..CostModel::default()
        };
        let r = simulate_multiblock(&[(s, &p)], 16, &m);
        // 4 conflict groups of 4 txs: lane makespan = 4 * (10000+1500).
        assert!(r.makespan >= 46_000);
        assert_eq!(r.serial_gas, 160_000);
    }

    #[test]
    fn more_blocks_improve_utilization() {
        // A block whose critical path uses only 4 of 16 workers: adding a
        // second and fourth block fills the idle workers.
        let p = profile(32, 4, 30_000);
        let model = CostModel::default();
        let mk = |count: usize| {
            let blocks: Vec<_> = (0..count).map(|_| (sched(&p, 16), &p)).collect();
            simulate_multiblock(&blocks, 16, &model)
        };
        let one = mk(1);
        let two = mk(2);
        let four = mk(4);
        assert!(
            two.speedup > one.speedup,
            "{} vs {}",
            two.speedup,
            one.speedup
        );
        assert!(
            four.speedup > two.speedup,
            "{} vs {}",
            four.speedup,
            two.speedup
        );
    }

    #[test]
    fn oversubscription_declines_once_applier_binds() {
        // Small transactions make the applier the binding resource; its
        // cross-block interleaving cost then grows with the block count and
        // the speedup declines past the saturation point.
        let p = profile(64, 8, 4_000);
        let model = CostModel {
            block_switch: 20_000,
            applier_per_tx: 800,
            applier_switch: 2_400,
            ..CostModel::default()
        };
        let mk = |count: usize| {
            let blocks: Vec<_> = (0..count).map(|_| (sched(&p, 16), &p)).collect();
            simulate_multiblock(&blocks, 16, &model)
        };
        let four = mk(4);
        let eight = mk(8);
        assert!(
            eight.speedup < four.speedup,
            "8 blocks {} vs 4 blocks {}",
            eight.speedup,
            four.speedup
        );
        assert!(eight.switches > four.switches);
    }

    #[test]
    fn deterministic() {
        let p = profile(20, 5, 7_000);
        let blocks: Vec<_> = (0..3).map(|_| (sched(&p, 8), &p)).collect();
        let a = simulate_multiblock(&blocks, 8, &CostModel::default());
        let b = simulate_multiblock(&blocks, 8, &CostModel::default());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.switches, b.switches);
    }

    #[test]
    fn empty_input() {
        let r = simulate_multiblock(&[], 4, &CostModel::default());
        assert_eq!(r.makespan, 0);
        assert_eq!(r.speedup, 1.0);
    }

    // -- restructured pipeline ---------------------------------------------

    #[test]
    fn applier_pool_overlaps_block_validation() {
        // Four same-height blocks with a heavy per-block validation stage:
        // one applier queues them (disjoint intervals), a pool overlaps
        // them and shortens the run — the Figure 5 shape.
        let p = profile(32, 8, 20_000);
        let blocks: Vec<_> = (0..4).map(|_| (sched(&p, 8), &p)).collect();
        let model = CostModel {
            applier_block: 400_000,
            stm_validate: 0,
            ..CostModel::default()
        };
        let single = simulate_validator_pipeline(
            &blocks,
            &PipelineSimConfig {
                appliers: 1,
                ..PipelineSimConfig::default()
            },
            &model,
        );
        let pooled = simulate_validator_pipeline(
            &blocks,
            &PipelineSimConfig {
                appliers: 4,
                ..PipelineSimConfig::default()
            },
            &model,
        );
        assert!(!single.validation_overlaps(), "{:?}", single.block_validate);
        assert!(pooled.validation_overlaps(), "{:?}", pooled.block_validate);
        assert!(
            pooled.makespan < single.makespan,
            "pooled {} vs single {}",
            pooled.makespan,
            single.makespan
        );
    }

    #[test]
    fn overlapped_verification_helps_when_applier_binds() {
        // Many small transactions: block validation is the bottleneck, so
        // moving the footprint checks onto the workers' clocks shortens it.
        let p = profile(64, 16, 3_000);
        let blocks: Vec<_> = (0..4).map(|_| (sched(&p, 8), &p)).collect();
        let model = CostModel {
            match_per_tx: 1_000,
            ..CostModel::default()
        };
        let mk = |overlap: bool, appliers: usize| {
            simulate_validator_pipeline(
                &blocks,
                &PipelineSimConfig {
                    appliers,
                    overlap_verify: overlap,
                    ..PipelineSimConfig::default()
                },
                &model,
            )
        };
        let baseline = mk(false, 1);
        let overlapped = mk(true, 1);
        assert!(
            overlapped.makespan < baseline.makespan,
            "overlapped {} vs baseline {}",
            overlapped.makespan,
            baseline.makespan
        );
    }

    #[test]
    fn restructured_beats_baseline_at_eight_workers() {
        // The headline A/B: subgraph dispatch + applier pool + overlapped
        // verification vs static lanes + single applier + applier-side
        // checks, on a standard-shaped window of same-height blocks. The
        // model mirrors the host calibration in `validator_baseline`, where
        // the per-block incremental state-root recomputation makes block
        // validation expensive relative to transfer execution.
        let p = profile(132, 33, 21_000);
        let blocks: Vec<_> = (0..4).map(|_| (sched(&p, 8), &p)).collect();
        let model = CostModel {
            applier_block: 600_000,
            stm_validate: 0,
            applier_per_tx: 2_000,
            match_per_tx: 500,
            ..CostModel::default()
        };
        let new = simulate_validator_pipeline(
            &blocks,
            &PipelineSimConfig {
                workers: 8,
                appliers: 4,
                dispatch: DispatchPolicy::Subgraph,
                overlap_verify: true,
            },
            &model,
        );
        let old = simulate_validator_pipeline(
            &blocks,
            &PipelineSimConfig {
                workers: 8,
                appliers: 1,
                dispatch: DispatchPolicy::StaticLanes,
                overlap_verify: false,
            },
            &model,
        );
        assert!(
            new.makespan as f64 * 1.2 <= old.makespan as f64,
            "restructured {} vs baseline {} — expected >= 1.2x",
            new.makespan,
            old.makespan
        );
    }

    #[test]
    fn dispatch_granularities_agree_on_totals() {
        // Subgraph and static-lane dispatch execute the same work; their
        // virtual makespans differ only through packing, not through lost
        // or duplicated transactions.
        let p = profile(40, 7, 9_000);
        let blocks: Vec<_> = (0..3).map(|_| (sched(&p, 4), &p)).collect();
        let model = CostModel::default();
        let sub = simulate_validator_pipeline(&blocks, &PipelineSimConfig::default(), &model);
        let lanes = simulate_validator_pipeline(
            &blocks,
            &PipelineSimConfig {
                dispatch: DispatchPolicy::StaticLanes,
                ..PipelineSimConfig::default()
            },
            &model,
        );
        assert_eq!(sub.total_txs, lanes.total_txs);
        assert_eq!(sub.serial_gas, lanes.serial_gas);
        assert!(sub.makespan > 0 && lanes.makespan > 0);
    }

    #[test]
    fn restructured_pipeline_deterministic_and_empty() {
        let p = profile(20, 5, 7_000);
        let blocks: Vec<_> = (0..3).map(|_| (sched(&p, 8), &p)).collect();
        let a = simulate_validator_pipeline(
            &blocks,
            &PipelineSimConfig::default(),
            &CostModel::default(),
        );
        let b = simulate_validator_pipeline(
            &blocks,
            &PipelineSimConfig::default(),
            &CostModel::default(),
        );
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.block_validate, b.block_validate);
        let empty =
            simulate_validator_pipeline(&[], &PipelineSimConfig::default(), &CostModel::default());
        assert_eq!(empty.makespan, 0);
        assert_eq!(empty.speedup, 1.0);
        assert!(!empty.validation_overlaps());
    }
}
